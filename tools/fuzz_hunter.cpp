// Adversarial scenario hunter CLI: feedback-guided fuzzing of workload /
// fault-schedule / knob combinations against the simulated cluster,
// scoring each run by how pathological its tail and degradation are
// relative to a healthy 12-node reference, checking global invariants
// after every run, and shrinking + pinning the worst survivors as
// replayable scenario JSONs.
//
//   fuzz_hunter [--runs N] [--seconds S] [--seed S] [--corpus-dir DIR]
//               [--shrink 0|1] [--ratio R] [--nodes N]
//
// With --corpus-dir the pinned survivors are written there as
// <name>.json (canonical qadist-scenario-v1). Exit status: 1 on any
// invariant violation, 0 otherwise — survivor count is a report, not a
// failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "support/bench_world.hpp"

namespace {

struct Options {
  std::size_t runs = 200;
  double seconds = 0.0;
  std::uint64_t seed = 1;
  std::string corpus_dir;
  bool shrink = true;
  double ratio = 3.0;
  std::size_t nodes = 12;
};

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--runs N] [--seconds S] [--seed S] [--corpus-dir DIR]\n"
      "          [--shrink 0|1] [--ratio R] [--nodes N]\n"
      "  --runs N        fuzz iteration budget (default 200)\n"
      "  --seconds S     wall-clock budget; 0 = unlimited (default 0)\n"
      "  --seed S        campaign seed (default 1)\n"
      "  --corpus-dir D  write pinned survivors as D/<name>.json\n"
      "  --shrink 0|1    shrink survivors to minimal reproducers (default 1)\n"
      "  --ratio R       pathology bar vs healthy baseline (default 3)\n"
      "  --nodes N       reference cluster size (default 12)\n",
      prog);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (flag == "--runs") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.runs = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seconds") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.seconds = std::strtod(v, nullptr);
    } else if (flag == "--seed") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--corpus-dir") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.corpus_dir = v;
    } else if (flag == "--shrink") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.shrink = std::strtol(v, nullptr, 10) != 0;
    } else if (flag == "--ratio") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.ratio = std::strtod(v, nullptr);
    } else if (flag == "--nodes") {
      const char* v = value();
      if (!v) return std::nullopt;
      opt.nodes = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      usage(argv[0]);
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qadist;

  const auto opt = parse(argc, argv);
  if (!opt) return 2;

  const bench::BenchWorld& world = bench::bench_world();
  const fuzz::Scenario reference = fuzz::reference_scenario(
      opt->nodes, world.mean_service_seconds(), opt->seed);

  fuzz::FuzzConfig config;
  config.runs = opt->runs;
  config.seconds = opt->seconds;
  config.seed = opt->seed;
  config.shrink = opt->shrink;
  config.pathological_ratio = opt->ratio;

  std::printf("fuzz_hunter: %zu-node reference, rate %.4f qps, %zu questions, "
              "seed %llu, budget %zu runs%s\n",
              reference.nodes, reference.traffic.rate_qps,
              reference.traffic.count,
              static_cast<unsigned long long>(opt->seed), opt->runs,
              opt->seconds > 0.0 ? " (time-capped)" : "");

  fuzz::Fuzzer fuzzer(world.plans, reference, config);
  fuzzer.run();

  const fuzz::FuzzStats& stats = fuzzer.stats();
  std::printf("\ncampaign: %zu runs, %zu corpus entries (%zu admissions), "
              "%zu pathological runs, %zu shrink attempts\n",
              stats.runs, fuzzer.corpus().size(), stats.admitted,
              stats.pathological, stats.shrink_attempts);
  std::printf("baseline: p99 %.3fs, max %.3fs, degraded %.4f\n",
              fuzzer.baseline().p99, fuzzer.baseline().max_latency,
              fuzzer.baseline().degraded_fraction);

  std::printf("\nsurvivors: %zu\n", fuzzer.survivors().size());
  for (const fuzz::Survivor& survivor : fuzzer.survivors()) {
    const fuzz::Observation& o = survivor.observation;
    const double p99_ratio =
        fuzzer.baseline().p99 > 0.0 ? o.p99 / fuzzer.baseline().p99 : 0.0;
    std::printf("  %-14s fitness %7.2f  p99 %8.3fs (%5.1fx)  degraded %.3f  "
                "shed %.3f\n",
                survivor.scenario.name.c_str(), survivor.fitness, o.p99,
                p99_ratio, o.degraded_fraction, o.shed_fraction);
    std::printf("    coverage:");
    for (const std::string& name : fuzz::coverage_names(o.coverage)) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }

  if (!opt->corpus_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(opt->corpus_dir);
    for (const fuzz::Survivor& survivor : fuzzer.survivors()) {
      const fs::path path =
          fs::path(opt->corpus_dir) / (survivor.scenario.name + ".json");
      std::ofstream out(path);
      out << fuzz::to_json(survivor.scenario) << '\n';
      if (!out.good()) {
        std::fprintf(stderr, "fuzz_hunter: failed to write %s\n",
                     path.string().c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.string().c_str());
    }
  }

  if (!stats.violations.empty()) {
    std::fprintf(stderr, "\nINVARIANT VIOLATIONS (%zu):\n",
                 stats.violations.size());
    for (const std::string& violation : stats.violations) {
      std::fprintf(stderr, "  %s\n", violation.c_str());
    }
    return 1;
  }
  std::printf("\nno invariant violations.\n");
  return 0;
}
