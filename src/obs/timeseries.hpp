#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace qadist::obs {

/// Fixed-width windowing of one run's trace into a time series.
struct TimeseriesConfig {
  double window_seconds = 1.0;  ///< simulated-time width of each window
};

/// Per-node utilization within one window: the mean of the monitor's
/// cpu_util/disk_util counter samples that fell inside it.
struct NodeUtilization {
  std::uint32_t node = 0;
  double cpu_util = 0.0;
  double disk_util = 0.0;
  std::size_t samples = 0;  ///< cpu samples (disk sampling is paired)
};

/// One pipeline stage's durations within a window (spans keyed by end
/// time). Stable schema: all five stages appear in every window, count 0
/// when none ended there — drift detection needs aligned series.
struct StageWindowStat {
  std::string stage;
  std::size_t count = 0;
  double mean_seconds = 0.0;
};

/// One simulated-time window's rollup.
struct TimeWindow {
  double start = 0.0;
  double end = 0.0;

  // Questions whose lifetime span *ended* in this window.
  std::size_t completed = 0;
  double qps = 0.0;
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  std::size_t cached = 0;
  std::size_t degraded = 0;

  // Admission outcomes (instants with kind admission_shed / _reject /
  // _degrade) that happened in this window.
  std::size_t shed = 0;
  std::size_t rejected = 0;
  std::size_t admission_degraded = 0;

  /// degraded / completed; 0 when nothing completed.
  double degraded_fraction = 0.0;
  /// (shed + rejected) / (completed + shed + rejected).
  double shed_fraction = 0.0;

  std::vector<NodeUtilization> nodes;    ///< sorted by node id
  std::vector<StageWindowStat> stages;   ///< QP, PR, PS, PO, AP in order
};

/// Rolls the tracer's spans, instants, and counter samples into
/// fixed-width windows covering [0, last event]. Every window in the range
/// is emitted (idle ones with zero counts), so consumers can difference
/// adjacent windows without gap handling.
[[nodiscard]] std::vector<TimeWindow> rollup(
    const Tracer& tracer, const TimeseriesConfig& config = {});

/// One JSON object per window (schema "qadist-timeseries-v1" stamped on
/// each line), the machine-readable twin of the Chrome-trace export.
void write_timeseries_jsonl(const std::vector<TimeWindow>& windows,
                            std::ostream& os);

/// File convenience; false (with a stderr note) on I/O failure.
bool export_timeseries_jsonl_file(const std::vector<TimeWindow>& windows,
                                  const std::string& path);

}  // namespace qadist::obs
