#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace qadist::obs {

namespace {

void write_attr_value(std::ostream& os, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    json_number(os, *d);
  } else {
    json_string(os, std::get<std::string>(v));
  }
}

void write_attrs(std::ostream& os, const Attrs& attrs) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : attrs) {
    if (!first) os << ",";
    first = false;
    json_string(os, k);
    os << ":";
    write_attr_value(os, v);
  }
  os << "}";
}

/// One rendered event plus its sort key. Exporters render first, then
/// stable-sort by time, so out-of-order recording (coordinator-side
/// recovery events) cannot produce a time-warped file.
struct Rendered {
  Seconds time;
  std::string json;
};

void emit_sorted(std::vector<Rendered>& events, std::ostream& os,
                 std::string_view sep) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Rendered& a, const Rendered& b) {
                     return a.time < b.time;
                   });
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << sep;
    first = false;
    os << e.json;
  }
}

}  // namespace

void write_jsonl(const Tracer& tracer, std::ostream& os) {
  std::vector<Rendered> events;
  events.reserve(tracer.spans().size() + tracer.instants().size() +
                 tracer.counter_samples().size());
  for (const auto& s : tracer.spans()) {
    std::ostringstream line;
    line << "{\"type\":\"span\",\"name\":";
    json_string(line, s.name);
    line << ",\"id\":" << s.id << ",\"parent\":" << s.parent
         << ",\"node\":" << s.node << ",\"track\":" << s.track
         << ",\"start\":";
    json_number(line, s.start);
    line << ",\"end\":";
    json_number(line, s.closed ? s.end : s.start);
    line << ",\"closed\":" << (s.closed ? "true" : "false") << ",\"attrs\":";
    write_attrs(line, s.attrs);
    line << "}";
    events.push_back(Rendered{s.start, line.str()});
  }
  for (const auto& i : tracer.instants()) {
    std::ostringstream line;
    line << "{\"type\":\"instant\",\"text\":";
    json_string(line, i.text);
    line << ",\"node\":" << i.node << ",\"time\":";
    json_number(line, i.time);
    line << ",\"attrs\":";
    write_attrs(line, i.attrs);
    line << "}";
    events.push_back(Rendered{i.time, line.str()});
  }
  for (const auto& c : tracer.counter_samples()) {
    std::ostringstream line;
    line << "{\"type\":\"counter\",\"name\":";
    json_string(line, c.name);
    line << ",\"node\":" << c.node << ",\"time\":";
    json_number(line, c.time);
    line << ",\"value\":";
    json_number(line, c.value);
    line << "}";
    events.push_back(Rendered{c.time, line.str()});
  }
  emit_sorted(events, os, "\n");
  if (!events.empty()) os << "\n";
}

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  constexpr double kMicros = 1e6;  // simulated seconds -> trace µs
  std::vector<Rendered> events;

  // Which nodes appear at all (for process_name metadata).
  std::vector<std::uint32_t> nodes;
  const auto note_node = [&nodes](std::uint32_t node) {
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  };

  for (const auto& s : tracer.spans()) {
    if (!s.closed) continue;  // an open span has no duration to draw
    note_node(s.node);
    std::ostringstream ev;
    ev << "{\"ph\":\"X\",\"name\":";
    json_string(ev, s.name);
    ev << ",\"cat\":\"span\",\"pid\":" << (s.node + 1)
       << ",\"tid\":" << s.track << ",\"ts\":";
    json_number(ev, s.start * kMicros);
    ev << ",\"dur\":";
    json_number(ev, (s.end - s.start) * kMicros);
    ev << ",\"args\":";
    write_attrs(ev, s.attrs);
    ev << "}";
    events.push_back(Rendered{s.start, ev.str()});
  }
  for (const auto& i : tracer.instants()) {
    note_node(i.node);
    std::ostringstream ev;
    ev << "{\"ph\":\"i\",\"name\":";
    json_string(ev, i.text);
    ev << ",\"cat\":\"event\",\"pid\":" << (i.node + 1)
       << ",\"tid\":0,\"s\":\"t\",\"ts\":";
    json_number(ev, i.time * kMicros);
    ev << ",\"args\":";
    write_attrs(ev, i.attrs);
    ev << "}";
    events.push_back(Rendered{i.time, ev.str()});
  }
  for (const auto& c : tracer.counter_samples()) {
    note_node(c.node);
    std::ostringstream ev;
    ev << "{\"ph\":\"C\",\"name\":";
    json_string(ev, c.name);
    ev << ",\"pid\":" << (c.node + 1) << ",\"tid\":0,\"ts\":";
    json_number(ev, c.time * kMicros);
    ev << ",\"args\":{\"value\":";
    json_number(ev, c.value);
    ev << "}}";
    events.push_back(Rendered{c.time, ev.str()});
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::sort(nodes.begin(), nodes.end());
  bool first = true;
  for (const std::uint32_t node : nodes) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << (node + 1)
       << ",\"args\":{\"name\":\"N" << (node + 1) << "\"}}";
  }
  if (!events.empty() && !first) os << ",";
  emit_sorted(events, os, ",");
  os << "]}";
}

void write_metrics_json(const MetricsRegistry& registry, std::ostream& os) {
  os << registry.to_json();
}

namespace {

template <typename WriteFn>
bool export_file(const std::string& path, WriteFn&& write) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  write(out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool export_jsonl_file(const Tracer& tracer, const std::string& path) {
  return export_file(path,
                     [&](std::ostream& os) { write_jsonl(tracer, os); });
}

bool export_chrome_trace_file(const Tracer& tracer,
                              const std::string& path) {
  return export_file(
      path, [&](std::ostream& os) { write_chrome_trace(tracer, os); });
}

}  // namespace qadist::obs
