#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace qadist::obs {

/// Per-module service seconds of one question (the paper's Table 8 axis,
/// recovered from the span tree instead of the registry histograms).
struct ServiceBreakdown {
  double cache_lookup = 0.0;
  double qp = 0.0;
  double pr = 0.0;  ///< retrieval work on the critical PR leg (CPU + disk)
  double ps = 0.0;  ///< scoring sub-spans of the critical PR leg
  double po = 0.0;
  double ap = 0.0;
  double other = 0.0;  ///< unrecognized stage spans (forward compatibility)

  [[nodiscard]] double total() const {
    return cache_lookup + qp + pr + ps + po + ap + other;
  }
};

/// One leg on a question's critical path: the last-finishing leg of a
/// fork-join stage — the one that set the stage's (and thus the
/// question's) latency.
struct CriticalLeg {
  std::string stage;       ///< "PR" or "AP"
  std::uint32_t node = 0;  ///< node the leg ran on
  double seconds = 0.0;    ///< leg interval (service + network + backoff)
};

/// Exact decomposition of one traced question's end-to-end latency.
/// By construction the five components always sum to `total`:
///
///   total = queue + service.total() + network + retry + merge
///
/// * queue   — admission-queue wait before the question started executing
///             (latency_seconds minus the question span's duration).
/// * service — per-module compute/disk time on the critical path. For the
///             fork-join PR/AP stages this is the *critical leg* (the one
///             that finished last), not the mean over legs.
/// * network — time with frames on the wire: dispatch migration (the lead
///             gap before the first stage) plus the critical legs'
///             `net_seconds`.
/// * retry   — time lost to failures: ship() retry backoff on the critical
///             legs, recovery-leg spawn delay after a liveness sweep, and
///             crash-detection waits between restart attempts.
/// * merge   — gather/merge tails: stage time after the critical leg ended
///             (partial merges, supervision slack) plus the final answer
///             merging + sorting after AP.
struct QuestionBreakdown {
  std::int64_t question = -1;  ///< plan id from the span's begin attrs
  double total = 0.0;          ///< end-to-end latency (incl. queue wait)
  double queue = 0.0;
  double network = 0.0;
  double retry = 0.0;
  double merge = 0.0;
  ServiceBreakdown service;
  std::vector<CriticalLeg> critical_legs;
  std::int64_t restarts = 0;
  bool cached = false;
  bool degraded = false;
  /// Fork-join stages whose critical leg was a hedged backup — the backup
  /// beat the primary AND decided the stage latency (a hedge that paid).
  std::int64_t hedge_wins = 0;
  /// Seconds burned by hedge losers (primary or backup legs abandoned when
  /// their twin reported first). Wasted work, not a latency component:
  /// losers overlap the winner, so they never extend the stage interval
  /// and stay out of component_sum().
  double hedge_wasted = 0.0;

  /// Component sum; equals `total` up to floating-point round-off.
  [[nodiscard]] double component_sum() const {
    return queue + service.total() + network + retry + merge;
  }
};

/// Run-level aggregate: component sums over every analyzed question, so
/// `share(x)` is the blame share — the fraction of all question-seconds
/// the component is responsible for.
struct RunAttribution {
  std::size_t questions = 0;
  double total = 0.0;
  double queue = 0.0;
  double network = 0.0;
  double retry = 0.0;
  double merge = 0.0;
  ServiceBreakdown service;
  std::size_t cached = 0;
  std::size_t degraded = 0;
  std::size_t hedge_wins = 0;   ///< stages decided by a hedged backup
  double hedge_wasted = 0.0;    ///< seconds burned by abandoned hedge losers
  /// critical_leg_counts[node] = how many fork-join stages this node's leg
  /// decided — the "which node makes questions slow" histogram.
  std::vector<std::size_t> critical_leg_counts;

  [[nodiscard]] double share(double component) const {
    return total > 0.0 ? component / total : 0.0;
  }
};

/// Walks every closed "question" span in the tracer and decomposes it.
/// Questions served at admission time (shed/degraded arrivals) have no
/// span and therefore no breakdown; open spans are skipped.
[[nodiscard]] std::vector<QuestionBreakdown> analyze_questions(
    const Tracer& tracer);

/// Folds per-question breakdowns into run totals and blame shares.
[[nodiscard]] RunAttribution attribute_run(
    const std::vector<QuestionBreakdown>& questions);

/// Convenience: analyze_questions + attribute_run.
[[nodiscard]] RunAttribution attribute_run(const Tracer& tracer);

/// Human-readable blame-share table (component, seconds, share of total).
[[nodiscard]] std::string render_attribution(const RunAttribution& run);

}  // namespace qadist::obs
