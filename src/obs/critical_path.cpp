#include "obs/critical_path.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/table.hpp"

namespace qadist::obs {
namespace {

using ChildIndex =
    std::unordered_map<SpanId, std::vector<const SpanRecord*>>;

/// Closed spans grouped by parent, each group in (start, id) order —
/// the order the coordinator emitted them.
ChildIndex index_children(const Tracer& tracer) {
  ChildIndex index;
  for (const SpanRecord& span : tracer.spans()) {
    if (!span.closed || span.parent == kNoSpan) continue;
    index[span.parent].push_back(&span);
  }
  for (auto& [parent, children] : index) {
    std::sort(children.begin(), children.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start != b->start ? a->start < b->start
                                            : a->id < b->id;
              });
  }
  return index;
}

double duration(const SpanRecord& span) { return span.end - span.start; }

/// The child that gated a fork-join interval: the one that finished last.
/// Hedge losers are abandoned when their twin reports first; their spans
/// close at resolution time (after the winner's report landed), so taking
/// one as the critical leg would blame a leg that never gated the stage.
/// Their burned time is tallied as waste instead.
const SpanRecord* critical_child(const std::vector<const SpanRecord*>& legs,
                                 QuestionBreakdown& out) {
  const SpanRecord* crit = nullptr;
  for (const SpanRecord* leg : legs) {
    if (attr_int(leg->attrs, "hedge_loser").value_or(0) != 0) {
      out.hedge_wasted += duration(*leg);
      continue;
    }
    if (crit == nullptr || leg->end > crit->end ||
        (leg->end == crit->end && leg->start > crit->start)) {
      crit = leg;
    }
  }
  return crit;
}

/// Splits one worker leg's interval into wire time, retry backoff, scoring
/// sub-spans, and the module's own service remainder.
void attribute_leg(const std::string& stage_name, const SpanRecord& leg,
                   const ChildIndex& index, double& module_service,
                   QuestionBreakdown& out) {
  const double net = attr_double(leg.attrs, "net_seconds").value_or(0.0);
  const double backoff =
      attr_double(leg.attrs, "backoff_seconds").value_or(0.0);
  double ps = 0.0;
  if (const auto sub_it = index.find(leg.id); sub_it != index.end()) {
    for (const SpanRecord* sub : sub_it->second) {
      if (sub->name == "PS") ps += duration(*sub);
    }
  }
  out.network += net;
  out.retry += backoff;
  out.service.ps += ps;
  module_service += duration(leg) - net - backoff - ps;
  out.critical_legs.push_back(CriticalLeg{stage_name, leg.node, duration(leg)});
}

/// Fork-join stage (PR/AP): the critical leg — the one that finished last
/// — sets the stage interval. Time before it started is recovery spawn
/// delay (retry); time after it ended is gather/merge tail (merge); the
/// leg itself splits into wire time, retry backoff, scoring sub-spans, and
/// the module's own service remainder.
void decompose_stage(const SpanRecord& stage, const ChildIndex& index,
                     double& module_service, QuestionBreakdown& out) {
  const auto legs_it = index.find(stage.id);
  if (legs_it == index.end() || legs_it->second.empty()) {
    // No legs ran (e.g. every unit was unplaced): the whole interval is
    // coordinator supervision.
    out.merge += duration(stage);
    return;
  }
  const SpanRecord* crit = critical_child(legs_it->second, out);
  if (crit == nullptr) {
    // Every leg lost its race — cannot happen (winners are never
    // abandoned), but degrade to supervision time rather than crash.
    out.merge += duration(stage);
    return;
  }
  if (attr_int(crit->attrs, "hedge").value_or(0) != 0) ++out.hedge_wins;
  out.retry += std::max(0.0, crit->start - stage.start);
  out.merge += std::max(0.0, stage.end - crit->end);
  if (crit->name == "PR broker") {
    // Broker tier: the stage's legs are broker spans, whose own children
    // are the real worker legs. Recurse one level so the telescoping stays
    // exact: the broker's interval before its critical inner leg is
    // fan-out (keyword ship + routing — network), the interval after it is
    // fan-in (partial merges + the aggregate ship back — merge), and the
    // inner leg splits as usual. The broker span's own net/backoff attrs
    // stay informational: billing them here would double-count wall time
    // the two gaps already cover.
    const auto inner_it = index.find(crit->id);
    const SpanRecord* inner =
        inner_it != index.end() ? critical_child(inner_it->second, out)
                                : nullptr;
    if (inner == nullptr) {
      // The broker served nothing (all units unplaced or dropped): its
      // whole interval is supervision.
      out.merge += duration(*crit);
      out.critical_legs.push_back(
          CriticalLeg{stage.name, crit->node, duration(*crit)});
      return;
    }
    out.network += std::max(0.0, inner->start - crit->start);
    out.merge += std::max(0.0, crit->end - inner->end);
    attribute_leg(stage.name, *inner, index, module_service, out);
    return;
  }
  attribute_leg(stage.name, *crit, index, module_service, out);
}

QuestionBreakdown analyze_question(const SpanRecord& q,
                                   const ChildIndex& index) {
  QuestionBreakdown out;
  out.question = attr_int(q.attrs, "question").value_or(-1);
  out.restarts = attr_int(q.attrs, "restarts").value_or(0);
  out.cached = attr_int(q.attrs, "cached").value_or(0) != 0;
  out.degraded = attr_int(q.attrs, "degraded").value_or(0) != 0;
  const double span_duration = duration(q);
  out.total = attr_double(q.attrs, "latency_seconds").value_or(span_duration);
  // Latency counts from arrival, the span from execution start: the
  // difference is the admission-queue wait.
  out.queue = out.total - span_duration;

  double cursor = q.start;
  bool first = true;
  const auto children_it = index.find(q.id);
  if (children_it != index.end()) {
    for (const SpanRecord* child : children_it->second) {
      const double gap = std::max(0.0, child->start - cursor);
      if (first) {
        // Before any stage ran, the only thing that takes time is moving
        // the question to its host (dispatch migration).
        out.network += gap;
      } else {
        // Between stages nothing waits on a healthy run; a gap here is the
        // crash-detection delay before a restarted attempt (plus the work
        // the dead attempt burned).
        out.retry += gap;
      }
      first = false;
      if (child->name == "cache lookup") {
        out.service.cache_lookup += duration(*child);
      } else if (child->name == "QP") {
        out.service.qp += duration(*child);
      } else if (child->name == "PO") {
        out.service.po += duration(*child);
      } else if (child->name == "PR") {
        decompose_stage(*child, index, out.service.pr, out);
      } else if (child->name == "AP") {
        decompose_stage(*child, index, out.service.ap, out);
      } else {
        out.service.other += duration(*child);
      }
      cursor = std::max(cursor, child->end);
    }
  }
  // After the last stage the host merges and sorts the answers (no span of
  // its own — it is the question span's tail).
  out.merge += std::max(0.0, q.end - cursor);
  return out;
}

}  // namespace

std::vector<QuestionBreakdown> analyze_questions(const Tracer& tracer) {
  const ChildIndex index = index_children(tracer);
  std::vector<QuestionBreakdown> out;
  for (const SpanRecord& span : tracer.spans()) {
    if (!span.closed || span.name != "question") continue;
    out.push_back(analyze_question(span, index));
  }
  return out;
}

RunAttribution attribute_run(
    const std::vector<QuestionBreakdown>& questions) {
  RunAttribution run;
  for (const QuestionBreakdown& q : questions) {
    ++run.questions;
    run.total += q.total;
    run.queue += q.queue;
    run.network += q.network;
    run.retry += q.retry;
    run.merge += q.merge;
    run.service.cache_lookup += q.service.cache_lookup;
    run.service.qp += q.service.qp;
    run.service.pr += q.service.pr;
    run.service.ps += q.service.ps;
    run.service.po += q.service.po;
    run.service.ap += q.service.ap;
    run.service.other += q.service.other;
    if (q.cached) ++run.cached;
    if (q.degraded) ++run.degraded;
    run.hedge_wins += static_cast<std::size_t>(q.hedge_wins);
    run.hedge_wasted += q.hedge_wasted;
    for (const CriticalLeg& leg : q.critical_legs) {
      if (leg.node >= run.critical_leg_counts.size()) {
        run.critical_leg_counts.resize(leg.node + 1, 0);
      }
      ++run.critical_leg_counts[leg.node];
    }
  }
  return run;
}

RunAttribution attribute_run(const Tracer& tracer) {
  return attribute_run(analyze_questions(tracer));
}

std::string render_attribution(const RunAttribution& run) {
  TextTable table({"Component", "Seconds", "Blame share"});
  const auto row = [&](const char* name, double seconds) {
    table.add_row({name, cell(seconds, 3), cell_percent(run.share(seconds))});
  };
  row("queue wait", run.queue);
  row("service QP", run.service.qp);
  row("service PR", run.service.pr);
  row("service PS", run.service.ps);
  row("service PO", run.service.po);
  row("service AP", run.service.ap);
  if (run.service.cache_lookup > 0.0) {
    row("service cache lookup", run.service.cache_lookup);
  }
  if (run.service.other > 0.0) row("service (other)", run.service.other);
  row("network transfer", run.network);
  row("retry + backoff", run.retry);
  row("merge + gather", run.merge);
  table.add_separator();
  row("total", run.total);

  std::ostringstream os;
  os << table.render();
  os << run.questions << " questions (" << run.cached << " cached, "
     << run.degraded << " degraded)\n";
  if (run.hedge_wins > 0 || run.hedge_wasted > 0.0) {
    os << "hedging: " << run.hedge_wins
       << " stages decided by a backup leg, "
       << cell(run.hedge_wasted, 3) << " s of loser work abandoned\n";
  }
  if (!run.critical_leg_counts.empty()) {
    os << "critical fork-join legs per node:";
    for (std::size_t n = 0; n < run.critical_leg_counts.size(); ++n) {
      os << " N" << (n + 1) << "=" << run.critical_leg_counts[n];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace qadist::obs
