#pragma once

#include <iosfwd>
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace qadist::obs {

/// JSON-lines event log: one JSON object per line, every span / instant /
/// counter sample of the run, sorted by time. Each line carries a "type"
/// discriminator ("span", "instant", "counter") — grep-able and trivially
/// ingestible by anything that reads NDJSON.
void write_jsonl(const Tracer& tracer, std::ostream& os);

/// Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
/// wrapper), loadable in Perfetto / chrome://tracing. Mapping:
///   * cluster nodes  -> processes (pid = node + 1, named "N<k>"),
///   * span tracks    -> threads   (tid = track; question + leg timelines),
///   * closed spans   -> complete events (ph "X"),
///   * instant events -> instants  (ph "i") on the node's track 0,
///   * counter samples-> counters  (ph "C"; CPU/disk utilization timeline).
/// Timestamps are simulated seconds scaled to microseconds; events are
/// emitted in non-decreasing ts order.
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

/// The registry snapshot as one JSON object (see MetricsRegistry::to_json).
void write_metrics_json(const MetricsRegistry& registry, std::ostream& os);

/// File-writing conveniences; return false (and log to stderr) on I/O
/// failure instead of throwing — observability must never kill a run.
bool export_jsonl_file(const Tracer& tracer, const std::string& path);
bool export_chrome_trace_file(const Tracer& tracer, const std::string& path);

}  // namespace qadist::obs
