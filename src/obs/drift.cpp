#include "obs/drift.hpp"

#include <map>
#include <sstream>
#include <string_view>

#include "common/table.hpp"

namespace qadist::obs {
namespace {

/// Judges one stage's measured mean against its prediction.
StageDrift judge(const std::string& stage, double predicted, double measured,
                 std::size_t samples, const DriftConfig& config) {
  StageDrift d;
  d.stage = stage;
  d.predicted_seconds = predicted;
  d.measured_seconds = measured;
  d.samples = samples;
  d.judged = samples >= config.min_samples && predicted > 0.0;
  if (d.judged) {
    d.ratio = measured / predicted;
    d.flagged = d.ratio > 1.0 + config.slow_tolerance ||
                d.ratio < 1.0 / (1.0 + config.fast_tolerance);
  }
  return d;
}

}  // namespace

DriftReport detect_drift(const std::vector<TimeWindow>& windows,
                         const model::StagePrediction& predicted,
                         const DriftConfig& config) {
  DriftReport report;
  report.config = config;

  struct Accumulated {
    double predicted = 0.0;
    double sum = 0.0;  // sample-weighted seconds
    std::size_t samples = 0;
  };
  std::map<std::string, Accumulated> totals;  // keyed to keep stage order stable
  std::vector<std::string> order;

  for (const TimeWindow& window : windows) {
    WindowDrift wd;
    wd.start = window.start;
    wd.end = window.end;
    for (const StageWindowStat& stat : window.stages) {
      const auto expectation = predicted.stage(stat.stage);
      if (!expectation.has_value()) continue;
      wd.stages.push_back(judge(stat.stage, *expectation, stat.mean_seconds,
                                stat.count, config));
      wd.flagged = wd.flagged || wd.stages.back().flagged;
      auto [it, inserted] = totals.try_emplace(stat.stage);
      if (inserted) order.push_back(stat.stage);
      it->second.predicted = *expectation;
      it->second.sum +=
          stat.mean_seconds * static_cast<double>(stat.count);
      it->second.samples += stat.count;
    }
    if (wd.flagged && report.first_flagged_window < 0) {
      report.first_flagged_window =
          static_cast<std::ptrdiff_t>(report.windows.size());
    }
    report.flagged = report.flagged || wd.flagged;
    report.windows.push_back(std::move(wd));
  }

  for (const std::string& stage : order) {
    const Accumulated& acc = totals.at(stage);
    const double mean =
        acc.samples > 0 ? acc.sum / static_cast<double>(acc.samples) : 0.0;
    report.overall.push_back(
        judge(stage, acc.predicted, mean, acc.samples, config));
  }
  return report;
}

model::StagePrediction calibrate_prediction(
    const std::vector<TimeWindow>& reference,
    const model::StagePrediction& predicted, const DriftConfig& config) {
  const DriftReport ref = detect_drift(reference, predicted, config);
  model::StagePrediction out = predicted;
  const auto apply = [&ref](std::string_view stage, double& field) {
    for (const StageDrift& d : ref.overall) {
      if (d.stage == stage && d.judged && d.ratio > 0.0) field *= d.ratio;
    }
  };
  apply("QP", out.qp);
  apply("PR", out.pr);
  apply("PS", out.ps);
  apply("PO", out.po);
  apply("AP", out.ap);
  return out;
}

void publish_drift(const DriftReport& report, MetricsRegistry& registry) {
  std::size_t flagged_windows = 0;
  for (const WindowDrift& wd : report.windows) {
    if (wd.flagged) ++flagged_windows;
  }
  for (const StageDrift& d : report.overall) {
    const Labels labels = {{"stage", d.stage}};
    registry.gauge("model_drift_ratio", labels).set(d.ratio);
    registry.gauge("model_drift_predicted_seconds", labels)
        .set(d.predicted_seconds);
    registry.gauge("model_drift_measured_seconds", labels)
        .set(d.measured_seconds);
  }
  registry.gauge("model_drift_flagged").set(report.flagged ? 1.0 : 0.0);
  registry.gauge("model_drift_flagged_windows")
      .set(static_cast<double>(flagged_windows));
}

std::string render_drift(const DriftReport& report) {
  TextTable table({"Stage", "Predicted", "Measured", "Ratio", "Verdict"});
  for (const StageDrift& d : report.overall) {
    table.add_row({d.stage, cell(d.predicted_seconds, 4),
                   cell(d.measured_seconds, 4),
                   d.judged ? cell(d.ratio, 2) : "-",
                   !d.judged ? "(too few samples)"
                             : (d.flagged ? "DRIFT" : "ok")});
  }
  std::ostringstream os;
  os << table.render();
  if (report.flagged) {
    const WindowDrift& first =
        report.windows[static_cast<std::size_t>(report.first_flagged_window)];
    os << "drift verdict: FLAGGED — first drifting window [" << first.start
       << ", " << first.end << ")s\n";
  } else {
    os << "drift verdict: ok — no stage exceeded its prediction by "
       << cell_percent(report.config.slow_tolerance) << " in any of "
       << report.windows.size() << " windows\n";
  }
  return os.str();
}

}  // namespace qadist::obs
