#pragma once

// Minimal recursive-descent JSON parser. Grew up as the test suite's
// mini_json helper; promoted into src/ when the fuzz subsystem needed to
// load serialized scenarios back (tests/support/mini_json.hpp now forwards
// here). Strict where it matters for validity (balanced structure, string
// escapes, numbers via strtod); not a streaming production parser — inputs
// are scenario files and bench reports, a few KB each.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qadist::obs {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member or null-kind value when absent / not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    if (!is_object()) return kNullValue;
    const auto it = object->find(key);
    return it != object->end() ? it->second : kNullValue;
  }
  [[nodiscard]] const JsonArray& items() const {
    static const JsonArray kEmpty;
    return is_array() ? *array : kEmpty;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses one complete JSON value; nullopt on any syntax error or
  /// trailing garbage.
  std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> string_token() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            const std::string hex(text_.substr(pos_, 4));
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return std::nullopt;
            pos_ += 4;
            // Only ASCII escapes are produced in-tree; keep it byte-sized.
            out.push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue v;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      v.object = std::make_shared<JsonObject>();
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        auto key = string_token();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        auto member = value();
        if (!member.has_value()) return std::nullopt;
        (*v.object)[*key] = std::move(*member);
        if (consume(',')) continue;
        if (consume('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      v.array = std::make_shared<JsonArray>();
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        auto item = value();
        if (!item.has_value()) return std::nullopt;
        v.array->push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string_token();
      if (!s.has_value()) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (literal("null")) return v;
    // Number.
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double num = std::strtod(start, &end);
    if (end == start) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - start);
    v.kind = JsonValue::Kind::kNumber;
    v.number = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace qadist::obs
