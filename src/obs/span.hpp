#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/units.hpp"

namespace qadist::obs {

/// Attribute value on a span or event. Integers stay integers in the JSON
/// output (question ids, byte counts); doubles are for measured times.
using AttrValue = std::variant<std::int64_t, double, std::string>;
using Attrs = std::vector<std::pair<std::string, AttrValue>>;

/// Typed attr lookup (first match). attr_double also accepts an integer
/// attr — consumers asking for a number should not care which arithmetic
/// alternative the producer picked.
[[nodiscard]] std::optional<double> attr_double(const Attrs& attrs,
                                                std::string_view key);
[[nodiscard]] std::optional<std::int64_t> attr_int(const Attrs& attrs,
                                                   std::string_view key);
[[nodiscard]] std::optional<std::string_view> attr_string(
    const Attrs& attrs, std::string_view key);

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Receiver for the human-readable rendering of instant events — the
/// bridge that keeps the Fig. 7 text trace and the JSON trace views of one
/// event stream (cluster::TraceRecorder implements this).
class TextSink {
 public:
  virtual ~TextSink() = default;
  virtual void on_text(Seconds time, std::uint32_t node,
                       const std::string& text) = 0;
};

/// One timed interval: a question's lifetime, a pipeline stage, a PR/AP
/// leg. `track` groups spans into sequential timelines (Perfetto threads);
/// spans on one track must nest, spans on different tracks may overlap.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::uint32_t node = 0;    ///< cluster node the work ran on (0-based)
  std::uint64_t track = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
  bool closed = false;
  Attrs attrs;
};

/// One point event (migration, crash, recovery, ...).
struct InstantRecord {
  Seconds time = 0.0;
  std::uint32_t node = 0;
  std::string text;
  Attrs attrs;
};

/// One sample of a per-node time series (CPU/disk utilization timeline).
struct CounterSample {
  Seconds time = 0.0;
  std::uint32_t node = 0;
  std::string name;
  double value = 0.0;
};

/// Collects the question-lifecycle event stream of one simulation run, at
/// simulated time. Purely an in-memory recorder: exporters (obs/export.hpp)
/// turn it into JSON-lines or Chrome trace-event files after the run.
///
/// Not thread-safe — a Simulation is single-threaded by design and the
/// tracer lives beside it.
class Tracer {
 public:
  /// Opens a span. `track` orders the span among its siblings (allocate
  /// per-timeline tracks with new_track()); `parent` nests it.
  SpanId begin_span(Seconds start, std::string name, std::uint32_t node,
                    std::uint64_t track, SpanId parent = kNoSpan,
                    Attrs attrs = {});

  /// Closes a span; `extra` attrs (byte counts, unit counts measured while
  /// the span ran) are appended. end >= start enforced.
  void end_span(SpanId id, Seconds end, Attrs extra = {});

  /// Records a point event and forwards its text to the attached TextSink
  /// (the Fig. 7 rendering), so both views come from this one call.
  void instant(Seconds time, std::uint32_t node, std::string text,
               Attrs attrs = {});

  /// Appends one sample to the per-node `name` time series.
  void counter_sample(Seconds time, std::uint32_t node, std::string name,
                      double value);

  /// Allocates a fresh track id (tracks are never reused).
  std::uint64_t new_track() { return next_track_++; }

  void set_text_sink(TextSink* sink) { text_sink_ = sink; }
  [[nodiscard]] TextSink* text_sink() const { return text_sink_; }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::vector<InstantRecord>& instants() const {
    return instants_;
  }
  [[nodiscard]] const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  [[nodiscard]] std::size_t open_spans() const { return open_spans_; }
  [[nodiscard]] bool empty() const {
    return spans_.empty() && instants_.empty() && counter_samples_.empty();
  }

  /// Spans named `name` (closed or not) — test/bench convenience.
  [[nodiscard]] std::size_t count_spans(std::string_view name) const;

 private:
  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
  std::vector<CounterSample> counter_samples_;
  SpanId next_id_ = 1;       // 0 is kNoSpan
  std::uint64_t next_track_ = 1;  // track 0 is the per-node event track
  std::size_t open_spans_ = 0;
  TextSink* text_sink_ = nullptr;
};

}  // namespace qadist::obs
