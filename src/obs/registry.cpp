#include "obs/registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace qadist::obs {

std::string_view to_string(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  QADIST_UNREACHABLE("bad InstrumentKind");
}

void Counter::inc(double delta) {
  QADIST_CHECK(delta >= 0.0, << "counter " << name_ << " decremented by "
                             << delta);
  value_ += delta;
}

std::string MetricsRegistry::register_key(std::string_view name,
                                          Labels& labels,
                                          InstrumentKind kind) {
  QADIST_CHECK(!name.empty(), << "instrument with empty name");
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i) {
    QADIST_CHECK(labels[i - 1].first != labels[i].first,
                 << "instrument " << name << ": duplicate label key '"
                 << labels[i].first << "'");
  }
  const auto [it, inserted] = kinds_.emplace(std::string(name), kind);
  QADIST_CHECK(inserted || it->second == kind,
               << "instrument '" << name << "' already registered as "
               << to_string(it->second) << ", re-registered as "
               << to_string(kind));
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  const std::string key =
      register_key(name, labels, InstrumentKind::kCounter);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return *static_cast<Counter*>(it->second);
  }
  Counter& c = counters_.emplace_back();
  c.name_ = std::string(name);
  c.labels_ = std::move(labels);
  by_key_.emplace(key, &c);
  return c;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  const std::string key = register_key(name, labels, InstrumentKind::kGauge);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return *static_cast<Gauge*>(it->second);
  }
  Gauge& g = gauges_.emplace_back();
  g.name_ = std::string(name);
  g.labels_ = std::move(labels);
  by_key_.emplace(key, &g);
  return g;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            Labels labels) {
  const std::string key =
      register_key(name, labels, InstrumentKind::kHistogram);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    return *static_cast<HistogramMetric*>(it->second);
  }
  HistogramMetric& h = histograms_.emplace_back();
  h.name_ = std::string(name);
  h.labels_ = std::move(labels);
  by_key_.emplace(key, &h);
  return h;
}

const void* MetricsRegistry::find(std::string_view name, Labels labels,
                                  InstrumentKind kind) const {
  const auto kit = kinds_.find(name);
  if (kit == kinds_.end() || kit->second != kind) return nullptr;
  std::sort(labels.begin(), labels.end());
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             Labels labels) const {
  return static_cast<const Counter*>(
      find(name, std::move(labels), InstrumentKind::kCounter));
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         Labels labels) const {
  return static_cast<const Gauge*>(
      find(name, std::move(labels), InstrumentKind::kGauge));
}

const HistogramMetric* MetricsRegistry::find_histogram(std::string_view name,
                                                       Labels labels) const {
  return static_cast<const HistogramMetric*>(
      find(name, std::move(labels), InstrumentKind::kHistogram));
}

namespace {

void write_labels(std::ostream& os, const Labels& labels) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    json_string(os, k);
    os << ":";
    json_string(os, v);
  }
  os << "}";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& c : counters_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_string(os, c.name());
    os << ",\"labels\":";
    write_labels(os, c.labels());
    os << ",\"value\":";
    json_number(os, c.value());
    os << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& g : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_string(os, g.name());
    os << ",\"labels\":";
    write_labels(os, g.labels());
    os << ",\"value\":";
    json_number(os, g.value());
    os << "}";
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& h : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_string(os, h.name());
    os << ",\"labels\":";
    write_labels(os, h.labels());
    // One sorted copy per histogram: the registry view is const, and the
    // const quantile path would otherwise copy the reservoir per quantile.
    Samples samples = h.samples();
    samples.sort();
    os << ",\"count\":" << h.count() << ",\"mean\":";
    json_number(os, h.stats().mean());
    os << ",\"p50\":";
    json_number(os, samples.quantile_or(0.5, 0.0));
    os << ",\"p95\":";
    json_number(os, samples.quantile_or(0.95, 0.0));
    os << ",\"min\":";
    json_number(os, h.stats().min());
    os << ",\"max\":";
    json_number(os, h.stats().max());
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace qadist::obs
