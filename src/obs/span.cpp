#include "obs/span.hpp"

#include "common/check.hpp"

namespace qadist::obs {

std::optional<double> attr_double(const Attrs& attrs, std::string_view key) {
  for (const auto& [k, v] : attrs) {
    if (k != key) continue;
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
  }
  return std::nullopt;
}

std::optional<std::int64_t> attr_int(const Attrs& attrs,
                                     std::string_view key) {
  for (const auto& [k, v] : attrs) {
    if (k != key) continue;
    if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  }
  return std::nullopt;
}

std::optional<std::string_view> attr_string(const Attrs& attrs,
                                            std::string_view key) {
  for (const auto& [k, v] : attrs) {
    if (k != key) continue;
    if (const auto* s = std::get_if<std::string>(&v)) {
      return std::string_view(*s);
    }
  }
  return std::nullopt;
}

SpanId Tracer::begin_span(Seconds start, std::string name,
                          std::uint32_t node, std::uint64_t track,
                          SpanId parent, Attrs attrs) {
  QADIST_CHECK(parent < next_id_, << "span parent " << parent
                                  << " does not exist");
  SpanRecord span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::move(name);
  span.node = node;
  span.track = track;
  span.start = start;
  span.attrs = std::move(attrs);
  spans_.push_back(std::move(span));
  ++open_spans_;
  return spans_.back().id;
}

void Tracer::end_span(SpanId id, Seconds end, Attrs extra) {
  QADIST_CHECK(id != kNoSpan && id < next_id_, << "ending unknown span "
                                               << id);
  // Ids are dense and allocated in order: spans_[id - 1] is span `id`.
  SpanRecord& span = spans_[id - 1];
  QADIST_CHECK(!span.closed, << "span '" << span.name << "' ended twice");
  QADIST_CHECK(end >= span.start, << "span '" << span.name << "' ends at "
                                  << end << " before its start "
                                  << span.start);
  span.end = end;
  span.closed = true;
  for (auto& kv : extra) span.attrs.push_back(std::move(kv));
  --open_spans_;
}

void Tracer::instant(Seconds time, std::uint32_t node, std::string text,
                     Attrs attrs) {
  if (text_sink_ != nullptr) text_sink_->on_text(time, node, text);
  InstantRecord rec;
  rec.time = time;
  rec.node = node;
  rec.text = std::move(text);
  rec.attrs = std::move(attrs);
  instants_.push_back(std::move(rec));
}

void Tracer::counter_sample(Seconds time, std::uint32_t node,
                            std::string name, double value) {
  counter_samples_.push_back(
      CounterSample{time, node, std::move(name), value});
}

std::size_t Tracer::count_spans(std::string_view name) const {
  std::size_t count = 0;
  for (const auto& s : spans_) {
    if (s.name == name) ++count;
  }
  return count;
}

}  // namespace qadist::obs
