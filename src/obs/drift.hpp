#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/predictions.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace qadist::obs {

/// Model-drift detection knobs. The tolerances are deliberately wide and
/// asymmetric: the analytical model is a first-order twin (Table 10 shows
/// it ~30% optimistic at 12 nodes) and small windows inherit the question
/// mix's size variance, so the monitor hunts for *drift* — a stage
/// suddenly costing a multiple of its prediction — not for modelling
/// error. The slow side is the tight bound (that is the regression
/// direction); the fast side mostly catches broken measurement and is
/// far wider, since a window of small questions legitimately undershoots
/// a per-question-mean prediction.
struct DriftConfig {
  /// Flag a stage as slow when measured/predicted > 1 + slow_tolerance.
  double slow_tolerance = 0.9;
  /// Flag as (suspiciously) fast when ratio < 1 / (1 + fast_tolerance).
  double fast_tolerance = 3.0;
  /// Windows with fewer completed stage spans than this abstain (a single
  /// straggler in a near-empty window is noise, not drift).
  std::size_t min_samples = 2;
};

/// One stage's verdict, within one window or over the whole run.
struct StageDrift {
  std::string stage;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;  ///< mean over the windowed samples
  double ratio = 0.0;             ///< measured / predicted
  std::size_t samples = 0;
  bool judged = false;  ///< enough samples to compare at all
  bool flagged = false;
};

/// Per-window verdicts; flagged when any stage in the window is.
struct WindowDrift {
  double start = 0.0;
  double end = 0.0;
  std::vector<StageDrift> stages;
  bool flagged = false;
};

struct DriftReport {
  std::vector<WindowDrift> windows;
  std::vector<StageDrift> overall;  ///< run-wide aggregate per stage
  bool flagged = false;
  /// Index of the first flagged window, -1 when quiet — the "caught it
  /// within one window" latency of the detection.
  std::ptrdiff_t first_flagged_window = -1;
  DriftConfig config;
};

/// Compares each window's measured per-stage means against the analytical
/// prediction for the run's cluster size.
[[nodiscard]] DriftReport detect_drift(
    const std::vector<TimeWindow>& windows,
    const model::StagePrediction& predicted, const DriftConfig& config = {});

/// Scales each stage's prediction by the reference run's overall
/// measured/predicted ratio, folding the analytical model's systematic
/// error (Table 10's analytical-vs-measured gap) into the baseline. Drift
/// detection against the calibrated prediction then measures departure
/// from *known-healthy behavior*, not modelling error. Stages the
/// reference run cannot judge (too few samples) keep the raw prediction.
[[nodiscard]] model::StagePrediction calibrate_prediction(
    const std::vector<TimeWindow>& reference,
    const model::StagePrediction& predicted, const DriftConfig& config = {});

/// Publishes the run-wide verdict as gauges: model_drift_ratio{stage=...},
/// model_drift_predicted_seconds{stage=...}, model_drift_measured_seconds
/// {stage=...}, model_drift_flagged (0/1), model_drift_flagged_windows.
void publish_drift(const DriftReport& report, MetricsRegistry& registry);

/// Human-readable table of the run-wide verdict plus the flagged-window
/// summary line.
[[nodiscard]] std::string render_drift(const DriftReport& report);

}  // namespace qadist::obs
