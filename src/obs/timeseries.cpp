#include "obs/timeseries.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <ostream>

#include "common/stats.hpp"
#include "obs/json.hpp"

namespace qadist::obs {
namespace {

constexpr const char* kStages[] = {"QP", "PR", "PS", "PO", "AP"};

/// Window index of `time` given `count` windows of `width` seconds. The
/// run's final instant (time == count * width) folds into the last window
/// instead of opening a new one.
std::size_t window_of(Seconds time, double width, std::size_t count) {
  if (time <= 0.0) return 0;
  const auto idx = static_cast<std::size_t>(time / width);
  return std::min(idx, count - 1);
}

}  // namespace

std::vector<TimeWindow> rollup(const Tracer& tracer,
                               const TimeseriesConfig& config) {
  const double width = config.window_seconds > 0.0 ? config.window_seconds
                                                   : 1.0;
  Seconds horizon = 0.0;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.closed) horizon = std::max(horizon, s.end);
  }
  for (const InstantRecord& i : tracer.instants()) {
    horizon = std::max(horizon, i.time);
  }
  for (const CounterSample& c : tracer.counter_samples()) {
    horizon = std::max(horizon, c.time);
  }
  const auto count = static_cast<std::size_t>(horizon / width) + 1;

  std::vector<TimeWindow> windows(count);
  std::vector<Samples> latencies(count);
  // (window, node) -> running means; std::map keeps nodes ordered.
  std::vector<std::map<std::uint32_t, RunningStats>> cpu(count);
  std::vector<std::map<std::uint32_t, RunningStats>> disk(count);
  std::vector<std::array<RunningStats, std::size(kStages)>> stages(count);

  for (std::size_t w = 0; w < count; ++w) {
    windows[w].start = static_cast<double>(w) * width;
    windows[w].end = windows[w].start + width;
  }

  for (const SpanRecord& s : tracer.spans()) {
    if (!s.closed) continue;
    const std::size_t w = window_of(s.end, width, count);
    if (s.name == "question") {
      ++windows[w].completed;
      latencies[w].add(
          attr_double(s.attrs, "latency_seconds").value_or(s.end - s.start));
      if (attr_int(s.attrs, "cached").value_or(0) != 0) ++windows[w].cached;
      if (attr_int(s.attrs, "degraded").value_or(0) != 0) {
        ++windows[w].degraded;
      }
      continue;
    }
    for (std::size_t i = 0; i < std::size(kStages); ++i) {
      if (s.name == kStages[i]) {
        stages[w][i].add(s.end - s.start);
        break;
      }
    }
  }

  for (const InstantRecord& rec : tracer.instants()) {
    const auto kind = attr_string(rec.attrs, "kind");
    if (!kind.has_value()) continue;
    const std::size_t w = window_of(rec.time, width, count);
    if (*kind == "admission_shed") {
      ++windows[w].shed;
    } else if (*kind == "admission_reject") {
      ++windows[w].rejected;
    } else if (*kind == "admission_degrade") {
      ++windows[w].admission_degraded;
    }
  }

  for (const CounterSample& c : tracer.counter_samples()) {
    const std::size_t w = window_of(c.time, width, count);
    if (c.name == "cpu_util") {
      cpu[w][c.node].add(c.value);
    } else if (c.name == "disk_util") {
      disk[w][c.node].add(c.value);
    }
  }

  for (std::size_t w = 0; w < count; ++w) {
    TimeWindow& win = windows[w];
    Samples& lat = latencies[w];
    lat.sort();
    win.qps = static_cast<double>(win.completed) / width;
    win.latency_mean = lat.mean();
    win.latency_p50 = lat.quantile_or(0.50, 0.0);
    win.latency_p95 = lat.quantile_or(0.95, 0.0);
    win.latency_p99 = lat.quantile_or(0.99, 0.0);
    if (win.completed > 0) {
      win.degraded_fraction =
          static_cast<double>(win.degraded) / static_cast<double>(win.completed);
    }
    const std::size_t refused = win.shed + win.rejected;
    if (win.completed + refused > 0) {
      win.shed_fraction = static_cast<double>(refused) /
                          static_cast<double>(win.completed + refused);
    }
    for (const auto& [node, stats] : cpu[w]) {
      NodeUtilization util;
      util.node = node;
      util.cpu_util = stats.mean();
      util.samples = stats.count();
      if (const auto it = disk[w].find(node); it != disk[w].end()) {
        util.disk_util = it->second.mean();
      }
      win.nodes.push_back(util);
    }
    for (std::size_t i = 0; i < std::size(kStages); ++i) {
      win.stages.push_back(StageWindowStat{
          kStages[i], stages[w][i].count(), stages[w][i].mean()});
    }
  }
  return windows;
}

void write_timeseries_jsonl(const std::vector<TimeWindow>& windows,
                            std::ostream& os) {
  for (const TimeWindow& w : windows) {
    os << "{\"schema\":\"qadist-timeseries-v1\",\"start\":";
    json_number(os, w.start);
    os << ",\"end\":";
    json_number(os, w.end);
    os << ",\"completed\":" << w.completed << ",\"qps\":";
    json_number(os, w.qps);
    os << ",\"latency\":{\"mean\":";
    json_number(os, w.latency_mean);
    os << ",\"p50\":";
    json_number(os, w.latency_p50);
    os << ",\"p95\":";
    json_number(os, w.latency_p95);
    os << ",\"p99\":";
    json_number(os, w.latency_p99);
    os << "},\"cached\":" << w.cached << ",\"degraded\":" << w.degraded
       << ",\"shed\":" << w.shed << ",\"rejected\":" << w.rejected
       << ",\"admission_degraded\":" << w.admission_degraded
       << ",\"degraded_fraction\":";
    json_number(os, w.degraded_fraction);
    os << ",\"shed_fraction\":";
    json_number(os, w.shed_fraction);
    os << ",\"nodes\":[";
    bool first = true;
    for (const NodeUtilization& n : w.nodes) {
      if (!first) os << ",";
      first = false;
      os << "{\"node\":" << n.node << ",\"cpu_util\":";
      json_number(os, n.cpu_util);
      os << ",\"disk_util\":";
      json_number(os, n.disk_util);
      os << ",\"samples\":" << n.samples << "}";
    }
    os << "],\"stages\":[";
    first = true;
    for (const StageWindowStat& s : w.stages) {
      if (!first) os << ",";
      first = false;
      os << "{\"stage\":";
      json_string(os, s.stage);
      os << ",\"count\":" << s.count << ",\"mean_seconds\":";
      json_number(os, s.mean_seconds);
      os << "}";
    }
    os << "]}\n";
  }
}

bool export_timeseries_jsonl_file(const std::vector<TimeWindow>& windows,
                                  const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  write_timeseries_jsonl(windows, out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace qadist::obs
