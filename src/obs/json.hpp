#pragma once

#include <cmath>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace qadist::obs {

/// Writes `text` as a JSON string literal (quotes included) with the
/// mandatory escapes. The corpus and all instrument names are ASCII, so no
/// UTF-8 validation is attempted — bytes >= 0x20 pass through verbatim.
inline void json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Writes a double as a JSON number. JSON has no inf/nan tokens, so those
/// serialize as null (exporters must stay loadable by strict parsers —
/// Perfetto rejects bare NaN).
inline void json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Round-trippable without drowning the file in digits.
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << value;
  os << tmp.str();
}

}  // namespace qadist::obs
