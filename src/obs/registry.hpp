#pragma once

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace qadist::obs {

/// Instrument labels: key/value pairs, normalized to key order on
/// registration so {a=1,b=2} and {b=2,a=1} name the same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(InstrumentKind kind);

/// Monotone accumulator (questions submitted, migrations, crashes, ...).
class Counter {
 public:
  void inc(double delta = 1.0);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  Labels labels_;
  double value_ = 0.0;
};

/// Last-write-wins instantaneous value (node load, makespan, ...).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  Labels labels_;
  double value_ = 0.0;
};

/// Distribution instrument: streaming moments (RunningStats) plus the full
/// sample reservoir (Samples) so exporters can report exact quantiles.
class HistogramMetric {
 public:
  void observe(double x) {
    stats_.add(x);
    samples_.add(x);
  }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  [[nodiscard]] const Samples& samples() const { return samples_; }
  [[nodiscard]] std::size_t count() const { return stats_.count(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Labels& labels() const { return labels_; }

 private:
  friend class MetricsRegistry;
  std::string name_;
  Labels labels_;
  RunningStats stats_;
  Samples samples_;
};

/// Named-instrument registry — the single store every subsystem measures
/// into (System counters, Node load gauges, scheduler decision counts,
/// stage-time histograms). Re-registering the same (name, labels) returns
/// the existing instrument; registering an existing name under a different
/// kind panics (one name, one type — the Prometheus rule).
///
/// Instruments live in deques, so references stay valid for the registry's
/// lifetime; hot paths hold `Counter*`/`HistogramMetric*` and never pay
/// the map lookup again.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  HistogramMetric& histogram(std::string_view name, Labels labels = {});

  /// Read-only lookup without registering: nullptr when the instrument (or
  /// the exact label set) does not exist, or exists under another kind.
  /// Snapshot consumers (cluster::Metrics::from_registry, exporters) use
  /// these so a read can never mutate the schema.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            Labels labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        Labels labels = {}) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      std::string_view name, Labels labels = {}) const;

  [[nodiscard]] const std::deque<Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::deque<Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::deque<HistogramMetric>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  /// Normalizes labels and returns the instrument key; panics on duplicate
  /// label keys or a kind clash with a previous registration of `name`.
  std::string register_key(std::string_view name, Labels& labels,
                           InstrumentKind kind);

  /// Shared lookup behind the find_* methods.
  [[nodiscard]] const void* find(std::string_view name, Labels labels,
                                 InstrumentKind kind) const;

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
  std::map<std::string, void*> by_key_;  // key -> instrument (kind via kinds_)
  std::map<std::string, InstrumentKind, std::less<>> kinds_;  // per name
};

}  // namespace qadist::obs
