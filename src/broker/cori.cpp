#include "broker/cori.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qadist::broker {

std::vector<double> score_shards(const CollectionStats& stats,
                                 std::span<const std::string> keywords) {
  const std::size_t num_shards = stats.num_shards();
  std::vector<double> scores(num_shards, kCoriDefaultBelief);
  if (num_shards == 0 || keywords.empty()) return scores;

  const double c = static_cast<double>(num_shards);
  const double avg_cw = std::max(stats.average_words(), 1.0);
  const double log_c = std::log(c + 1.0);

  for (std::size_t s = 0; s < num_shards; ++s) {
    const ir::ShardTermStats& shard = stats.shard(s);
    const double cw_ratio = static_cast<double>(shard.words) / avg_cw;
    double belief_sum = 0.0;
    std::size_t scored_terms = 0;
    for (const std::string& keyword : keywords) {
      const std::size_t cf = stats.shards_containing(keyword);
      // A term no shard contains cannot discriminate between shards (and
      // cf = 0 would make I blow up); it contributes no evidence at all.
      if (cf == 0) continue;
      ++scored_terms;
      const auto it = shard.df.find(keyword);
      const double df = it == shard.df.end()
                            ? 0.0
                            : static_cast<double>(it->second);
      const double t_belief = df / (df + 50.0 + 150.0 * cw_ratio);
      const double i_belief =
          std::log((c + 0.5) / static_cast<double>(cf)) / log_c;
      belief_sum += kCoriDefaultBelief +
                    (1.0 - kCoriDefaultBelief) * t_belief * i_belief;
    }
    if (scored_terms > 0) {
      scores[s] = belief_sum / static_cast<double>(scored_terms);
    }
  }
  return scores;
}

namespace {

/// Top-k indices of `scores` (higher = better, ties by ascending index),
/// returned sorted ascending.
std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t top_k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t k = std::min(std::max<std::size_t>(top_k, 1), order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<std::size_t> select_shards(const CollectionStats& stats,
                                       std::span<const std::string> keywords,
                                       std::size_t top_k) {
  if (stats.num_shards() == 0) return {};
  return top_k_indices(score_shards(stats, keywords), top_k);
}

std::vector<std::size_t> select_shards_by_work(std::span<const double> work,
                                               std::size_t top_k) {
  if (work.empty()) return {};
  return top_k_indices(work, top_k);
}

}  // namespace qadist::broker
