#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "broker/stats.hpp"

namespace qadist::broker {

/// CORI collection selection (Callan's inference-network ranking, the
/// algorithm query mediators use to pick which federated collections a
/// query should visit). Per shard s and query term t:
///
///   T = df / (df + 50 + 150 * cw_s / avg_cw)        (term-frequency belief)
///   I = log((C + 0.5) / cf_t) / log(C + 1.0)        (scaled inverse cf)
///   p(t|s) = b + (1 - b) * T * I                    (belief, b = 0.4)
///
/// where df = paragraphs of s containing t, cw_s = size of s in term
/// occurrences, avg_cw = mean shard size, C = number of shards, and
/// cf_t = number of shards containing t. The shard's score is the mean
/// belief over the query's keywords.
inline constexpr double kCoriDefaultBelief = 0.4;

/// CORI score of every shard for an analyzer-normalized keyword set.
/// Deterministic in (stats, keywords). Edge cases, all well-defined:
/// keywords empty or every keyword absent from every shard -> all scores
/// equal kCoriDefaultBelief (no evidence either way); a term absent from
/// every shard contributes nothing (cf = 0 would blow up I, and a term no
/// shard contains cannot discriminate between them).
[[nodiscard]] std::vector<double> score_shards(
    const CollectionStats& stats, std::span<const std::string> keywords);

/// The top-k shard ids by CORI score, ties broken by ascending shard id
/// (deterministic), returned in ascending shard-id order. k >= num_shards
/// returns every shard — identical to exhaustive search. k is clamped up
/// to 1: selection never returns an empty routing set.
[[nodiscard]] std::vector<std::size_t> select_shards(
    const CollectionStats& stats, std::span<const std::string> keywords,
    std::size_t top_k);

/// Stats-free fallback ranking used when no CollectionStats is wired in
/// (e.g. fuzz worlds): rank shards by a per-question work proxy (higher =
/// more likely to matter), ties by ascending shard id, and keep the top-k
/// in ascending shard-id order. `work` holds one weight per shard.
[[nodiscard]] std::vector<std::size_t> select_shards_by_work(
    std::span<const double> work, std::size_t top_k);

}  // namespace qadist::broker
