#include "broker/stats.hpp"

namespace qadist::broker {

CollectionStats CollectionStats::from_shard_stats(
    std::vector<ir::ShardTermStats> shards) {
  CollectionStats stats;
  stats.shards_ = std::move(shards);
  double total_words = 0.0;
  for (const auto& shard : stats.shards_) {
    total_words += static_cast<double>(shard.words);
    for (const auto& [term, df] : shard.df) {
      (void)df;
      ++stats.shard_df_[term];
    }
  }
  if (!stats.shards_.empty()) {
    stats.average_words_ = total_words / static_cast<double>(stats.shards_.size());
  }
  return stats;
}

CollectionStats CollectionStats::from_indexes(
    std::span<const ir::InvertedIndex> shards) {
  std::vector<ir::ShardTermStats> extracted;
  extracted.reserve(shards.size());
  for (const auto& index : shards) {
    extracted.push_back(ir::extract_term_stats(index));
  }
  return from_shard_stats(std::move(extracted));
}

std::size_t CollectionStats::shards_containing(const std::string& term) const {
  const auto it = shard_df_.find(term);
  return it == shard_df_.end() ? 0 : it->second;
}

}  // namespace qadist::broker
