#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/inverted_index.hpp"
#include "ir/shard_stats.hpp"

namespace qadist::broker {

/// Collection-wide view of the per-shard term statistics: what a broker
/// (or the coordinator, with the tier off) needs to score shards for a
/// question without touching any shard's postings. Mirrors the resource
/// descriptions a query mediator keeps about each federated collection.
///
/// Derived fields are precomputed once at build time so per-question
/// scoring is a handful of hash lookups per keyword.
class CollectionStats {
 public:
  CollectionStats() = default;

  /// Wraps already-extracted shard statistics (e.g. loaded from a QASS v2
  /// artifact's stats section).
  [[nodiscard]] static CollectionStats from_shard_stats(
      std::vector<ir::ShardTermStats> shards);

  /// Extracts statistics from in-memory shard indexes (shard s = index s).
  [[nodiscard]] static CollectionStats from_indexes(
      std::span<const ir::InvertedIndex> shards);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const ir::ShardTermStats& shard(std::size_t s) const {
    return shards_[s];
  }

  /// Number of shards whose index contains the term (CORI's cf); 0 for a
  /// term absent from every shard.
  [[nodiscard]] std::size_t shards_containing(const std::string& term) const;

  /// Mean shard size in term occurrences (CORI's avg_cw); 0 when empty.
  [[nodiscard]] double average_words() const { return average_words_; }

 private:
  std::vector<ir::ShardTermStats> shards_;
  std::unordered_map<std::string, std::uint32_t> shard_df_;  // term -> #shards
  double average_words_ = 0.0;
};

}  // namespace qadist::broker
