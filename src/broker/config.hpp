#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>

#include "broker/stats.hpp"
#include "common/units.hpp"

namespace qadist::broker {

/// Selective search + broker/mediator tier configuration (`cfg.broker`).
///
/// Two independent axes, both off by default:
///
/// * **Collection selection** (`selectivity` / `top_k`): route each
///   question to only the top-k shards a CORI-style scorer believes can
///   answer it, instead of scatter-gathering every shard. Requires
///   sharding (`cfg.shard.num_shards > 0`). `selectivity = 1.0` with
///   `top_k = 0` touches every shard — bit-identical to exhaustive
///   search (pinned by test).
///
/// * **Broker tier** (`brokers > 0`): interpose broker nodes between the
///   question host and the shard holders. Nodes split into `brokers`
///   contiguous groups, each fronted by its first node; shards place
///   only within their group (shard s -> group s % brokers). The host
///   talks to brokers over a core backbone link; each group has its own
///   subtree LAN, so scatter traffic no longer shares one wire, and each
///   broker merges its subtree's partial results before one aggregate
///   hop back to the host.
struct BrokerConfig {
  /// Broker nodes to interpose; 0 keeps the flat single-LAN star.
  std::size_t brokers = 0;

  /// Fraction of shards a question may touch, in (0, 1]. 1.0 = all.
  /// Ignored when `top_k > 0` names the shard budget directly.
  double selectivity = 1.0;

  /// Absolute shard budget per question; 0 = derive from `selectivity`.
  std::size_t top_k = 0;

  /// Backbone connecting the question hosts to the brokers. Defaults to
  /// a faster core than the subtree LANs, mirroring the fat-tree wiring
  /// hierarchical search clusters use.
  Bandwidth core_bandwidth = Bandwidth::from_gbps(1.0);

  /// Broker CPU charged per routed question (scoring + routing tables).
  Seconds route_cpu = 1e-3;

  /// Per-shard term statistics feeding CORI shard scoring. When absent,
  /// selection falls back to a per-question work proxy (plan unit sizes);
  /// when present, shards are scored against the question's keywords.
  std::shared_ptr<const CollectionStats> stats;

  [[nodiscard]] bool tier_enabled() const { return brokers > 0; }

  /// Whether selection actually prunes anything for a `num_shards`-shard
  /// corpus. selectivity = 1.0 with top_k = 0 is a true no-op.
  [[nodiscard]] bool selection_enabled(std::size_t num_shards) const {
    if (num_shards == 0) return false;
    return effective_top_k(num_shards) < num_shards;
  }

  /// The shard budget used per question: `top_k` when set, otherwise
  /// ceil(selectivity * num_shards), floored at one shard.
  [[nodiscard]] std::size_t effective_top_k(std::size_t num_shards) const {
    if (num_shards == 0) return 0;
    std::size_t k = top_k;
    if (k == 0) {
      k = static_cast<std::size_t>(
          std::ceil(selectivity * static_cast<double>(num_shards)));
    }
    return std::clamp<std::size_t>(k, 1, num_shards);
  }
};

}  // namespace qadist::broker
