#pragma once

#include <cstddef>
#include <utility>

#include "common/check.hpp"

namespace qadist::broker {

/// Node id type mirrored from cluster (broker must stay below cluster in
/// the dependency graph, so the alias is restated here).
using NodeId = std::size_t;

/// The two-level hierarchy: `nodes` cluster nodes split into `brokers`
/// contiguous, near-equal groups. The first node of each group doubles as
/// that group's broker (it still hosts questions and serves shards like
/// any other member — brokering is a role, not a dedicated machine).
/// Shard s belongs to group s % brokers, so every group owns a near-equal
/// slice of the shard space and a broker can answer "who has shard s"
/// entirely within its subtree.
struct Topology {
  std::size_t nodes = 0;
  std::size_t brokers = 0;

  Topology(std::size_t node_count, std::size_t broker_count)
      : nodes(node_count), brokers(broker_count) {
    QADIST_CHECK(brokers > 0 && brokers <= nodes,
                 << "broker tier needs 1..nodes brokers, got " << brokers
                 << " for " << nodes << " nodes");
  }

  /// First node and one-past-last node of group g's contiguous block.
  [[nodiscard]] std::pair<NodeId, NodeId> group_range(std::size_t g) const {
    QADIST_CHECK(g < brokers, << "group " << g << " out of range");
    const std::size_t base = nodes / brokers;
    const std::size_t rem = nodes % brokers;
    const NodeId first = g * base + std::min(g, rem);
    return {first, first + base + (g < rem ? 1 : 0)};
  }

  [[nodiscard]] std::size_t group_of_node(NodeId node) const {
    QADIST_CHECK(node < nodes, << "node " << node << " out of range");
    const std::size_t base = nodes / brokers;
    const std::size_t rem = nodes % brokers;
    // The first `rem` groups have base+1 nodes.
    const NodeId boundary = rem * (base + 1);
    if (node < boundary) return node / (base + 1);
    return rem + (node - boundary) / base;
  }

  /// The broker of group g: the first node of its block.
  [[nodiscard]] NodeId broker_node(std::size_t g) const {
    return group_range(g).first;
  }

  [[nodiscard]] std::size_t group_of_shard(std::size_t shard) const {
    return shard % brokers;
  }
};

}  // namespace qadist::broker
