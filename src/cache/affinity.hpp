#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace qadist::cache {

/// Rendezvous (highest-random-weight) pick: the member with the largest
/// mixed hash of (signature, member) wins. Properties the affinity
/// dispatcher needs:
///  - deterministic: the same signature and member set always agree, so
///    every front-end node routes a repeated question to the same cache;
///  - membership-stable: when a node crashes or leaves, only the questions
///    it owned move (unlike modulo hashing, which reshuffles everything —
///    and would cold-start every cache on each membership change);
///  - order-independent: the pick does not depend on the order members are
///    listed in (load broadcasts arrive in timing-dependent order).
/// Returns nullopt for an empty member set.
[[nodiscard]] std::optional<std::uint32_t> rendezvous_pick(
    std::uint64_t signature, std::span<const std::uint32_t> members);

}  // namespace qadist::cache
