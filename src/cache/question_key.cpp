#include "cache/question_key.hpp"

namespace qadist::cache {

std::string normalize_question(std::string_view text) {
  std::string key;
  key.reserve(text.size());
  bool pending_space = false;
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    char mapped = 0;
    if (u >= 'A' && u <= 'Z') {
      mapped = static_cast<char>(u - 'A' + 'a');
    } else if ((u >= 'a' && u <= 'z') || (u >= '0' && u <= '9')) {
      mapped = c;
    } else {
      // Punctuation and whitespace both act as separators.
      pending_space = !key.empty();
      continue;
    }
    if (pending_space) {
      key += ' ';
      pending_space = false;
    }
    key += mapped;
  }
  return key;
}

std::uint64_t question_signature(std::string_view normalized) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : normalized) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace qadist::cache
