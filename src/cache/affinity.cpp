#include "cache/affinity.hpp"

namespace qadist::cache {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::optional<std::uint32_t> rendezvous_pick(
    std::uint64_t signature, std::span<const std::uint32_t> members) {
  std::optional<std::uint32_t> best;
  std::uint64_t best_weight = 0;
  for (const std::uint32_t m : members) {
    const std::uint64_t w = mix(signature ^ (0x517cc1b727220a95ULL * (m + 1)));
    // Ties broken toward the lower node id so duplicate member entries
    // cannot flip the pick.
    if (!best.has_value() || w > best_weight ||
        (w == best_weight && m < *best)) {
      best = m;
      best_weight = w;
    }
  }
  return best;
}

}  // namespace qadist::cache
