#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qadist::cache {

/// Canonical cache key of a question: ASCII-lowercased, punctuation
/// stripped, whitespace collapsed to single spaces. "Who invented X?" and
/// "who invented  x" are the same question to the cache — the skew that
/// makes answer caching pay off comes from millions of users typing minor
/// variants of the same popular questions.
[[nodiscard]] std::string normalize_question(std::string_view text);

/// Stable 64-bit signature of a normalized key (FNV-1a). Drives the
/// cache-affinity dispatch (rendezvous hashing over the pool) and the
/// paragraph-cache key, and never changes across runs or platforms.
[[nodiscard]] std::uint64_t question_signature(std::string_view normalized);

}  // namespace qadist::cache
