#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace qadist::cache {

/// Knobs of one bounded cache. `max_entries == 0` disables the cache
/// entirely — the cluster never probes it, so uncached runs stay
/// bit-identical to the pre-cache system.
struct BoundedCacheConfig {
  std::size_t max_entries = 0;  ///< 0 disables the cache
  std::size_t max_bytes = 0;    ///< 0 = no byte budget
  Seconds ttl = 0.0;            ///< <= 0 = entries never expire

  [[nodiscard]] bool enabled() const { return max_entries > 0; }
};

/// Per-node cache plan for the cluster: an answer cache keyed by the
/// normalized question text (a hit short-circuits the whole QP→PR→PS→PO→AP
/// pipeline) and a paragraph cache keyed by the same question signature (a
/// hit on an answer-cache miss still skips the disk-bound PR module — the
/// accepted paragraphs are already on the host's disk). Both default to
/// disabled so existing experiments are unaffected.
struct CacheConfig {
  BoundedCacheConfig answers;
  BoundedCacheConfig paragraphs;
  /// CPU cost of one cache probe on the host (hash + map walk in a real
  /// deployment). Charged per probe, hit or miss.
  Seconds lookup_cpu = 2e-3;

  [[nodiscard]] bool enabled() const {
    return answers.enabled() || paragraphs.enabled();
  }
};

}  // namespace qadist::cache
