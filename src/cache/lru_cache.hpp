#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/config.hpp"
#include "common/check.hpp"

namespace qadist::cache {

/// Operation counts of one cache over its lifetime (monotone; the cluster
/// folds these into the obs registry at the end of a run).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t updates = 0;            ///< insert over an existing key
  std::uint64_t evictions_entries = 0;  ///< dropped for the entry budget
  std::uint64_t evictions_bytes = 0;    ///< dropped for the byte budget
  std::uint64_t expirations = 0;        ///< dropped because the TTL passed
  std::uint64_t rejected_oversize = 0;  ///< never admitted: bytes > budget
  std::uint64_t invalidations = 0;      ///< entries dropped by clear()

  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_entries + evictions_bytes;
  }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) /
                                   static_cast<double>(probes);
  }
};

/// Bounded LRU cache with TTL expiry and a byte budget, keyed by string.
///
/// Semantics:
///  - `find` promotes the entry to most-recently-used; an entry whose TTL
///    has passed is dropped on the probe (lazy expiry) and counts as a
///    miss. Simulated time is passed in by the caller, so the cache itself
///    has no clock and stays deterministic.
///  - `insert` admits the entry, then evicts from the LRU end until both
///    the entry and byte budgets hold. An entry bigger than the whole byte
///    budget is rejected outright (admitting it would flush the cache for
///    a guaranteed-useless resident).
///  - All operations are O(1) amortized; iteration order (`keys_by_age`)
///    is the recency list, which makes eviction order testable.
///
/// Not thread-safe by design: per-node caches live beside the
/// single-threaded simulation, like the Tracer.
template <typename Value>
class LruTtlCache {
 public:
  explicit LruTtlCache(BoundedCacheConfig config) : config_(config) {}

  /// Probes for `key` at time `now`. Hit: promotes the entry and returns
  /// it. Expired or absent: returns nullptr (and drops the stale entry).
  [[nodiscard]] Value* find(const std::string& key, Seconds now) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    if (expired(*it->second, now)) {
      ++stats_.expirations;
      ++stats_.misses;
      drop(it);
      return nullptr;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.hits;
    return &it->second->value;
  }

  /// Whether `key` is resident and fresh, without promoting or counting a
  /// probe (introspection for tests and benches).
  [[nodiscard]] bool contains(const std::string& key, Seconds now) const {
    const auto it = index_.find(key);
    return it != index_.end() && !expired(*it->second, now);
  }

  /// Probes for `key` ignoring the TTL: a resident-but-expired entry is
  /// returned rather than dropped, and nothing is promoted or counted.
  /// This is the degraded-answer fallback — when the fresh answer can't be
  /// computed in time, a stale one beats none at all.
  [[nodiscard]] const Value* peek_stale(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  /// Inserts (or refreshes) `key` with the given byte footprint, then
  /// enforces both budgets. Disabled caches (max_entries == 0) admit
  /// nothing.
  void insert(const std::string& key, Value value, std::size_t bytes,
              Seconds now) {
    if (config_.max_entries == 0) return;
    if (config_.max_bytes > 0 && bytes > config_.max_bytes) {
      ++stats_.rejected_oversize;
      return;
    }
    if (const auto it = index_.find(key); it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      it->second->inserted = now;
      bytes_ += bytes;
      entries_.splice(entries_.begin(), entries_, it->second);
      ++stats_.updates;
    } else {
      entries_.push_front(Entry{key, std::move(value), bytes, now});
      index_.emplace(key, entries_.begin());
      bytes_ += bytes;
      ++stats_.insertions;
    }
    while (entries_.size() > config_.max_entries) {
      ++stats_.evictions_entries;
      drop_lru();
    }
    while (config_.max_bytes > 0 && bytes_ > config_.max_bytes) {
      ++stats_.evictions_bytes;
      drop_lru();
    }
  }

  /// Removes one key; returns whether it was resident.
  bool erase(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    drop(it);
    return true;
  }

  /// Drops every entry (crash invalidation: a node that reboots comes back
  /// with a cold cache). Counted separately from capacity evictions.
  void clear() {
    stats_.invalidations += entries_.size();
    entries_.clear();
    index_.clear();
    bytes_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const BoundedCacheConfig& config() const { return config_; }

  /// Keys from most- to least-recently used (the eviction order reversed).
  [[nodiscard]] std::vector<std::string> keys_by_age() const {
    std::vector<std::string> keys;
    keys.reserve(entries_.size());
    for (const auto& e : entries_) keys.push_back(e.key);
    return keys;
  }

 private:
  struct Entry {
    std::string key;
    Value value;
    std::size_t bytes = 0;
    Seconds inserted = 0.0;
  };
  using EntryList = std::list<Entry>;

  [[nodiscard]] bool expired(const Entry& e, Seconds now) const {
    return config_.ttl > 0.0 && now - e.inserted >= config_.ttl;
  }

  void drop(typename std::unordered_map<
            std::string, typename EntryList::iterator>::iterator it) {
    bytes_ -= it->second->bytes;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void drop_lru() {
    QADIST_CHECK(!entries_.empty());
    const auto& victim = entries_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    entries_.pop_back();
  }

  BoundedCacheConfig config_;
  EntryList entries_;  // front = most recently used
  std::unordered_map<std::string, typename EntryList::iterator> index_;
  std::size_t bytes_ = 0;
  CacheStats stats_;
};

}  // namespace qadist::cache
