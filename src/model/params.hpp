#pragma once

#include "common/units.hpp"

namespace qadist::model {

/// Parameters of the analytical model (paper Sec. 5 notation), with the
/// TREC-9-calibrated defaults used for Fig. 8. All byte sizes and counts
/// are per-question averages.
struct InterQuestionParams {
  double T = 94.0;           ///< avg sequential question time (TREC-9, Sec. 2.2)
  double Q = 8.0;            ///< questions per processor in the workload
  double t_measure = 1e-3;   ///< T_measure: local load measurement time
  double s_load = 64.0;      ///< S_load: load broadcast packet bytes
  double s_question = 64.0;  ///< S_q: question message bytes
  double n_keywords = 5.0;   ///< N_k
  double s_keyword = 8.0;    ///< S_key
  double n_paragraphs = 1300.0;  ///< N_p: paragraphs out of PR
  double s_paragraph = 222.0;    ///< S_par
  double n_accepted = 880.0;     ///< N_pa: paragraphs accepted by PO
  double n_answers = 5.0;        ///< N_a
  double s_answer = 250.0;       ///< S_ans
  // Migration probabilities at the three dispatching points, computed from
  // paper Table 7's 12-processor row (37/96, 43/96, 41/96).
  double p_qa = 0.39;
  double p_pr = 0.45;
  double p_ap = 0.43;
  double p_net = 0.7;  ///< P_net: probability a task touches the network
  Bandwidth net = Bandwidth::from_mbps(100);       ///< B_net
  Bandwidth disk = Bandwidth::from_mbps(250);      ///< B_disk
  double mem_bandwidth = 800e6;                    ///< B_mem, bytes/s
};

/// Parameters of the intra-question model (paper Eq. 24-36). The four
/// calibrated values below reproduce the paper's Table 4 within ~3% in all
/// 16 (disk x net) cells — see DESIGN.md Sec. 5 for the calibration.
struct IntraQuestionParams {
  double t_qp = 0.81;  ///< T_QP (paper Table 8, 1 processor)
  double t_po = 0.02;  ///< T_PO — the two inherently sequential modules
  /// CPU seconds of the parallelizable part (PR + PS + AP compute).
  double t_cpu_parallel = 46.9;
  /// Disk bytes read by the parallelizable part (dominated by PR); its
  /// time contribution scales with 1/B_disk, which is why higher disk
  /// bandwidth *lowers* the useful processor count (paper Fig. 9b).
  double v_io = 430e6;
  /// (N_p + N_pa) · S_par: bytes shipped between nodes when the PR and AP
  /// modules are partitioned (paper Eq. 27/29).
  double w_partition_bytes = 485e3;
  Bandwidth net = Bandwidth::from_mbps(100);
  Bandwidth disk = Bandwidth::from_mbps(250);
};

}  // namespace qadist::model
