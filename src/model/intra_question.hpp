#pragma once

#include "model/params.hpp"

namespace qadist::model {

/// Analytical intra-question parallelism model (paper Sec. 5.2, Eq. 24-36).
///
/// One question's modules are split over N nodes. The parallelizable part
/// (PR + PS + AP) shrinks as 1/N; the sequential part — QP, PO, plus the
/// constant partitioning overhead of shipping paragraphs between nodes and
/// re-reading them from disk (Eq. 27/29) — does not. The practical
/// processor limit is where the two halves break even:
///
///   T_N   = T_seq + T_par / N          (Eq. 31)
///   N_max = T_par / T_seq              (Eq. 34)
///   S(N)  = T_1 / T_N                  (Eq. 35)
class IntraQuestionModel {
 public:
  explicit IntraQuestionModel(IntraQuestionParams params) : p_(params) {}

  /// T_par: the parallelizable time — CPU compute plus the PR disk scan at
  /// the configured disk bandwidth (Eq. 32 with bandwidth made explicit).
  [[nodiscard]] double t_par() const;

  /// T_seq: QP + PO + the partitioning overhead W·(1/B_net + 1/B_disk)
  /// (Eq. 33, from Eq. 27 and 29).
  [[nodiscard]] double t_seq() const;

  /// T_1: single-node question time — no partitioning overhead (Eq. 24).
  [[nodiscard]] double t1() const;

  /// T_N (Eq. 31). n = 1 still pays the overhead (the distributed system
  /// with partitioning enabled on one node).
  [[nodiscard]] double t_n(double n) const;

  /// S(N) = T_1 / T_N (Eq. 35-36).
  [[nodiscard]] double speedup(double n) const;

  /// N_max = T_par / T_seq: past this processor count the sequential part
  /// dominates and more nodes stop paying off (Eq. 34).
  [[nodiscard]] double n_max() const;

  /// Speedup at the practical limit; equals T_1 / (2·T_seq).
  [[nodiscard]] double speedup_at_n_max() const;

  [[nodiscard]] const IntraQuestionParams& params() const { return p_; }

 private:
  IntraQuestionParams p_;
};

}  // namespace qadist::model
