#include "model/predictions.hpp"

#include <algorithm>

namespace qadist::model {

std::optional<double> StagePrediction::stage(std::string_view name) const {
  if (name == "QP") return qp;
  if (name == "PR") return pr;
  if (name == "PS") return ps;
  if (name == "PO") return po;
  if (name == "AP") return ap;
  return std::nullopt;
}

StagePrediction StagePredictor::predict(double nodes) const {
  const double n = std::max(1.0, nodes);
  const double remote = (n - 1.0) / n;  // fraction of legs off-host
  StagePrediction p;
  p.qp = w_.qp_seconds;
  p.po = w_.po_seconds;
  p.ps = w_.ps_cpu_seconds / n;
  p.pr = (w_.pr_cpu_seconds + w_.disk.transfer_time(w_.pr_disk_bytes)) / n +
         p.ps + remote * w_.net.transfer_time(w_.pr_ship_bytes);
  p.ap = w_.ap_cpu_seconds / n +
         remote * w_.net.transfer_time(w_.ap_ship_bytes);
  return p;
}

IntraQuestionParams StagePredictor::intra_params() const {
  IntraQuestionParams params;
  params.t_qp = w_.qp_seconds;
  params.t_po = w_.po_seconds;
  params.t_cpu_parallel =
      w_.pr_cpu_seconds + w_.ps_cpu_seconds + w_.ap_cpu_seconds;
  params.v_io = w_.pr_disk_bytes;
  params.w_partition_bytes = w_.pr_ship_bytes + w_.ap_ship_bytes;
  params.net = w_.net;
  params.disk = w_.disk;
  return params;
}

}  // namespace qadist::model
