#include "model/inter_question.hpp"

#include "common/check.hpp"

namespace qadist::model {

double InterQuestionModel::monitoring_overhead(double n) const {
  QADIST_CHECK(n >= 1.0);
  // Per monitoring tick (1 Hz): local measurement + broadcast of S_load on
  // a link all N nodes broadcast on simultaneously + storing N entries.
  const double per_second = p_.t_measure +
                            p_.s_load * n / p_.net.bytes_per_second +
                            n * p_.s_load / p_.mem_bandwidth;
  // The monitor runs for the duration of the (average) question.
  return p_.T * per_second;
}

double InterQuestionModel::dispatch_overhead(double n) const {
  // Three dispatchers, each scanning N in-memory load entries.
  return 3.0 * n * p_.s_load / p_.mem_bandwidth;
}

double InterQuestionModel::migration_overhead(double n) const {
  // Expected bytes moved by the three dispatching points (Eq. 17-19):
  //   QA:  question out, answers back;
  //   PR:  keywords out, paragraphs back;
  //   AP:  accepted paragraphs out, answers back.
  const double qa_bytes = p_.s_question + p_.n_answers * p_.s_answer;
  const double pr_bytes =
      p_.n_keywords * p_.s_keyword + p_.n_paragraphs * p_.s_paragraph;
  const double ap_bytes =
      p_.n_accepted * p_.s_paragraph + p_.n_answers * p_.s_answer;
  const double expected_bytes =
      p_.p_qa * qa_bytes + p_.p_pr * pr_bytes + p_.p_ap * ap_bytes;
  // The shared link is used by N·Q questions, each with probability P_net,
  // so the bandwidth available to one transfer is B_net / (N·Q·P_net)
  // (Eq. 17's available-bandwidth argument). Disk read-back of migrated
  // paragraphs adds the B_disk term of Eq. 18-19.
  const double net_time = expected_bytes * n * p_.Q * p_.p_net /
                          p_.net.bytes_per_second;
  const double disk_bytes = p_.p_pr * p_.n_paragraphs * p_.s_paragraph +
                            p_.p_ap * p_.n_answers * p_.s_answer;
  const double disk_time = disk_bytes / p_.disk.bytes_per_second;
  return net_time + disk_time;
}

double InterQuestionModel::distribution_overhead(double n) const {
  return monitoring_overhead(n) + dispatch_overhead(n) +
         migration_overhead(n);
}

double InterQuestionModel::speedup(double n) const {
  QADIST_CHECK(n >= 1.0);
  return n / (1.0 + distribution_overhead(n) / p_.T);
}

double InterQuestionModel::max_processors_at_efficiency(double target) const {
  QADIST_CHECK(target > 0.0 && target < 1.0);
  if (efficiency(1.0) < target) return 0.0;
  double lo = 1.0;
  double hi = 1.0;
  // Exponential probe for an upper bound, then bisect.
  while (efficiency(hi) >= target && hi < 1e9) hi *= 2.0;
  if (hi >= 1e9) return hi;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (efficiency(mid) >= target ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace qadist::model
