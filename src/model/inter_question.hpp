#pragma once

#include "model/params.hpp"

namespace qadist::model {

/// Analytical inter-question parallelism model (paper Sec. 5.1, Eq. 9-23).
///
/// Computes the system speedup when N·Q questions run on N nodes with all
/// three dispatching points active but no partitioning (the high-load
/// regime). Speedup is limited by the per-question distribution overhead:
/// load monitoring, dispatcher scans, and migration traffic on the shared
/// network, whose available bandwidth shrinks as B_net/(N·P_net).
class InterQuestionModel {
 public:
  explicit InterQuestionModel(InterQuestionParams params) : p_(params) {}

  /// Eq. 14: load monitoring overhead per question on an N-node system —
  /// every second the monitor measures locally, broadcasts S_load over the
  /// shared link, and stores N peers' packets.
  [[nodiscard]] double monitoring_overhead(double n) const;

  /// Eq. 15: dispatcher scan overhead — the three dispatchers each scan N
  /// load entries in memory.
  [[nodiscard]] double dispatch_overhead(double n) const;

  /// Eq. 20: expected migration traffic time per question — each
  /// dispatching point moves its payload with its migration probability,
  /// over a network shared by N·Q·P_net concurrent users.
  [[nodiscard]] double migration_overhead(double n) const;

  /// Eq. 21: total per-question distribution overhead.
  [[nodiscard]] double distribution_overhead(double n) const;

  /// Eq. 23: S(N) = N / (1 + T_distrib(N) / T).
  [[nodiscard]] double speedup(double n) const;

  /// E(N) = S(N) / N.
  [[nodiscard]] double efficiency(double n) const { return speedup(n) / n; }

  /// Largest processor count whose efficiency is still at least `target`
  /// (bisection; efficiency is monotone decreasing in N). Answers the
  /// deployment question behind Fig. 8: "how big can this cluster grow
  /// before the network eats the gains?"
  [[nodiscard]] double max_processors_at_efficiency(double target) const;

  [[nodiscard]] const InterQuestionParams& params() const { return p_; }

 private:
  InterQuestionParams p_;
};

}  // namespace qadist::model
