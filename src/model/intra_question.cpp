#include "model/intra_question.hpp"

#include "common/check.hpp"

namespace qadist::model {

double IntraQuestionModel::t_par() const {
  return p_.t_cpu_parallel + p_.v_io / p_.disk.bytes_per_second;
}

double IntraQuestionModel::t_seq() const {
  return p_.t_qp + p_.t_po +
         p_.w_partition_bytes * (1.0 / p_.net.bytes_per_second +
                                 1.0 / p_.disk.bytes_per_second);
}

double IntraQuestionModel::t1() const { return p_.t_qp + p_.t_po + t_par(); }

double IntraQuestionModel::t_n(double n) const {
  QADIST_CHECK(n >= 1.0);
  return t_seq() + t_par() / n;
}

double IntraQuestionModel::speedup(double n) const { return t1() / t_n(n); }

double IntraQuestionModel::n_max() const { return t_par() / t_seq(); }

double IntraQuestionModel::speedup_at_n_max() const {
  return t1() / (2.0 * t_seq());
}

}  // namespace qadist::model
