#pragma once

#include <cstddef>
#include <optional>

#include "model/inter_question.hpp"
#include "model/params.hpp"

namespace qadist::model {

/// Inputs of a capacity plan: the question the paper's model answers is
/// "what speedup do N nodes give"; the deployment question is its inverse
/// — "how many nodes does this traffic need to hold this latency SLO".
/// Service-time figures come from a measured plan set (bench-calibrated),
/// arrival figures from the workload::ArrivalProcessConfig under plan.
struct CapacityPlanParams {
  double target_qps = 0.1;  ///< long-run mean arrival rate to absorb

  double mean_service_seconds = 94.0;  ///< sequential per-question service T
  double service_cv2 = 1.0;            ///< squared CV of service times (cs²)
  /// p95 of the unloaded (no-queueing) response time; <= 0 derives a
  /// normal-tail approximation mean·(1 + 1.645·√cs²) instead.
  double service_p95_seconds = 0.0;

  double slo_p95_seconds = 300.0;  ///< the SLO: p95 response time bound

  /// Arrival-process shape figures (workload::peak_to_mean /
  /// workload::interarrival_cv2). Burstiness enters the queueing math
  /// through ca² (burstier arrivals queue longer at equal utilization);
  /// the peak ratio only gates raw stability — a sustained burst must not
  /// exceed what N nodes can drain at all.
  double peak_to_mean = 1.0;
  double interarrival_cv2 = 1.0;  ///< ca² of the arrival process

  double max_utilization = 0.95;  ///< stability headroom cap on rho
  std::size_t max_nodes = 512;    ///< search ceiling for min_nodes()

  /// The paper's inter-question model, for the distribution overhead that
  /// inflates per-question service as the cluster grows (callers set its
  /// T to mean_service_seconds so the overhead terms scale consistently).
  InterQuestionParams overhead;
};

/// Inverts the analytical model into a sizing rule. The cluster is viewed
/// as a G/G/c queue at the long-run mean arrival rate: per-question
/// service is the measured sequential time plus the paper's T_distrib(N),
/// the waiting probability comes from Erlang C, the conditional wait tail
/// from the M/M/c exponential-tail result, and non-Poisson burstiness
/// scales the wait by the Allen-Cunneen factor (ca² + cs²)/2 (sizing the
/// queue at the peak rate as well would count every burst twice). The
/// peak rate gates stability instead: bursts the cluster cannot drain at
/// all are disqualified outright. min_nodes() is the smallest N passing
/// both gates with the predicted p95 inside the SLO —
/// bench_capacity_planning validates the prediction against simulation.
class CapacityPlanner {
 public:
  explicit CapacityPlanner(CapacityPlanParams params);

  /// T_eff(N): measured sequential service plus the paper's distribution
  /// overhead at N nodes (Eq. 21).
  [[nodiscard]] double effective_service_seconds(std::size_t nodes) const;

  /// rho(N) = lambda · T_eff(N) / N at the long-run mean rate.
  [[nodiscard]] double utilization(std::size_t nodes) const;

  /// rho at the peak rate: utilization(N) · peak_to_mean. min_nodes()
  /// rejects any N where this reaches 1.
  [[nodiscard]] double peak_utilization(std::size_t nodes) const;

  /// Erlang-C waiting probability of the M/M/c view at N nodes; 1 when
  /// the system is not stable there.
  [[nodiscard]] double wait_probability(std::size_t nodes) const;

  /// p95 of the queueing delay at N nodes (0 when fewer than 5% of
  /// questions wait at all), burstiness-corrected.
  [[nodiscard]] double predicted_wait_p95(std::size_t nodes) const;

  /// p95 of the response time at N nodes: unloaded service p95 plus the
  /// queueing-delay p95.
  [[nodiscard]] double predicted_p95_seconds(std::size_t nodes) const;

  /// Smallest N (<= max_nodes) with utilization under the cap and
  /// predicted p95 within the SLO; nullopt when no such N exists (the SLO
  /// is tighter than the unloaded service tail, or the ceiling is hit).
  [[nodiscard]] std::optional<std::size_t> min_nodes() const;

  [[nodiscard]] const CapacityPlanParams& params() const { return p_; }

 private:
  CapacityPlanParams p_;
  InterQuestionModel overhead_model_;
  double service_p95_;  ///< resolved unloaded p95 (explicit or derived)
};

}  // namespace qadist::model
