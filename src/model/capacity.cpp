#include "model/capacity.hpp"

#include <cmath>

#include "common/check.hpp"

namespace qadist::model {

CapacityPlanner::CapacityPlanner(CapacityPlanParams params)
    : p_(params), overhead_model_(params.overhead) {
  QADIST_CHECK(p_.target_qps > 0.0);
  QADIST_CHECK(p_.mean_service_seconds > 0.0);
  QADIST_CHECK(p_.slo_p95_seconds > 0.0);
  QADIST_CHECK(p_.peak_to_mean >= 1.0);
  QADIST_CHECK(p_.interarrival_cv2 >= 0.0 && p_.service_cv2 >= 0.0);
  QADIST_CHECK(p_.max_utilization > 0.0 && p_.max_utilization < 1.0);
  QADIST_CHECK(p_.max_nodes >= 1);
  service_p95_ =
      p_.service_p95_seconds > 0.0
          ? p_.service_p95_seconds
          : p_.mean_service_seconds * (1.0 + 1.645 * std::sqrt(p_.service_cv2));
}

double CapacityPlanner::effective_service_seconds(std::size_t nodes) const {
  return p_.mean_service_seconds +
         overhead_model_.distribution_overhead(static_cast<double>(nodes));
}

double CapacityPlanner::utilization(std::size_t nodes) const {
  return p_.target_qps * effective_service_seconds(nodes) /
         static_cast<double>(nodes);
}

double CapacityPlanner::peak_utilization(std::size_t nodes) const {
  return utilization(nodes) * p_.peak_to_mean;
}

double CapacityPlanner::wait_probability(std::size_t nodes) const {
  const double n = static_cast<double>(nodes);
  const double a =
      p_.target_qps * effective_service_seconds(nodes);  // offered Erlangs
  if (a >= n) return 1.0;  // unstable: every question waits
  // Erlang B via the standard recurrence (numerically stable at any a),
  // then the Erlang C conversion C = B / (1 - rho·(1 - B)).
  double b = 1.0;
  for (std::size_t k = 1; k <= nodes; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = a / n;
  return b / (1.0 - rho * (1.0 - b));
}

double CapacityPlanner::predicted_wait_p95(std::size_t nodes) const {
  const double n = static_cast<double>(nodes);
  const double t_eff = effective_service_seconds(nodes);
  if (p_.target_qps * t_eff >= n) return p_.slo_p95_seconds * 1e6;  // unstable
  const double p_wait = wait_probability(nodes);
  if (p_wait <= 0.05) return 0.0;  // p95 of the wait is already zero
  // M/M/c: the conditional wait is exponential with rate (N·mu - lambda),
  // so P(W > t) = P_wait · e^{-(N·mu - lambda)·t}; invert at 5%. The
  // Allen-Cunneen factor (ca² + cs²)/2 stretches the wait for non-Poisson
  // arrivals / non-exponential service, as it does the mean — this is
  // where burstiness enters; planning the queue at the peak rate as well
  // would double-count every burst.
  const double drain_rate = n / t_eff - p_.target_qps;
  const double base = std::log(p_wait / 0.05) / drain_rate;
  return base * (p_.interarrival_cv2 + p_.service_cv2) / 2.0;
}

double CapacityPlanner::predicted_p95_seconds(std::size_t nodes) const {
  return service_p95_ + predicted_wait_p95(nodes);
}

std::optional<std::size_t> CapacityPlanner::min_nodes() const {
  for (std::size_t n = 1; n <= p_.max_nodes; ++n) {
    if (utilization(n) > p_.max_utilization) continue;
    // Sustained bursts must not exceed raw capacity: a burst the cluster
    // cannot drain at all grows a queue for its whole duration, which no
    // mean-rate wait model can see.
    if (peak_utilization(n) >= 1.0) continue;
    if (predicted_p95_seconds(n) <= p_.slo_p95_seconds) return n;
  }
  return std::nullopt;
}

}  // namespace qadist::model
