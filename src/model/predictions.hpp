#pragma once

#include <optional>
#include <string_view>

#include "model/params.hpp"

namespace qadist::model {

/// Per-question workload averages of one run's question mix, split by
/// pipeline stage. Measured from the actual question plans (the
/// bench_table10 parameterization made reusable), so the analytical
/// predictions and the simulator describe the same questions.
struct StageWorkload {
  double qp_seconds = 0.0;      ///< QP service time (sequential)
  double po_seconds = 0.0;      ///< PO service time (sequential)
  double pr_cpu_seconds = 0.0;  ///< PR compute, whole question
  double pr_disk_bytes = 0.0;   ///< index/collection bytes PR scans
  double ps_cpu_seconds = 0.0;  ///< paragraph-scoring compute
  double ap_cpu_seconds = 0.0;  ///< AP compute, whole question
  double pr_ship_bytes = 0.0;   ///< paragraphs shipped home by remote PR legs
  double ap_ship_bytes = 0.0;   ///< paragraphs out + answers back for AP
  Bandwidth net = Bandwidth::from_mbps(100);
  Bandwidth disk = Bandwidth::from_mbps(250);
};

/// Predicted wall seconds per pipeline stage at one cluster size. PR is
/// the fork-join stage wall — it contains the scoring (PS) time, exactly
/// as the measured PR span contains its PS sub-spans; PS is additionally
/// broken out on its own for the separately-measured PS series.
struct StagePrediction {
  double qp = 0.0;
  double pr = 0.0;
  double ps = 0.0;
  double po = 0.0;
  double ap = 0.0;

  /// Predicted question time: the stage sum minus the PS part already
  /// inside PR.
  [[nodiscard]] double total() const { return qp + pr + po + ap; }

  /// Lookup by the span/rollup stage name ("QP", "PR", "PS", "PO", "AP");
  /// nullopt for names the model does not predict.
  [[nodiscard]] std::optional<double> stage(std::string_view name) const;
};

/// Analytical per-stage runtime twin of the simulator: given the measured
/// workload averages, predicts what each stage *should* cost on an n-node
/// cluster. The parallel stages (PR, PS, AP) shrink as 1/n; shipping only
/// applies to the (n-1)/n of units that land on remote nodes.
class StagePredictor {
 public:
  explicit StagePredictor(StageWorkload workload) : w_(workload) {}

  [[nodiscard]] StagePrediction predict(double nodes) const;

  /// The same workload expressed in the intra-question model's parameters
  /// (Eq. 24-36), for speedup/N_max questions.
  [[nodiscard]] IntraQuestionParams intra_params() const;

  [[nodiscard]] const StageWorkload& workload() const { return w_; }

 private:
  StageWorkload w_;
};

}  // namespace qadist::model
