#include "sched/dispatcher.hpp"

#include "common/check.hpp"

namespace qadist::sched {

MigrationDecision decide_migration(const LoadTable& table, NodeId current,
                                   const LoadWeights& weights,
                                   double single_question_load,
                                   obs::MetricsRegistry* metrics) {
  QADIST_CHECK(table.is_member(current),
               << "dispatching from non-member node " << current);
  if (metrics != nullptr) metrics->counter("dispatcher_decisions").inc();
  const auto best = table.least_loaded(weights);
  QADIST_CHECK(best.has_value());
  if (*best == current) return {};

  const double here = load_function(table.load_of(current), weights);
  const double there = load_function(table.load_of(*best), weights);
  if (metrics != nullptr) {
    metrics->histogram("dispatcher_load_gap").observe(here - there);
  }
  // 2x: the migration moves one question-load across the gap, so the
  // imbalance must still favor the move after the question lands.
  if (here - there > 2.0 * single_question_load) {
    if (metrics != nullptr) metrics->counter("dispatcher_migrations").inc();
    return MigrationDecision{true, *best};
  }
  return {};
}

MigrationDecision decide_affinity(const LoadTable& table, NodeId current,
                                  NodeId preferred,
                                  const LoadWeights& weights,
                                  double single_question_load,
                                  obs::MetricsRegistry* metrics) {
  QADIST_CHECK(table.is_member(current),
               << "dispatching from non-member node " << current);
  if (table.is_member(preferred)) {
    const auto best = table.least_loaded(weights);
    QADIST_CHECK(best.has_value());
    const double at_preferred =
        load_function(table.load_of(preferred), weights);
    const double at_best = load_function(table.load_of(*best), weights);
    // Same uselessness bound as decide_migration: placing the question on
    // the preferred node must not leave it more than 2x one question-load
    // above the best alternative, or the next decision migrates the work
    // straight off the cache again.
    if (at_preferred - at_best <= 2.0 * single_question_load) {
      if (metrics != nullptr) metrics->counter("affinity_routes").inc();
      return MigrationDecision{preferred != current, preferred};
    }
  }
  if (metrics != nullptr) metrics->counter("affinity_fallbacks").inc();
  return decide_migration(table, current, weights, single_question_load,
                          metrics);
}

}  // namespace qadist::sched
