#include "sched/dispatcher.hpp"

#include "common/check.hpp"

namespace qadist::sched {

MigrationDecision decide_migration(const LoadTable& table, NodeId current,
                                   const LoadWeights& weights,
                                   double single_question_load,
                                   obs::MetricsRegistry* metrics) {
  QADIST_CHECK(table.is_member(current),
               << "dispatching from non-member node " << current);
  if (metrics != nullptr) metrics->counter("dispatcher_decisions").inc();
  const auto best = table.least_loaded(weights);
  QADIST_CHECK(best.has_value());
  if (*best == current) return {};

  const double here = load_function(table.load_of(current), weights);
  const double there = load_function(table.load_of(*best), weights);
  if (metrics != nullptr) {
    metrics->histogram("dispatcher_load_gap").observe(here - there);
  }
  // 2x: the migration moves one question-load across the gap, so the
  // imbalance must still favor the move after the question lands.
  if (here - there > 2.0 * single_question_load) {
    if (metrics != nullptr) metrics->counter("dispatcher_migrations").inc();
    return MigrationDecision{true, *best};
  }
  return {};
}

}  // namespace qadist::sched
