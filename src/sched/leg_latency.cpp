#include "sched/leg_latency.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace qadist::sched {

LegLatencyTracker::LegLatencyTracker(std::size_t nodes, double alpha)
    : alpha_(alpha) {
  QADIST_CHECK(alpha > 0.0 && alpha <= 1.0,
               << "leg-latency EWMA alpha must be in (0, 1], got " << alpha);
  for (auto& stage : cells_) stage.assign(nodes, Cell{});
}

void LegLatencyTracker::observe(NodeId node, LegStage stage, Seconds seconds,
                                double units) {
  if (units <= 0.0) return;
  auto& cells = cells_[static_cast<std::size_t>(stage)];
  if (node >= cells.size()) return;
  Cell& cell = cells[node];
  const double per_unit = seconds / units;
  cell.ewma = cell.count == 0
                  ? per_unit
                  : alpha_ * per_unit + (1.0 - alpha_) * cell.ewma;
  ++cell.count;
}

bool LegLatencyTracker::has(NodeId node, LegStage stage) const {
  const auto& cells = cells_[static_cast<std::size_t>(stage)];
  return node < cells.size() && cells[node].count > 0;
}

double LegLatencyTracker::ewma(NodeId node, LegStage stage) const {
  const auto& cells = cells_[static_cast<std::size_t>(stage)];
  return node < cells.size() ? cells[node].ewma : 0.0;
}

double LegLatencyTracker::best(LegStage stage) const {
  const auto& cells = cells_[static_cast<std::size_t>(stage)];
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const Cell& cell : cells) {
    if (cell.count == 0) continue;
    best = std::min(best, cell.ewma);
    any = true;
  }
  return any ? best : 0.0;
}

bool LegLatencyTracker::straggler_mask(LegStage stage, double ratio,
                                       std::vector<char>& mask) const {
  const auto& cells = cells_[static_cast<std::size_t>(stage)];
  mask.assign(cells.size(), 0);
  const double reference = best(stage);
  if (reference <= 0.0) return false;
  std::size_t flagged = 0;
  std::size_t observed = 0;
  for (std::size_t node = 0; node < cells.size(); ++node) {
    if (cells[node].count == 0) continue;
    ++observed;
    if (cells[node].ewma > ratio * reference) {
      mask[node] = 1;
      ++flagged;
    }
  }
  return flagged > 0 && flagged < observed;
}

}  // namespace qadist::sched
