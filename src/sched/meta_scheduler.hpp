#pragma once

#include <span>
#include <vector>

#include "obs/registry.hpp"
#include "sched/load_table.hpp"

namespace qadist::sched {

/// Outcome of the meta-scheduling algorithm (paper Fig. 4).
struct MetaSchedule {
  /// Nodes the task will run on (>= 1). Singleton when no node was
  /// under-loaded — Step 2's fall-back to the least-loaded node, i.e. the
  /// task migrates whole instead of partitioning.
  std::vector<NodeId> selected;
  /// Normalized weights (sum = 1), parallel to `selected`.
  std::vector<double> weights;
  /// True when Step 1 found under-loaded nodes (intra-question parallelism
  /// is worth exploiting), false when Step 2 fell back to one node.
  bool partitioned = false;
};

/// The meta-scheduling algorithm of paper Fig. 4, parameterized — exactly
/// as the paper does — by a load function (module resource weights) and an
/// under-load condition (threshold on that load function):
///
///  1. select all processors P with loadFunction(P) under `underload_threshold`
///  2. if none, select the single processor with the smallest load value
///  3. give each selected processor an unnormalized weight growing with its
///     available headroom: w_P = (1 + loadMax - load_P) / (1 + loadMax),
///     where loadMax is the largest load among the selected set (the "+1"
///     keeps the most-loaded selected node at a positive share; with equal
///     loads this degenerates to equal weights)
///  4. normalize: W_P = w_P / sum(w)
///  5. (performed by the caller) assign fraction W_P of the task to P —
///     see parallel::apportion / partition_send / partition_isend.
///
/// With `metrics` set, each call counts into `meta_schedule_calls` /
/// `meta_schedule_partitioned` and observes the selected-set size in the
/// `meta_schedule_selected_nodes` histogram.
///
/// `straggler` is the optional latency-awareness input (tail-tolerance
/// toolkit): a per-NodeId mask where a non-zero entry marks a node whose
/// observed leg latency makes it a straggler. Stragglers are filtered from
/// the candidate pool exactly like stale entries — unless every candidate
/// is one, in which case the full pool is kept (a slow placement beats
/// none). An empty span (the default) leaves the algorithm untouched.
[[nodiscard]] MetaSchedule meta_schedule(
    const LoadTable& table, const LoadWeights& module_weights,
    double underload_threshold, obs::MetricsRegistry* metrics = nullptr,
    std::span<const char> straggler = {});

/// meta_schedule restricted to an eligible subset of the table's members —
/// the replica-aware variant: with a partially replicated corpus, PR can
/// only run on nodes holding a ready replica of some shard the question
/// touches, so the candidate pool is `eligible ∩ members` instead of the
/// whole membership. The algorithm (fresh-first filter, under-load select,
/// least-loaded fall-back, headroom weights) is unchanged. An empty
/// intersection returns an empty schedule — the caller degrades.
[[nodiscard]] MetaSchedule meta_schedule_among(
    const LoadTable& table, std::span<const NodeId> eligible,
    const LoadWeights& module_weights, double underload_threshold,
    obs::MetricsRegistry* metrics = nullptr,
    std::span<const char> straggler = {});

/// Two-level meta-scheduling support for the broker tier: picks the node
/// that should carry a group's brokering duty — the least-loaded fresh
/// member of the contiguous node range [first, last), falling back to
/// stale members only when no fresh one exists (a suspect delegate beats
/// none), ties broken on the lower id. nullopt when no member of the
/// range remains — the caller falls back to flat routing or degrades.
[[nodiscard]] std::optional<NodeId> pick_delegate(
    const LoadTable& table, NodeId first, NodeId last,
    const LoadWeights& module_weights);

}  // namespace qadist::sched
