#include "sched/meta_scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qadist::sched {

namespace {

void count_outcome(obs::MetricsRegistry* metrics, const MetaSchedule& out) {
  if (metrics == nullptr) return;
  metrics->counter("meta_schedule_calls").inc();
  if (out.partitioned) metrics->counter("meta_schedule_partitioned").inc();
  metrics->histogram("meta_schedule_selected_nodes")
      .observe(static_cast<double>(out.selected.size()));
}

// Fig. 4 over an explicit candidate pool; both entry points funnel here.
MetaSchedule schedule_pool(const LoadTable& table,
                           std::vector<NodeId> members,
                           const LoadWeights& module_weights,
                           double underload_threshold,
                           obs::MetricsRegistry* metrics,
                           std::span<const char> straggler) {
  MetaSchedule out;

  // Suspected peers (stale load entries) are not candidates — their figures
  // can't be trusted and work placed there may be lost. If the whole pool
  // is stale, keep everyone: a degraded placement beats none.
  std::vector<NodeId> fresh;
  for (NodeId id : members) {
    if (!table.is_stale(id)) fresh.push_back(id);
  }
  if (!fresh.empty()) members = std::move(fresh);

  // Latency-aware down-ranking (tail-tolerance): observed stragglers are
  // filtered the same way — their load figures are honest, but their
  // service times are not worth scheduling onto while faster peers exist.
  if (!straggler.empty()) {
    std::vector<NodeId> fast;
    for (NodeId id : members) {
      if (id >= straggler.size() || straggler[id] == 0) fast.push_back(id);
    }
    if (!fast.empty() && fast.size() < members.size()) {
      members = std::move(fast);
      if (metrics != nullptr) {
        metrics->counter("meta_schedule_straggler_filtered").inc();
      }
    }
  }

  std::vector<double> loads;
  loads.reserve(members.size());
  for (NodeId id : members) {
    loads.push_back(load_function(table.load_of(id), module_weights));
  }

  // Step 1: all under-loaded processors.
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (loads[i] < underload_threshold) {
      out.selected.push_back(members[i]);
      out.weights.push_back(loads[i]);  // raw load for now
    }
  }
  out.partitioned = out.selected.size() > 1;

  // Step 2: none under-loaded -> single least-loaded processor.
  if (out.selected.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (loads[i] < loads[best]) best = i;
    }
    out.selected.push_back(members[best]);
    out.weights.assign(1, 1.0);
    count_outcome(metrics, out);
    return out;
  }

  // Steps 3-4: headroom weights, normalized.
  const double load_max =
      *std::max_element(out.weights.begin(), out.weights.end());
  double sum = 0.0;
  for (double& w : out.weights) {
    w = (1.0 + load_max - w) / (1.0 + load_max);
    sum += w;
  }
  for (double& w : out.weights) w /= sum;
  count_outcome(metrics, out);
  return out;
}

}  // namespace

MetaSchedule meta_schedule(const LoadTable& table,
                           const LoadWeights& module_weights,
                           double underload_threshold,
                           obs::MetricsRegistry* metrics,
                           std::span<const char> straggler) {
  auto members = table.members();
  QADIST_CHECK(!members.empty(), << "meta_schedule over an empty pool");
  return schedule_pool(table, std::move(members), module_weights,
                       underload_threshold, metrics, straggler);
}

MetaSchedule meta_schedule_among(const LoadTable& table,
                                 std::span<const NodeId> eligible,
                                 const LoadWeights& module_weights,
                                 double underload_threshold,
                                 obs::MetricsRegistry* metrics,
                                 std::span<const char> straggler) {
  const auto members = table.members();
  std::vector<NodeId> pool;
  for (NodeId id : eligible) {
    if (std::find(members.begin(), members.end(), id) != members.end()) {
      pool.push_back(id);
    }
  }
  if (pool.empty()) return {};  // no eligible replica holder is a member
  return schedule_pool(table, std::move(pool), module_weights,
                       underload_threshold, metrics, straggler);
}

std::optional<NodeId> pick_delegate(const LoadTable& table, NodeId first,
                                    NodeId last,
                                    const LoadWeights& module_weights) {
  std::optional<NodeId> best;
  double best_load = 0.0;
  // Fresh members first; stale entries only when the whole range is stale.
  for (const bool allow_stale : {false, true}) {
    for (NodeId id = first; id < last; ++id) {
      if (!table.is_member(id)) continue;
      if (!allow_stale && table.is_stale(id)) continue;
      const double load = load_function(table.load_of(id), module_weights);
      if (!best.has_value() || load < best_load) {
        best = id;
        best_load = load;
      }
    }
    if (best.has_value()) return best;
  }
  return std::nullopt;
}

}  // namespace qadist::sched
