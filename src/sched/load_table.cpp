#include "sched/load_table.hpp"

#include "common/check.hpp"

namespace qadist::sched {

LoadTable::Entry& LoadTable::entry(NodeId node) {
  if (node >= entries_.size()) entries_.resize(node + 1);
  return entries_[node];
}

const LoadTable::Entry* LoadTable::find(NodeId node) const {
  if (node >= entries_.size() || !entries_[node].alive) return nullptr;
  return &entries_[node];
}

void LoadTable::update(NodeId node, const ResourceLoad& load, Seconds now,
                       double reservation_keep) {
  QADIST_CHECK(reservation_keep >= 0.0 && reservation_keep <= 1.0);
  Entry& e = entry(node);
  e.alive = true;
  e.stale = false;  // a fresh broadcast is trustworthy again
  e.broadcast = load;
  e.reserved.cpu *= reservation_keep;
  e.reserved.disk *= reservation_keep;
  e.last_update = now;
}

void LoadTable::reserve(NodeId node, const ResourceLoad& delta) {
  const Entry* e = find(node);
  QADIST_CHECK(e != nullptr, << "reserve on non-member node " << node);
  Entry& mutable_entry = entries_[node];
  mutable_entry.reserved.cpu += delta.cpu;
  mutable_entry.reserved.disk += delta.disk;
}

void LoadTable::remove(NodeId node) {
  if (node < entries_.size()) entries_[node].alive = false;
}

void LoadTable::mark_stale(NodeId node, bool stale) {
  if (node < entries_.size() && entries_[node].alive) {
    entries_[node].stale = stale;
  }
}

bool LoadTable::is_stale(NodeId node) const {
  const Entry* e = find(node);
  return e != nullptr && e->stale;
}

void LoadTable::expire(Seconds now, Seconds timeout) {
  for (auto& e : entries_) {
    if (e.alive && now - e.last_update > timeout) e.alive = false;
  }
}

std::vector<NodeId> LoadTable::members() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < entries_.size(); ++id) {
    if (entries_[id].alive) out.push_back(id);
  }
  return out;
}

bool LoadTable::is_member(NodeId node) const { return find(node) != nullptr; }

ResourceLoad LoadTable::load_of(NodeId node) const {
  const Entry* e = find(node);
  QADIST_CHECK(e != nullptr, << "load_of non-member node " << node);
  return ResourceLoad{e->broadcast.cpu + e->reserved.cpu,
                      e->broadcast.disk + e->reserved.disk};
}

std::optional<NodeId> LoadTable::least_loaded(const LoadWeights& weights) const {
  // Fresh entries first; fall back to stale ones only when every member is
  // stale (placing work on a suspect beats placing it nowhere).
  for (const bool allow_stale : {false, true}) {
    std::optional<NodeId> best;
    double best_load = 0.0;
    for (NodeId id = 0; id < entries_.size(); ++id) {
      if (!entries_[id].alive) continue;
      if (entries_[id].stale && !allow_stale) continue;
      const double l = load_function(load_of(id), weights);
      if (!best || l < best_load) {
        best = id;
        best_load = l;
      }
    }
    if (best) return best;
  }
  return std::nullopt;
}

std::size_t LoadTable::size() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.alive) ++n;
  }
  return n;
}

double mean_pool_load(const LoadTable& table, const LoadWeights& weights) {
  const auto members = table.members();
  if (members.empty()) return 0.0;
  double total = 0.0;
  for (const NodeId node : members) {
    total += load_function(table.load_of(node), weights);
  }
  return total / static_cast<double>(members.size());
}

}  // namespace qadist::sched
