#pragma once

#include <optional>

#include "sched/load_table.hpp"

namespace qadist::sched {

/// The question dispatcher's migration rule (paper Sec. 3.1): move the Q/A
/// task to the least-loaded node, but only when the load gap exceeds the
/// average workload of a single question — "to avoid useless migrations, a
/// question is migrated only if the difference between the load of the
/// source node and the load of the destination node is greater than the
/// average workload of a single question."
struct MigrationDecision {
  bool migrate = false;
  NodeId target = 0;
};

/// @param current node the task currently sits on (must be a pool member).
/// @param single_question_load the threshold: the load one question adds
///        (by Eq. 1's weighting, one fully busy question contributes
///        single_task_load(kQaWeights)).
[[nodiscard]] MigrationDecision decide_migration(
    const LoadTable& table, NodeId current, const LoadWeights& weights,
    double single_question_load);

}  // namespace qadist::sched
