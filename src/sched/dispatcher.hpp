#pragma once

#include <optional>

#include "obs/registry.hpp"
#include "sched/load_table.hpp"

namespace qadist::sched {

/// The question dispatcher's migration rule (paper Sec. 3.1): move the Q/A
/// task to the least-loaded node, but only when the load gap is large
/// enough that the migration is not "useless". The paper states the
/// threshold as one single-question load; we require *twice* that, because
/// the move itself shifts one question-load from source to target — under
/// a 1x threshold a marginal imbalance (gap between 1x and 2x) reverses
/// the moment the question lands, and the next decision migrates work
/// straight back (ping-pong). With a 2x threshold the residual gap
/// (gap - 2x) still favors the move after it completes.
struct MigrationDecision {
  bool migrate = false;
  NodeId target = 0;
};

/// @param current node the task currently sits on (must be a pool member).
/// @param single_question_load the threshold: the load one question adds
///        (by Eq. 1's weighting, one fully busy question contributes
///        single_task_load(kQaWeights)).
/// @param metrics optional registry the dispatcher counts its decisions
///        into (`dispatcher_decisions`, `dispatcher_migrations`, and the
///        `dispatcher_load_gap` histogram of current-vs-best load gaps).
[[nodiscard]] MigrationDecision decide_migration(
    const LoadTable& table, NodeId current, const LoadWeights& weights,
    double single_question_load, obs::MetricsRegistry* metrics = nullptr);

/// Cache-affinity variant of the migration rule: prefer `preferred` (the
/// node most likely to hold the question's cached answer, from rendezvous
/// hashing) as long as taking it is not a useless migration in the paper's
/// sense — its load may exceed the pool's best by at most the same
/// 2x-single-question threshold decide_migration uses. Beyond that gap, or
/// when `preferred` is not a pool member, the decision falls back to
/// decide_migration, so under overload the paper's load functions stay
/// authoritative and affinity only biases placement.
///
/// Counts `affinity_routes` / `affinity_fallbacks` into `metrics` when
/// given (fallbacks additionally count the usual dispatcher instruments).
[[nodiscard]] MigrationDecision decide_affinity(
    const LoadTable& table, NodeId current, NodeId preferred,
    const LoadWeights& weights, double single_question_load,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace qadist::sched
