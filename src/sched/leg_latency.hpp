#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "sched/load.hpp"

namespace qadist::sched {

/// Which fork-join stage a leg observation belongs to. Hedge delays and
/// straggler judgements are kept per stage because PR legs (disk-bound
/// retrieval) and AP legs (CPU-bound answer processing) live on completely
/// different time scales.
enum class LegStage : std::size_t { kPr = 0, kAp = 1 };
inline constexpr std::size_t kLegStages = 2;

/// Per-node, per-stage EWMA of observed leg service latency — the
/// latency-aware replica-selection signal of the tail-tolerance toolkit.
///
/// Load-based scheduling cannot see a gray node: a 10x-slow disk holds few
/// customers at a time precisely *because* it is slow, so its broadcast
/// load looks idle and the meta-scheduler keeps feeding it. What does give
/// it away is the latency of the legs it already served. The coordinator
/// feeds every completed leg's per-unit wall time in here; nodes whose
/// EWMA exceeds `ratio` × the fastest node's EWMA are flagged stragglers
/// and down-ranked by meta_schedule(_among) like stale entries.
///
/// Observations are normalized per work unit (sub-collections for PR,
/// paragraphs for AP) so a node that legitimately received a large
/// partition is not mistaken for a slow one.
class LegLatencyTracker {
 public:
  LegLatencyTracker() = default;
  LegLatencyTracker(std::size_t nodes, double alpha);

  /// Folds one completed leg: `seconds` of wall time over `units` work
  /// units on `node`. Ignored when `units <= 0`.
  void observe(NodeId node, LegStage stage, Seconds seconds, double units);

  [[nodiscard]] bool has(NodeId node, LegStage stage) const;
  /// Per-unit EWMA for a node; 0 before the first observation.
  [[nodiscard]] double ewma(NodeId node, LegStage stage) const;
  /// Fastest per-unit EWMA across observed nodes; 0 with no data.
  [[nodiscard]] double best(LegStage stage) const;

  /// Fills `mask` (resized to the node count) with 1 for every node whose
  /// EWMA exceeds `ratio` × best(stage). Returns true when at least one
  /// node is flagged AND at least one observed node is not — the only
  /// situation where filtering can help; callers pass an empty span to the
  /// scheduler otherwise.
  bool straggler_mask(LegStage stage, double ratio,
                      std::vector<char>& mask) const;

 private:
  struct Cell {
    double ewma = 0.0;
    std::size_t count = 0;
  };

  double alpha_ = 0.2;
  std::array<std::vector<Cell>, kLegStages> cells_;
};

}  // namespace qadist::sched
