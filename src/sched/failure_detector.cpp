#include "sched/failure_detector.hpp"

#include "common/check.hpp"

namespace qadist::sched {

const char* to_string(PeerState state) {
  switch (state) {
    case PeerState::kAlive:
      return "alive";
    case PeerState::kSuspect:
      return "suspect";
    case PeerState::kDead:
      return "dead";
  }
  QADIST_UNREACHABLE("bad PeerState");
}

FailureDetector::FailureDetector(FailureDetectorConfig config)
    : config_(config) {
  QADIST_CHECK(config_.heartbeat_period > 0.0);
  QADIST_CHECK(config_.suspect_after_missed > 0.0);
  QADIST_CHECK(config_.confirm_dead_after > 0.0);
}

FailureDetector::Peer& FailureDetector::peer(NodeId node) {
  if (node >= peers_.size()) peers_.resize(node + 1);
  return peers_[node];
}

PeerState FailureDetector::heartbeat(NodeId node, Seconds now) {
  Peer& p = peer(node);
  const PeerState before = p.known ? p.state : PeerState::kAlive;
  if (p.known) {
    if (p.state == PeerState::kSuspect) {
      ++suspicions_cleared_;
      // A hint-raised suspicion cleared by an on-schedule beat was a false
      // alarm; arm the hysteresis window so the next stray send failure
      // does not flap this peer right back to kSuspect.
      if (p.hint_raised && config_.hint_hysteresis > 0.0) {
        p.suppress_hints_until = now + config_.hint_hysteresis;
      }
    }
    if (p.state == PeerState::kDead) ++rejoins_;
  }
  p.known = true;
  p.state = PeerState::kAlive;
  p.last_heard = now;
  p.hint_raised = false;
  return before;
}

void FailureDetector::suspect_hint(NodeId node, Seconds now) {
  Peer& p = peer(node);
  if (!p.known) {
    // Enroll so the suspicion can later harden into a confirmed death.
    p.known = true;
    p.last_heard = now;
  }
  if (p.state == PeerState::kAlive) {
    // Within the hysteresis window, a hint against a peer whose heartbeats
    // are still current is discounted — we just proved a hint wrong and the
    // beats say the peer is fine. Stale heartbeats void the suppression:
    // then the hint is corroborated by silence and raises as usual.
    const Seconds suspect_after =
        config_.suspect_after_missed * config_.heartbeat_period;
    const bool beats_current = now - p.last_heard <= suspect_after;
    if (beats_current && now < p.suppress_hints_until) {
      ++hints_suppressed_;
      return;
    }
    p.state = PeerState::kSuspect;
    p.hint_raised = true;
    ++suspicions_raised_;
  }
}

std::vector<DetectorTransition> FailureDetector::sweep(Seconds now) {
  std::vector<DetectorTransition> fired;
  const Seconds suspect_after =
      config_.suspect_after_missed * config_.heartbeat_period;
  for (NodeId id = 0; id < peers_.size(); ++id) {
    Peer& p = peers_[id];
    if (!p.known || p.state == PeerState::kDead) continue;
    const Seconds silence = now - p.last_heard;
    // Matches LoadTable::expire's strict `>` so a detector-driven removal
    // never fires on a different monitor tick than the membership timeout.
    if (p.state == PeerState::kAlive && silence > suspect_after) {
      p.state = PeerState::kSuspect;
      ++suspicions_raised_;
      fired.push_back({id, PeerState::kAlive, PeerState::kSuspect});
    }
    if (p.state == PeerState::kSuspect && silence > config_.confirm_dead_after) {
      p.state = PeerState::kDead;
      ++deaths_confirmed_;
      fired.push_back({id, PeerState::kSuspect, PeerState::kDead});
    }
  }
  return fired;
}

PeerState FailureDetector::state(NodeId node) const {
  if (node >= peers_.size() || !peers_[node].known) return PeerState::kAlive;
  return peers_[node].state;
}

bool FailureDetector::known(NodeId node) const {
  return node < peers_.size() && peers_[node].known;
}

}  // namespace qadist::sched
