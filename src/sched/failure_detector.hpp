#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sched/load.hpp"

namespace qadist::sched {

/// Detector view of a peer. A peer is kAlive while its heartbeats arrive on
/// schedule, kSuspect after missing a few beats (work is steered away but
/// the peer is not written off), and kDead once silence exceeds the
/// confirmation timeout. A heartbeat from any state returns the peer to
/// kAlive — a rejoin, when it comes from kDead.
enum class PeerState : std::uint8_t { kAlive, kSuspect, kDead };

[[nodiscard]] const char* to_string(PeerState state);

struct FailureDetectorConfig {
  /// Expected heartbeat (load-broadcast) interval.
  Seconds heartbeat_period = 1.0;
  /// Beats of silence before a peer becomes kSuspect.
  double suspect_after_missed = 2.0;
  /// Silence before kSuspect hardens into kDead. Should exceed
  /// suspect_after_missed * heartbeat_period.
  Seconds confirm_dead_after = 3.0;
  /// Suspect-hint hysteresis window. A hint is direct-but-noisy evidence:
  /// one lost RPC exhausting its retries raises an alive peer to kSuspect
  /// even while its heartbeats arrive on schedule. Without damping, a
  /// gray-slow node on a lossy segment flaps alive→suspect→alive forever —
  /// each flap steering placement away from a node that is actually up.
  /// With a window > 0: after a heartbeat clears a *hint-raised* suspicion
  /// (a proven false alarm), further hints against that peer are ignored
  /// for this long, provided its heartbeats are still current. Silence-
  /// based suspicion (sweep) is never suppressed — a peer that actually
  /// stops beating is suspected on schedule regardless. 0 (the default)
  /// disables the window: every hint raises, bit-identical to the
  /// pre-hysteresis detector.
  Seconds hint_hysteresis = 0.0;
};

/// One observed lifecycle transition, as reported by sweep().
struct DetectorTransition {
  NodeId node = 0;
  PeerState from = PeerState::kAlive;
  PeerState to = PeerState::kAlive;
};

/// Heartbeat-based failure detector (missed-beat suspicion): the load
/// monitor's periodic broadcasts double as heartbeats, so no extra network
/// traffic is needed. Unlike the pure membership timeout it replaces, the
/// detector has an intermediate suspicion level that placement can react to
/// *before* the peer is declared dead, and it distinguishes a false alarm
/// (suspicion cleared by a late beat) from a confirmed death.
///
/// Tracks only peers it has heard at least one heartbeat from; unknown
/// peers read as kAlive (innocent until enrolled).
class FailureDetector {
 public:
  FailureDetector() = default;
  explicit FailureDetector(FailureDetectorConfig config);

  /// Records a heartbeat from `node` at `now`; returns the state the peer
  /// was in before the beat (kDead means this beat is a rejoin).
  PeerState heartbeat(NodeId node, Seconds now);

  /// Direct evidence of trouble (an RPC to `node` exhausted its retries):
  /// immediately raises an alive peer to kSuspect without waiting for the
  /// missed-beat threshold.
  void suspect_hint(NodeId node, Seconds now);

  /// Applies silence-based transitions as of `now` and returns those that
  /// fired. Safe to call from many monitors per period — transitions are
  /// edge-triggered, so repeated sweeps at the same instant report nothing
  /// new.
  std::vector<DetectorTransition> sweep(Seconds now);

  [[nodiscard]] PeerState state(NodeId node) const;
  [[nodiscard]] bool known(NodeId node) const;

  // Lifecycle tallies (suspicions cleared = false alarms).
  [[nodiscard]] std::uint64_t suspicions_raised() const {
    return suspicions_raised_;
  }
  [[nodiscard]] std::uint64_t suspicions_cleared() const {
    return suspicions_cleared_;
  }
  [[nodiscard]] std::uint64_t deaths_confirmed() const {
    return deaths_confirmed_;
  }
  [[nodiscard]] std::uint64_t rejoins() const { return rejoins_; }
  /// Hints swallowed by the hysteresis window (see
  /// FailureDetectorConfig::hint_hysteresis).
  [[nodiscard]] std::uint64_t hints_suppressed() const {
    return hints_suppressed_;
  }

 private:
  struct Peer {
    bool known = false;
    PeerState state = PeerState::kAlive;
    Seconds last_heard = 0.0;
    /// Current suspicion came from a hint (vs missed beats) — only those
    /// arm the hysteresis window when cleared.
    bool hint_raised = false;
    /// Hints are ignored before this instant while heartbeats stay current.
    Seconds suppress_hints_until = 0.0;
  };

  Peer& peer(NodeId node);

  FailureDetectorConfig config_;
  std::vector<Peer> peers_;  // indexed by NodeId
  std::uint64_t suspicions_raised_ = 0;
  std::uint64_t suspicions_cleared_ = 0;
  std::uint64_t deaths_confirmed_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t hints_suppressed_ = 0;
};

}  // namespace qadist::sched
