#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "sched/load.hpp"

namespace qadist::sched {

/// The cluster-load view every node maintains from the load monitors'
/// periodic broadcasts (paper Sec. 3.1): per-node resource loads, refresh
/// timestamps, and broadcast-driven membership — a node silent for longer
/// than the timeout is dropped from the pool; a node starts (re)existing
/// the moment it broadcasts.
///
/// Dispatch decisions read this table; to keep a burst of arrivals from
/// herding onto the same momentarily-idle node before the next broadcast,
/// dispatchers may `reserve()` the expected load of work they just placed.
/// Reservations on a node are cleared by its next broadcast (which then
/// reflects the real load).
class LoadTable {
 public:
  /// Ingests a broadcast from `node` at time `now`.
  ///
  /// `reservation_keep` in [0,1] scales the node's outstanding
  /// reservations: 0 drops them (an instantaneous-load broadcast already
  /// reflects recently placed work), while a damped-average broadcast only
  /// absorbs a fraction alpha of new load per period, so the caller keeps
  /// the complementary (1 - alpha) reserved to avoid herding arrivals onto
  /// a node whose broadcast lags its true backlog.
  void update(NodeId node, const ResourceLoad& load, Seconds now,
              double reservation_keep = 0.0);

  /// Adds a provisional load delta on top of the last broadcast value.
  void reserve(NodeId node, const ResourceLoad& delta);

  /// Drops nodes whose last broadcast is older than `timeout`.
  void expire(Seconds now, Seconds timeout);

  /// Drops one node immediately — a coordinator whose reply timeout fired
  /// on a dead worker declares it out of the pool without waiting for its
  /// broadcast to age past the membership timeout. No-op on non-members;
  /// the node re-enters the pool with its next broadcast.
  void remove(NodeId node);

  /// Flags a member's entry as stale: the node stays in the pool (its
  /// broadcasts may simply be getting lost), but its load figure is no
  /// longer trusted, so least_loaded() passes it over while any fresh
  /// entry exists. Cleared by the node's next broadcast or by
  /// mark_stale(node, false). No-op on non-members.
  void mark_stale(NodeId node, bool stale = true);

  /// True if `node` is a member whose entry is flagged stale.
  [[nodiscard]] bool is_stale(NodeId node) const;

  /// Current members, ascending id.
  [[nodiscard]] std::vector<NodeId> members() const;

  [[nodiscard]] bool is_member(NodeId node) const;

  /// Effective load (last broadcast + reservations). Node must be a member.
  [[nodiscard]] ResourceLoad load_of(NodeId node) const;

  /// The member minimizing load_function(load, weights); nullopt if the
  /// table is empty. Ties break on the lower node id (deterministic).
  /// Stale entries are only considered when no fresh member exists (a
  /// suspect node beats no node at all).
  [[nodiscard]] std::optional<NodeId> least_loaded(
      const LoadWeights& weights) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    bool alive = false;
    bool stale = false;
    ResourceLoad broadcast;
    ResourceLoad reserved;
    Seconds last_update = 0.0;
  };

  std::vector<Entry> entries_;  // indexed by NodeId

  Entry& entry(NodeId node);
  [[nodiscard]] const Entry* find(NodeId node) const;
};

/// Mean of load_function over the current pool members — the cluster-wide
/// pressure signal admission control sheds on (a single hot node should
/// not trip cluster-level shedding; a saturated pool should). 0 when the
/// table is empty.
[[nodiscard]] double mean_pool_load(const LoadTable& table,
                                    const LoadWeights& weights);

}  // namespace qadist::sched
