#pragma once

#include <cstdint>

namespace qadist::sched {

/// Node identifier within a cluster.
using NodeId = std::uint32_t;

/// A node's per-resource load sample. Loads are time-averaged active
/// customer counts over the last monitoring period (the simulated analogue
/// of /proc loadavg): 0 = idle, 1 = one task's worth of demand, values > 1
/// mean queueing/time-sharing.
struct ResourceLoad {
  double cpu = 0.0;
  double disk = 0.0;

  friend bool operator==(const ResourceLoad&, const ResourceLoad&) = default;
};

/// Per-module resource weights (paper Eq. 1-3): how much each resource
/// matters to a module, measured as the fraction of its execution time
/// spent on that resource.
struct LoadWeights {
  double cpu = 0.0;
  double disk = 0.0;
};

/// Paper Table 3, measured on the TREC-9 question set: the whole Q/A task
/// is CPU-leaning, PR is disk-dominated, AP is pure CPU.
inline constexpr LoadWeights kQaWeights{0.79, 0.21};   // Eq. 4
inline constexpr LoadWeights kPrWeights{0.20, 0.80};   // Eq. 5
inline constexpr LoadWeights kApWeights{1.00, 0.00};   // Eq. 6

/// The weighted load function loadFunction_m(P) = w_cpu·cpuLoad(P) +
/// w_disk·diskLoad(P) (paper Eq. 1-3).
[[nodiscard]] constexpr double load_function(const ResourceLoad& load,
                                             const LoadWeights& weights) {
  return weights.cpu * load.cpu + weights.disk * load.disk;
}

/// Load contributed by one task of the given module running alone — the
/// under-load thresholds of paper Eq. 7-8: a node is under-loaded for a
/// module while its load function is below what a single such sub-task
/// generates. One lone PR sub-task keeps the disk ~fully busy and the CPU
/// at ~20%: loadFn_PR = 0.2·0.2 + 0.8·0.8 = 0.68. A lone AP sub-task pins
/// the CPU: loadFn_AP = 1.0.
[[nodiscard]] constexpr double single_task_load(const LoadWeights& weights) {
  return weights.cpu * weights.cpu + weights.disk * weights.disk;
}

}  // namespace qadist::sched
