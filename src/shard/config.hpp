#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace qadist::shard {

/// Corpus-sharding and index-replication plan. The paper replicates the
/// full TREC collection on every node's disk, so PR can run anywhere —
/// fine for 12 nodes, fatal once the collection outgrows a single disk.
/// With sharding enabled, the collection's sub-collections are grouped
/// into `num_shards` document-partitioned index shards, each stored on
/// `replication` nodes chosen by rendezvous hashing, and PR becomes a
/// scatter-gather over the shards' replica holders.
///
/// `num_shards == 0` (the default) disables the subsystem entirely: no
/// shard map is built and every run is bit-identical to the pre-shard
/// system. `replication == 0` (or >= nodes) means full replication —
/// every node holds every shard, placement is unconstrained, and the
/// event sequence matches the paper's full-replication behaviour exactly;
/// only the per-node storage accounting is added.
struct ShardConfig {
  /// Index shards the corpus is partitioned into; 0 disables sharding.
  std::size_t num_shards = 0;
  /// Replica holders per shard (R). 0 or >= nodes: full replication.
  std::size_t replication = 0;
  /// Pacing floor for background re-replication after a holder crashes:
  /// copying one shard takes at least shard_bytes / rebuild_bandwidth on
  /// top of the contended disk/network transfers it pays.
  Bandwidth rebuild_bandwidth = Bandwidth::from_megabytes_per_second(20.0);
  /// Simulated on-disk size of one shard replica (storage accounting and
  /// re-replication cost). The synthetic corpus is tiny; this models the
  /// TREC-scale artifact each replica would pin.
  Bytes shard_bytes = 64_MB;
  /// Host CPU charged per gathered PR leg in sharded mode: merging one
  /// shard's scored paragraphs into the stream feeding Paragraph Scoring.
  Seconds partial_merge_cpu = 5e-3;

  [[nodiscard]] bool enabled() const { return num_shards > 0; }

  /// Replica count actually used on an `nodes`-node cluster.
  [[nodiscard]] std::size_t effective_replication(std::size_t nodes) const {
    if (replication == 0 || replication >= nodes) return nodes;
    return replication;
  }

  /// Whether placement is actually constrained (R < nodes). When false,
  /// every node holds every shard and the legacy scheduling path runs
  /// unchanged (bit-compatible with full replication).
  [[nodiscard]] bool partial(std::size_t nodes) const {
    return enabled() && effective_replication(nodes) < nodes;
  }
};

}  // namespace qadist::shard
