#include "shard/shard_map.hpp"

#include <algorithm>

#include "cache/affinity.hpp"
#include "common/check.hpp"

namespace qadist::shard {

namespace {
/// Per-shard rendezvous signature. The constant is the golden-ratio
/// splitmix64 increment; rendezvous_pick mixes it against each member, so
/// consecutive shard ids land on uncorrelated node rankings.
std::uint64_t shard_signature(ShardId shard) {
  return (static_cast<std::uint64_t>(shard) + 1) * 0x9e3779b97f4a7c15ULL;
}
}  // namespace

ShardMap::ShardMap(std::size_t num_shards, std::size_t nodes,
                   std::size_t replication)
    : ShardMap(num_shards, nodes, replication, {}) {}

ShardMap::ShardMap(std::size_t num_shards, std::size_t nodes,
                   std::size_t replication,
                   std::span<const std::pair<NodeId, NodeId>> pools) {
  QADIST_CHECK(num_shards > 0, << "shard map over zero shards");
  QADIST_CHECK(nodes > 0, << "shard map over zero nodes");
  QADIST_CHECK(pools.empty() || pools.size() == num_shards,
               << "shard pools must cover every shard: got " << pools.size()
               << " pools for " << num_shards << " shards");
  replication_ = std::min(replication == 0 ? nodes : replication, nodes);
  by_shard_.resize(num_shards);
  lost_.resize(nodes);
  pools_.assign(pools.begin(), pools.end());
  for (const auto& [first, last] : pools_) {
    QADIST_CHECK(first < last && last <= nodes,
                 << "bad shard pool [" << first << ", " << last << ") over "
                 << nodes << " nodes");
  }
  for (ShardId s = 0; s < num_shards; ++s) {
    const auto [first, last] = pool_of(s);
    std::vector<NodeId> pool;
    pool.reserve(last - first);
    for (NodeId n = first; n < last; ++n) pool.push_back(n);
    const auto order = rendezvous_order(s, std::move(pool));
    const std::size_t replicas = std::min(replication_, order.size());
    for (std::size_t r = 0; r < replicas; ++r) {
      add_replica(s, order[r], ReplicaState::kReady);
    }
  }
}

std::pair<NodeId, NodeId> ShardMap::pool_of(ShardId shard) const {
  QADIST_CHECK(shard < by_shard_.size(), << "shard " << shard
                                         << " out of range");
  if (pools_.empty()) return {0, static_cast<NodeId>(lost_.size())};
  return pools_[shard];
}

bool ShardMap::in_pool(ShardId shard, NodeId node) const {
  if (pools_.empty()) return true;
  const auto& [first, last] = pools_[shard];
  return node >= first && node < last;
}

std::vector<NodeId> ShardMap::rendezvous_order(ShardId shard,
                                               std::vector<NodeId> pool) {
  std::vector<NodeId> order;
  order.reserve(pool.size());
  while (!pool.empty()) {
    const auto pick = cache::rendezvous_pick(shard_signature(shard), pool);
    order.push_back(*pick);
    pool.erase(std::find(pool.begin(), pool.end(), *pick));
  }
  return order;
}

std::span<const Replica> ShardMap::replicas(ShardId shard) const {
  return by_shard_.at(shard);
}

std::vector<NodeId> ShardMap::ready_holders(ShardId shard) const {
  std::vector<NodeId> out;
  for (const Replica& r : by_shard_.at(shard)) {
    if (r.state == ReplicaState::kReady) out.push_back(r.node);
  }
  return out;
}

std::optional<NodeId> ShardMap::ready_source(ShardId shard) const {
  const auto holders = ready_holders(shard);
  if (holders.empty()) return std::nullopt;
  return cache::rendezvous_pick(shard_signature(shard), holders);
}

bool ShardMap::holds(NodeId node, ShardId shard) const {
  for (const Replica& r : by_shard_.at(shard)) {
    if (r.node == node) return true;
  }
  return false;
}

bool ShardMap::ready(NodeId node, ShardId shard) const {
  for (const Replica& r : by_shard_.at(shard)) {
    if (r.node == node) return r.state == ReplicaState::kReady;
  }
  return false;
}

std::vector<ShardId> ShardMap::shards_of(NodeId node) const {
  std::vector<ShardId> out;
  for (ShardId s = 0; s < by_shard_.size(); ++s) {
    if (holds(node, s)) out.push_back(s);
  }
  return out;
}

std::size_t ShardMap::replica_count(NodeId node) const {
  std::size_t count = 0;
  for (const auto& replicas : by_shard_) {
    for (const Replica& r : replicas) {
      if (r.node == node) ++count;
    }
  }
  return count;
}

void ShardMap::add_replica(ShardId shard, NodeId node, ReplicaState state) {
  auto& replicas = by_shard_.at(shard);
  const auto pos = std::lower_bound(
      replicas.begin(), replicas.end(), node,
      [](const Replica& r, NodeId n) { return r.node < n; });
  QADIST_CHECK(pos == replicas.end() || pos->node != node,
               << "duplicate replica of shard " << shard << " on node "
               << node);
  replicas.insert(pos, Replica{node, state});
}

bool ShardMap::remove_replica(ShardId shard, NodeId node, ReplicaState* was) {
  auto& replicas = by_shard_.at(shard);
  for (auto it = replicas.begin(); it != replicas.end(); ++it) {
    if (it->node != node) continue;
    if (was != nullptr) *was = it->state;
    replicas.erase(it);
    return true;
  }
  return false;
}

ShardMap::FailoverPlan ShardMap::fail_node(NodeId node,
                                           std::span<const NodeId> live) {
  FailoverPlan plan;
  auto& stash = lost_.at(node);
  for (ShardId s = 0; s < by_shard_.size(); ++s) {
    if (!remove_replica(s, node)) continue;
    stash.push_back(s);
    if (ready_holders(s).empty()) {
      // A validating/rebuilding copy elsewhere may still land, but right
      // now nothing can source a rebuild: the shard is dark until this
      // node rejoins and re-validates (or an in-flight rebuild finishes).
      plan.unavailable.push_back(s);
      continue;
    }
    // Reserve the rendezvous-next live node that holds nothing of this
    // shard yet. Marking it kRebuilding immediately keeps a second crash
    // in the same sweep from double-assigning the slot.
    std::vector<NodeId> candidates;
    for (NodeId n : live) {
      if (n != node && in_pool(s, n) && !holds(n, s)) candidates.push_back(n);
    }
    if (candidates.empty()) continue;  // no spare capacity: stay degraded
    const auto order = rendezvous_order(s, std::move(candidates));
    add_replica(s, order.front(), ReplicaState::kRebuilding);
    plan.rebuilds.push_back(RebuildTask{s, order.front()});
  }
  return plan;
}

void ShardMap::complete_rebuild(ShardId shard, NodeId target) {
  for (Replica& r : by_shard_.at(shard)) {
    if (r.node == target && r.state == ReplicaState::kRebuilding) {
      r.state = ReplicaState::kReady;
      return;
    }
  }
}

void ShardMap::abort_rebuild(ShardId shard, NodeId target) {
  auto& replicas = by_shard_.at(shard);
  for (auto it = replicas.begin(); it != replicas.end(); ++it) {
    if (it->node == target && it->state == ReplicaState::kRebuilding) {
      replicas.erase(it);
      return;
    }
  }
}

std::vector<ShardId> ShardMap::begin_validation(NodeId node) {
  std::vector<ShardId> shards = std::move(lost_.at(node));
  lost_.at(node).clear();
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  for (ShardId s : shards) {
    if (!holds(node, s)) add_replica(s, node, ReplicaState::kValidating);
  }
  return shards;
}

std::size_t ShardMap::complete_validation(NodeId node) {
  std::size_t promoted = 0;
  for (auto& replicas : by_shard_) {
    for (Replica& r : replicas) {
      if (r.node == node && r.state == ReplicaState::kValidating) {
        r.state = ReplicaState::kReady;
        ++promoted;
      }
    }
  }
  return promoted;
}

}  // namespace qadist::shard
