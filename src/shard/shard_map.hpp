#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace qadist::shard {

using NodeId = std::uint32_t;
using ShardId = std::uint32_t;

/// Lifecycle of one shard replica on one node.
enum class ReplicaState : std::uint8_t {
  kReady,       ///< serving retrieval
  kRebuilding,  ///< being copied from a surviving replica (failover)
  kValidating,  ///< rejoined holder re-scanning its on-disk copy
};

struct Replica {
  NodeId node = 0;
  ReplicaState state = ReplicaState::kReady;
};

/// Shard-to-node placement with replication, plus the failure lifecycle.
///
/// Placement is rendezvous (HRW) hashing — the top-R nodes by mixed hash
/// of (shard, node) hold the shard — so it is deterministic, independent
/// of enumeration order, and membership-stable: a node loss moves only the
/// replicas it held, never reshuffles the survivors (the same properties
/// the cache-affinity dispatch relies on, reusing cache::rendezvous_pick).
///
/// The map is pure bookkeeping: it picks failover targets and tracks
/// replica states, while the cluster pays the simulated disk/network cost
/// of every rebuild and validation before reporting completion back.
class ShardMap {
 public:
  ShardMap() = default;
  /// Places `num_shards` shards over nodes [0, nodes) with `replication`
  /// replicas each (clamped to the node count).
  ShardMap(std::size_t num_shards, std::size_t nodes, std::size_t replication);

  /// Group-constrained placement for the broker tier: shard s may only
  /// place (and fail over) within the contiguous node range
  /// `pools[s] = [first, last)` — its broker group — so a broker can
  /// resolve every shard of its group inside its own subtree. Replication
  /// is clamped per shard to its pool size. `pools.size()` must equal
  /// `num_shards`; rendezvous ranking within a pool is unchanged.
  ShardMap(std::size_t num_shards, std::size_t nodes, std::size_t replication,
           std::span<const std::pair<NodeId, NodeId>> pools);

  /// The placement pool of a shard: `[first, last)` node range it may
  /// occupy. Unconstrained maps report the full `[0, nodes)` range.
  [[nodiscard]] std::pair<NodeId, NodeId> pool_of(ShardId shard) const;

  [[nodiscard]] std::size_t num_shards() const { return by_shard_.size(); }
  [[nodiscard]] std::size_t replication() const { return replication_; }
  [[nodiscard]] std::size_t nodes() const { return lost_.size(); }

  /// Shard owning PR iterative unit `unit` (sub-collection `unit` of the
  /// plan): units are striped round-robin over the shards.
  [[nodiscard]] ShardId shard_of_unit(std::size_t unit) const {
    return static_cast<ShardId>(unit % by_shard_.size());
  }

  /// All replicas of a shard (any state), sorted by node id.
  [[nodiscard]] std::span<const Replica> replicas(ShardId shard) const;

  /// Nodes currently serving the shard (kReady replicas), ascending ids.
  [[nodiscard]] std::vector<NodeId> ready_holders(ShardId shard) const;

  /// Rendezvous-best kReady holder — the canonical copy source for a
  /// rebuild; nullopt when no ready replica survives.
  [[nodiscard]] std::optional<NodeId> ready_source(ShardId shard) const;

  [[nodiscard]] bool holds(NodeId node, ShardId shard) const;
  [[nodiscard]] bool ready(NodeId node, ShardId shard) const;

  /// Shards a node holds in any state, ascending.
  [[nodiscard]] std::vector<ShardId> shards_of(NodeId node) const;

  /// Replicas a node holds (any state — a rebuilding copy already pins
  /// disk), i.e. its storage in units of shards.
  [[nodiscard]] std::size_t replica_count(NodeId node) const;
  [[nodiscard]] Bytes storage_bytes(NodeId node, Bytes shard_bytes) const {
    return replica_count(node) * shard_bytes;
  }

  /// One failover copy the cluster must run: re-create `shard` on
  /// `target` (already marked kRebuilding here) from a surviving ready
  /// replica, then report complete_rebuild / abort_rebuild.
  struct RebuildTask {
    ShardId shard = 0;
    NodeId target = 0;
  };
  struct FailoverPlan {
    std::vector<RebuildTask> rebuilds;
    /// Shards with no ready replica left anywhere: unavailable until the
    /// failed holder rejoins and re-validates its on-disk copies.
    std::vector<ShardId> unavailable;
  };

  /// Drops every replica `node` held (remembering them for a later
  /// rejoin) and, for each shard that still has a ready copy, reserves a
  /// new replica on the rendezvous-next node from `live` that does not
  /// already hold it. Shards whose spare capacity is exhausted (every
  /// live node already holds them) are simply left under-replicated.
  [[nodiscard]] FailoverPlan fail_node(NodeId node,
                                       std::span<const NodeId> live);

  /// Rebuild outcome callbacks. Both are idempotent no-ops when the
  /// (shard, target) replica is no longer kRebuilding — the target may
  /// have crashed and been stripped while the copy was in flight.
  void complete_rebuild(ShardId shard, NodeId target);
  void abort_rebuild(ShardId shard, NodeId target);

  /// Rejoin: re-enters the shards `node` held when it failed, as
  /// kValidating replicas (its on-disk copies must be re-scanned before
  /// they serve). Returns the shards to validate and clears the stash.
  [[nodiscard]] std::vector<ShardId> begin_validation(NodeId node);

  /// Promotes every kValidating replica of `node` to kReady; returns how
  /// many were promoted.
  std::size_t complete_validation(NodeId node);

 private:
  /// Rendezvous order of `pool` for `shard` (best first).
  [[nodiscard]] static std::vector<NodeId> rendezvous_order(
      ShardId shard, std::vector<NodeId> pool);

  void add_replica(ShardId shard, NodeId node, ReplicaState state);
  bool remove_replica(ShardId shard, NodeId node, ReplicaState* was = nullptr);

  [[nodiscard]] bool in_pool(ShardId shard, NodeId node) const;

  std::vector<std::vector<Replica>> by_shard_;
  std::vector<std::vector<ShardId>> lost_;  ///< per-node stash for rejoin
  /// Per-shard placement pool [first, last); empty = unconstrained.
  std::vector<std::pair<NodeId, NodeId>> pools_;
  std::size_t replication_ = 0;
};

}  // namespace qadist::shard
