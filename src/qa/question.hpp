#pragma once

#include <string>
#include <vector>

#include "corpus/entity.hpp"
#include "corpus/generator.hpp"

namespace qadist::qa {

/// Output of the Question Processing module: the expected answer entity
/// type plus the retrieval keywords (analyzer-normalized, deduplicated,
/// question order preserved — the order matters to the answer-window
/// same-order heuristic).
struct ProcessedQuestion {
  std::uint32_t id = 0;
  std::string text;
  corpus::EntityType answer_type = corpus::EntityType::kUnknown;
  std::vector<std::string> keywords;
};

/// A paragraph handed from Paragraph Retrieval to scoring: its address,
/// materialized text, and the retrieval-time keyword hit count.
struct RetrievedParagraph {
  corpus::ParagraphRef ref;
  std::string text;
  std::uint32_t keywords_present = 0;
};

/// A paragraph with its Paragraph Scoring rank value attached.
struct ScoredParagraph {
  RetrievedParagraph paragraph;
  double score = 0.0;
};

/// One extracted answer: the candidate entity plus its surrounding answer
/// window (the "50/250 bytes of text" the paper returns), and its combined
/// heuristic score.
struct Answer {
  std::string candidate;  ///< the entity string proposed as the answer
  std::string window;     ///< short context snippet around the candidate
  double score = 0.0;
  corpus::ParagraphRef ref;
  corpus::EntityType type = corpus::EntityType::kUnknown;
};

}  // namespace qadist::qa
