#include "qa/question_processing.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace qadist::qa {

using corpus::EntityType;

EntityType QuestionProcessor::classify(const std::string& question) const {
  const std::string q = to_lower(question);
  const auto has = [&](std::string_view needle) {
    return q.find(needle) != std::string::npos;
  };

  // Most specific cues first: "what ..." questions need their noun focus.
  if (has("nationality")) return EntityType::kNationality;
  if (has("population") || has("how many")) return EntityType::kQuantity;
  if (has("how much") || has("cost")) return EntityType::kMoney;
  if (has("disease") || has("treat")) return EntityType::kDisease;
  if (has("when ") || q.starts_with("when")) return EntityType::kDate;
  if (has("who ") || q.starts_with("who")) return EntityType::kPerson;
  if (has("where ") || q.starts_with("where")) return EntityType::kLocation;
  if (has("what city") || has("what country") || has("what place"))
    return EntityType::kLocation;
  if (has("what company") || has("what organization"))
    return EntityType::kOrganization;
  return EntityType::kUnknown;
}

ProcessedQuestion QuestionProcessor::process(std::uint32_t id,
                                             const std::string& question) const {
  ProcessedQuestion out;
  out.id = id;
  out.text = question;
  out.answer_type = classify(question);
  // Keywords: analyzer-normalized content terms, deduplicated but kept in
  // question order (the answer-window heuristics compare orders).
  for (auto& term : analyzer_->index_terms(question)) {
    if (std::find(out.keywords.begin(), out.keywords.end(), term) ==
        out.keywords.end()) {
      out.keywords.push_back(std::move(term));
    }
  }
  return out;
}

}  // namespace qadist::qa
