#pragma once

#include <span>
#include <string>
#include <vector>

#include "ir/analyzer.hpp"

namespace qadist::qa {

/// Maps each paragraph token to the index of the (analyzer-normalized)
/// keyword it matches, or -1. Shared by paragraph scoring and answer
/// windowing so both stages agree on what counts as a keyword hit.
[[nodiscard]] std::vector<int> map_keywords(
    const ir::Analyzer& analyzer, std::span<const std::string> keywords,
    const std::vector<ir::Token>& tokens);

/// Space-joined surface form of a token range, re-capitalizing tokens whose
/// source was capitalized. (Punctuation between tokens is not recoverable.)
[[nodiscard]] std::string surface_span(const std::vector<ir::Token>& tokens,
                                       std::size_t first, std::size_t count);

}  // namespace qadist::qa
