#pragma once

#include <span>
#include <string>

#include "corpus/generator.hpp"
#include "qa/engine.hpp"

namespace qadist::qa {

/// TREC-style quality metrics over a question set with gold answers — the
/// evaluation FALCON was ranked first by (66.4% short / 86.1% long correct
/// answers in TREC-9). Our closed synthetic world should score higher; the
/// metric exists so quality regressions in the pipeline are caught, not
/// because the paper's contribution is qualitative.
struct EvaluationResult {
  std::size_t questions = 0;
  std::size_t answered = 0;       ///< questions with at least one answer
  std::size_t correct_at_1 = 0;   ///< gold answer ranked first
  std::size_t correct_at_k = 0;   ///< gold answer anywhere in the returned list
  double mrr = 0.0;               ///< mean reciprocal rank of the gold answer

  [[nodiscard]] double accuracy_at_1() const {
    return questions == 0 ? 0.0
                          : static_cast<double>(correct_at_1) /
                                static_cast<double>(questions);
  }
  [[nodiscard]] double accuracy_at_k() const {
    return questions == 0 ? 0.0
                          : static_cast<double>(correct_at_k) /
                                static_cast<double>(questions);
  }
};

/// Token-normalized answer comparison: lowercase, punctuation-insensitive
/// ("March 14 , 1912" matches "march 14 1912").
[[nodiscard]] bool answer_matches(const ir::Analyzer& analyzer,
                                  const std::string& candidate,
                                  const std::string& gold);

/// Runs every question through the engine and scores the answer lists.
[[nodiscard]] EvaluationResult evaluate(
    const Engine& engine, std::span<const corpus::Question> questions);

}  // namespace qadist::qa
