#pragma once

#include <string>
#include <vector>

#include "corpus/entity.hpp"
#include "ir/analyzer.hpp"

namespace qadist::qa {

/// One entity mention found in a paragraph.
struct EntityMention {
  corpus::EntityType type = corpus::EntityType::kUnknown;
  std::uint32_t first_token = 0;  ///< index into the paragraph's token list
  std::uint32_t token_count = 0;
  std::string text;          ///< surface form, space-joined original tokens
  double confidence = 1.0;   ///< 1.0 gazetteer hit, lower for pattern hits
};

/// Named-entity recognizer: the candidate-answer detector of the Answer
/// Processing module (the paper's "advanced NLP techniques ... named-entity
/// recognition for the detection of candidate answers").
///
/// Two mechanisms:
///  * gazetteer matching — longest-match n-gram scan over capitalized token
///    spans against the generated world's dictionary;
///  * patterns — DATE ("March 14 , 1912" or a bare 4-digit year),
///    QUANTITY (standalone multi-digit numbers), MONEY ("$ <num> [million]").
///
/// This is intentionally the most CPU-hungry stage per token, mirroring why
/// AP dominates the paper's Table 2 (69.7% of task time in TREC-9).
class EntityRecognizer {
 public:
  EntityRecognizer(const corpus::Gazetteer& gazetteer,
                   const ir::Analyzer& analyzer)
      : gazetteer_(&gazetteer), analyzer_(&analyzer) {}

  /// Finds all non-overlapping mentions; prefers longer gazetteer matches.
  [[nodiscard]] std::vector<EntityMention> recognize(
      const std::vector<ir::Token>& tokens) const;

  /// Tokenize + recognize in one call.
  [[nodiscard]] std::vector<EntityMention> recognize_text(
      std::string_view text) const;

 private:
  const corpus::Gazetteer* gazetteer_;
  const ir::Analyzer* analyzer_;
};

}  // namespace qadist::qa
