#pragma once

#include <vector>

#include "ir/analyzer.hpp"
#include "qa/question.hpp"

namespace qadist::qa {

/// Paragraph Scoring (PS): ranks one retrieved paragraph with the three
/// surface-text heuristics of LASSO/FALCON (paper Sec. 2.1 — keyword
/// presence, same-word-sequence, inter-keyword distance). Iterative unit:
/// the paragraph — this is what gets partitioned intra-question.
///
/// Heuristics (each normalized to [0,1], then weighted):
///  H1 completeness: fraction of question keywords present;
///  H2 sequence:     longest run of keywords appearing in question order;
///  H3 proximity:    1 / (1 + smallest token window covering all present
///                   keywords).
class ParagraphScorer {
 public:
  struct Weights {
    double completeness = 0.5;
    double sequence = 0.2;
    double proximity = 0.3;
  };

  explicit ParagraphScorer(const ir::Analyzer& analyzer)
      : analyzer_(&analyzer) {}
  ParagraphScorer(const ir::Analyzer& analyzer, Weights weights)
      : analyzer_(&analyzer), weights_(weights) {}

  /// Scores one paragraph against the question. Thread-safe.
  [[nodiscard]] ScoredParagraph score(const ProcessedQuestion& question,
                                      RetrievedParagraph paragraph) const;

  /// Convenience: score a whole batch in order.
  [[nodiscard]] std::vector<ScoredParagraph> score_all(
      const ProcessedQuestion& question,
      std::vector<RetrievedParagraph> paragraphs) const;

 private:
  const ir::Analyzer* analyzer_;
  Weights weights_;
};

}  // namespace qadist::qa
