#include "qa/engine.hpp"

#include <chrono>

#include "common/check.hpp"

namespace qadist::qa {

namespace {

/// Monotonic wall-clock seconds for module timing.
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ModuleTimes& ModuleTimes::operator+=(const ModuleTimes& other) {
  qp += other.qp;
  pr += other.pr;
  ps += other.ps;
  po += other.po;
  ap += other.ap;
  return *this;
}

Engine::Engine(const corpus::GeneratedCorpus& corpus, EngineConfig config)
    : config_(config),
      collection_(&corpus.collection),
      recognizer_(corpus.gazetteer, analyzer_),
      question_processor_(analyzer_),
      retriever_(corpus.collection, config.min_paragraphs_per_subcollection),
      scorer_(analyzer_, config.scoring),
      orderer_(config.ordering),
      answer_processor_(recognizer_, analyzer_, config.answers) {
  QADIST_CHECK(config.subcollections >= 1);
  subcollections_ = corpus::split_collection_skewed(
      corpus.collection, config.subcollections,
      config.subcollection_size_ratio);
  indexes_.reserve(subcollections_.size());
  for (const auto& sub : subcollections_) {
    indexes_.push_back(ir::InvertedIndex::build(sub, analyzer_));
  }
}

ProcessedQuestion Engine::process_question(std::uint32_t id,
                                           const std::string& text) const {
  return question_processor_.process(id, text);
}

std::vector<RetrievedParagraph> Engine::retrieve(
    std::size_t subcollection, const ProcessedQuestion& question,
    RetrievalWork* work) const {
  QADIST_CHECK(subcollection < indexes_.size());
  return retriever_.retrieve(indexes_[subcollection], question, work);
}

ScoredParagraph Engine::score(const ProcessedQuestion& question,
                              RetrievedParagraph paragraph) const {
  return scorer_.score(question, std::move(paragraph));
}

std::vector<ScoredParagraph> Engine::order(
    std::vector<ScoredParagraph> paragraphs) const {
  return orderer_.order_and_filter(std::move(paragraphs));
}

std::vector<Answer> Engine::answer_paragraphs(
    const ProcessedQuestion& question,
    std::span<const ScoredParagraph> paragraphs, AnswerWork* work) const {
  return answer_processor_.process(question, paragraphs, work);
}

QAResult Engine::answer(std::uint32_t id, const std::string& text) const {
  QAResult result;

  double t0 = now_seconds();
  result.question = process_question(id, text);
  result.times.qp = now_seconds() - t0;

  t0 = now_seconds();
  std::vector<RetrievedParagraph> retrieved;
  for (std::size_t sub = 0; sub < indexes_.size(); ++sub) {
    auto batch = retrieve(sub, result.question, &result.work.retrieval);
    retrieved.insert(retrieved.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
  }
  result.work.paragraphs_retrieved = retrieved.size();
  result.times.pr = now_seconds() - t0;

  t0 = now_seconds();
  std::vector<ScoredParagraph> scored;
  scored.reserve(retrieved.size());
  for (auto& p : retrieved) {
    scored.push_back(score(result.question, std::move(p)));
  }
  result.times.ps = now_seconds() - t0;

  t0 = now_seconds();
  auto accepted = order(std::move(scored));
  result.work.paragraphs_accepted = accepted.size();
  result.times.po = now_seconds() - t0;

  t0 = now_seconds();
  result.answers =
      answer_paragraphs(result.question, accepted, &result.work.answer);
  result.times.ap = now_seconds() - t0;

  return result;
}

const ir::InvertedIndex& Engine::index(std::size_t sub) const {
  QADIST_CHECK(sub < indexes_.size());
  return indexes_[sub];
}

const corpus::SubCollection& Engine::subcollection(std::size_t sub) const {
  QADIST_CHECK(sub < subcollections_.size());
  return subcollections_[sub];
}

}  // namespace qadist::qa
