#include "qa/paragraph_retrieval.hpp"

namespace qadist::qa {

std::vector<RetrievedParagraph> ParagraphRetriever::retrieve(
    const ir::InvertedIndex& index, const ProcessedQuestion& question,
    RetrievalWork* work) const {
  std::size_t postings = 0;
  for (const auto& term : question.keywords)
    postings += index.document_frequency(term);

  const auto matches =
      ir::retrieve(index, question.keywords, min_paragraphs_);

  std::vector<RetrievedParagraph> out;
  out.reserve(matches.size());
  std::size_t bytes = 0;
  for (const auto& m : matches) {
    RetrievedParagraph p;
    p.ref = m.ref;
    p.text = collection_->paragraph(m.ref);
    p.keywords_present = m.keywords_present;
    bytes += p.text.size();
    out.push_back(std::move(p));
  }
  if (work != nullptr) {
    work->postings_scanned += postings;
    work->paragraphs_returned += out.size();
    work->bytes_materialized += bytes;
  }
  return out;
}

}  // namespace qadist::qa
