#include "qa/ner.hpp"

#include <array>

#include "qa/text_match.hpp"

namespace qadist::qa {

namespace {

bool is_month(std::string_view w) {
  static constexpr std::array<std::string_view, 12> kMonths = {
      "january", "february", "march",     "april",   "may",      "june",
      "july",    "august",   "september", "october", "november", "december"};
  for (auto m : kMonths)
    if (w == m) return true;
  return false;
}

bool is_year(const ir::Token& t) {
  if (!t.numeric || t.text.size() != 4) return false;
  const int y = std::stoi(t.text);
  return y >= 1000 && y <= 2100;
}

std::string surface(const std::vector<ir::Token>& tokens, std::uint32_t first,
                    std::uint32_t count) {
  return surface_span(tokens, first, count);
}

}  // namespace

std::vector<EntityMention> EntityRecognizer::recognize(
    const std::vector<ir::Token>& tokens) const {
  std::vector<EntityMention> mentions;
  const auto n = static_cast<std::uint32_t>(tokens.size());
  const auto max_len =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, gazetteer_->max_tokens()));

  std::uint32_t i = 0;
  while (i < n) {
    const ir::Token& tok = tokens[i];

    // --- Gazetteer: longest capitalized-led n-gram first. Entity names may
    // begin with a lowercase article ("the Amsen Lighthouse"), so "the" is
    // also allowed to open a candidate span.
    if (tok.capitalized || tok.text == "the") {
      bool matched = false;
      const std::uint32_t limit = std::min(max_len, n - i);
      for (std::uint32_t len = limit; len >= 1 && !matched; --len) {
        std::string key;
        for (std::uint32_t k = i; k < i + len; ++k) {
          if (!key.empty()) key += ' ';
          key += tokens[k].text;
        }
        if (const auto type = gazetteer_->lookup(key)) {
          mentions.push_back(EntityMention{*type, i, len,
                                           surface(tokens, i, len), 1.0});
          i += len;
          matched = true;
        }
      }
      if (matched) continue;
    }

    // --- DATE: "<month> <day> [<year>]" or a bare plausible year.
    if (is_month(tok.text) && i + 1 < n && tokens[i + 1].numeric) {
      std::uint32_t len = 2;
      if (i + 2 < n && is_year(tokens[i + 2])) len = 3;
      mentions.push_back(EntityMention{corpus::EntityType::kDate, i, len,
                                       surface(tokens, i, len), 0.9});
      i += len;
      continue;
    }
    if (is_year(tok)) {
      mentions.push_back(EntityMention{corpus::EntityType::kDate, i, 1,
                                       surface(tokens, i, 1), 0.6});
      ++i;
      continue;
    }

    // --- MONEY: "$ <number> [million|thousand|billion]".
    if (tok.text == "$" && i + 1 < n && tokens[i + 1].numeric) {
      std::uint32_t len = 2;
      if (i + 2 < n &&
          (tokens[i + 2].text == "million" || tokens[i + 2].text == "thousand" ||
           tokens[i + 2].text == "billion")) {
        len = 3;
      }
      mentions.push_back(EntityMention{corpus::EntityType::kMoney, i, len,
                                       surface(tokens, i, len), 0.9});
      i += len;
      continue;
    }

    // --- QUANTITY: standalone multi-digit numbers (years already handled).
    if (tok.numeric && tok.text.size() >= 3) {
      mentions.push_back(EntityMention{corpus::EntityType::kQuantity, i, 1,
                                       surface(tokens, i, 1), 0.9});
      ++i;
      continue;
    }

    ++i;
  }
  return mentions;
}

std::vector<EntityMention> EntityRecognizer::recognize_text(
    std::string_view text) const {
  return recognize(analyzer_->tokenize(text));
}

}  // namespace qadist::qa
