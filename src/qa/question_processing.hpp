#pragma once

#include "corpus/generator.hpp"
#include "ir/analyzer.hpp"
#include "qa/question.hpp"

namespace qadist::qa {

/// Question Processing (QP): the first, non-iterative pipeline module
/// (paper Fig. 1, ~1% of task time). Classifies the expected answer type
/// from the question's interrogative structure and extracts the retrieval
/// keywords.
class QuestionProcessor {
 public:
  explicit QuestionProcessor(const ir::Analyzer& analyzer)
      : analyzer_(&analyzer) {}

  /// Rule-based answer-type classification ("where" -> LOCATION, "who" ->
  /// PERSON, "when" -> DATE, "how much"/"cost" -> MONEY, ...). Falls back
  /// to kUnknown, in which case answer processing accepts any entity type.
  [[nodiscard]] corpus::EntityType classify(const std::string& question) const;

  /// Full QP: classify + keyword extraction.
  [[nodiscard]] ProcessedQuestion process(std::uint32_t id,
                                          const std::string& question) const;
  [[nodiscard]] ProcessedQuestion process(const corpus::Question& q) const {
    return process(q.id, q.text);
  }

 private:
  const ir::Analyzer* analyzer_;
};

}  // namespace qadist::qa
