#include "qa/answer_processing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "qa/text_match.hpp"

namespace qadist::qa {

namespace {

/// Trims `window` to `budget` bytes, keeping the candidate centered — the
/// paper's 50/250-byte answer presentation (Table 1). Cuts land on token
/// boundaries (spaces) where possible.
std::string trim_window(std::string window, const std::string& candidate,
                        std::size_t budget) {
  if (window.size() <= budget) return window;
  const std::size_t cand_pos = window.find(candidate);
  const std::size_t cand_mid =
      cand_pos == std::string::npos ? window.size() / 2
                                    : cand_pos + candidate.size() / 2;
  std::size_t begin = cand_mid > budget / 2 ? cand_mid - budget / 2 : 0;
  if (begin + budget > window.size()) begin = window.size() - budget;
  // Snap to token boundaries (never cutting into the candidate itself).
  std::size_t end = begin + budget;
  if (begin > 0) {
    const std::size_t space = window.find(' ', begin);
    if (space != std::string::npos &&
        (cand_pos == std::string::npos || space < cand_pos)) {
      begin = space + 1;
    }
  }
  if (end < window.size()) {
    const std::size_t space = window.rfind(' ', end);
    if (space != std::string::npos && space > begin &&
        (cand_pos == std::string::npos ||
         space >= cand_pos + candidate.size())) {
      end = space;
    }
  }
  return window.substr(begin, end - begin);
}

bool is_linking_word(std::string_view w) {
  return w == "is" || w == "was" || w == "in" || w == "by" || w == "of" ||
         w == "for" || w == "to" || w == "cost" || w == "treat";
}

/// True when every candidate token is itself a question keyword — i.e. the
/// candidate is (part of) the question's subject.
bool candidate_is_subject(const ir::Analyzer& analyzer,
                          std::span<const std::string> keywords,
                          const std::vector<ir::Token>& tokens,
                          const EntityMention& mention) {
  for (std::uint32_t i = mention.first_token;
       i < mention.first_token + mention.token_count; ++i) {
    const auto& tok = tokens[i];
    if (ir::is_stopword(tok.text)) continue;
    const std::string norm = tok.numeric ? tok.text : analyzer.stem(tok.text);
    if (std::find(keywords.begin(), keywords.end(), norm) == keywords.end())
      return false;
  }
  return true;
}

}  // namespace

std::vector<Answer> AnswerProcessor::process_paragraph(
    const ProcessedQuestion& question, const ScoredParagraph& paragraph,
    AnswerWork* work) const {
  const auto tokens = analyzer_->tokenize(paragraph.paragraph.text);
  const auto keyword_map = map_keywords(*analyzer_, question.keywords, tokens);
  const auto mentions = recognizer_->recognize(tokens);

  if (work != nullptr) {
    ++work->paragraphs_processed;
    work->tokens_scanned += tokens.size();
  }

  const std::size_t k = question.keywords.size();
  std::vector<Answer> answers;

  for (const EntityMention& mention : mentions) {
    if (work != nullptr) ++work->candidates_considered;

    // Type filter: the candidate must carry the expected answer type
    // (kUnknown questions accept any entity).
    if (question.answer_type != corpus::EntityType::kUnknown &&
        mention.type != question.answer_type) {
      continue;
    }
    if (candidate_is_subject(*analyzer_, question.keywords, tokens, mention))
      continue;

    // --- Build the answer window: candidate plus the nearest occurrence of
    // each present keyword, clipped to max_window_tokens around the
    // candidate.
    const std::size_t cand_begin = mention.first_token;
    const std::size_t cand_end = mention.first_token + mention.token_count - 1;
    std::size_t win_begin = cand_begin;
    std::size_t win_end = cand_end;
    double distance_sum = 0.0;
    std::size_t distance_terms = 0;

    std::vector<std::ptrdiff_t> nearest(k, -1);
    for (std::size_t t = 0; t < keyword_map.size(); ++t) {
      const int m = keyword_map[t];
      if (m < 0) continue;
      const auto mk = static_cast<std::size_t>(m);
      const auto dist_now =
          t < cand_begin ? cand_begin - t : (t > cand_end ? t - cand_end : 0);
      if (nearest[mk] < 0) {
        nearest[mk] = static_cast<std::ptrdiff_t>(t);
      } else {
        const auto prev = static_cast<std::size_t>(nearest[mk]);
        const auto dist_prev = prev < cand_begin ? cand_begin - prev
                               : (prev > cand_end ? prev - cand_end : 0);
        if (dist_now < dist_prev) nearest[mk] = static_cast<std::ptrdiff_t>(t);
      }
    }

    std::size_t keywords_in_window = 0;
    for (std::size_t m = 0; m < k; ++m) {
      if (nearest[m] < 0) continue;
      const auto t = static_cast<std::size_t>(nearest[m]);
      const std::size_t dist =
          t < cand_begin ? cand_begin - t : (t > cand_end ? t - cand_end : 0);
      if (dist <= config_.max_window_tokens) {
        win_begin = std::min(win_begin, t);
        win_end = std::max(win_end, t);
        distance_sum += static_cast<double>(dist);
        ++distance_terms;
        ++keywords_in_window;
      }
    }
    if (keywords_in_window == 0) continue;  // no keyword anywhere near

    if (work != nullptr) ++work->windows_scored;

    // --- Seven heuristics.
    const double h1 =
        k == 0 ? 0.0
               : static_cast<double>(keywords_in_window) /
                     static_cast<double>(k);
    const double mean_dist =
        distance_terms == 0 ? 0.0
                            : distance_sum / static_cast<double>(distance_terms);
    const double h2 = 1.0 / (1.0 + mean_dist);

    double h3 = 0.0;
    {
      // Same-order: longest question-order run among window keyword hits.
      int prev = -1;
      std::size_t run = 0;
      std::size_t best = 0;
      for (std::size_t t = win_begin; t <= win_end; ++t) {
        const int m = keyword_map[t];
        if (m < 0) continue;
        run = (m == prev + 1) ? run + 1 : 1;
        prev = m;
        best = std::max(best, run);
      }
      h3 = k == 0 ? 0.0 : static_cast<double>(best) / static_cast<double>(k);
    }

    const double h4 = mention.confidence;

    const std::size_t window_len = win_end - win_begin + 1;
    const double h5 = static_cast<double>(keywords_in_window) /
                      static_cast<double>(window_len);

    const double h6 =
        (cand_begin > 0 && is_linking_word(tokens[cand_begin - 1].text)) ? 1.0
                                                                         : 0.0;

    const double h7 = std::min(1.0, paragraph.score);

    Answer answer;
    answer.score = 0.25 * h1 + 0.20 * h2 + 0.10 * h3 + 0.10 * h4 + 0.10 * h5 +
                   0.15 * h6 + 0.10 * h7;
    answer.candidate = mention.text;
    answer.window = trim_window(surface_span(tokens, win_begin, window_len),
                                answer.candidate,
                                config_.answer_window_bytes);
    answer.ref = paragraph.paragraph.ref;
    answer.type = mention.type;
    answers.push_back(std::move(answer));
  }
  return answers;
}

std::vector<Answer> AnswerProcessor::process(
    const ProcessedQuestion& question,
    std::span<const ScoredParagraph> paragraphs, AnswerWork* work) const {
  std::vector<Answer> all;
  for (const auto& p : paragraphs) {
    auto batch = process_paragraph(question, p, work);
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return sort_answers(std::move(all), config_.answers_requested);
}

std::vector<Answer> sort_answers(std::vector<Answer> answers,
                                 std::size_t limit) {
  // Deduplicate by candidate text, keeping the best-scoring window.
  std::unordered_map<std::string, std::size_t> best;
  std::vector<Answer> unique;
  unique.reserve(answers.size());
  for (auto& a : answers) {
    const auto it = best.find(a.candidate);
    if (it == best.end()) {
      best.emplace(a.candidate, unique.size());
      unique.push_back(std::move(a));
    } else if (a.score > unique[it->second].score) {
      unique[it->second] = std::move(a);
    }
  }
  std::sort(unique.begin(), unique.end(), [](const Answer& a, const Answer& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.candidate != b.candidate) return a.candidate < b.candidate;
    return a.ref < b.ref;
  });
  if (unique.size() > limit) unique.resize(limit);
  return unique;
}

}  // namespace qadist::qa
