#include "qa/evaluation.hpp"

namespace qadist::qa {

namespace {

std::string normalize(const ir::Analyzer& analyzer, const std::string& text) {
  std::string out;
  for (const auto& tok : analyzer.tokenize(text)) {
    if (!out.empty()) out += ' ';
    out += tok.text;
  }
  return out;
}

}  // namespace

bool answer_matches(const ir::Analyzer& analyzer, const std::string& candidate,
                    const std::string& gold) {
  return normalize(analyzer, candidate) == normalize(analyzer, gold);
}

EvaluationResult evaluate(const Engine& engine,
                          std::span<const corpus::Question> questions) {
  EvaluationResult result;
  result.questions = questions.size();
  for (const auto& q : questions) {
    const auto answer = engine.answer(q);
    if (answer.answers.empty()) continue;
    ++result.answered;
    for (std::size_t rank = 0; rank < answer.answers.size(); ++rank) {
      if (answer_matches(engine.analyzer(), answer.answers[rank].candidate,
                         q.gold_answer)) {
        if (rank == 0) ++result.correct_at_1;
        ++result.correct_at_k;
        result.mrr += 1.0 / static_cast<double>(rank + 1);
        break;
      }
    }
  }
  if (result.questions > 0) {
    result.mrr /= static_cast<double>(result.questions);
  }
  return result;
}

}  // namespace qadist::qa
