#include "qa/paragraph_scoring.hpp"

#include <algorithm>
#include <limits>

#include "qa/text_match.hpp"

namespace qadist::qa {

ScoredParagraph ParagraphScorer::score(const ProcessedQuestion& question,
                                       RetrievedParagraph paragraph) const {
  const auto tokens = analyzer_->tokenize(paragraph.text);
  const auto map = map_keywords(*analyzer_, question.keywords, tokens);
  const std::size_t k = question.keywords.size();

  // H1: completeness.
  std::vector<bool> present(k, false);
  for (int m : map)
    if (m >= 0) present[static_cast<std::size_t>(m)] = true;
  const auto present_count =
      static_cast<std::size_t>(std::count(present.begin(), present.end(), true));
  const double h1 = k == 0 ? 0.0
                           : static_cast<double>(present_count) /
                                 static_cast<double>(k);

  // H2: longest run of keyword hits in question order (not necessarily
  // adjacent in the paragraph, but monotone in keyword index).
  std::size_t best_run = 0;
  {
    int prev_keyword = -1;
    std::size_t run = 0;
    for (int m : map) {
      if (m < 0) continue;
      if (m == prev_keyword + 1) {
        ++run;
      } else if (m <= prev_keyword) {
        run = 1;
      } else {
        run = 1;
      }
      prev_keyword = m;
      best_run = std::max(best_run, run);
    }
  }
  const double h2 =
      k == 0 ? 0.0 : static_cast<double>(best_run) / static_cast<double>(k);

  // H3: smallest token window containing one of each *present* keyword
  // (classic minimum-window sliding scan).
  double h3 = 0.0;
  if (present_count > 0) {
    std::vector<std::size_t> need_count(k, 0);
    std::size_t covered = 0;
    std::size_t best_window = std::numeric_limits<std::size_t>::max();
    std::size_t left = 0;
    for (std::size_t right = 0; right < map.size(); ++right) {
      const int m = map[right];
      if (m >= 0 && present[static_cast<std::size_t>(m)]) {
        if (need_count[static_cast<std::size_t>(m)]++ == 0) ++covered;
      }
      while (covered == present_count) {
        best_window = std::min(best_window, right - left + 1);
        const int lm = map[left];
        if (lm >= 0 && present[static_cast<std::size_t>(lm)]) {
          if (--need_count[static_cast<std::size_t>(lm)] == 0) --covered;
        }
        ++left;
      }
    }
    // A window equal to the keyword count is perfect (all adjacent).
    h3 = static_cast<double>(present_count) /
         static_cast<double>(std::max(best_window, present_count));
  }

  ScoredParagraph scored;
  scored.score = weights_.completeness * h1 + weights_.sequence * h2 +
                 weights_.proximity * h3;
  scored.paragraph = std::move(paragraph);
  return scored;
}

std::vector<ScoredParagraph> ParagraphScorer::score_all(
    const ProcessedQuestion& question,
    std::vector<RetrievedParagraph> paragraphs) const {
  std::vector<ScoredParagraph> out;
  out.reserve(paragraphs.size());
  for (auto& p : paragraphs) out.push_back(score(question, std::move(p)));
  return out;
}

}  // namespace qadist::qa
