#pragma once

#include <span>
#include <vector>

#include "corpus/collection.hpp"
#include "ir/inverted_index.hpp"
#include "ir/retrieval.hpp"
#include "qa/question.hpp"

namespace qadist::qa {

/// Work accounting emitted by a PR call — feeds the simulator's cost model
/// (PR is 80% disk I/O on the paper's platform, Table 3).
struct RetrievalWork {
  std::size_t postings_scanned = 0;
  std::size_t paragraphs_returned = 0;
  std::size_t bytes_materialized = 0;  ///< paragraph text copied out
};

/// Paragraph Retrieval (PR): Boolean retrieval against one sub-collection's
/// index, followed by materialization of the matching paragraphs' text.
/// The iterative unit is the sub-collection (paper Table 2), which is what
/// the PR dispatcher partitions across nodes.
class ParagraphRetriever {
 public:
  /// @param min_paragraphs relaxation target per sub-collection: keep
  ///   relaxing the required-keyword count until at least this many match.
  ParagraphRetriever(const corpus::Collection& collection,
                     std::size_t min_paragraphs)
      : collection_(&collection), min_paragraphs_(min_paragraphs) {}

  /// Retrieves from one sub-collection index. Thread-safe (const index,
  /// const collection).
  [[nodiscard]] std::vector<RetrievedParagraph> retrieve(
      const ir::InvertedIndex& index, const ProcessedQuestion& question,
      RetrievalWork* work = nullptr) const;

 private:
  const corpus::Collection* collection_;
  std::size_t min_paragraphs_;
};

}  // namespace qadist::qa
