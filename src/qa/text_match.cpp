#include "qa/text_match.hpp"

namespace qadist::qa {

std::vector<int> map_keywords(const ir::Analyzer& analyzer,
                              std::span<const std::string> keywords,
                              const std::vector<ir::Token>& tokens) {
  std::vector<int> map(tokens.size(), -1);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const auto& tok = tokens[t];
    if (ir::is_stopword(tok.text)) continue;
    const std::string norm = tok.numeric ? tok.text : analyzer.stem(tok.text);
    for (std::size_t k = 0; k < keywords.size(); ++k) {
      if (keywords[k] == norm) {
        map[t] = static_cast<int>(k);
        break;
      }
    }
  }
  return map;
}

std::string surface_span(const std::vector<ir::Token>& tokens,
                         std::size_t first, std::size_t count) {
  std::string out;
  for (std::size_t i = first; i < first + count && i < tokens.size(); ++i) {
    if (!out.empty()) out += ' ';
    std::string word = tokens[i].text;
    if (tokens[i].capitalized && !word.empty() && word[0] >= 'a' &&
        word[0] <= 'z') {
      word[0] = static_cast<char>(word[0] - 'a' + 'A');
    }
    out += word;
  }
  return out;
}

}  // namespace qadist::qa
