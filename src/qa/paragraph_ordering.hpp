#pragma once

#include <vector>

#include "qa/question.hpp"

namespace qadist::qa {

/// Paragraph Ordering (PO): sorts scored paragraphs in descending rank and
/// applies the acceptance filter, "only the paragraphs with a rank over a
/// certain threshold are passed to the next stage" (paper Sec. 2.1).
///
/// Deliberately sequential and centralized: the paper keeps PO on one node
/// so the distributed system accepts exactly the same paragraphs as the
/// sequential one (Sec. 3.2), and so do we.
class ParagraphOrderer {
 public:
  struct Config {
    /// Accept paragraphs scoring at least this fraction of the top score.
    double relative_threshold = 0.55;
    /// Hard cap on accepted paragraphs (bounds AP work per question).
    std::size_t max_accepted = 400;
  };

  ParagraphOrderer() = default;
  explicit ParagraphOrderer(Config config) : config_(config) {}

  /// Sort + filter. Ties broken by paragraph address, making the order —
  /// and therefore every downstream result — fully deterministic.
  [[nodiscard]] std::vector<ScoredParagraph> order_and_filter(
      std::vector<ScoredParagraph> paragraphs) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace qadist::qa
