#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "corpus/generator.hpp"
#include "ir/inverted_index.hpp"
#include "qa/answer_processing.hpp"
#include "qa/ner.hpp"
#include "qa/paragraph_ordering.hpp"
#include "qa/paragraph_retrieval.hpp"
#include "qa/paragraph_scoring.hpp"
#include "qa/question_processing.hpp"

namespace qadist::qa {

/// Everything configurable about a Q/A deployment.
struct EngineConfig {
  /// Paper setup: the collection is split into 8 separately indexed
  /// sub-collections; PR iterates over them (Table 2 granularity).
  std::size_t subcollections = 8;
  /// Largest/smallest sub-collection size (1 = even split). Real TREC
  /// sub-collections are topic-oriented and uneven; the paper's
  /// per-collection PR cost varied ~8x (Fig. 7).
  double subcollection_size_ratio = 1.0;
  std::size_t min_paragraphs_per_subcollection = 10;
  ParagraphScorer::Weights scoring;
  ParagraphOrderer::Config ordering;
  AnswerProcessor::Config answers;
};

/// Wall-clock seconds spent in each pipeline module for one question —
/// the measurement behind the paper's Table 2 and Table 8.
struct ModuleTimes {
  Seconds qp = 0.0;
  Seconds pr = 0.0;
  Seconds ps = 0.0;
  Seconds po = 0.0;
  Seconds ap = 0.0;

  [[nodiscard]] Seconds total() const { return qp + pr + ps + po + ap; }
  ModuleTimes& operator+=(const ModuleTimes& other);
};

/// Work counters for one question; the simulator's cost model converts
/// these into simulated service demands.
struct WorkCounters {
  RetrievalWork retrieval;
  AnswerWork answer;
  std::size_t paragraphs_retrieved = 0;
  std::size_t paragraphs_accepted = 0;
};

/// Result of answering one question.
struct QAResult {
  ProcessedQuestion question;
  std::vector<Answer> answers;
  ModuleTimes times;
  WorkCounters work;
};

/// The sequential FALCON-like question answering engine (paper Fig. 1).
///
/// The per-stage API is deliberately exposed — `retrieve()` per
/// sub-collection, `score()` per paragraph, `answer_paragraphs()` per
/// paragraph batch — because those are exactly the granularities the
/// distributed system partitions at. All stage methods are const and
/// thread-safe; one Engine is shared by all host-parallel workers.
class Engine {
 public:
  Engine(const corpus::GeneratedCorpus& corpus, EngineConfig config = {});

  // --- Stage API ------------------------------------------------------
  [[nodiscard]] ProcessedQuestion process_question(
      std::uint32_t id, const std::string& text) const;

  /// PR over one sub-collection (iterative unit: the collection).
  [[nodiscard]] std::vector<RetrievedParagraph> retrieve(
      std::size_t subcollection, const ProcessedQuestion& question,
      RetrievalWork* work = nullptr) const;

  /// PS for one paragraph (iterative unit: the paragraph).
  [[nodiscard]] ScoredParagraph score(const ProcessedQuestion& question,
                                      RetrievedParagraph paragraph) const;

  /// PO: centralized sort + threshold filter.
  [[nodiscard]] std::vector<ScoredParagraph> order(
      std::vector<ScoredParagraph> paragraphs) const;

  /// AP over a paragraph batch (iterative unit: the paragraph). Returns the
  /// batch's best `answers_requested` answers.
  [[nodiscard]] std::vector<Answer> answer_paragraphs(
      const ProcessedQuestion& question,
      std::span<const ScoredParagraph> paragraphs,
      AnswerWork* work = nullptr) const;

  // --- End-to-end -----------------------------------------------------
  /// Runs the full sequential pipeline with per-module wall timing.
  [[nodiscard]] QAResult answer(std::uint32_t id, const std::string& text) const;
  [[nodiscard]] QAResult answer(const corpus::Question& q) const {
    return answer(q.id, q.text);
  }

  // --- Introspection --------------------------------------------------
  [[nodiscard]] std::size_t subcollection_count() const {
    return indexes_.size();
  }
  [[nodiscard]] const ir::InvertedIndex& index(std::size_t sub) const;
  [[nodiscard]] const corpus::SubCollection& subcollection(std::size_t sub) const;
  [[nodiscard]] const ir::Analyzer& analyzer() const { return analyzer_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const AnswerProcessor& answer_processor() const {
    return answer_processor_;
  }

 private:
  EngineConfig config_;
  const corpus::Collection* collection_;
  ir::Analyzer analyzer_;
  EntityRecognizer recognizer_;
  QuestionProcessor question_processor_;
  ParagraphRetriever retriever_;
  ParagraphScorer scorer_;
  ParagraphOrderer orderer_;
  AnswerProcessor answer_processor_;
  std::vector<corpus::SubCollection> subcollections_;
  std::vector<ir::InvertedIndex> indexes_;
};

}  // namespace qadist::qa
