#include "qa/paragraph_ordering.hpp"

#include <algorithm>

namespace qadist::qa {

std::vector<ScoredParagraph> ParagraphOrderer::order_and_filter(
    std::vector<ScoredParagraph> paragraphs) const {
  std::sort(paragraphs.begin(), paragraphs.end(),
            [](const ScoredParagraph& a, const ScoredParagraph& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.paragraph.ref < b.paragraph.ref;
            });
  if (paragraphs.empty()) return paragraphs;

  const double cutoff = paragraphs.front().score * config_.relative_threshold;
  std::size_t keep = 0;
  while (keep < paragraphs.size() && keep < config_.max_accepted &&
         paragraphs[keep].score >= cutoff) {
    ++keep;
  }
  paragraphs.resize(keep);
  return paragraphs;
}

}  // namespace qadist::qa
