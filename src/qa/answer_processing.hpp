#pragma once

#include <span>
#include <vector>

#include "ir/analyzer.hpp"
#include "qa/ner.hpp"
#include "qa/question.hpp"

namespace qadist::qa {

/// Work accounting emitted by an AP call — feeds the simulator's cost model
/// (AP is ~100% CPU on the paper's platform, Table 3).
struct AnswerWork {
  std::size_t paragraphs_processed = 0;
  std::size_t tokens_scanned = 0;
  std::size_t candidates_considered = 0;
  std::size_t windows_scored = 0;
};

/// Answer Processing (AP): the pipeline's dominant module (69.7% of TREC-9
/// task time, paper Table 2). For each accepted paragraph it runs the
/// entity recognizer, keeps candidates matching the question's answer type,
/// builds an answer window around each candidate ("text spans that include
/// the candidate answer and one of each of the question keywords"), and
/// scores the window with seven heuristics (paper Sec. 2.1, after [27]):
///
///  H1 window completeness: fraction of keywords inside the window;
///  H2 candidate proximity: inverse mean distance candidate -> nearest
///     occurrence of each present keyword;
///  H3 same order:          keywords appear in question order in the window;
///  H4 recognizer confidence (gazetteer 1.0, pattern < 1);
///  H5 keyword density within the window;
///  H6 linking cue:         candidate preceded by a linking word
///     ("is", "in", "by", "of", "for", "to", "was");
///  H7 paragraph rank carried in from paragraph scoring.
///
/// Candidates whose tokens are all question keywords are skipped — the
/// question's own subject is never a valid answer.
class AnswerProcessor {
 public:
  struct Config {
    std::size_t answers_requested = 5;   ///< Na: answers returned per call
    std::size_t max_window_tokens = 30;  ///< clip for degenerate paragraphs
    /// Byte budget of the returned answer text, trimmed around the
    /// candidate — the paper's answer formats are 50 bytes (short answers)
    /// or 250 bytes (long answers), cf. Table 1.
    std::size_t answer_window_bytes = 250;
  };

  AnswerProcessor(const EntityRecognizer& recognizer,
                  const ir::Analyzer& analyzer)
      : recognizer_(&recognizer), analyzer_(&analyzer) {}
  AnswerProcessor(const EntityRecognizer& recognizer,
                  const ir::Analyzer& analyzer, Config config)
      : recognizer_(&recognizer), analyzer_(&analyzer), config_(config) {}

  /// Extracts and scores candidate answers from one paragraph. Thread-safe.
  [[nodiscard]] std::vector<Answer> process_paragraph(
      const ProcessedQuestion& question, const ScoredParagraph& paragraph,
      AnswerWork* work = nullptr) const;

  /// Processes a batch of paragraphs and returns the best
  /// `answers_requested` answers (sorted, deduplicated by candidate).
  [[nodiscard]] std::vector<Answer> process(
      const ProcessedQuestion& question,
      std::span<const ScoredParagraph> paragraphs,
      AnswerWork* work = nullptr) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  const EntityRecognizer* recognizer_;
  const ir::Analyzer* analyzer_;
  Config config_;
};

/// Merges answer lists, deduplicates by candidate string (keeping each
/// candidate's best score), sorts descending and truncates to `limit`.
/// Deterministic: ties break on candidate text, then paragraph address.
/// This is the Answer Sorting module that follows distributed AP
/// (paper Fig. 3).
[[nodiscard]] std::vector<Answer> sort_answers(std::vector<Answer> answers,
                                               std::size_t limit);

}  // namespace qadist::qa
