#pragma once

#include <vector>

#include "cluster/cost_model.hpp"
#include "corpus/generator.hpp"
#include "qa/engine.hpp"

namespace qadist::cluster {

/// The fully-resolved execution plan of one question: the real pipeline is
/// executed once on the host (producing the actual answers and the actual
/// per-unit work counts), and the simulation then replays its resource
/// demands under whatever placement/partitioning the schedulers choose.
/// Because demands are recorded at the iterative-unit granularity — one
/// entry per sub-collection for PR, one per accepted paragraph for AP —
/// any partition of the units has an exact simulated cost.
struct QuestionPlan {
  corpus::Question source;
  qa::ProcessedQuestion processed;

  Demand qp;
  std::size_t question_bytes = 0;  ///< S_q: question text shipped on migration
  std::size_t keyword_bytes = 0;   ///< keywords shipped to remote PR

  /// One PR iterative unit = one sub-collection.
  struct PrUnit {
    Demand demand;              ///< retrieval cost on the executing node
    Demand ps;                  ///< scoring the retrieved paragraphs (fused leg)
    std::size_t paragraphs = 0;
    std::size_t bytes_out = 0;  ///< paragraph text shipped back to the host
  };
  std::vector<PrUnit> pr_units;

  Demand po;
  std::size_t accepted_paragraphs = 0;

  /// One AP iterative unit = one accepted paragraph (in PO rank order, so
  /// unit index == rank — the property ISEND exploits).
  struct ApUnit {
    Demand demand;
    std::size_t bytes_in = 0;   ///< paragraph text shipped to the AP node
    std::size_t answer_bytes_out = 0;
  };
  std::vector<ApUnit> ap_units;

  Demand answer_sort;
  std::size_t answer_bytes = 0;  ///< final answers shipped back to the user
  std::vector<qa::Answer> answers;

  /// Total work the question would cost sequentially (for reporting).
  [[nodiscard]] double total_cpu_seconds() const;
  [[nodiscard]] double total_disk_bytes() const;
};

/// Executes the real pipeline once and records the plan.
[[nodiscard]] QuestionPlan make_plan(const qa::Engine& engine,
                                     const CostModel& cost,
                                     const corpus::Question& question);

/// Scales every resource demand and transfer size of a plan by `factor`.
/// Used by workload generators to synthesize question populations of
/// different weights (e.g. the paper's mixed TREC-8/TREC-9 set, whose two
/// halves average 48 s and 94 s); the plan's logical structure (unit
/// counts, answers) is unchanged.
void scale_plan(QuestionPlan& plan, double factor);

}  // namespace qadist::cluster
