#include "cluster/workload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace qadist::cluster {

double mean_service_seconds(std::span<const QuestionPlan> plans,
                            Bandwidth reference_disk) {
  if (plans.empty()) return 0.0;
  double total = 0.0;
  for (const auto& p : plans) {
    total += p.total_cpu_seconds() +
             p.total_disk_bytes() / reference_disk.bytes_per_second;
  }
  return total / static_cast<double>(plans.size());
}

void apply_bimodal_mix(std::span<QuestionPlan> plans, double light_scale) {
  QADIST_CHECK(light_scale > 0.0);
  for (std::size_t i = 0; i < plans.size(); i += 2) {
    scale_plan(plans[i], light_scale);
  }
}

std::vector<std::size_t> overload_pick_sequence(
    const OverloadWorkload& workload, std::size_t plan_count,
    std::size_t count) {
  QADIST_CHECK(plan_count > 0);
  std::vector<std::size_t> picks;
  picks.reserve(count);
  if (workload.repeat_exponent <= 0.0) {
    // Legacy deterministic scan (the paper's "same questions and same
    // startup sequence for all tests").
    for (std::size_t i = 0; i < count; ++i) {
      picks.push_back((i * 7 + workload.seed * 13) % plan_count);
    }
    return picks;
  }
  const std::size_t distinct =
      workload.distinct_questions == 0
          ? plan_count
          : std::min(workload.distinct_questions, plan_count);
  const ZipfDistribution zipf(static_cast<std::uint32_t>(distinct),
                              workload.repeat_exponent);
  // Decorrelated from the arrival-gap stream so adding repetition does not
  // silently reshuffle arrival times.
  Rng ranks(workload.seed ^ 0xd1b54a32d192ed03ULL);
  for (std::size_t i = 0; i < count; ++i) {
    // rank -> plan via a seed-dependent rotation: injective over ranks, so
    // `distinct` stays exact, but which plans are "hot" varies with seed.
    const std::size_t rank = zipf(ranks);
    picks.push_back((rank + workload.seed * 13) % plan_count);
  }
  return picks;
}

// submit_overload / submit_serial are defined in the workload library
// (src/workload/compat.cpp) as thin wrappers over workload::Driver —
// cluster cannot link against workload, so the shims live there.

}  // namespace qadist::cluster
