#include "cluster/workload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace qadist::cluster {

double mean_service_seconds(std::span<const QuestionPlan> plans,
                            Bandwidth reference_disk) {
  if (plans.empty()) return 0.0;
  double total = 0.0;
  for (const auto& p : plans) {
    total += p.total_cpu_seconds() +
             p.total_disk_bytes() / reference_disk.bytes_per_second;
  }
  return total / static_cast<double>(plans.size());
}

void apply_bimodal_mix(std::span<QuestionPlan> plans, double light_scale) {
  QADIST_CHECK(light_scale > 0.0);
  for (std::size_t i = 0; i < plans.size(); i += 2) {
    scale_plan(plans[i], light_scale);
  }
}

std::vector<std::size_t> overload_pick_sequence(
    const OverloadWorkload& workload, std::size_t plan_count,
    std::size_t count) {
  QADIST_CHECK(plan_count > 0);
  std::vector<std::size_t> picks;
  picks.reserve(count);
  if (workload.repeat_exponent <= 0.0) {
    // Legacy deterministic scan (the paper's "same questions and same
    // startup sequence for all tests").
    for (std::size_t i = 0; i < count; ++i) {
      picks.push_back((i * 7 + workload.seed * 13) % plan_count);
    }
    return picks;
  }
  const std::size_t distinct =
      workload.distinct_questions == 0
          ? plan_count
          : std::min(workload.distinct_questions, plan_count);
  const ZipfDistribution zipf(static_cast<std::uint32_t>(distinct),
                              workload.repeat_exponent);
  // Decorrelated from the arrival-gap stream so adding repetition does not
  // silently reshuffle arrival times.
  Rng ranks(workload.seed ^ 0xd1b54a32d192ed03ULL);
  for (std::size_t i = 0; i < count; ++i) {
    // rank -> plan via a seed-dependent rotation: injective over ranks, so
    // `distinct` stays exact, but which plans are "hot" varies with seed.
    const std::size_t rank = zipf(ranks);
    picks.push_back((rank + workload.seed * 13) % plan_count);
  }
  return picks;
}

void submit_overload(System& system, std::span<const QuestionPlan> plans,
                     const OverloadWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(workload.overload_factor > 0.0);
  const std::size_t nodes = system.config().nodes;
  const std::size_t count =
      workload.count != 0 ? workload.count : 8 * nodes;
  const double mean_service =
      mean_service_seconds(plans, workload.reference_disk);
  // An all-zero-work plan set would make max_gap 0 and silently submit
  // every question at t=0 — an infinite overload factor, not the protocol
  // the caller asked for.
  QADIST_CHECK(mean_service > 0.0,
               << "submit_overload: plan set has zero mean service time; "
                  "arrival gaps would all collapse to t=0");
  // Mean gap g = service / (overload · N)  =>  gaps uniform in [0, 2g].
  const double max_gap = 2.0 * mean_service /
                         (workload.overload_factor *
                          static_cast<double>(nodes));
  Rng arrivals(workload.seed);
  Seconds at = 0.0;
  for (const std::size_t pick :
       overload_pick_sequence(workload, plans.size(), count)) {
    system.submit(plans[pick], at);
    at += arrivals.uniform(0.0, max_gap);
  }
}

void submit_serial(System& system, std::span<const QuestionPlan> plans,
                   const SerialWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(workload.stride >= 1);
  const double gap =
      10.0 * mean_service_seconds(plans, workload.reference_disk);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < workload.count; ++i) {
    const std::size_t pick =
        (workload.offset + i * workload.stride) % plans.size();
    system.submit(plans[pick], at);
    at += gap;
  }
}

}  // namespace qadist::cluster
