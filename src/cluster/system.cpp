#include "cluster/system.hpp"
#include <cmath>

#include <algorithm>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace qadist::cluster {

using parallel::Strategy;
using sched::NodeId;

std::string_view to_string(Policy policy) {
  switch (policy) {
    case Policy::kDns:
      return "DNS";
    case Policy::kInter:
      return "INTER";
    case Policy::kDqa:
      return "DQA";
    case Policy::kTwoChoice:
      return "TWO-CHOICE";
  }
  QADIST_UNREACHABLE("bad Policy");
}

/// Per-question bookkeeping shared between the main task coroutine and its
/// PR/AP leg coroutines. Lives in the question_process frame.
struct System::QuestionState {
  const QuestionPlan* plan = nullptr;
  NodeId host = 0;
  Seconds submitted = 0.0;

  // Stage timings (paper Table 8 columns).
  double t_qp = 0.0;
  double t_pr_stage = 0.0;
  double t_ps_max = 0.0;  // scoring time on the slowest PR leg
  double t_po = 0.0;
  double t_ap_stage = 0.0;

  // Overhead components (paper Table 9 columns).
  double oh_keyword_send = 0.0;
  double oh_paragraph_receive = 0.0;
  double oh_paragraph_send = 0.0;
  double oh_answer_receive = 0.0;
  double oh_answer_sort = 0.0;
};

System::System(simnet::Simulation& sim, const SystemConfig& config)
    : sim_(sim), config_(config) {
  QADIST_CHECK(config.nodes >= 1);
  QADIST_CHECK(config.pr_strategy != Strategy::kIsend,
               << "ISEND does not apply to PR: collections are unranked "
                  "(paper Sec. 6.3)");
  QADIST_CHECK(config.node_cpu_speeds.empty() ||
                   config.node_cpu_speeds.size() == config.nodes,
               << "node_cpu_speeds arity mismatch");
  nodes_.reserve(config.nodes);
  for (NodeId id = 0; id < config.nodes; ++id) {
    NodeConfig node_config = config.node;
    if (!config.node_cpu_speeds.empty()) {
      node_config.cpu_speed = config.node_cpu_speeds[id];
    }
    nodes_.push_back(std::make_unique<Node>(sim, id, node_config));
  }
  node_broadcasting_.assign(config.nodes, 1);
  two_choice_rng_.reseed(config.seed);
  network_ = std::make_unique<simnet::Link>(
      sim, "lan", config.network, config.per_message_overhead);
}

System::~System() = default;

void System::record_trace(NodeId node, std::string event) {
  if (trace_ != nullptr) trace_->record(sim_.now(), node, std::move(event));
}

void System::submit(const QuestionPlan& plan, Seconds at) {
  QADIST_CHECK(!started_, << "submit after run()");
  const NodeId dns_node = next_dns_node_;
  next_dns_node_ = static_cast<NodeId>((next_dns_node_ + 1) % nodes_.size());
  ++total_submitted_;
  if (metrics_.submitted == 0 || at < metrics_.first_submit) {
    metrics_.first_submit = at;
  }
  ++metrics_.submitted;
  sim_.schedule_at(at, [this, &plan, dns_node] {
    question_process(plan, dns_node);
  });
}

void System::schedule_leave(NodeId node, Seconds at) {
  QADIST_CHECK(node < nodes_.size());
  sim_.schedule_at(at, [this, node] { node_broadcasting_[node] = 0; });
}

void System::schedule_join(NodeId node, Seconds at) {
  QADIST_CHECK(node < nodes_.size());
  sim_.schedule_at(at, [this, node] { node_broadcasting_[node] = 1; });
}

Metrics System::run() {
  QADIST_CHECK(!started_, << "run() called twice");
  started_ = true;
  // Seed the load table so dispatch decisions at t=0 see every
  // broadcasting node, then start the per-node monitors.
  for (const auto& node : nodes_) {
    if (node_broadcasting_[node->id()] != 0) {
      table_.update(node->id(), sched::ResourceLoad{}, sim_.now());
    }
  }
  for (const auto& node : nodes_) {
    monitor_process(*node);
  }
  sim_.run();
  QADIST_CHECK(metrics_.completed == total_submitted_,
               << "simulation drained with " << metrics_.completed << "/"
               << total_submitted_ << " questions completed");
  for (const auto& node : nodes_) {
    metrics_.node_cpu_work.push_back(node->cpu().work_served());
    metrics_.node_disk_bytes.push_back(node->disk().work_served());
  }
  return metrics_;
}

simnet::SimProcess System::monitor_process(Node& node) {
  // Periodically: measure local load, fold it into the damped average,
  // broadcast it on the shared segment, refresh the table, and drop silent
  // peers (paper Sec. 3.1). Monitors stop once the workload drains so the
  // event queue can empty.
  sched::ResourceLoad ema;
  while (!all_done_) {
    const auto sample = node.sample_load();
    const double alpha =
        config_.load_smoothing_tau > 0.0
            ? 1.0 - std::exp(-config_.monitor_period / config_.load_smoothing_tau)
            : 1.0;
    ema.cpu += alpha * (sample.cpu - ema.cpu);
    ema.disk += alpha * (sample.disk - ema.disk);
    if (node_broadcasting_[node.id()] != 0) {
      co_await network_->transfer(
          static_cast<double>(config_.load_packet_bytes));
      // The damped broadcast absorbs only `alpha` of newly placed load per
      // period, so keep the complementary share of the reservations alive.
      table_.update(node.id(), ema, sim_.now(),
                    /*reservation_keep=*/1.0 - alpha);
    }
    table_.expire(sim_.now(), config_.membership_timeout);
    co_await simnet::Delay(sim_, config_.monitor_period);
  }
}

simnet::SimProcess System::pr_leg(
    QuestionState& q, NodeId node,
    std::shared_ptr<std::deque<std::size_t>> units, simnet::WaitGroup& wg) {
  const QuestionPlan& plan = *q.plan;
  Node& executor = *nodes_[node];
  bool sent_keywords = node == q.host;  // local leg ships nothing
  double leg_ps = 0.0;

  while (!units->empty()) {
    const std::size_t idx = units->front();
    units->pop_front();
    const auto& unit = plan.pr_units[idx];

    if (!sent_keywords) {
      const Seconds t0 = sim_.now();
      co_await network_->transfer(static_cast<double>(plan.keyword_bytes));
      q.oh_keyword_send += sim_.now() - t0;
      sent_keywords = true;
    }

    const Seconds unit_start = sim_.now();
    const double thrash = executor.work_multiplier();
    co_await executor.disk().consume(unit.demand.disk_bytes * thrash);
    co_await executor.cpu().consume(unit.demand.cpu_seconds * thrash);
    record_trace(node, "finished collection " + std::to_string(idx) + " in " +
                           format_double(sim_.now() - unit_start, 2) +
                           " secs (" + std::to_string(unit.paragraphs) +
                           " paragraphs)");

    // Paragraph scoring runs fused on the retrieval node (paper Fig. 3).
    const Seconds ps0 = sim_.now();
    co_await executor.cpu().consume(unit.ps.cpu_seconds *
                                    executor.work_multiplier());
    leg_ps += sim_.now() - ps0;

    if (node != q.host && unit.bytes_out > 0) {
      // Ship the scored paragraphs back; the paragraph merging module on
      // the host re-reads them from its disk (paper Eq. 27).
      const Seconds t0 = sim_.now();
      co_await network_->transfer(static_cast<double>(unit.bytes_out));
      co_await nodes_[q.host]->disk().consume(
          static_cast<double>(unit.bytes_out));
      q.oh_paragraph_receive += sim_.now() - t0;
    }
  }
  q.t_ps_max = std::max(q.t_ps_max, leg_ps);
  wg.done();
}

simnet::SimProcess System::ap_leg(
    QuestionState& q, NodeId node, std::vector<std::size_t> units,
    std::shared_ptr<std::deque<parallel::Chunk>> chunks,
    simnet::WaitGroup& wg) {
  const QuestionPlan& plan = *q.plan;
  Node& executor = *nodes_[node];
  const bool remote = node != q.host;
  const Seconds leg_start = sim_.now();
  std::size_t processed = 0;

  // Each batch: ship paragraphs in, burn CPU per paragraph, ship answers
  // back. Answers return per batch, which is why tiny RECV chunks pay more
  // overhead (paper Sec. 4.1.2).
  if (chunks != nullptr) {
    // RECV: compete for chunks.
    while (!chunks->empty()) {
      const parallel::Chunk chunk = chunks->front();
      chunks->pop_front();
      std::size_t bytes_in = 0;
      std::size_t bytes_out = 0;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        bytes_in += plan.ap_units[i].bytes_in;
        bytes_out += plan.ap_units[i].answer_bytes_out;
      }
      if (remote && bytes_in > 0) {
        const Seconds t0 = sim_.now();
        co_await network_->transfer(static_cast<double>(bytes_in));
        q.oh_paragraph_send += sim_.now() - t0;
      }
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        co_await executor.cpu().consume(plan.ap_units[i].demand.cpu_seconds *
                                        executor.work_multiplier());
        ++processed;
      }
      // Per-batch answer extraction floor (paper Sec. 4.1.2).
      co_await executor.cpu().consume(config_.per_batch_answer_cpu);
      if (remote && bytes_out > 0) {
        const Seconds t0 = sim_.now();
        co_await network_->transfer(static_cast<double>(bytes_out));
        q.oh_answer_receive += sim_.now() - t0;
      }
    }
  } else {
    // SEND/ISEND: the sender shipped us a fixed partition; move its input
    // once, process, return answers once.
    std::size_t bytes_in = 0;
    std::size_t bytes_out = 0;
    for (std::size_t i : units) {
      bytes_in += plan.ap_units[i].bytes_in;
      bytes_out += plan.ap_units[i].answer_bytes_out;
    }
    if (remote && bytes_in > 0) {
      const Seconds t0 = sim_.now();
      co_await network_->transfer(static_cast<double>(bytes_in));
      q.oh_paragraph_send += sim_.now() - t0;
    }
    for (std::size_t i : units) {
      co_await executor.cpu().consume(plan.ap_units[i].demand.cpu_seconds *
                                      executor.work_multiplier());
      ++processed;
    }
    if (processed > 0) {
      // One answer-extraction pass per partition (paper Sec. 4.1.2).
      co_await executor.cpu().consume(config_.per_batch_answer_cpu);
    }
    if (remote && bytes_out > 0) {
      const Seconds t0 = sim_.now();
      co_await network_->transfer(static_cast<double>(bytes_out));
      q.oh_answer_receive += sim_.now() - t0;
    }
  }
  if (processed > 0) {
    record_trace(node, "finished " + std::to_string(processed) +
                           " paragraphs in " +
                           format_double(sim_.now() - leg_start, 2) + " secs");
  }
  wg.done();
}

simnet::SimProcess System::question_process(const QuestionPlan& plan,
                                            NodeId dns_node) {
  QuestionState q;
  q.plan = &plan;
  q.submitted = sim_.now();
  NodeId host = dns_node;

  // The DNS front-end may hand a question to a node that has left the
  // pool (its A record outlives the membership): reroute to the least
  // loaded member, regardless of policy.
  if (!table_.is_member(host)) {
    const auto fallback = table_.least_loaded(sched::kQaWeights);
    QADIST_CHECK(fallback.has_value(), << "no nodes in the pool");
    host = *fallback;
  }

  // ---- Scheduling point 1.
  if (config_.policy == Policy::kTwoChoice) {
    // Power-of-two-choices: sample two members, keep the lighter.
    const auto members = table_.members();
    if (members.size() >= 2) {
      const NodeId a = members[two_choice_rng_.below(members.size())];
      NodeId b = a;
      while (b == a) b = members[two_choice_rng_.below(members.size())];
      const double la =
          sched::load_function(table_.load_of(a), sched::kQaWeights);
      const double lb =
          sched::load_function(table_.load_of(b), sched::kQaWeights);
      const NodeId choice = la <= lb ? a : b;
      if (choice != host) {
        co_await network_->transfer(static_cast<double>(plan.question_bytes));
        host = choice;
        ++metrics_.migrations_qa;
      }
    }
  } else if (config_.policy != Policy::kDns && table_.is_member(host)) {
    const auto decision = sched::decide_migration(
        table_, host, sched::kQaWeights,
        sched::single_task_load(sched::kQaWeights));
    if (decision.migrate) {
      co_await network_->transfer(static_cast<double>(plan.question_bytes));
      host = decision.target;
      ++metrics_.migrations_qa;
      record_trace(host, "question " + std::to_string(plan.source.id) +
                             " migrated from N" + std::to_string(dns_node + 1));
    }
  }
  q.host = host;
  nodes_[host]->question_arrived();
  // Reserve the question's expected load so simultaneous arrivals don't
  // all herd onto the same momentarily-idle node before the next broadcast.
  table_.reserve(host, sched::ResourceLoad{sched::kQaWeights.cpu,
                                           sched::kQaWeights.disk});
  record_trace(host, "started question " + std::to_string(plan.source.id));

  // ---- QP (sequential, on the host).
  {
    const Seconds t0 = sim_.now();
    co_await nodes_[host]->cpu().consume(plan.qp.cpu_seconds *
                                         nodes_[host]->work_multiplier());
    q.t_qp = sim_.now() - t0;
  }

  // ---- Scheduling point 2: the PR dispatcher (DQA only).
  std::vector<NodeId> pr_nodes{host};
  std::vector<double> pr_weights{1.0};
  if (config_.policy == Policy::kDqa) {
    auto ms = sched::meta_schedule(table_, sched::kPrWeights,
                                   config_.pr_underload_threshold);
    if (!config_.enable_partitioning && ms.selected.size() > 1) {
      // Partitioning disabled: keep only the heaviest-weighted node.
      const std::size_t best = static_cast<std::size_t>(
          std::max_element(ms.weights.begin(), ms.weights.end()) -
          ms.weights.begin());
      ms.selected = {ms.selected[best]};
      ms.weights = {1.0};
      ms.partitioned = false;
    }
    if (!(ms.selected.size() == 1 && ms.selected[0] == host)) {
      ++metrics_.migrations_pr;
    }
    pr_nodes = std::move(ms.selected);
    pr_weights = std::move(ms.weights);
  }

  const Seconds pr_start = sim_.now();
  {
    simnet::WaitGroup wg(sim_);
    if (config_.pr_strategy == Strategy::kRecv || pr_nodes.size() == 1) {
      // Receiver-controlled: every leg competes for the sub-collection
      // queue (paper Fig. 7a: "four nodes compete for the 8 sub-
      // collections").
      auto units = std::make_shared<std::deque<std::size_t>>();
      for (std::size_t i = 0; i < plan.pr_units.size(); ++i) {
        units->push_back(i);
      }
      for (NodeId node : pr_nodes) {
        wg.add(1);
        pr_leg(q, node, units, wg);
      }
    } else {
      // SEND ablation: weighted contiguous blocks of sub-collections.
      const auto partitions =
          parallel::partition_send(plan.pr_units.size(), pr_weights);
      for (std::size_t w = 0; w < pr_nodes.size(); ++w) {
        auto units = std::make_shared<std::deque<std::size_t>>(
            partitions[w].items.begin(), partitions[w].items.end());
        wg.add(1);
        pr_leg(q, pr_nodes[w], units, wg);
      }
    }
    co_await wg.wait();
  }
  q.t_pr_stage = sim_.now() - pr_start;

  // ---- PO (sequential and centralized, on the host).
  {
    const Seconds t0 = sim_.now();
    co_await nodes_[host]->cpu().consume(plan.po.cpu_seconds *
                                         nodes_[host]->work_multiplier());
    q.t_po = sim_.now() - t0;
    record_trace(host, "accepted " + std::to_string(plan.accepted_paragraphs) +
                           " paragraphs");
  }

  // ---- Scheduling point 3: the AP dispatcher (DQA only).
  std::vector<NodeId> ap_nodes{host};
  std::vector<double> ap_weights{1.0};
  if (config_.policy == Policy::kDqa) {
    auto ms = sched::meta_schedule(table_, sched::kApWeights,
                                   config_.ap_underload_threshold);
    if (!config_.enable_partitioning && ms.selected.size() > 1) {
      const std::size_t best = static_cast<std::size_t>(
          std::max_element(ms.weights.begin(), ms.weights.end()) -
          ms.weights.begin());
      ms.selected = {ms.selected[best]};
      ms.weights = {1.0};
      ms.partitioned = false;
    }
    if (!(ms.selected.size() == 1 && ms.selected[0] == host)) {
      ++metrics_.migrations_ap;
    }
    ap_nodes = std::move(ms.selected);
    ap_weights = std::move(ms.weights);
  }

  const Seconds ap_start = sim_.now();
  if (!plan.ap_units.empty()) {
    simnet::WaitGroup wg(sim_);
    if (config_.ap_strategy == Strategy::kRecv || ap_nodes.size() == 1) {
      auto chunks = std::make_shared<std::deque<parallel::Chunk>>();
      for (const auto& c :
           parallel::make_chunks(plan.ap_units.size(), config_.ap_chunk)) {
        chunks->push_back(c);
      }
      for (NodeId node : ap_nodes) {
        wg.add(1);
        ap_leg(q, node, {}, chunks, wg);
      }
    } else {
      const auto partitions =
          config_.ap_strategy == Strategy::kIsend
              ? parallel::partition_isend(plan.ap_units.size(), ap_weights)
              : parallel::partition_send(plan.ap_units.size(), ap_weights);
      for (std::size_t w = 0; w < ap_nodes.size(); ++w) {
        wg.add(1);
        ap_leg(q, ap_nodes[w], partitions[w].items, nullptr, wg);
      }
    }
    co_await wg.wait();
  }
  q.t_ap_stage = sim_.now() - ap_start;

  // ---- Answer merging + sorting (host).
  {
    const Seconds t0 = sim_.now();
    co_await nodes_[host]->cpu().consume(plan.answer_sort.cpu_seconds *
                                         nodes_[host]->work_multiplier());
    q.oh_answer_sort = sim_.now() - t0;
  }
  record_trace(host, "answered question " + std::to_string(plan.source.id) +
                         " in " + format_double(sim_.now() - q.submitted, 2) +
                         " secs");

  nodes_[host]->question_departed();

  // ---- Bookkeeping.
  const Seconds latency = sim_.now() - q.submitted;
  metrics_.latencies.add(latency);
  metrics_.makespan = std::max(metrics_.makespan, sim_.now());
  metrics_.t_qp.add(q.t_qp);
  metrics_.t_pr.add(std::max(0.0, q.t_pr_stage - q.t_ps_max));
  metrics_.t_ps.add(q.t_ps_max);
  metrics_.t_po.add(q.t_po);
  metrics_.t_ap.add(q.t_ap_stage);
  metrics_.overhead.keyword_send.add(q.oh_keyword_send);
  metrics_.overhead.paragraph_receive.add(q.oh_paragraph_receive);
  metrics_.overhead.paragraph_send.add(q.oh_paragraph_send);
  metrics_.overhead.answer_receive.add(q.oh_answer_receive);
  metrics_.overhead.answer_sort.add(q.oh_answer_sort);
  ++metrics_.completed;
  if (metrics_.completed == total_submitted_) all_done_ = true;
}

}  // namespace qadist::cluster
