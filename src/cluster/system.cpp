#include "cluster/system.hpp"
#include <cmath>

#include <algorithm>
#include <utility>

#include "broker/cori.hpp"
#include "cache/affinity.hpp"
#include "cache/question_key.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"

namespace qadist::cluster {

using parallel::Strategy;
using sched::NodeId;

namespace {
constexpr std::size_t kNoUnit = static_cast<std::size_t>(-1);

/// Answer-cache resident: what a hit must reproduce is the final answer
/// payload; everything else about the question is recomputable from it.
struct CachedAnswer {
  std::size_t answer_bytes = 0;
};

/// Paragraph-cache resident: presence is the value — a hit means the
/// accepted, scored paragraphs are already on this node's disk, so the
/// PR stage (and its fused scoring) is skipped.
struct CachedParagraphs {};

/// Byte footprint an answer occupies in the cache (key + payload).
std::size_t answer_footprint(const std::string& key,
                             const QuestionPlan& plan) {
  return key.size() + plan.answer_bytes;
}

/// Byte footprint of the cached paragraph set: the scored paragraph text
/// every PR unit would ship to the host.
std::size_t paragraph_footprint(const std::string& key,
                                const QuestionPlan& plan) {
  std::size_t bytes = key.size();
  for (const auto& unit : plan.pr_units) bytes += unit.bytes_out;
  return bytes;
}

/// FairShareServer::consume with a parking spot: while the coroutine is in
/// service, the (server, handle) pair sits in the leg slot's busy cell so a
/// tied-hedge coordinator can cancel the reservation mid-flight (see
/// FairShareServer::cancel). Suspension-wise identical to ConsumeAwaiter —
/// same await_ready condition, same enqueue — so routing a consume through
/// this awaiter never changes the event sequence.
class [[nodiscard]] CancellableConsume {
 public:
  CancellableConsume(simnet::FairShareServer& server, double work,
                     simnet::FairShareServer*& server_cell,
                     std::coroutine_handle<>& handle_cell)
      : server_(server),
        work_(work),
        server_cell_(server_cell),
        handle_cell_(handle_cell) {}
  bool await_ready() const noexcept { return work_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    server_cell_ = &server_;
    handle_cell_ = h;
    server_.enqueue(work_, h);
  }
  void await_resume() noexcept { server_cell_ = nullptr; }

 private:
  simnet::FairShareServer& server_;
  double work_;
  simnet::FairShareServer*& server_cell_;
  std::coroutine_handle<>& handle_cell_;
};
}  // namespace

/// Per-question bookkeeping shared between the main task coroutine and its
/// PR/AP leg coroutines. Lives in the question_process frame, so legs may
/// only touch it while the coordinator is still waiting on them (a leg
/// whose node crashed must exit without reading it — see pr_leg).
struct System::QuestionState {
  const QuestionPlan* plan = nullptr;
  NodeId host = 0;
  Seconds submitted = 0.0;

  // Stage timings (paper Table 8 columns).
  double t_qp = 0.0;
  double t_pr_stage = 0.0;
  double t_ps_max = 0.0;  // scoring time on the slowest PR leg
  double t_po = 0.0;
  double t_ap_stage = 0.0;

  // Overhead components (paper Table 9 columns).
  double oh_keyword_send = 0.0;
  double oh_paragraph_receive = 0.0;
  double oh_paragraph_send = 0.0;
  double oh_answer_receive = 0.0;
  double oh_answer_sort = 0.0;

  /// Absolute deadline (submitted + reliability.question_deadline); 0 when
  /// the budget is disabled.
  Seconds deadline = 0.0;
  /// Work lost to an unreachable peer was dropped instead of re-partitioned
  /// because the deadline budget was spent: the answer is partial.
  bool degraded = false;
};

/// Coordinator/leg shared state for one PR leg. Held by shared_ptr from
/// both sides: the leg outlives the coordinator frame when its node
/// crashes (the coordinator recovers and moves on while the zombie
/// coroutine drains its pending resumptions), so everything the zombie may
/// still touch lives here or in the System.
struct System::PrLegSlot {
  NodeId node = 0;
  std::size_t epoch = 0;  // crash_epoch_[node] at spawn
  /// Pending sub-collections: the stage-shared deque under RECV (legs
  /// compete), a private deque under SEND (the shipped block).
  std::shared_ptr<std::deque<std::size_t>> units;
  std::size_t in_flight = kNoUnit;  // popped, results not yet on the host
  bool reported = false;
  bool declared_dead = false;
  /// The leg gave up on a send (retry budget spent): its node is alive but
  /// unreachable. Set together with `reported`; pending units stay in the
  /// slot for the coordinator to re-partition or drop.
  bool unreachable = false;
  /// Stage span the leg nests under, and the leg's own span. The leg opens
  /// leg_span eagerly and closes it on normal completion; a crashed leg is
  /// a zombie that must not report, so the *coordinator* closes its span
  /// (crashed=1) when the liveness sweep declares the leg dead.
  obs::SpanId stage_span = obs::kNoSpan;
  obs::SpanId leg_span = obs::kNoSpan;

  // --- Tail-tolerance fields (all inert under the default cfg.tail) ---
  Seconds spawned = 0.0;  ///< spawn instant: hedge-trigger + leg-wall basis
  std::size_t done = 0;   ///< units completed so far (latency observation)
  bool hedge_backup = false;  ///< this leg is a hedge backup, work is a copy
  bool hedged = false;  ///< a backup was already issued (or declined) for it
  /// Lost the hedge race. Checked next to the crash epoch after every
  /// co_await: an abandoned leg is a zombie by the same contract — its span
  /// was already closed by the coordinator, its work is covered by the
  /// winner, and it must exit without touching q or reports.
  bool abandoned = false;
  std::shared_ptr<HedgeGroup> group;  ///< the race this leg belongs to
  /// Reservation currently held (tied mode routes consumes through
  /// CancellableConsume), so abandonment can release it mid-service.
  simnet::FairShareServer* busy_server = nullptr;
  std::coroutine_handle<> busy_handle{};

  /// Keeps the report mailbox alive for broker-spawned legs: the inner
  /// mailbox lives in the BrokerSlot, whose coordinator can vanish (broker
  /// crash) while an abandoned worker still runs — the worker's own slot
  /// then holds the last reference, so its final reports.send never
  /// dangles. Null for host-spawned legs (the host drains before exit).
  std::shared_ptr<void> keepalive;
};

/// Coordinator/leg shared state for one AP leg. Exactly one of `chunks`
/// (RECV self-scheduling) or `units` (SEND/ISEND fixed partition) is
/// active. RECV loses at most the in-flight chunk on a crash (answers ship
/// per chunk); SEND/ISEND lose the whole partition (answers ship once at
/// the end).
struct System::ApLegSlot {
  NodeId node = 0;
  std::size_t epoch = 0;
  std::vector<std::size_t> units;
  std::shared_ptr<std::deque<parallel::Chunk>> chunks;
  parallel::Chunk in_flight{};
  bool has_in_flight = false;
  bool reported = false;
  bool declared_dead = false;
  bool unreachable = false;  // see PrLegSlot
  obs::SpanId stage_span = obs::kNoSpan;  // see PrLegSlot
  obs::SpanId leg_span = obs::kNoSpan;

  // --- Tail-tolerance fields — see PrLegSlot ---
  Seconds spawned = 0.0;
  std::size_t done = 0;  ///< paragraphs processed so far
  bool hedge_backup = false;
  bool hedged = false;
  bool abandoned = false;
  std::shared_ptr<HedgeGroup> group;
  simnet::FairShareServer* busy_server = nullptr;
  std::coroutine_handle<> busy_handle{};
};

/// One hedge race: the primary leg plus the backup leg(s) issued against it
/// after the hedge delay elapsed. First member to report wins; the
/// coordinator closes the losers' spans (hedge_loser=1), releases their
/// reservations in tied mode, and stops waiting on them. `covered` /
/// `covered_chunk` record the work snapshot the backups re-run: anything a
/// shared-queue primary picked up *after* the snapshot is not covered and
/// is requeued when the primary is abandoned.
struct System::HedgeGroup {
  std::vector<std::size_t> members;  ///< slot indices (primary first)
  std::vector<std::size_t> covered;  ///< PR units the backups re-run
  parallel::Chunk covered_chunk{};   ///< AP RECV chunk the backups re-run
  bool has_covered_chunk = false;
  bool resolved = false;             ///< a winner was recorded
};

/// Coordinator/broker shared state for one broker-tier PR leg. The host
/// fans the question's selected units out per broker group; the group's
/// broker routes them to in-group shard holders, supervises those inner
/// legs on its own mailbox, merges their partials, and ships one aggregate
/// back. Shared ownership mirrors PrLegSlot: a zombie broker coroutine may
/// only touch this slot and System members.
struct System::BrokerSlot {
  NodeId node = 0;        ///< node carrying the group's brokering duty
  std::size_t epoch = 0;  ///< crash_epoch_[node] at spawn
  std::size_t group = 0;  ///< topology group this leg covers
  /// The group's selected PR units. Kept whole (not drained): a broker
  /// loss loses the partials merged on it, so the host re-routes the full
  /// slice through an acting broker.
  std::vector<std::size_t> units;
  double bytes_out = 0.0;    ///< merged candidate bytes to ship to the host
  std::size_t unserved = 0;  ///< units dropped in-subtree (degraded)
  std::size_t done = 0;      ///< units completed in the subtree
  bool reported = false;
  bool declared_dead = false;
  bool unreachable = false;  // see PrLegSlot
  bool abandoned = false;
  obs::SpanId stage_span = obs::kNoSpan;
  obs::SpanId leg_span = obs::kNoSpan;  // closed by the host on broker loss
  Seconds spawned = 0.0;
  /// Inner report mailbox + the worker slots it serves. Owned here (not in
  /// the coroutine frame) so workers can outlive a crashed broker — each
  /// worker slot holds a keepalive reference to the mailbox.
  std::shared_ptr<simnet::Mailbox<std::size_t>> inner;
  std::vector<std::shared_ptr<PrLegSlot>> workers;
};

/// Per-node cache shards. One pair per node, like the CPUs and disks: a
/// question probes the caches of the node it landed on, which is what the
/// affinity dispatch exists to make the right node.
struct System::NodeCaches {
  cache::LruTtlCache<CachedAnswer> answers;
  cache::LruTtlCache<CachedParagraphs> paragraphs;

  explicit NodeCaches(const cache::CacheConfig& config)
      : answers(config.answers), paragraphs(config.paragraphs) {}
};

System::System(simnet::Simulation& sim, const SystemConfig& config)
    : sim_(sim), config_(config) {
  QADIST_CHECK(config.nodes >= 1);
  QADIST_CHECK(config.partition.pr_strategy != Strategy::kIsend,
               << "ISEND does not apply to PR: collections are unranked "
                  "(paper Sec. 6.3)");
  QADIST_CHECK(config.node_cpu_speeds.empty() ||
                   config.node_cpu_speeds.size() == config.nodes,
               << "node_cpu_speeds arity mismatch");
  nodes_.reserve(config.nodes);
  for (NodeId id = 0; id < config.nodes; ++id) {
    NodeConfig node_config = config.node;
    if (!config.node_cpu_speeds.empty()) {
      node_config.cpu_speed = config.node_cpu_speeds[id];
    }
    nodes_.push_back(std::make_unique<Node>(sim, id, node_config));
  }
  if (config.cache.enabled()) {
    caches_.reserve(config.nodes);
    for (std::size_t i = 0; i < config.nodes; ++i) {
      caches_.push_back(std::make_unique<NodeCaches>(config.cache));
    }
  }
  node_broadcasting_.assign(config.nodes, 1);
  node_crashed_.assign(config.nodes, 0);
  crash_epoch_.assign(config.nodes, 0);
  crash_time_.assign(config.nodes, 0.0);
  two_choice_rng_.reseed(config.seed);
  // Own streams for the fault layer, decorrelated from the two-choice
  // draws by splitmix64-style constants, so enabling faults never perturbs
  // the workload's random decisions.
  net_rng_.reseed(config.seed ^ 0xbf58476d1ce4e5b9ULL);
  network_ = std::make_unique<simnet::Link>(
      sim, "lan", config.net.bandwidth, config.net.per_message_overhead);
  if (config.net.faults.enabled()) {
    injector_ = std::make_unique<simnet::LinkFaultInjector>(
        config.net.faults, config.seed ^ 0x94d049bb133111ebULL);
    network_->set_fault_injector(injector_.get());
  }
  sched::FailureDetectorConfig detector_config{
      config.net.monitor_period, config.net.suspect_after_missed,
      config.net.membership_timeout};
  detector_config.hint_hysteresis = config.net.hint_hysteresis;
  detector_ = sched::FailureDetector(detector_config);
  detector_placement_ =
      config.net.detector_placement || config.net.faults.enabled();
  if (config.tail.enabled()) {
    leg_latency_ =
        sched::LegLatencyTracker(config.nodes, config.tail.ewma_alpha);
  }
  if (config.gray.enabled()) {
    gray_extra_latency_.assign(config.nodes, 0.0);
    gray_open_.assign(config.nodes, {});
    for (const auto& event : config.gray.events) {
      QADIST_CHECK(event.node < config.nodes,
                   << "gray fault targets unknown node " << event.node);
      QADIST_CHECK(std::isfinite(event.at) && event.at >= 0.0,
                   << "gray fault onset time must be finite and >= 0, got "
                   << event.at);
      QADIST_CHECK(!std::isnan(event.recover_after),
                   << "gray fault recover_after must not be NaN");
      QADIST_CHECK(std::isfinite(event.cpu_factor) &&
                       std::isfinite(event.disk_factor) &&
                       event.cpu_factor > 0.0 && event.disk_factor > 0.0,
                   << "gray factors must be positive and finite, got cpu="
                   << event.cpu_factor << " disk=" << event.disk_factor);
      QADIST_CHECK(std::isfinite(event.extra_latency) &&
                       event.extra_latency >= 0.0,
                   << "gray extra_latency must be finite and >= 0, got "
                   << event.extra_latency);
    }
  }
  // Selective search + broker/mediator tier (cfg.broker). Both axes
  // require a sharded corpus — selection scores shards, the tier routes by
  // shard group — and both are off by default: flat runs build no extra
  // links and take no new branches (bit-identical, pinned by test).
  const bool tier_on = config.broker.tier_enabled();
  const bool selection_on =
      config.broker.selection_enabled(config.shard.num_shards);
  if (tier_on || selection_on) {
    QADIST_CHECK(config.shard.enabled(),
                 << "cfg.broker requires a sharded corpus "
                    "(cfg.shard.num_shards > 0)");
    QADIST_CHECK(config.broker.selectivity > 0.0 &&
                     config.broker.selectivity <= 1.0,
                 << "cfg.broker.selectivity must be in (0, 1], got "
                 << config.broker.selectivity);
  }
  if (selection_on && config.broker.stats != nullptr) {
    QADIST_CHECK(config.broker.stats->num_shards() == config.shard.num_shards,
                 << "cfg.broker.stats covers "
                 << config.broker.stats->num_shards() << " shards but "
                 << "cfg.shard.num_shards is " << config.shard.num_shards);
  }
  if (tier_on) {
    QADIST_CHECK(config.broker.brokers <= config.nodes,
                 << "cfg.broker.brokers (" << config.broker.brokers
                 << ") exceeds the node count (" << config.nodes << ")");
    topology_.emplace(config.nodes, config.broker.brokers);
    // Two-level fabric: one subtree LAN per group (same spec as the flat
    // LAN) plus a core backbone between groups. The flat network_ keeps
    // serving runs without the tier; link_for() picks per transfer.
    core_link_ = std::make_unique<simnet::Link>(
        sim, "core", config.broker.core_bandwidth,
        config.net.per_message_overhead);
    subtree_links_.reserve(config.broker.brokers);
    for (std::size_t g = 0; g < config.broker.brokers; ++g) {
      subtree_links_.push_back(std::make_unique<simnet::Link>(
          sim, "subtree" + std::to_string(g), config.net.bandwidth,
          config.net.per_message_overhead));
    }
    if (injector_ != nullptr) {
      core_link_->set_fault_injector(injector_.get());
      for (const auto& link : subtree_links_) {
        link->set_fault_injector(injector_.get());
      }
    }
  }
  if (config.shard.enabled()) {
    if (topology_.has_value()) {
      // Group-constrained placement: each shard lives (and fails over)
      // inside its broker group's subtree, so a broker resolves every
      // shard of its group without crossing the core.
      std::vector<std::pair<shard::NodeId, shard::NodeId>> pools;
      pools.reserve(config.shard.num_shards);
      for (std::size_t s = 0; s < config.shard.num_shards; ++s) {
        const auto [first, last] =
            topology_->group_range(topology_->group_of_shard(s));
        pools.emplace_back(static_cast<shard::NodeId>(first),
                           static_cast<shard::NodeId>(last));
      }
      shard_map_ = std::make_unique<shard::ShardMap>(
          config.shard.num_shards, config.nodes,
          config.shard.effective_replication(config.nodes), pools);
    } else {
      shard_map_ = std::make_unique<shard::ShardMap>(
          config.shard.num_shards, config.nodes,
          config.shard.effective_replication(config.nodes));
    }
    // R = nodes: every node holds every shard, placement is unconstrained,
    // and the legacy scheduling path runs unchanged (bit-compatible with
    // full replication) — only the storage accounting is published. The
    // broker tier and collection selection both force the replica-aware
    // scatter: group placement and pruned unit sets need assign_pr_units
    // even under full replication.
    shard_partial_ =
        config.shard.partial(config.nodes) || tier_on || selection_on;
  }
  register_instruments();
  cpu_probes_.reserve(config.nodes);
  disk_probes_.reserve(config.nodes);
  for (const auto& node : nodes_) {
    node->attach_registry(registry_);
    cpu_probes_.emplace_back(node->cpu());
    disk_probes_.emplace_back(node->disk());
  }
}

void System::register_instruments() {
  ins_.submitted = &registry_.counter("questions_submitted");
  ins_.completed = &registry_.counter("questions_completed");
  ins_.migrations_qa = &registry_.counter("migrations", {{"stage", "qa"}});
  ins_.migrations_pr = &registry_.counter("migrations", {{"stage", "pr"}});
  ins_.migrations_ap = &registry_.counter("migrations", {{"stage", "ap"}});
  ins_.crashes = &registry_.counter("crashes");
  ins_.crashes_skipped = &registry_.counter("crashes_skipped");
  ins_.legs_lost = &registry_.counter("legs_lost");
  ins_.items_recovered = &registry_.counter("items_recovered");
  ins_.recovery_legs = &registry_.counter("recovery_legs");
  ins_.question_restarts = &registry_.counter("question_restarts");
  ins_.latency = &registry_.histogram("question_latency_seconds");
  ins_.recovery_latency = &registry_.histogram("recovery_latency_seconds");
  ins_.t_qp = &registry_.histogram("stage_seconds", {{"stage", "qp"}});
  ins_.t_pr = &registry_.histogram("stage_seconds", {{"stage", "pr"}});
  ins_.t_ps = &registry_.histogram("stage_seconds", {{"stage", "ps"}});
  ins_.t_po = &registry_.histogram("stage_seconds", {{"stage", "po"}});
  ins_.t_ap = &registry_.histogram("stage_seconds", {{"stage", "ap"}});
  ins_.oh_keyword_send =
      &registry_.histogram("overhead_seconds", {{"component", "keyword_send"}});
  ins_.oh_paragraph_receive = &registry_.histogram(
      "overhead_seconds", {{"component", "paragraph_receive"}});
  ins_.oh_paragraph_send = &registry_.histogram(
      "overhead_seconds", {{"component", "paragraph_send"}});
  ins_.oh_answer_receive = &registry_.histogram(
      "overhead_seconds", {{"component", "answer_receive"}});
  ins_.oh_answer_sort =
      &registry_.histogram("overhead_seconds", {{"component", "answer_sort"}});
  // Registered even when caching is off, so the registry schema (and the
  // Metrics view built from it) is stable across configurations.
  ins_.cache_hits = &registry_.counter("cache_hits", {{"cache", "answers"}});
  ins_.cache_misses =
      &registry_.counter("cache_misses", {{"cache", "answers"}});
  ins_.pr_cache_hits =
      &registry_.counter("cache_hits", {{"cache", "paragraphs"}});
  ins_.pr_cache_misses =
      &registry_.counter("cache_misses", {{"cache", "paragraphs"}});
  ins_.affinity_routes = &registry_.counter("affinity_routes");
  ins_.affinity_fallbacks = &registry_.counter("affinity_fallbacks");
  // Unreliable-network layer. Registered unconditionally (like the cache
  // counters) so the registry schema is stable across configurations.
  ins_.net_retries = &registry_.counter("net_retries");
  ins_.net_send_failures = &registry_.counter("net_send_failures");
  ins_.legs_unreachable = &registry_.counter("legs_unreachable");
  ins_.questions_degraded = &registry_.counter("questions_degraded");
  ins_.degraded_units_dropped = &registry_.counter("degraded_units_dropped");
  ins_.degraded_stale_served = &registry_.counter("degraded_stale_served");
  // Shard subsystem. Registered unconditionally, like the layers above.
  ins_.shard_failovers = &registry_.counter("shard_failovers");
  ins_.shard_rebuilds = &registry_.counter("shard_rebuilds");
  ins_.shard_rebuild_bytes = &registry_.counter("shard_rebuild_bytes");
  ins_.shard_revalidations = &registry_.counter("shard_revalidations");
  ins_.shard_units_unserved = &registry_.counter("shard_units_unserved");
  ins_.rejoin_cache_clears = &registry_.counter("rejoin_cache_clears");
  ins_.shard_rebuild_seconds = &registry_.histogram("shard_rebuild_seconds");
  // Admission control. Registered unconditionally, like the layers above.
  ins_.questions_rejected = &registry_.counter("questions_rejected");
  ins_.questions_shed = &registry_.counter("questions_shed");
  ins_.admission_degraded = &registry_.counter("admission_degraded");
  ins_.admission_wait = &registry_.histogram("admission_wait_seconds");
  // Tail-tolerance toolkit + gray faults. Registered unconditionally, like
  // the layers above.
  ins_.legs_spawned = &registry_.counter("legs_spawned");
  ins_.hedges_issued = &registry_.counter("hedges_issued");
  ins_.hedge_wins = &registry_.counter("hedge_wins");
  ins_.hedge_losses = &registry_.counter("hedge_losses");
  ins_.legs_cancelled = &registry_.counter("legs_cancelled");
  ins_.straggler_avoidances = &registry_.counter("straggler_avoidances");
  ins_.gray_onsets = &registry_.counter("gray_onsets");
  ins_.gray_recoveries = &registry_.counter("gray_recoveries");
  // Selective search + broker tier. Registered unconditionally, like the
  // layers above.
  ins_.selection_questions_pruned =
      &registry_.counter("selection_questions_pruned");
  ins_.selection_units_pruned = &registry_.counter("selection_units_pruned");
  ins_.selection_ap_units_pruned =
      &registry_.counter("selection_ap_units_pruned");
  ins_.selection_fallback_all = &registry_.counter("selection_fallback_all");
  ins_.selection_shards_selected =
      &registry_.histogram("selection_shards_selected");
  ins_.broker_legs = &registry_.counter("broker_legs");
  ins_.broker_reroutes = &registry_.counter("broker_reroutes");
  ins_.broker_unreachable = &registry_.counter("broker_unreachable");
  ins_.broker_load_relays = &registry_.counter("broker_load_relays");
}

System::~System() = default;

std::string_view to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "REJECT";
    case AdmissionPolicy::kShedOldest:
      return "SHED-OLDEST";
    case AdmissionPolicy::kDegrade:
      return "DEGRADE";
  }
  QADIST_UNREACHABLE("bad AdmissionPolicy");
}

void System::record_trace(NodeId node, std::string event) {
  record_event(node, std::move(event), {});
}

void System::record_event(NodeId node, std::string event, obs::Attrs attrs) {
  // With a tracer wired, the instant event IS the record — the attached
  // TraceRecorder (text sink) receives the rendering from the same call.
  if (tracer_ != nullptr) {
    tracer_->instant(sim_.now(), node, std::move(event), std::move(attrs));
    return;
  }
  if (trace_ != nullptr) trace_->record(sim_.now(), node, std::move(event));
}

void System::submit(const QuestionPlan& plan, Seconds at) {
  QADIST_CHECK(!started_, << "submit after run()");
  const NodeId dns_node = next_dns_node_;
  next_dns_node_ = static_cast<NodeId>((next_dns_node_ + 1) % nodes_.size());
  if (ins_.submitted->value() == 0.0 || at < first_submit_) {
    first_submit_ = at;
  }
  ins_.submitted->inc();
  sim_.schedule_at(at, [this, &plan, dns_node] {
    on_arrival(plan, dns_node);
  });
}

void System::on_arrival(const QuestionPlan& plan, NodeId dns_node) {
  const AdmissionConfig& admission = config_.admission;
  if (!admission.enabled()) {
    // Legacy unbounded path: every arrival starts immediately.
    question_process(plan, dns_node, sim_.now());
    return;
  }
  // Load-based shedding: a saturated pool sheds even while the waiting
  // room has space — queueing behind a pool that cannot drain only trades
  // rejections for timeouts.
  const bool pool_overloaded =
      admission.load_threshold > 0.0 &&
      sched::mean_pool_load(table_, sched::kQaWeights) >
          admission.load_threshold;
  if (executing_ < admission.max_concurrent && !pool_overloaded) {
    start_admitted(plan, dns_node, sim_.now());
    return;
  }
  if (!pool_overloaded && admission_queue_.size() < admission.queue_capacity) {
    admission_queue_.push_back(QueuedArrival{&plan, dns_node, sim_.now()});
    admission_queue_peak_ =
        std::max(admission_queue_peak_, admission_queue_.size());
    return;
  }
  shed_arrival(plan, dns_node);
}

void System::shed_arrival(const QuestionPlan& plan, NodeId dns_node) {
  switch (config_.admission.policy) {
    case AdmissionPolicy::kShedOldest:
      // Keep the freshest work: the oldest queued question has already
      // waited longest and is the most likely to be stale to its user.
      // With no waiting room there is no older arrival to shed.
      if (!admission_queue_.empty()) {
        const QueuedArrival oldest = admission_queue_.front();
        admission_queue_.pop_front();
        ins_.questions_shed->inc();
        record_event(oldest.dns_node,
                     "question " + std::to_string(oldest.plan->source.id) +
                         " shed from the admission queue",
                     {{"kind", std::string("admission_shed")}});
        admission_queue_.push_back(QueuedArrival{&plan, dns_node, sim_.now()});
        maybe_finish();
        return;
      }
      [[fallthrough]];
    case AdmissionPolicy::kReject:
      ins_.questions_rejected->inc();
      record_event(dns_node,
                   "question " + std::to_string(plan.source.id) +
                       " rejected at admission",
                   {{"kind", std::string("admission_reject")}});
      maybe_finish();
      return;
    case AdmissionPolicy::kDegrade:
      complete_degraded(plan, dns_node);
      return;
  }
  QADIST_UNREACHABLE("bad AdmissionPolicy");
}

void System::complete_degraded(const QuestionPlan& plan, NodeId dns_node) {
  // Serve what we already have, immediately: probe the rendezvous-preferred
  // node's answer cache (a stale entry still beats nothing), otherwise
  // return a flagged partial answer. No cluster resources are consumed —
  // that is the point of shedding.
  ins_.admission_degraded->inc();
  bool cache_served = false;
  bool stale = false;
  if (!caches_.empty()) {
    const std::string key = cache::normalize_question(plan.source.text);
    if (const auto preferred = preferred_node(plan); preferred.has_value()) {
      NodeCaches& shard = *caches_[*preferred];
      if (shard.answers.find(key, sim_.now()) != nullptr) {
        cache_served = true;
        ins_.cache_hits->inc();
      } else if (shard.answers.peek_stale(key) != nullptr) {
        cache_served = true;
        stale = true;
        ins_.degraded_stale_served->inc();
      }
    }
  }
  if (!cache_served || stale) ins_.questions_degraded->inc();
  record_event(dns_node,
               "question " + std::to_string(plan.source.id) +
                   " degraded by admission control" +
                   (cache_served ? (stale ? " (stale cached answer served)"
                                          : " (cached answer served)")
                                 : " (partial answer)"),
               {{"kind", std::string("admission_degrade")},
                {"cache_served", std::int64_t{cache_served ? 1 : 0}}});
  ins_.latency->observe(0.0);  // answered at its arrival instant
  makespan_ = std::max(makespan_, sim_.now());
  ins_.completed->inc();
  maybe_finish();
}

void System::start_admitted(const QuestionPlan& plan, NodeId dns_node,
                            Seconds arrived) {
  ++executing_;
  ins_.admission_wait->observe(sim_.now() - arrived);
  question_process(plan, dns_node, arrived);
}

void System::finish_admitted() {
  QADIST_CHECK(executing_ > 0);
  --executing_;
  if (!admission_queue_.empty() &&
      executing_ < config_.admission.max_concurrent) {
    const QueuedArrival next = admission_queue_.front();
    admission_queue_.pop_front();
    start_admitted(*next.plan, next.dns_node, next.arrived);
  }
}

void System::maybe_finish() {
  const double accounted = ins_.completed->value() +
                           ins_.questions_rejected->value() +
                           ins_.questions_shed->value();
  if (accounted == ins_.submitted->value()) all_done_ = true;
}

void System::prewarm(const QuestionPlan& plan) {
  QADIST_CHECK(!started_, << "prewarm after run()");
  if (caches_.empty()) return;
  const std::string key = cache::normalize_question(plan.source.text);
  const auto preferred = preferred_node(plan);
  if (!preferred.has_value()) return;
  NodeCaches& shard = *caches_[*preferred];
  shard.answers.insert(key, CachedAnswer{plan.answer_bytes},
                       answer_footprint(key, plan), sim_.now());
  shard.paragraphs.insert(key, CachedParagraphs{},
                          paragraph_footprint(key, plan), sim_.now());
}

std::optional<NodeId> System::preferred_node(const QuestionPlan& plan) const {
  if (caches_.empty()) return std::nullopt;
  const std::uint64_t signature =
      cache::question_signature(cache::normalize_question(plan.source.text));
  std::vector<std::uint32_t> pool;
  pool.reserve(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (node_crashed_[n] == 0) pool.push_back(n);
  }
  return cache::rendezvous_pick(signature, pool);
}

bool System::answer_cached(NodeId node, const QuestionPlan& plan) const {
  if (caches_.empty()) return false;
  return caches_.at(node)->answers.contains(
      cache::normalize_question(plan.source.text), sim_.now());
}

cache::CacheStats System::answer_cache_stats(NodeId node) const {
  if (caches_.empty()) return {};
  return caches_.at(node)->answers.stats();
}

cache::CacheStats System::paragraph_cache_stats(NodeId node) const {
  if (caches_.empty()) return {};
  return caches_.at(node)->paragraphs.stats();
}

std::optional<NodeId> System::affinity_target(std::uint64_t signature) const {
  std::vector<std::uint32_t> live;
  live.reserve(table_.members().size());
  for (NodeId m : table_.members()) {
    if (schedulable(m)) live.push_back(m);
  }
  return cache::rendezvous_pick(signature, live);
}

void System::schedule_leave(NodeId node, Seconds at) {
  QADIST_CHECK(node < nodes_.size());
  sim_.schedule_at(at, [this, node] { node_broadcasting_[node] = 0; });
}

void System::schedule_join(NodeId node, Seconds at) {
  QADIST_CHECK(node < nodes_.size());
  sim_.schedule_at(at, [this, node] {
    // Joining a crashed node implies a reboot first.
    if (node_crashed_[node] != 0) apply_restart(node);
    node_broadcasting_[node] = 1;
  });
}

void System::schedule_crash(NodeId node, Seconds at, Seconds restart_after) {
  QADIST_CHECK(node < nodes_.size());
  sim_.schedule_at(at, [this, node, restart_after] {
    apply_crash(node);
    if (restart_after >= 0.0 && node_crashed_[node] != 0) {
      sim_.schedule(restart_after, [this, node] { apply_restart(node); });
    }
  });
}

void System::apply_crash(NodeId node) {
  if (node_crashed_[node] != 0) {
    ins_.crashes_skipped->inc();  // already down
    return;
  }
  std::size_t live = 0;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (node_crashed_[n] == 0) ++live;
  }
  if (live <= 1) {
    // Losing the last node would strand every question; skip (and count)
    // so random fault processes can't wedge a run.
    ins_.crashes_skipped->inc();
    record_trace(node, "crash skipped (last live node)");
    return;
  }
  node_crashed_[node] = 1;
  ++crash_epoch_[node];
  crash_time_[node] = sim_.now();
  node_broadcasting_[node] = 0;  // a dead node broadcasts nothing
  nodes_[node]->crash();
  if (!caches_.empty()) {
    // The caches live in the node's memory: a crash loses them, and the
    // node reboots cold. (Counted as invalidations, not evictions.)
    caches_[node]->answers.clear();
    caches_[node]->paragraphs.clear();
  }
  ins_.crashes->inc();
  record_event(node, "crashed", {{"kind", std::string("crash")}});
  if (shard_map_ != nullptr && shard_partial_) {
    // Failover: drop the dead holder's replicas and start background
    // re-replication of each affected shard onto a surviving node. The map
    // reserves the targets synchronously (no double-assignment on a crash
    // burst); the rebuild processes pay the simulated disk/net cost.
    std::vector<shard::NodeId> live_pool;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (node_crashed_[n] == 0) live_pool.push_back(n);
    }
    const auto plan = shard_map_->fail_node(node, live_pool);
    for (const shard::ShardId s : plan.unavailable) {
      record_event(node,
                   "shard " + std::to_string(s) +
                       " unavailable (no ready replica)",
                   {{"kind", std::string("shard_unavailable")},
                    {"shard", static_cast<std::int64_t>(s)}});
    }
    for (const auto& task : plan.rebuilds) {
      ins_.shard_failovers->inc();
      record_event(task.target,
                   "re-replicating shard " + std::to_string(task.shard) +
                       " (lost N" + std::to_string(node + 1) + ")",
                   {{"kind", std::string("shard_rebuild_start")},
                    {"shard", static_cast<std::int64_t>(task.shard)}});
      rebuild_process(task.shard, task.target, crash_epoch_[task.target]);
    }
  }
  // Deliberately no table_.remove here: membership stays broadcast-driven.
  // The rest of the pool learns of the death either by expiry (the silent
  // node ages past membership_timeout) or when a coordinator's reply
  // timeout fires first.
}

void System::apply_restart(NodeId node) {
  if (node_crashed_[node] == 0) return;
  node_crashed_[node] = 0;
  node_broadcasting_[node] = 1;  // schedulable again from its next broadcast
  nodes_[node]->restart();
  record_event(node, "restarted", {{"kind", std::string("restart")}});
  if (shard_map_ != nullptr && shard_partial_) {
    // The shard copies survived on the rebooted node's disk, but they must
    // be re-scanned before they serve retrieval again (a crash mid-write
    // may have torn one — the magic/version checks in ir::persist are what
    // this validation pass runs).
    revalidate_process(node, crash_epoch_[node]);
  }
}

void System::apply_gray(std::size_t event_index) {
  // Gray onset: the node keeps running (and heartbeating!) but its service
  // rates degrade. The failure detector sees nothing — that is the point.
  const simnet::GrayFaultEvent& event = config_.gray.events[event_index];
  gray_open_[event.node].push_back(event_index);
  recompute_gray(event.node);
  ins_.gray_onsets->inc();
  record_event(event.node, "gray fault onset",
               {{"kind", std::string("gray_onset")},
                {"cpu_factor", event.cpu_factor},
                {"disk_factor", event.disk_factor}});
}

void System::clear_gray(NodeId node, std::size_t event_index) {
  // Only this window closes; overlapping windows on the same node stay
  // open, so the node recovers exactly when its *last* window ends.
  std::erase(gray_open_[node], event_index);
  recompute_gray(node);
  ins_.gray_recoveries->inc();
  record_event(node, "gray fault recovered",
               {{"kind", std::string("gray_recovery")}});
}

void System::recompute_gray(NodeId node) {
  // Effective degradation = the worst of the node's open windows, per
  // resource: concurrent gray causes (a thermal throttle and a sick disk,
  // say) don't multiply each other's service times, the slowest one
  // dominates. With no open window the node is healthy again.
  double cpu = 1.0;
  double disk = 1.0;
  Seconds extra = 0.0;
  for (const std::size_t index : gray_open_[node]) {
    const simnet::GrayFaultEvent& event = config_.gray.events[index];
    cpu = std::max(cpu, event.cpu_factor);
    disk = std::max(disk, event.disk_factor);
    extra = std::max(extra, event.extra_latency);
  }
  if (!gray_open_[node].empty()) {
    nodes_[node]->set_gray(cpu, disk);
  } else {
    nodes_[node]->clear_gray();
  }
  gray_extra_latency_[node] = extra;
}

Seconds System::gray_extra_latency(NodeId src, NodeId dst) const {
  if (gray_extra_latency_.empty()) return 0.0;  // no gray plan configured
  // A degraded NIC/switch port hurts both directions, so a message pays
  // the endpoint penalties additively.
  return gray_extra_latency_[src] + gray_extra_latency_[dst];
}

void System::observe_leg(sched::LegStage stage, NodeId node, Seconds wall,
                         double units, bool backup) {
  if (!config_.tail.enabled()) return;
  // The hedge trigger is a quantile of *primary* per-unit leg walls. A
  // backup's wall is measured from the hedge instant and is short by
  // construction; feeding it back would depress the trigger and
  // over-hedge. Normalizing by units keeps legs of different sizes
  // comparable — the trigger scales back up by each leg's own unit count.
  if (!backup && units > 0.0) {
    leg_walls_[static_cast<std::size_t>(stage)].push_back(wall / units);
  }
  leg_latency_.observe(node, stage, wall, units);
}

std::optional<Seconds> System::hedge_delay(sched::LegStage stage) const {
  const std::vector<double>& walls =
      leg_walls_[static_cast<std::size_t>(stage)];
  if (walls.size() < config_.tail.hedge_min_samples) return std::nullopt;
  // Quantile over the completed-leg per-unit walls observed so far (the
  // live analogue of the "issue the backup after the p95" rule).
  // nth_element on a scratch copy: O(n) per dispatch round, and the
  // observation order is deterministic so the trigger is too. Callers
  // scale by the waiting leg's unit count and apply hedge_min_delay.
  std::vector<double> scratch = walls;
  const double q = std::clamp(config_.tail.hedge_quantile, 0.0, 1.0);
  const auto nth = static_cast<std::ptrdiff_t>(
      q * static_cast<double>(scratch.size() - 1));
  std::nth_element(scratch.begin(), scratch.begin() + nth, scratch.end());
  return scratch[static_cast<std::size_t>(nth)];
}

std::span<const char> System::straggler_mask(sched::LegStage stage) {
  if (!config_.tail.latency_aware) return {};
  if (!leg_latency_.straggler_mask(stage, config_.tail.straggler_ratio,
                                   straggler_scratch_)) {
    return {};
  }
  ins_.straggler_avoidances->inc();
  return {straggler_scratch_.data(), straggler_scratch_.size()};
}

bool System::schedulable(NodeId node) const {
  if (node_crashed_[node] != 0) return false;
  if (!detector_placement_) return true;
  return detector_.state(node) == sched::PeerState::kAlive;
}

bool System::deadline_exceeded(const QuestionState& q) const {
  return q.deadline > 0.0 && sim_.now() > q.deadline;
}

simnet::Link& System::link_for(NodeId src, NodeId dst) const {
  // Flat star: the single shared LAN. Broker tier: endpoints inside one
  // group share that group's subtree segment; anything crossing groups
  // rides the core backbone. Never called with kBroadcastNode — the
  // monitor broadcast picks its segment explicitly (see monitor_process).
  if (!topology_.has_value()) return *network_;
  const std::size_t src_group = topology_->group_of_node(src);
  if (src_group == topology_->group_of_node(dst)) {
    return *subtree_links_[src_group];
  }
  return *core_link_;
}

simnet::Task<bool> System::ship(double bytes, NodeId src, NodeId dst,
                                Seconds deadline, ShipCost* cost) {
  // Gray link penalty: a degraded NIC adds propagation delay the failure
  // detector never sees (heartbeats go over Link::send directly and stay
  // on schedule). Guarded so a run without a gray plan emits no extra
  // event — bit-identical to builds without this layer.
  const Seconds gray_extra = gray_extra_latency(src, dst);
  if (gray_extra > 0.0) {
    const Seconds g0 = sim_.now();
    co_await simnet::Delay(sim_, gray_extra);
    if (cost != nullptr) cost->transfer += sim_.now() - g0;
  }
  if (injector_ == nullptr) {
    // Reliable link: exactly the transfer() event sequence, so fault-free
    // runs stay bit-identical to builds without this layer (link_for is
    // the flat LAN whenever the broker tier is off).
    const Seconds t0 = sim_.now();
    co_await link_for(src, dst).transfer(bytes);
    if (cost != nullptr) cost->transfer += sim_.now() - t0;
    co_return true;
  }
  const ReliabilityConfig& rel = config_.net.reliability;
  // One idempotency token per logical message: however many frames the
  // retries and link-level duplications put on the wire, the receiver
  // processes the sequence number once and discards the rest (the link
  // folds the duplicate tally into net_dedup_dropped at the end of the
  // run). The token also keeps redeliveries observable in sim traces.
  [[maybe_unused]] const std::uint64_t seq = next_msg_seq_++;
  Seconds backoff = rel.backoff_base;
  for (std::size_t attempt = 0;; ++attempt) {
    const Seconds t0 = sim_.now();
    const simnet::LinkVerdict verdict =
        co_await link_for(src, dst).send(bytes, src, dst);
    if (cost != nullptr) cost->transfer += sim_.now() - t0;
    if (verdict.delivered) co_return true;
    if (attempt >= rel.max_retries) break;
    if (deadline > 0.0 && sim_.now() >= deadline) break;
    ins_.net_retries->inc();
    const Seconds wait = std::min(backoff, rel.backoff_max) *
                         (1.0 + rel.backoff_jitter * net_rng_.uniform01());
    backoff *= 2.0;
    const Seconds b0 = sim_.now();
    co_await simnet::Delay(sim_, wait);
    if (cost != nullptr) cost->backoff += sim_.now() - b0;
  }
  ins_.net_send_failures->inc();
  co_return false;
}

System::ShardAssignment System::assign_pr_units(
    std::span<const std::size_t> units, std::optional<NodeId> exclude) {
  ShardAssignment out;
  // Eligible pool: every schedulable ready holder of a shard the question
  // touches (the meta-scheduler only weighs nodes that can actually serve
  // some of this question's corpus).
  std::vector<shard::NodeId> eligible;
  {
    std::vector<char> seen(nodes_.size(), 0);
    for (const std::size_t u : units) {
      const shard::ShardId s = shard_map_->shard_of_unit(u);
      for (const NodeId n : shard_map_->ready_holders(s)) {
        if (seen[n] != 0) continue;
        seen[n] = 1;
        if (exclude.has_value() && *exclude == n) continue;
        if (schedulable(n)) eligible.push_back(n);
      }
    }
    std::sort(eligible.begin(), eligible.end());
  }
  // Meta-schedule weights over the eligible pool (DQA). Other policies
  // weigh every holder equally — they still scatter, because the host may
  // simply not hold the shards this question touches.
  std::vector<double> node_weight(nodes_.size(), 1.0);
  if (config_.dispatch.policy == Policy::kDqa && !eligible.empty()) {
    const auto ms = sched::meta_schedule_among(
        table_, eligible, sched::kPrWeights,
        config_.dispatch.pr_underload_threshold, &registry_,
        straggler_mask(sched::LegStage::kPr));
    if (!ms.selected.empty()) {
      // A holder outside the meta-schedule's pick keeps a small floor
      // weight instead of zero: it may be the only node able to serve its
      // shard's units.
      node_weight.assign(nodes_.size(), 1e-3);
      for (std::size_t i = 0; i < ms.selected.size(); ++i) {
        node_weight[ms.selected[i]] = std::max(ms.weights[i], 1e-3);
      }
    }
  }
  // Weighted round-robin per unit: each sub-collection goes to the ready
  // holder of its shard minimizing (assigned + 1) / weight, preferring
  // trusted (unsuspected) holders, ties to the lower node id. Units whose
  // shard has no live holder are unplaced — the caller degrades.
  std::vector<std::size_t> assigned(nodes_.size(), 0);
  std::vector<std::size_t> leg_of(nodes_.size(), kNoUnit);
  for (const std::size_t u : units) {
    const shard::ShardId s = shard_map_->shard_of_unit(u);
    std::optional<NodeId> best;
    double best_cost = 0.0;
    for (const bool allow_suspect : {false, true}) {
      for (const NodeId n : shard_map_->ready_holders(s)) {
        if (exclude.has_value() && *exclude == n) continue;
        if (node_crashed_[n] != 0) continue;
        if (!allow_suspect && !schedulable(n)) continue;
        const double cost =
            static_cast<double>(assigned[n] + 1) / node_weight[n];
        if (!best.has_value() || cost < best_cost) {
          best = n;
          best_cost = cost;
        }
      }
      if (best.has_value()) break;
    }
    if (!best.has_value()) {
      out.unplaced.push_back(u);
      continue;
    }
    ++assigned[*best];
    if (leg_of[*best] == kNoUnit) {
      leg_of[*best] = out.legs.size();
      out.legs.emplace_back(*best, std::deque<std::size_t>{});
    }
    out.legs[leg_of[*best]].second.push_back(u);
  }
  return out;
}

System::SelectionResult System::select_pr_units(const QuestionPlan& plan) {
  SelectionResult out;
  out.units.resize(plan.pr_units.size());
  for (std::size_t i = 0; i < out.units.size(); ++i) out.units[i] = i;
  const std::size_t num_shards = config_.shard.num_shards;
  if (shard_map_ == nullptr || plan.pr_units.empty() ||
      !config_.broker.selection_enabled(num_shards)) {
    return out;
  }
  const std::size_t top_k = config_.broker.effective_top_k(num_shards);
  std::vector<std::size_t> selected;
  if (config_.broker.stats != nullptr) {
    // CORI shard scoring over the persisted per-shard term statistics.
    selected = broker::select_shards(*config_.broker.stats,
                                     plan.processed.keywords, top_k);
  } else {
    // No term statistics supplied: rank shards by the retrieval work they
    // would serve for this question — a size-based proxy for CORI.
    std::vector<double> work(num_shards, 0.0);
    for (std::size_t u = 0; u < plan.pr_units.size(); ++u) {
      work[shard_map_->shard_of_unit(u)] +=
          static_cast<double>(plan.pr_units[u].paragraphs);
    }
    selected = broker::select_shards_by_work(work, top_k);
  }
  std::vector<char> keep(num_shards, 0);
  for (const std::size_t s : selected) keep[s] = 1;
  std::vector<std::size_t> units;
  double kept_paragraphs = 0.0;
  double total_paragraphs = 0.0;
  for (std::size_t u = 0; u < plan.pr_units.size(); ++u) {
    const double p = static_cast<double>(plan.pr_units[u].paragraphs);
    total_paragraphs += p;
    if (keep[shard_map_->shard_of_unit(u)] != 0) {
      units.push_back(u);
      kept_paragraphs += p;
    }
  }
  if (units.empty()) {
    // Every selected shard serves no unit of this plan (fewer units than
    // shards): searching nothing would answer nothing — run exhaustively.
    ins_.selection_fallback_all->inc();
    return out;
  }
  if (units.size() == out.units.size()) return out;  // nothing pruned
  ins_.selection_questions_pruned->inc();
  ins_.selection_units_pruned->inc(
      static_cast<double>(out.units.size() - units.size()));
  ins_.selection_shards_selected->observe(static_cast<double>(selected.size()));
  out.pruned = true;
  out.kept_fraction =
      total_paragraphs > 0.0 ? kept_paragraphs / total_paragraphs : 1.0;
  out.units = std::move(units);
  return out;
}

NodeId System::pick_live(const sched::LoadWeights& weights) const {
  // Two passes over the pool: trusted members first, then any non-crashed
  // member (with the detector driving placement, every member may be a
  // suspect — a suspect still beats an arbitrary fallback node).
  for (const bool allow_suspect : {false, true}) {
    std::optional<NodeId> best;
    double best_load = 0.0;
    for (NodeId m : table_.members()) {
      if (node_crashed_[m] != 0) continue;  // dead but not yet expired
      if (!allow_suspect && !schedulable(m)) continue;
      const double load = sched::load_function(table_.load_of(m), weights);
      if (!best.has_value() || load < best_load) {
        best = m;
        best_load = load;
      }
    }
    if (best.has_value()) return *best;
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (node_crashed_[n] == 0) return n;
  }
  QADIST_UNREACHABLE("no live nodes (apply_crash spares the last one)");
}

Metrics System::run() {
  QADIST_CHECK(!started_, << "run() called twice");
  started_ = true;
  // Seed the load table (and the failure detector's peer roster) so
  // dispatch decisions at t=0 see every broadcasting node, then start the
  // per-node monitors.
  for (const auto& node : nodes_) {
    if (node_broadcasting_[node->id()] != 0) {
      table_.update(node->id(), sched::ResourceLoad{}, sim_.now());
      detector_.heartbeat(node->id(), sim_.now());
    }
  }
  for (const auto& node : nodes_) {
    monitor_process(*node);
  }
  for (const auto& fault : config_.faults.crashes) {
    schedule_crash(fault.node, fault.at, fault.restart_after);
  }
  if (config_.faults.mtbf > 0.0) {
    fault_process();
  }
  if (injector_ != nullptr) {
    // Partition instants: bracket every scripted window in the trace and
    // count the cuts. (Only scheduled with faults on, so the fault-free
    // event sequence is untouched.)
    for (const simnet::PartitionWindow& w : config_.net.faults.partitions) {
      const NodeId first = w.isolated.front();
      const auto n = static_cast<std::int64_t>(w.isolated.size());
      sim_.schedule_at(w.from, [this, first, n] {
        registry_.counter("net_partitions").inc();
        record_event(first, "partition started (" + std::to_string(n) +
                                " nodes isolated)",
                     {{"kind", std::string("partition_start")},
                      {"isolated", n}});
      });
      sim_.schedule_at(w.until, [this, first] {
        record_event(first, "partition healed",
                     {{"kind", std::string("partition_end")}});
      });
    }
  }
  if (config_.gray.enabled()) {
    // Gray-fault instants: degrade service rates / inflate link latency on
    // schedule, optionally recovering later. (Only scheduled with a gray
    // plan, so the plan-free event sequence is untouched.)
    for (std::size_t i = 0; i < config_.gray.events.size(); ++i) {
      const simnet::GrayFaultEvent& event = config_.gray.events[i];
      sim_.schedule_at(event.at, [this, i] { apply_gray(i); });
      if (event.recover_after >= 0.0) {
        const NodeId node = event.node;
        sim_.schedule_at(event.at + event.recover_after,
                         [this, node, i] { clear_gray(node, i); });
      }
    }
  }
  sim_.run();
  // Every submitted question must be accounted for: completed (including
  // degraded-at-admission ones), rejected, or shed from the queue.
  const double accounted = ins_.completed->value() +
                           ins_.questions_rejected->value() +
                           ins_.questions_shed->value();
  QADIST_CHECK(accounted == ins_.submitted->value(),
               << "simulation drained with " << accounted << "/"
               << ins_.submitted->value() << " questions accounted for ("
               << ins_.completed->value() << " completed)");
  QADIST_CHECK(admission_queue_.empty() && executing_ == 0,
               << "admission state not drained: " << admission_queue_.size()
               << " queued, " << executing_ << " executing");

  // Publish the run-scoped values, then build the read-only view from the
  // registry — the registry is the single source of truth.
  registry_.gauge("first_submit_seconds").set(first_submit_);
  registry_.gauge("makespan_seconds").set(makespan_);
  registry_.gauge("admission_queue_peak")
      .set(static_cast<double>(admission_queue_peak_));
  for (const auto& node : nodes_) {
    const obs::Labels labels{{"node", std::to_string(node->id())}};
    registry_.gauge("node_cpu_work_seconds", labels)
        .set(node->cpu().work_served());
    registry_.gauge("node_disk_work_bytes", labels)
        .set(node->disk().work_served());
  }
  publish_cache_stats();
  publish_net_stats();
  publish_shard_stats();
  return Metrics::from_registry(registry_);
}

void System::publish_shard_stats() {
  if (shard_map_ == nullptr) return;
  // Per-node index storage: replicas held (any state — a rebuilding copy
  // already pins disk) times the simulated shard artifact size. This is
  // the storage-scaling axis bench_shard_scaling sweeps.
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const obs::Labels labels{{"node", std::to_string(n)}};
    registry_.gauge("node_storage_bytes", labels)
        .set(static_cast<double>(
            shard_map_->storage_bytes(n, config_.shard.shard_bytes)));
  }
  registry_.gauge("shard_replication")
      .set(static_cast<double>(shard_map_->replication()));
  registry_.gauge("shard_count")
      .set(static_cast<double>(shard_map_->num_shards()));
}

void System::publish_net_stats() {
  // Lifetime tallies of the fault layer, folded once so the registry (and
  // the Metrics view) exposes them alongside the live counters. Created
  // even when faults are off so the schema is stable.
  const auto fold = [this](const char* name, std::uint64_t value) {
    registry_.counter(name).inc(static_cast<double>(value));
  };
  fold("net_drops", injector_ != nullptr ? injector_->random_drops() : 0);
  fold("net_partition_drops",
       injector_ != nullptr ? injector_->partition_drops() : 0);
  fold("net_duplicates", injector_ != nullptr ? injector_->duplicates() : 0);
  // Duplicated frames are exactly the ones the receiver's sequence-number
  // check discards.
  fold("net_dedup_dropped", injector_ != nullptr ? injector_->duplicates() : 0);
  fold("net_partitions", 0);  // incremented live by the window instants
  fold("detector_suspicions", detector_.suspicions_raised());
  fold("detector_false_alarms", detector_.suspicions_cleared());
  fold("detector_deaths", detector_.deaths_confirmed());
  fold("detector_rejoins", detector_.rejoins());
  fold("detector_hints_suppressed", detector_.hints_suppressed());
  const double completed = ins_.completed->value();
  registry_.gauge("degraded_answer_fraction")
      .set(completed > 0.0 ? ins_.questions_degraded->value() / completed
                           : 0.0);
}

void System::publish_cache_stats() {
  if (caches_.empty()) return;
  cache::CacheStats answers_total;
  cache::CacheStats paragraphs_total;
  const auto fold = [](cache::CacheStats& total,
                       const cache::CacheStats& s) {
    total.evictions_entries += s.evictions_entries;
    total.evictions_bytes += s.evictions_bytes;
    total.expirations += s.expirations;
    total.rejected_oversize += s.rejected_oversize;
    total.invalidations += s.invalidations;
    total.insertions += s.insertions;
    total.updates += s.updates;
  };
  for (NodeId n = 0; n < caches_.size(); ++n) {
    const NodeCaches& shard = *caches_[n];
    fold(answers_total, shard.answers.stats());
    fold(paragraphs_total, shard.paragraphs.stats());
    const obs::Labels node_label{{"node", std::to_string(n)}};
    const auto with_cache = [&](const char* cache_name) {
      obs::Labels labels = node_label;
      labels.emplace_back("cache", cache_name);
      return labels;
    };
    registry_.gauge("cache_entries", with_cache("answers"))
        .set(static_cast<double>(shard.answers.size()));
    registry_.gauge("cache_bytes", with_cache("answers"))
        .set(static_cast<double>(shard.answers.bytes()));
    registry_.gauge("cache_entries", with_cache("paragraphs"))
        .set(static_cast<double>(shard.paragraphs.size()));
    registry_.gauge("cache_bytes", with_cache("paragraphs"))
        .set(static_cast<double>(shard.paragraphs.bytes()));
  }
  const auto publish = [&](const char* cache_name,
                           const cache::CacheStats& s) {
    const obs::Labels labels{{"cache", cache_name}};
    registry_.counter("cache_insertions", labels)
        .inc(static_cast<double>(s.insertions));
    registry_.counter("cache_updates", labels)
        .inc(static_cast<double>(s.updates));
    registry_.counter("cache_evictions", labels)
        .inc(static_cast<double>(s.evictions()));
    registry_.counter("cache_expirations", labels)
        .inc(static_cast<double>(s.expirations));
    registry_.counter("cache_invalidations", labels)
        .inc(static_cast<double>(s.invalidations));
    registry_.counter("cache_rejected_oversize", labels)
        .inc(static_cast<double>(s.rejected_oversize));
  };
  publish("answers", answers_total);
  publish("paragraphs", paragraphs_total);
}

simnet::SimProcess System::monitor_process(Node& node) {
  // Periodically: measure local load, fold it into the damped average,
  // broadcast it on the shared segment, refresh the table, and drop silent
  // peers (paper Sec. 3.1). Monitors stop once the workload drains so the
  // event queue can empty.
  sched::ResourceLoad ema;
  while (!all_done_) {
    const auto sample = node.sample_load();
    if (tracer_ != nullptr) {
      // Per-node utilization timeline (Chrome trace counter track): busy
      // fraction of each resource over the monitor period just ended.
      const NodeId id = node.id();
      tracer_->counter_sample(sim_.now(), id, "cpu_util",
                              cpu_probes_[id].sample(sim_.now()));
      tracer_->counter_sample(sim_.now(), id, "disk_util",
                              disk_probes_[id].sample(sim_.now()));
    }
    const double alpha =
        config_.net.load_smoothing_tau > 0.0
            ? 1.0 - std::exp(-config_.net.monitor_period /
                             config_.net.load_smoothing_tau)
            : 1.0;
    ema.cpu += alpha * (sample.cpu - ema.cpu);
    ema.disk += alpha * (sample.disk - ema.disk);
    if (node_broadcasting_[node.id()] != 0) {
      // The broadcast doubles as this node's heartbeat: only a delivered
      // packet refreshes the table and the failure detector, so a lossy or
      // partitioned link starves both — exactly how the rest of the pool
      // would experience it.
      // Under the broker tier the broadcast rides the node's subtree
      // segment (link_for with src == dst); flat runs use the shared LAN,
      // event-for-event as before.
      const simnet::LinkVerdict verdict =
          co_await link_for(node.id(), node.id())
              .send(static_cast<double>(config_.net.load_packet_bytes),
                    node.id(), simnet::kBroadcastNode);
      if (verdict.delivered && topology_.has_value() &&
          topology_->broker_node(topology_->group_of_node(node.id())) ==
              node.id()) {
        // Two-level dissemination: the broker re-publishes its subtree's
        // digest on the core so other groups' load tables stay global.
        // One relay frame per period per broker; a lost relay only delays
        // freshness until the next period, so it is not retried.
        const simnet::LinkVerdict relay = co_await core_link_->send(
            static_cast<double>(config_.net.load_packet_bytes), node.id(),
            simnet::kBroadcastNode);
        if (relay.delivered) ins_.broker_load_relays->inc();
      }
      if (verdict.delivered) {
        const auto before = detector_.heartbeat(node.id(), sim_.now());
        if (before == sched::PeerState::kDead && detector_placement_) {
          // A peer confirmed dead and now heard from again went through an
          // unobserved outage (a graceful leave + rejoin looks the same
          // from here). Its cache shards may hold entries the rest of the
          // pool invalidated or superseded meanwhile — clear them, exactly
          // as a crash does, so a stale answer can't be served. (A crash
          // path already cleared them; this covers the leave/rejoin path.)
          if (!caches_.empty()) {
            caches_[node.id()]->answers.clear();
            caches_[node.id()]->paragraphs.clear();
            ins_.rejoin_cache_clears->inc();
          }
          record_event(node.id(), "peer rejoined after confirmed death",
                       {{"kind", std::string("detector_rejoin")}});
        }
        // The damped broadcast absorbs only `alpha` of newly placed load
        // per period, so keep the complementary share of the reservations
        // alive.
        table_.update(node.id(), ema, sim_.now(),
                      /*reservation_keep=*/1.0 - alpha);
      }
    }
    table_.expire(sim_.now(), config_.net.membership_timeout);
    // Missed-beat sweep. The detector always counts lifecycle transitions
    // (observability), but only drives placement — stale load entries,
    // early removal of confirmed-dead peers — when the fault layer (or the
    // explicit flag) turned detector placement on, so crash-only runs keep
    // their timeout-only behavior bit-for-bit.
    for (const sched::DetectorTransition& t : detector_.sweep(sim_.now())) {
      if (!detector_placement_) continue;
      table_.mark_stale(t.node, t.to == sched::PeerState::kSuspect);
      if (t.to == sched::PeerState::kDead) table_.remove(t.node);
      record_event(t.node,
                   std::string("peer ") + sched::to_string(t.to) + " (was " +
                       sched::to_string(t.from) + ")",
                   {{"kind", std::string("detector_transition")},
                    {"to", std::string(sched::to_string(t.to))}});
    }
    co_await simnet::Delay(sim_, config_.net.monitor_period);
  }
}

simnet::SimProcess System::fault_process() {
  // Random crash generator: exponential inter-crash gaps (mean = MTBF),
  // uniform victim. Deterministic given the config seed; decorrelated from
  // the two-choice stream by a splitmix64-style constant.
  Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  while (!all_done_) {
    co_await simnet::Delay(sim_,
                           rng.exponential(1.0 / config_.faults.mtbf));
    if (all_done_) break;
    const NodeId victim = static_cast<NodeId>(rng.below(nodes_.size()));
    apply_crash(victim);
    if (config_.faults.restart_after >= 0.0 && node_crashed_[victim] != 0) {
      sim_.schedule(config_.faults.restart_after,
                    [this, victim] { apply_restart(victim); });
    }
  }
}

simnet::SimProcess System::rebuild_process(shard::ShardId shard,
                                           NodeId target,
                                           std::size_t target_epoch) {
  // Crash protocol: like the stage legs, re-check liveness after EVERY
  // co_await. The target dying voids the reservation (fail_node stripped
  // the kRebuilding replica and scheduled a replacement; our abort is an
  // idempotent no-op). The source dying mid-copy restarts the copy from
  // the next surviving ready replica.
  const Seconds start = sim_.now();
  const double bytes = static_cast<double>(config_.shard.shard_bytes);
  const auto target_dead = [&] {
    return node_crashed_[target] != 0 || crash_epoch_[target] != target_epoch;
  };
  for (;;) {
    const auto src = shard_map_->ready_source(shard);
    if (!src.has_value() || target_dead()) {
      shard_map_->abort_rebuild(shard, target);
      record_event(target,
                   "rebuild of shard " + std::to_string(shard) + " aborted",
                   {{"kind", std::string("shard_rebuild_abort")},
                    {"shard", static_cast<std::int64_t>(shard)}});
      co_return;
    }
    const NodeId source = *src;
    const std::size_t src_epoch = crash_epoch_[source];
    const auto src_dead = [&] { return crash_epoch_[source] != src_epoch; };

    // Read the replica off the source's disk (fair-shared with its PR
    // work), move it over the lossy link, write it on the target.
    co_await nodes_[source]->disk().consume(bytes);
    if (target_dead()) continue;  // loop re-checks and aborts
    if (src_dead()) continue;     // re-pick a source
    const bool delivered = co_await ship(bytes, source, target, 0.0);
    if (target_dead() || src_dead()) continue;
    if (!delivered) {
      // Retry budget spent: back off one monitor period, then start over
      // (possibly from a different source).
      co_await simnet::Delay(sim_, config_.net.monitor_period);
      continue;
    }
    co_await nodes_[target]->disk().consume(bytes);
    if (target_dead() || src_dead()) continue;

    // Pacing floor: re-replication is deliberately bandwidth-capped so it
    // cannot starve foreground retrieval (shard_bytes / rebuild_bandwidth
    // wall-clock minimum per shard).
    const Seconds floor = config_.shard.rebuild_bandwidth.transfer_time(bytes);
    const Seconds elapsed = sim_.now() - start;
    if (floor > elapsed) {
      co_await simnet::Delay(sim_, floor - elapsed);
      if (target_dead()) continue;
    }

    shard_map_->complete_rebuild(shard, target);
    ins_.shard_rebuilds->inc();
    ins_.shard_rebuild_bytes->inc(bytes);
    ins_.shard_rebuild_seconds->observe(sim_.now() - start);
    record_event(target,
                 "shard " + std::to_string(shard) + " re-replicated in " +
                     format_double(sim_.now() - start, 2) + " secs",
                 {{"kind", std::string("shard_rebuild_done")},
                  {"shard", static_cast<std::int64_t>(shard)}});
    co_return;
  }
}

simnet::SimProcess System::revalidate_process(NodeId node, std::size_t epoch) {
  // The rebooted holder's shard copies survived on disk, but each must be
  // re-scanned (magic/version/posting checks) before serving again. A
  // re-crash mid-scan just re-stashes the shards — fail_node already ran.
  const auto shards = shard_map_->begin_validation(node);
  if (shards.empty()) co_return;
  const Seconds start = sim_.now();
  const double bytes =
      static_cast<double>(config_.shard.shard_bytes) * shards.size();
  co_await nodes_[node]->disk().consume(bytes);
  if (node_crashed_[node] != 0 || crash_epoch_[node] != epoch) co_return;
  const Seconds floor = config_.shard.rebuild_bandwidth.transfer_time(bytes);
  const Seconds elapsed = sim_.now() - start;
  if (floor > elapsed) {
    co_await simnet::Delay(sim_, floor - elapsed);
    if (node_crashed_[node] != 0 || crash_epoch_[node] != epoch) co_return;
  }
  const std::size_t promoted = shard_map_->complete_validation(node);
  ins_.shard_revalidations->inc(static_cast<double>(promoted));
  record_event(node,
               "re-validated " + std::to_string(promoted) + " shards in " +
                   format_double(sim_.now() - start, 2) + " secs",
               {{"kind", std::string("shard_revalidated")},
                {"shards", static_cast<std::int64_t>(promoted)}});
}

simnet::SimProcess System::pr_leg(QuestionState& q,
                                  std::shared_ptr<PrLegSlot> slot,
                                  std::size_t index,
                                  simnet::Mailbox<std::size_t>& reports,
                                  NodeId relay) {
  // Crash protocol: after EVERY co_await the leg re-checks its node's
  // crash epoch. Once it moved, this coroutine is a zombie — the
  // coordinator may have recovered the work, finished the question, and
  // destroyed `q` and `reports` — so it exits touching only the slot
  // (shared ownership) and System members. A dead leg never reports;
  // the coordinator's reply timeout is the detection path.
  //
  // `relay` is the coordinator endpoint: the question host in the flat
  // star, the group's broker under the broker tier. Keywords arrive from
  // it, result bytes ship back to it, and it pays the receive disk work —
  // the internal name stays `host` because the leg cannot tell the two
  // apart.
  const NodeId node = slot->node;
  Node& executor = *nodes_[node];
  const QuestionPlan& plan = *q.plan;
  const NodeId host = relay;
  const Seconds deadline = q.deadline;  // stable for this attempt
  bool sent_keywords = node == host;  // local leg ships nothing
  double leg_ps = 0.0;
  std::size_t units_done = 0;
  ShipCost ship_cost;  // wire vs backoff time, stamped on the leg span
  // A leg is gone — and must exit touching nothing but the slot — when its
  // node crashed under it (zombie) or when it lost a hedge race (the
  // coordinator already closed its span and abandoned it).
  const auto dead = [&] {
    return crash_epoch_[node] != slot->epoch || slot->abandoned;
  };
  const bool tied = config_.tail.tied;
  // Unreachable protocol: a ship() that exhausts its retries means the
  // peer is cut off, not crashed. The leg reports its index with the
  // pending work still parked in the slot — the coordinator decides
  // whether to re-partition it over reachable survivors or, past the
  // deadline budget, drop it and flag the answer degraded.
  const auto abort_unreachable = [&] {
    if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
      tracer_->end_span(slot->leg_span, sim_.now(),
                        {{"unreachable", std::int64_t{1}},
                         {"net_seconds", ship_cost.transfer},
                         {"backoff_seconds", ship_cost.backoff}});
      slot->leg_span = obs::kNoSpan;
    }
    q.t_ps_max = std::max(q.t_ps_max, leg_ps);
    slot->unreachable = true;
    slot->reported = true;
    reports.send(index);
  };

  std::uint64_t leg_track = 0;
  if (tracer_ != nullptr) {
    leg_track = tracer_->new_track();
    obs::Attrs attrs{
        {"node", static_cast<std::int64_t>(node)},
        {"strategy",
         std::string(parallel::to_string(config_.partition.pr_strategy))}};
    // Backup legs carry a distinct mark so critical-path attribution can
    // tell a hedge win from a wasted backup (only stamped when hedging is
    // on — default traces stay byte-identical).
    if (slot->hedge_backup) attrs.emplace_back("hedge", std::int64_t{1});
    slot->leg_span = tracer_->begin_span(sim_.now(), "PR leg", node,
                                         leg_track, slot->stage_span,
                                         std::move(attrs));
  }

  while (!slot->units->empty()) {
    const std::size_t idx = slot->units->front();
    slot->units->pop_front();
    slot->in_flight = idx;
    const auto& unit = plan.pr_units[idx];

    if (!sent_keywords) {
      const Seconds t0 = sim_.now();
      const bool delivered =
          co_await ship(static_cast<double>(plan.keyword_bytes), host, node,
                        deadline, &ship_cost);
      if (dead()) co_return;
      if (!delivered) {
        abort_unreachable();
        co_return;
      }
      q.oh_keyword_send += sim_.now() - t0;
      sent_keywords = true;
    }

    const Seconds unit_start = sim_.now();
    const double thrash = executor.work_multiplier();
    // Gray degradation stretches the demand (a slow disk / throttled CPU
    // serves the same bytes slower); the factors are 1.0 outside a gray
    // window, so the multiply is IEEE-exact and the healthy path is
    // untouched.
    const double disk_work =
        unit.demand.disk_bytes * thrash * executor.gray_disk_factor();
    if (tied) {
      co_await CancellableConsume(executor.disk(), disk_work,
                                  slot->busy_server, slot->busy_handle);
    } else {
      co_await executor.disk().consume(disk_work);
    }
    if (dead()) co_return;
    const double cpu_work =
        unit.demand.cpu_seconds * thrash * executor.gray_cpu_factor();
    if (tied) {
      co_await CancellableConsume(executor.cpu(), cpu_work,
                                  slot->busy_server, slot->busy_handle);
    } else {
      co_await executor.cpu().consume(cpu_work);
    }
    if (dead()) co_return;
    record_event(node,
                 "finished collection " + std::to_string(idx) + " in " +
                     format_double(sim_.now() - unit_start, 2) + " secs (" +
                     std::to_string(unit.paragraphs) + " paragraphs)",
                 {{"kind", std::string("pr_unit")},
                  {"unit", static_cast<std::int64_t>(idx)},
                  {"paragraphs", static_cast<std::int64_t>(unit.paragraphs)}});

    // Paragraph scoring runs fused on the retrieval node (paper Fig. 3).
    const Seconds ps0 = sim_.now();
    const double ps_work = unit.ps.cpu_seconds * executor.work_multiplier() *
                           executor.gray_cpu_factor();
    if (tied) {
      co_await CancellableConsume(executor.cpu(), ps_work, slot->busy_server,
                                  slot->busy_handle);
    } else {
      co_await executor.cpu().consume(ps_work);
    }
    if (dead()) co_return;
    leg_ps += sim_.now() - ps0;
    if (tracer_ != nullptr) {
      // Recorded retroactively (begin+end in one go) so a crash mid-PS
      // never leaves a dangling scoring span.
      const obs::SpanId ps_span = tracer_->begin_span(
          ps0, "PS", node, leg_track, slot->leg_span,
          {{"unit", static_cast<std::int64_t>(idx)}});
      tracer_->end_span(ps_span, sim_.now());
    }

    if (node != host && unit.bytes_out > 0) {
      // Ship the scored paragraphs back; the paragraph merging module on
      // the host re-reads them from its disk (paper Eq. 27).
      const Seconds t0 = sim_.now();
      const bool delivered = co_await ship(
          static_cast<double>(unit.bytes_out), node, host, deadline,
          &ship_cost);
      if (dead()) co_return;
      if (!delivered) {
        abort_unreachable();  // in_flight stays set: the unit is redone
        co_return;
      }
      const double receive_work = static_cast<double>(unit.bytes_out) *
                                  nodes_[host]->gray_disk_factor();
      if (tied) {
        co_await CancellableConsume(nodes_[host]->disk(), receive_work,
                                    slot->busy_server, slot->busy_handle);
      } else {
        co_await nodes_[host]->disk().consume(receive_work);
      }
      if (dead()) co_return;
      q.oh_paragraph_receive += sim_.now() - t0;
    }
    // The unit's results now live on the host: durable across our crash.
    slot->in_flight = kNoUnit;
    ++units_done;
    slot->done = units_done;
  }
  q.t_ps_max = std::max(q.t_ps_max, leg_ps);
  if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
    tracer_->end_span(slot->leg_span, sim_.now(),
                      {{"units", static_cast<std::int64_t>(units_done)},
                       {"net_seconds", ship_cost.transfer},
                       {"backoff_seconds", ship_cost.backoff}});
    slot->leg_span = obs::kNoSpan;
  }
  slot->reported = true;
  reports.send(index);
}

simnet::SimProcess System::broker_leg(QuestionState& q,
                                      std::shared_ptr<BrokerSlot> slot,
                                      std::size_t index,
                                      simnet::Mailbox<std::size_t>& reports) {
  // Same zombie contract as pr_leg: after EVERY co_await, re-check the
  // broker's crash epoch and exit touching only the slot and System
  // members. The inner mailbox lives in the slot (workers hold keepalive
  // references), so worker reports never dangle even after this frame and
  // the slot's coordinator copy are gone.
  const NodeId broker = slot->node;
  Node& executor = *nodes_[broker];
  const QuestionPlan& plan = *q.plan;
  const NodeId host = q.host;
  const Seconds deadline = q.deadline;
  ShipCost ship_cost;
  const auto dead = [&] {
    return crash_epoch_[broker] != slot->epoch || slot->abandoned;
  };
  std::uint64_t leg_track = 0;
  if (tracer_ != nullptr) {
    leg_track = tracer_->new_track();
    slot->leg_span = tracer_->begin_span(
        sim_.now(), "PR broker", broker, leg_track, slot->stage_span,
        {{"node", static_cast<std::int64_t>(broker)},
         {"group", static_cast<std::int64_t>(slot->group)},
         {"units", static_cast<std::int64_t>(slot->units.size())}});
  }
  // Same unreachable protocol as pr_leg: report with the group slice still
  // parked in the slot; the host re-routes it through an acting broker or
  // degrades.
  const auto abort_unreachable = [&] {
    if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
      tracer_->end_span(slot->leg_span, sim_.now(),
                        {{"unreachable", std::int64_t{1}},
                         {"net_seconds", ship_cost.transfer},
                         {"backoff_seconds", ship_cost.backoff}});
      slot->leg_span = obs::kNoSpan;
    }
    slot->unreachable = true;
    slot->reported = true;
    reports.send(index);
  };
  // In-subtree degradation: drop units whose shard has no live in-group
  // holder (or whose recovery the deadline no longer affords). Tallied on
  // the slot; the host folds them into the question's degraded accounting
  // when this leg reports.
  const auto drop_units = [&](std::span<const std::size_t> lost) {
    for (const std::size_t u : lost) {
      slot->bytes_out -= static_cast<double>(plan.pr_units[u].bytes_out);
    }
    slot->unserved += lost.size();
    ins_.shard_units_unserved->inc(static_cast<double>(lost.size()));
  };

  // Keywords travel host -> broker once (core backbone across groups).
  if (broker != host) {
    const Seconds t0 = sim_.now();
    const bool delivered =
        co_await ship(static_cast<double>(plan.keyword_bytes), host, broker,
                      deadline, &ship_cost);
    if (dead()) co_return;
    if (!delivered) {
      abort_unreachable();
      co_return;
    }
    q.oh_keyword_send += sim_.now() - t0;
  }

  // Routing: resolve each unit's shard to an in-group ready holder (the
  // grouped shard pools make assign_pr_units in-group by construction).
  co_await executor.cpu().consume(config_.broker.route_cpu *
                                  executor.work_multiplier() *
                                  executor.gray_cpu_factor());
  if (dead()) co_return;

  simnet::Mailbox<std::size_t>& inner = *slot->inner;
  const auto spawn = [&](NodeId node, std::deque<std::size_t> block) {
    auto ws = std::make_shared<PrLegSlot>();
    ws->node = node;
    ws->epoch = crash_epoch_[node];
    ws->units = std::make_shared<std::deque<std::size_t>>(std::move(block));
    ws->stage_span = slot->leg_span;
    ws->spawned = sim_.now();
    ws->keepalive = slot->inner;
    ins_.legs_spawned->inc();
    slot->workers.push_back(ws);
    pr_leg(q, ws, slot->workers.size() - 1, inner, broker);
  };
  {
    auto assignment = assign_pr_units(slot->units, std::nullopt);
    for (auto& [node, block] : assignment.legs) spawn(node, std::move(block));
    if (!assignment.unplaced.empty()) {
      drop_units(assignment.unplaced);
      record_trace(broker, "no ready replica in group " +
                               std::to_string(slot->group) + " for " +
                               std::to_string(assignment.unplaced.size()) +
                               " collections (degraded)");
    }
  }

  std::size_t outstanding = slot->workers.size();
  while (outstanding > 0) {
    const auto msg = co_await inner.recv_for(config_.net.membership_timeout);
    if (dead()) co_return;
    if (msg.has_value()) {
      --outstanding;
      PrLegSlot& s = *slot->workers[*msg];
      if (!s.unreachable) {
        observe_leg(sched::LegStage::kPr, s.node, sim_.now() - s.spawned,
                    static_cast<double>(s.done), false);
        slot->done += s.done;
        // Partial merge runs on the broker — the serial reduce the tier
        // takes off the question host.
        co_await executor.cpu().consume(config_.shard.partial_merge_cpu *
                                        executor.work_multiplier() *
                                        executor.gray_cpu_factor());
        if (dead()) co_return;
        continue;
      }
      // Worker alive but cut off from the broker: recover the work still
      // parked in the slot over other in-group holders, or degrade once
      // the deadline budget is spent.
      ins_.legs_unreachable->inc();
      detector_.suspect_hint(s.node, sim_.now());
      if (detector_placement_) table_.mark_stale(s.node);
      record_trace(broker, "N" + std::to_string(s.node + 1) +
                               " unreachable during brokered PR");
      std::vector<std::size_t> lost;
      if (s.in_flight != kNoUnit) {
        lost.push_back(s.in_flight);
        s.in_flight = kNoUnit;
      }
      for (const std::size_t u : *s.units) lost.push_back(u);
      s.units->clear();
      if (lost.empty()) continue;
      if (deadline_exceeded(q)) {
        drop_units(lost);
        record_trace(broker, "deadline spent: dropped " +
                                 std::to_string(lost.size()) +
                                 " collections (degraded)");
        continue;
      }
      ins_.items_recovered->inc(static_cast<double>(lost.size()));
      auto redo = assign_pr_units(lost, s.node);
      for (auto& [node, block] : redo.legs) {
        spawn(node, std::move(block));
        ++outstanding;
        ins_.recovery_legs->inc();
      }
      if (!redo.unplaced.empty()) drop_units(redo.unplaced);
      continue;
    }
    // Reply timeout: sweep the subtree for crashed workers and fail their
    // units over to surviving in-group replicas.
    std::vector<std::pair<NodeId, std::deque<std::size_t>>> respawn;
    for (const auto& wsp : slot->workers) {
      PrLegSlot& s = *wsp;
      if (s.reported || s.declared_dead || s.abandoned) continue;
      if (crash_epoch_[s.node] == s.epoch) continue;  // still alive
      s.declared_dead = true;
      --outstanding;
      ins_.legs_lost->inc();
      if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
        tracer_->end_span(s.leg_span, sim_.now(),
                          {{"crashed", std::int64_t{1}}});
        s.leg_span = obs::kNoSpan;
      }
      table_.remove(s.node);
      record_trace(broker, "lost contact with N" + std::to_string(s.node + 1) +
                               " during brokered PR");
      std::vector<std::size_t> lost;
      if (s.in_flight != kNoUnit) {
        lost.push_back(s.in_flight);
        s.in_flight = kNoUnit;
      }
      for (const std::size_t u : *s.units) lost.push_back(u);
      s.units->clear();
      if (lost.empty()) continue;
      ins_.items_recovered->inc(static_cast<double>(lost.size()));
      ins_.recovery_latency->observe(sim_.now() - crash_time_[s.node]);
      auto redo = assign_pr_units(lost, s.node);
      for (auto& leg : redo.legs) respawn.push_back(std::move(leg));
      if (!redo.unplaced.empty()) {
        drop_units(redo.unplaced);
        record_trace(broker, "no surviving replica in group " +
                                 std::to_string(slot->group) + " for " +
                                 std::to_string(redo.unplaced.size()) +
                                 " collections (degraded)");
      }
    }
    for (auto& [node, block] : respawn) {
      spawn(node, std::move(block));
      ++outstanding;
      ins_.recovery_legs->inc();
    }
  }

  // Fan-in: one merged aggregate per group back to the host (instead of
  // one stream per worker leg), plus the host's receive disk work.
  const double aggregate = std::max(slot->bytes_out, 0.0);
  if (broker != host && aggregate > 0.0) {
    const Seconds t0 = sim_.now();
    const bool delivered =
        co_await ship(aggregate, broker, host, deadline, &ship_cost);
    if (dead()) co_return;
    if (!delivered) {
      abort_unreachable();
      co_return;
    }
    co_await nodes_[host]->disk().consume(aggregate *
                                          nodes_[host]->gray_disk_factor());
    if (dead()) co_return;
    q.oh_paragraph_receive += sim_.now() - t0;
  }
  if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
    tracer_->end_span(slot->leg_span, sim_.now(),
                      {{"units", static_cast<std::int64_t>(slot->done)},
                       {"unserved", static_cast<std::int64_t>(slot->unserved)},
                       {"net_seconds", ship_cost.transfer},
                       {"backoff_seconds", ship_cost.backoff}});
    slot->leg_span = obs::kNoSpan;
  }
  slot->reported = true;
  reports.send(index);
}

simnet::SimProcess System::ap_leg(QuestionState& q,
                                  std::shared_ptr<ApLegSlot> slot,
                                  std::size_t index,
                                  simnet::Mailbox<std::size_t>& reports) {
  // Same crash protocol as pr_leg (see there).
  const NodeId node = slot->node;
  Node& executor = *nodes_[node];
  const QuestionPlan& plan = *q.plan;
  const NodeId host = q.host;
  const Seconds deadline = q.deadline;
  const bool remote = node != host;
  const Seconds leg_start = sim_.now();
  std::size_t processed = 0;
  ShipCost ship_cost;  // see pr_leg
  // Crashed-or-abandoned check; see pr_leg.
  const auto dead = [&] {
    return crash_epoch_[node] != slot->epoch || slot->abandoned;
  };
  const bool tied = config_.tail.tied;
  // Same unreachable protocol as pr_leg: give up, leave the pending work
  // in the slot, report for the coordinator to recover or degrade.
  const auto abort_unreachable = [&] {
    if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
      tracer_->end_span(slot->leg_span, sim_.now(),
                        {{"unreachable", std::int64_t{1}},
                         {"net_seconds", ship_cost.transfer},
                         {"backoff_seconds", ship_cost.backoff}});
      slot->leg_span = obs::kNoSpan;
    }
    slot->unreachable = true;
    slot->reported = true;
    reports.send(index);
  };

  if (tracer_ != nullptr) {
    const std::uint64_t leg_track = tracer_->new_track();
    obs::Attrs attrs{
        {"node", static_cast<std::int64_t>(node)},
        {"strategy",
         std::string(parallel::to_string(config_.partition.ap_strategy))}};
    if (slot->hedge_backup) attrs.emplace_back("hedge", std::int64_t{1});
    slot->leg_span =
        tracer_->begin_span(sim_.now(), "AP leg", node, leg_track,
                            slot->stage_span, std::move(attrs));
  }

  // Each batch: ship paragraphs in, burn CPU per paragraph, ship answers
  // back. Answers return per batch, which is why tiny RECV chunks pay more
  // overhead (paper Sec. 4.1.2).
  if (slot->chunks != nullptr) {
    // RECV: compete for chunks. Only the in-flight chunk is at risk on a
    // crash — earlier chunks already returned their answers.
    while (!slot->chunks->empty()) {
      const parallel::Chunk chunk = slot->chunks->front();
      slot->chunks->pop_front();
      slot->in_flight = chunk;
      slot->has_in_flight = true;
      std::size_t bytes_in = 0;
      std::size_t bytes_out = 0;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        bytes_in += plan.ap_units[i].bytes_in;
        bytes_out += plan.ap_units[i].answer_bytes_out;
      }
      if (remote && bytes_in > 0) {
        const Seconds t0 = sim_.now();
        const bool delivered = co_await ship(static_cast<double>(bytes_in),
                                             host, node, deadline, &ship_cost);
        if (dead()) co_return;
        if (!delivered) {
          abort_unreachable();  // in-flight chunk stays in the slot
          co_return;
        }
        q.oh_paragraph_send += sim_.now() - t0;
      }
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        const double work = plan.ap_units[i].demand.cpu_seconds *
                            executor.work_multiplier() *
                            executor.gray_cpu_factor();
        if (tied) {
          co_await CancellableConsume(executor.cpu(), work, slot->busy_server,
                                      slot->busy_handle);
        } else {
          co_await executor.cpu().consume(work);
        }
        if (dead()) co_return;
        ++processed;
        slot->done = processed;
      }
      // Per-batch answer extraction floor (paper Sec. 4.1.2).
      const double floor_work =
          config_.partition.per_batch_answer_cpu * executor.gray_cpu_factor();
      if (tied) {
        co_await CancellableConsume(executor.cpu(), floor_work,
                                    slot->busy_server, slot->busy_handle);
      } else {
        co_await executor.cpu().consume(floor_work);
      }
      if (dead()) co_return;
      if (remote && bytes_out > 0) {
        const Seconds t0 = sim_.now();
        const bool delivered = co_await ship(static_cast<double>(bytes_out),
                                             node, host, deadline, &ship_cost);
        if (dead()) co_return;
        if (!delivered) {
          abort_unreachable();  // answers never landed: chunk is redone
          co_return;
        }
        q.oh_answer_receive += sim_.now() - t0;
      }
      slot->has_in_flight = false;  // answers are back: chunk is durable
    }
  } else {
    // SEND/ISEND: the sender shipped us a fixed partition; move its input
    // once, process, return answers once. Nothing is durable until the
    // final answer transfer lands, so a crash loses the whole partition.
    std::size_t bytes_in = 0;
    std::size_t bytes_out = 0;
    for (std::size_t i : slot->units) {
      bytes_in += plan.ap_units[i].bytes_in;
      bytes_out += plan.ap_units[i].answer_bytes_out;
    }
    if (remote && bytes_in > 0) {
      const Seconds t0 = sim_.now();
      const bool delivered = co_await ship(static_cast<double>(bytes_in),
                                           host, node, deadline, &ship_cost);
      if (dead()) co_return;
      if (!delivered) {
        abort_unreachable();  // the whole partition stays in the slot
        co_return;
      }
      q.oh_paragraph_send += sim_.now() - t0;
    }
    for (std::size_t i : slot->units) {
      const double work = plan.ap_units[i].demand.cpu_seconds *
                          executor.work_multiplier() *
                          executor.gray_cpu_factor();
      if (tied) {
        co_await CancellableConsume(executor.cpu(), work, slot->busy_server,
                                    slot->busy_handle);
      } else {
        co_await executor.cpu().consume(work);
      }
      if (dead()) co_return;
      ++processed;
      slot->done = processed;
    }
    if (processed > 0) {
      // One answer-extraction pass per partition (paper Sec. 4.1.2).
      const double floor_work =
          config_.partition.per_batch_answer_cpu * executor.gray_cpu_factor();
      if (tied) {
        co_await CancellableConsume(executor.cpu(), floor_work,
                                    slot->busy_server, slot->busy_handle);
      } else {
        co_await executor.cpu().consume(floor_work);
      }
      if (dead()) co_return;
    }
    if (remote && bytes_out > 0) {
      const Seconds t0 = sim_.now();
      const bool delivered = co_await ship(static_cast<double>(bytes_out),
                                           node, host, deadline, &ship_cost);
      if (dead()) co_return;
      if (!delivered) {
        abort_unreachable();  // answers never landed: partition is redone
        co_return;
      }
      q.oh_answer_receive += sim_.now() - t0;
    }
  }
  if (processed > 0) {
    record_event(node,
                 "finished " + std::to_string(processed) + " paragraphs in " +
                     format_double(sim_.now() - leg_start, 2) + " secs",
                 {{"kind", std::string("ap_done")},
                  {"paragraphs", static_cast<std::int64_t>(processed)}});
  }
  if (tracer_ != nullptr && slot->leg_span != obs::kNoSpan) {
    tracer_->end_span(slot->leg_span, sim_.now(),
                      {{"paragraphs", static_cast<std::int64_t>(processed)},
                       {"net_seconds", ship_cost.transfer},
                       {"backoff_seconds", ship_cost.backoff}});
    slot->leg_span = obs::kNoSpan;
  }
  slot->reported = true;
  reports.send(index);
}

simnet::SimProcess System::question_process(const QuestionPlan& plan,
                                            NodeId dns_node,
                                            Seconds arrived) {
  QuestionState q;
  q.plan = &plan;
  // Latency is measured from the arrival instant: a question that waited
  // in the admission queue pays that wait in its response time (and
  // against its deadline budget). Without admission control arrived is
  // always now().
  q.submitted = arrived;
  if (config_.net.reliability.question_deadline > 0.0) {
    q.deadline = q.submitted + config_.net.reliability.question_deadline;
  }
  NodeId host = dns_node;
  std::size_t restarts = 0;

  // Cache identity of this question: the normalized text is the cache key
  // on every node, and its signature drives the affinity dispatch. Empty
  // key <=> caching off, so the uncached path stays byte-identical.
  const bool cache_on = !caches_.empty();
  const std::string cache_key =
      cache_on ? cache::normalize_question(plan.source.text) : std::string();
  bool served_from_cache = false;  // answered by an answer-cache hit

  // Selective search: which PR units (and, scaled, AP candidates) this
  // question touches. Computed lazily at most once per question — the
  // selection counters must not double-count across host-crash restarts,
  // and answer-cache hits must not count at all. With selection off this
  // is the identity and the question is byte-identical to the flat path.
  std::optional<SelectionResult> sel_opt;
  std::size_t ap_count = plan.ap_units.size();
  const auto ensure_selection = [&] {
    if (sel_opt.has_value()) return;
    sel_opt = select_pr_units(plan);
    if (sel_opt->pruned && !plan.ap_units.empty()) {
      // Fewer sub-collections searched => proportionally fewer candidate
      // paragraphs reach Answer Processing. At least one survives: the
      // selected shards always contribute something.
      ap_count = std::clamp(
          static_cast<std::size_t>(std::ceil(
              static_cast<double>(plan.ap_units.size()) * sel_opt->kept_fraction)),
          std::size_t{1}, plan.ap_units.size());
      ins_.selection_ap_units_pruned->inc(
          static_cast<double>(plan.ap_units.size() - ap_count));
    }
  };

  // One span per question lifetime; stage spans nest under it on the same
  // track, PR/AP legs fork onto their own tracks.
  std::uint64_t q_track = 0;
  obs::SpanId q_span = obs::kNoSpan;
  if (tracer_ != nullptr) {
    q_track = tracer_->new_track();
    q_span = tracer_->begin_span(
        sim_.now(), "question", dns_node, q_track, obs::kNoSpan,
        {{"question", static_cast<std::int64_t>(plan.source.id)},
         {"policy", std::string(to_string(config_.dispatch.policy))}});
  }

  // The DNS front-end may hand a question to a node that has left the
  // pool or crashed (its A record outlives the membership): reroute to the
  // least loaded live member, regardless of policy.
  if (!table_.is_member(host) || node_crashed_[host] != 0) {
    host = pick_live(sched::kQaWeights);
  }

  // ---- Scheduling point 1 (first placement only; a retry after a host
  // crash goes straight to the least-loaded live node instead).
  if (config_.dispatch.policy == Policy::kTwoChoice) {
    // Power-of-two-choices: sample two members, keep the lighter.
    const auto members = table_.members();
    if (members.size() >= 2) {
      const NodeId a = members[two_choice_rng_.below(members.size())];
      NodeId b = a;
      while (b == a) b = members[two_choice_rng_.below(members.size())];
      const double la =
          sched::load_function(table_.load_of(a), sched::kQaWeights);
      const double lb =
          sched::load_function(table_.load_of(b), sched::kQaWeights);
      const NodeId choice = la <= lb ? a : b;
      if (choice != host && schedulable(choice)) {
        const bool moved = co_await ship(
            static_cast<double>(plan.question_bytes), host, choice, q.deadline);
        if (moved) {
          host = choice;
          ins_.migrations_qa->inc();
        }  // else: the question stays put — the home node can always host
      }
    }
  } else if (config_.dispatch.policy != Policy::kDns && table_.is_member(host)) {
    // With caching on, the question dispatcher routes by cache affinity:
    // steer the question to the rendezvous-preferred node (the one most
    // likely to hold its cached answer) unless that node is overloaded or
    // gone — then the paper's load-based rule decides as usual.
    std::optional<NodeId> preferred;
    if (cache_on && config_.dispatch.cache_affinity) {
      preferred = affinity_target(cache::question_signature(cache_key));
    }
    const auto decision =
        preferred.has_value()
            ? sched::decide_affinity(table_, host, *preferred,
                                     sched::kQaWeights,
                                     sched::single_task_load(sched::kQaWeights),
                                     &registry_)
            : sched::decide_migration(
                  table_, host, sched::kQaWeights,
                  sched::single_task_load(sched::kQaWeights), &registry_);
    if (decision.migrate && schedulable(decision.target)) {
      const bool moved =
          co_await ship(static_cast<double>(plan.question_bytes), host,
                        decision.target, q.deadline);
      if (moved) {
        host = decision.target;
        ins_.migrations_qa->inc();
        record_trace(host, "question " + std::to_string(plan.source.id) +
                               " migrated from N" +
                               std::to_string(dns_node + 1));
      }
    }
  }
  if (node_crashed_[host] != 0) host = pick_live(sched::kQaWeights);

  // Backup target for a hedged leg: the least-loaded live member other
  // than the (presumed slow) primary, preferring unsuspected non-straggler
  // members. Returns nullopt when the pool holds no alternative.
  const auto pick_backup =
      [&](NodeId exclude, const sched::LoadWeights& weights,
          sched::LegStage stage) -> std::optional<NodeId> {
    const auto mask = straggler_mask(stage);
    for (const bool allow_straggler : {false, true}) {
      for (const bool allow_suspect : {false, true}) {
        std::optional<NodeId> best;
        double best_load = 0.0;
        for (const NodeId m : table_.members()) {
          if (m == exclude || node_crashed_[m] != 0) continue;
          if (!allow_suspect && !schedulable(m)) continue;
          if (!allow_straggler && m < mask.size() && mask[m] != 0) continue;
          const double load = sched::load_function(table_.load_of(m), weights);
          if (!best.has_value() || load < best_load) {
            best = m;
            best_load = load;
          }
        }
        if (best.has_value()) return best;
      }
    }
    return std::nullopt;
  };

  // ---- Attempt loop: one pass per host. A host crash loses the question
  // (its state dies with the process); after the front-end's reply timeout
  // it is resubmitted to a surviving node and starts over from QP.
  for (;;) {
    q.host = host;
    q.degraded = false;  // a restarted attempt recomputes everything
    const std::size_t host_epoch = crash_epoch_[host];
    const auto host_dead = [&] { return crash_epoch_[host] != host_epoch; };
    bool failed = false;

    nodes_[host]->question_arrived();
    // Reserve the question's expected load so simultaneous arrivals don't
    // all herd onto the same momentarily-idle node before the next
    // broadcast. Under heavy churn the host may not be a table member at
    // this point (every member was dead or suspect and pick_live fell back
    // to a non-crashed node, or membership expired during a migration
    // ship) — then there is no entry to reserve against; the node's next
    // broadcast will carry its true load.
    if (table_.is_member(host)) {
      table_.reserve(host, sched::ResourceLoad{sched::kQaWeights.cpu,
                                               sched::kQaWeights.disk});
    }
    record_trace(host, "started question " + std::to_string(plan.source.id));

    // ---- Cache probe (before QP): an answer hit short-circuits the whole
    // QP->PR->PS->PO->AP pipeline; a paragraph hit on answer miss still
    // skips the disk-bound PR stage. The probe itself costs lookup_cpu on
    // the host's CPU, hit or miss.
    bool cached_paragraphs = false;
    if (cache_on) {
      const Seconds t0 = sim_.now();
      co_await nodes_[host]->cpu().consume(config_.cache.lookup_cpu *
                                           nodes_[host]->work_multiplier() *
                                           nodes_[host]->gray_cpu_factor());
      failed = host_dead();
      bool cached_answer = false;
      if (!failed) {
        NodeCaches& shard = *caches_[host];
        if (config_.cache.answers.enabled()) {
          cached_answer = shard.answers.find(cache_key, sim_.now()) != nullptr;
          (cached_answer ? ins_.cache_hits : ins_.cache_misses)->inc();
        }
        if (!cached_answer && config_.cache.paragraphs.enabled()) {
          cached_paragraphs =
              shard.paragraphs.find(cache_key, sim_.now()) != nullptr;
          (cached_paragraphs ? ins_.pr_cache_hits : ins_.pr_cache_misses)
              ->inc();
        }
      }
      if (tracer_ != nullptr) {
        // Recorded retroactively so a crash mid-probe leaves no dangling
        // span; the lookup is pure CPU, so begin+end brackets it exactly.
        const obs::SpanId sp = tracer_->begin_span(
            t0, "cache lookup", host, q_track, q_span,
            {{"answer_hit", std::int64_t{cached_answer ? 1 : 0}},
             {"paragraph_hit", std::int64_t{cached_paragraphs ? 1 : 0}}});
        tracer_->end_span(sp, sim_.now());
      }
      if (!failed && cached_answer) {
        record_trace(host, "question " + std::to_string(plan.source.id) +
                               " answered from cache");
        served_from_cache = true;
        break;
      }
    }

    // ---- QP (sequential, on the host).
    if (!failed) {
      const Seconds t0 = sim_.now();
      obs::SpanId sp = obs::kNoSpan;
      if (tracer_ != nullptr) {
        sp = tracer_->begin_span(t0, "QP", host, q_track, q_span, {});
      }
      co_await nodes_[host]->cpu().consume(plan.qp.cpu_seconds *
                                           nodes_[host]->work_multiplier() *
                                           nodes_[host]->gray_cpu_factor());
      failed = host_dead();
      q.t_qp = sim_.now() - t0;
      if (sp != obs::kNoSpan) tracer_->end_span(sp, sim_.now());
    }

    // ---- Scheduling point 2: the PR dispatcher (DQA only). Skipped
    // entirely on a paragraph-cache hit: the accepted, scored paragraphs
    // are already on the host's disk from a previous run of this question.
    if (!failed && !cached_paragraphs) {
      // Replica-aware mode (R < nodes): placement is constrained to ready
      // replica holders, so the scatter is computed per unit by
      // assign_pr_units instead of the unconstrained meta-schedule below.
      const bool sharded = shard_partial_;
      ensure_selection();
      const SelectionResult& sel = *sel_opt;
      // Broker tier: the host routes per-group slices through mediator
      // nodes instead of fanning out to every holder itself.
      const bool brokered = topology_.has_value();
      std::vector<NodeId> pr_nodes{host};
      std::vector<double> pr_weights{1.0};
      // table_.size() can hit zero under mass churn (every member crashed,
      // partitioned away, or expired) — then the host carries the stage
      // alone, same as when every selected node turns out dead below.
      if (!sharded && config_.dispatch.policy == Policy::kDqa &&
          table_.size() > 0) {
        auto ms = sched::meta_schedule(table_, sched::kPrWeights,
                                       config_.dispatch.pr_underload_threshold,
                                       &registry_,
                                       straggler_mask(sched::LegStage::kPr));
        // Drop nodes that crashed (but have not yet expired from the
        // table) or are currently suspected by the failure detector.
        std::vector<NodeId> live_sel;
        std::vector<double> live_w;
        for (std::size_t i = 0; i < ms.selected.size(); ++i) {
          if (!schedulable(ms.selected[i])) continue;
          live_sel.push_back(ms.selected[i]);
          live_w.push_back(ms.weights[i]);
        }
        ms.selected = std::move(live_sel);
        ms.weights = std::move(live_w);
        if (ms.selected.empty()) {
          ms.selected = {host};
          ms.weights = {1.0};
        }
        if (!config_.partition.enable && ms.selected.size() > 1) {
          // Partitioning disabled: keep only the heaviest-weighted node.
          const std::size_t best = static_cast<std::size_t>(
              std::max_element(ms.weights.begin(), ms.weights.end()) -
              ms.weights.begin());
          ms.selected = {ms.selected[best]};
          ms.weights = {1.0};
          ms.partitioned = false;
        }
        if (!(ms.selected.size() == 1 && ms.selected[0] == host)) {
          ins_.migrations_pr->inc();
        }
        pr_nodes = std::move(ms.selected);
        pr_weights = std::move(ms.weights);
      }

      // ---- PR stage with supervision. Legs report on `reports`; a reply
      // silence of membership_timeout triggers a liveness sweep, and dead
      // legs' unfinished sub-collections are recovered: requeued on the
      // shared deque under RECV, re-partitioned over the surviving stage
      // nodes under SEND. Finished units are durable (their paragraphs
      // already reached the host disk), so recovery is per-unit.
      const Seconds pr_start = sim_.now();
      obs::SpanId pr_span = obs::kNoSpan;
      if (tracer_ != nullptr) {
        pr_span = tracer_->begin_span(
            pr_start, "PR", host, q_track, q_span,
            {{"legs", static_cast<std::int64_t>(pr_nodes.size())},
             {"units", static_cast<std::int64_t>(sel.units.size())}});
      }
      if (brokered) {
        // ---- Brokered PR: slice the selected units by shard group, hand
        // each slice to that group's broker, and supervise the brokers the
        // way the flat path supervises worker legs. A broker that crashes
        // or goes unreachable has its whole slice re-routed through an
        // acting broker in the same group (finished units are redone — the
        // aggregate never shipped), or dropped as degraded when the group
        // has no usable delegate left. No hedging at this level: the
        // brokers already re-run straggling workers' units in-subtree.
        simnet::Mailbox<std::size_t> reports(sim_);
        std::vector<std::shared_ptr<BrokerSlot>> slots;
        const auto spawn_broker = [&](NodeId node, std::size_t group,
                                      std::vector<std::size_t> units) {
          auto slot = std::make_shared<BrokerSlot>();
          slot->node = node;
          slot->epoch = crash_epoch_[node];
          slot->group = group;
          slot->units = std::move(units);
          for (const std::size_t u : slot->units) {
            slot->bytes_out += static_cast<double>(plan.pr_units[u].bytes_out);
          }
          slot->stage_span = pr_span;
          slot->spawned = sim_.now();
          slot->inner = std::make_shared<simnet::Mailbox<std::size_t>>(sim_);
          ins_.broker_legs->inc();
          ins_.legs_spawned->inc();
          slots.push_back(slot);
          broker_leg(q, slot, slots.size() - 1, reports);
        };
        // A group's acting broker: the designated one (first node of the
        // group) when it is schedulable, otherwise the least-loaded live
        // member of the group range.
        const auto acting_broker =
            [&](std::size_t group,
                std::optional<NodeId> exclude) -> std::optional<NodeId> {
          const NodeId designated = topology_->broker_node(group);
          if (designated != exclude && schedulable(designated)) {
            return designated;
          }
          const auto [first, last] = topology_->group_range(group);
          const auto pick =
              sched::pick_delegate(table_, first, last, sched::kPrWeights);
          if (!pick.has_value() || pick == exclude ||
              node_crashed_[*pick] != 0) {
            return std::nullopt;
          }
          return pick;
        };
        const auto degrade_units = [&](std::size_t count) {
          q.degraded = true;
          ins_.degraded_units_dropped->inc(static_cast<double>(count));
          ins_.shard_units_unserved->inc(static_cast<double>(count));
        };
        std::vector<std::vector<std::size_t>> by_group(
            config_.broker.brokers);
        for (const std::size_t u : sel.units) {
          by_group[topology_->group_of_shard(shard_map_->shard_of_unit(u))]
              .push_back(u);
        }
        bool off_host = false;
        std::size_t groups_used = 0;
        for (std::size_t g = 0; g < by_group.size(); ++g) {
          if (by_group[g].empty()) continue;
          ++groups_used;
          const auto broker = acting_broker(g, std::nullopt);
          if (!broker.has_value()) {
            degrade_units(by_group[g].size());
            record_trace(host, "group " + std::to_string(g) +
                                   " has no usable broker: dropped " +
                                   std::to_string(by_group[g].size()) +
                                   " collections (degraded)");
            continue;
          }
          if (*broker != topology_->broker_node(g)) {
            ins_.broker_reroutes->inc();
          }
          if (*broker != host) off_host = true;
          spawn_broker(*broker, g, std::move(by_group[g]));
        }
        if (off_host || groups_used > 1) ins_.migrations_pr->inc();

        std::size_t outstanding = slots.size();
        // Re-route a failed broker's whole slice (or degrade it once no
        // delegate or deadline budget remains).
        const auto reroute = [&](BrokerSlot& s) {
          if (s.units.empty()) return;
          if (deadline_exceeded(q)) {
            degrade_units(s.units.size());
            record_trace(host, "deadline spent: dropped " +
                                   std::to_string(s.units.size()) +
                                   " collections (degraded)");
            return;
          }
          const auto next = acting_broker(s.group, s.node);
          if (!next.has_value()) {
            degrade_units(s.units.size());
            record_trace(host, "group " + std::to_string(s.group) +
                                   " has no surviving broker: dropped " +
                                   std::to_string(s.units.size()) +
                                   " collections (degraded)");
            return;
          }
          ins_.broker_reroutes->inc();
          ins_.recovery_legs->inc();
          record_trace(host, "re-routing group " + std::to_string(s.group) +
                                 " through N" + std::to_string(*next + 1));
          spawn_broker(*next, s.group, s.units);
          ++outstanding;
        };
        while (outstanding > 0) {
          const auto msg =
              co_await reports.recv_for(config_.net.membership_timeout);
          if (msg.has_value()) {
            --outstanding;
            BrokerSlot& s = *slots[*msg];
            if (!s.unreachable) {
              observe_leg(sched::LegStage::kPr, s.node, sim_.now() - s.spawned,
                          static_cast<double>(s.done), false);
              if (s.unserved > 0) {
                // The broker already counted the unserved units against
                // shard_units_unserved at the site where they were lost.
                q.degraded = true;
                ins_.degraded_units_dropped->inc(
                    static_cast<double>(s.unserved));
              }
              if (!host_dead()) {
                // One merge per broker aggregate — not one per worker leg.
                // This is the serial-cost redistribution the tier buys.
                co_await nodes_[host]->cpu().consume(
                    config_.shard.partial_merge_cpu *
                    nodes_[host]->work_multiplier() *
                    nodes_[host]->gray_cpu_factor());
              }
              continue;
            }
            ins_.broker_unreachable->inc();
            ins_.legs_unreachable->inc();
            detector_.suspect_hint(s.node, sim_.now());
            if (detector_placement_) table_.mark_stale(s.node);
            record_trace(host, "broker N" + std::to_string(s.node + 1) +
                                   " unreachable during PR");
            if (host_dead()) continue;  // the whole question restarts
            reroute(s);
            continue;
          }
          // Reply timeout: sweep for crashed brokers. Their worker legs
          // are orphaned — abandon them (zombie contract) and close their
          // spans here, since neither the dead broker nor anyone else will.
          const bool host_down = host_dead();
          const std::size_t count = slots.size();
          for (std::size_t i = 0; i < count; ++i) {
            BrokerSlot& s = *slots[i];
            if (s.reported || s.declared_dead || s.abandoned) continue;
            if (crash_epoch_[s.node] == s.epoch) continue;  // still alive
            s.declared_dead = true;
            --outstanding;
            ins_.legs_lost->inc();
            if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
              tracer_->end_span(s.leg_span, sim_.now(),
                                {{"crashed", std::int64_t{1}}});
              s.leg_span = obs::kNoSpan;
            }
            for (const auto& wsp : s.workers) {
              PrLegSlot& w = *wsp;
              if (w.reported || w.declared_dead || w.abandoned) continue;
              w.abandoned = true;
              if (tracer_ != nullptr && w.leg_span != obs::kNoSpan) {
                tracer_->end_span(w.leg_span, sim_.now(),
                                  {{"orphaned", std::int64_t{1}}});
                w.leg_span = obs::kNoSpan;
              }
            }
            table_.remove(s.node);
            record_trace(host, "lost contact with broker N" +
                                   std::to_string(s.node + 1) + " during PR");
            if (host_down) continue;  // the whole question restarts anyway
            ins_.items_recovered->inc(static_cast<double>(s.units.size()));
            ins_.recovery_latency->observe(sim_.now() - crash_time_[s.node]);
            reroute(s);
          }
        }
      } else {
        simnet::Mailbox<std::size_t> reports(sim_);
        std::vector<std::shared_ptr<PrLegSlot>> slots;
        const auto spawn = [&](NodeId node,
                               std::shared_ptr<std::deque<std::size_t>> units,
                               std::shared_ptr<HedgeGroup> group = nullptr,
                               bool backup = false) {
          auto slot = std::make_shared<PrLegSlot>();
          slot->node = node;
          slot->epoch = crash_epoch_[node];
          slot->units = std::move(units);
          slot->stage_span = pr_span;
          slot->spawned = sim_.now();
          slot->group = std::move(group);
          slot->hedge_backup = backup;
          (backup ? ins_.hedges_issued : ins_.legs_spawned)->inc();
          slots.push_back(slot);
          pr_leg(q, slot, slots.size() - 1, reports, host);
        };
        const bool shared_queue =
            !sharded && (config_.partition.pr_strategy == Strategy::kRecv ||
                         pr_nodes.size() == 1);
        std::shared_ptr<std::deque<std::size_t>> shared_units;
        if (sharded) {
          // Scatter-gather over replica holders. Legs get private queues:
          // holders of different shards cannot compete for each other's
          // units, so the RECV shared deque does not apply here. With
          // selection off, sel.units is every unit — the pre-broker path.
          auto assignment = assign_pr_units(sel.units, std::nullopt);
          bool off_host = false;
          for (auto& [node, block] : assignment.legs) {
            if (node != host) off_host = true;
            spawn(node, std::make_shared<std::deque<std::size_t>>(
                            std::move(block)));
          }
          if (off_host || assignment.legs.size() > 1) {
            ins_.migrations_pr->inc();
          }
          if (!assignment.unplaced.empty()) {
            // Shards with no live ready holder: their slice of the corpus
            // cannot be searched right now. Degrade rather than block on a
            // rebuild — the paper's interactive deadline beats completeness.
            q.degraded = true;
            ins_.degraded_units_dropped->inc(
                static_cast<double>(assignment.unplaced.size()));
            ins_.shard_units_unserved->inc(
                static_cast<double>(assignment.unplaced.size()));
            record_trace(host,
                         "no ready replica for " +
                             std::to_string(assignment.unplaced.size()) +
                             " collections (degraded)");
          }
        } else if (shared_queue) {
          // Receiver-controlled: every leg competes for the sub-collection
          // queue (paper Fig. 7a: "four nodes compete for the 8 sub-
          // collections").
          shared_units = std::make_shared<std::deque<std::size_t>>();
          for (std::size_t i = 0; i < plan.pr_units.size(); ++i) {
            shared_units->push_back(i);
          }
          for (NodeId node : pr_nodes) spawn(node, shared_units);
        } else {
          // SEND ablation: weighted contiguous blocks of sub-collections.
          const auto partitions =
              parallel::partition_send(plan.pr_units.size(), pr_weights);
          for (const auto& p : partitions) {
            spawn(pr_nodes[p.worker],
                  std::make_shared<std::deque<std::size_t>>(p.items.begin(),
                                                            p.items.end()));
          }
        }

        std::size_t outstanding = slots.size();
        const bool hedge_on = config_.tail.hedge;
        // Settles a hedge race in favor of `winner`: counts the win/loss,
        // abandons every unresolved member (closing its span and, in tied
        // mode, cancelling its in-service reservation), and requeues any
        // in-flight unit a shared-queue primary picked up *after* the
        // hedge snapshot (nobody else covers that one).
        const auto resolve_hedge = [&](std::size_t winner) {
          PrLegSlot& w = *slots[winner];
          if (w.group == nullptr || w.group->resolved) return;
          const auto group = w.group;
          group->resolved = true;
          (w.hedge_backup ? ins_.hedge_wins : ins_.hedge_losses)->inc();
          bool requeued = false;
          for (const std::size_t m : group->members) {
            if (m == winner) continue;
            PrLegSlot& s = *slots[m];
            if (s.reported || s.declared_dead || s.abandoned) continue;
            s.abandoned = true;
            --outstanding;
            if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
              // The loser never closes its own span (it exits at its next
              // co_await); close it here so critical-path attribution can
              // both skip it and bill its duration as hedge waste.
              tracer_->end_span(
                  s.leg_span, sim_.now(),
                  {{"hedge_loser", std::int64_t{1}},
                   {"cancelled", std::int64_t{config_.tail.tied ? 1 : 0}}});
              s.leg_span = obs::kNoSpan;
            }
            if (config_.tail.tied && s.busy_server != nullptr) {
              if (s.busy_server->cancel(s.busy_handle)) {
                ins_.legs_cancelled->inc();
              }
              s.busy_server = nullptr;
            }
            if (!s.hedge_backup && s.in_flight != kNoUnit &&
                std::find(group->covered.begin(), group->covered.end(),
                          s.in_flight) == group->covered.end()) {
              if (shared_units != nullptr) {
                shared_units->push_front(s.in_flight);
                requeued = true;
              }
            }
            s.in_flight = kNoUnit;
          }
          if (requeued) {
            bool any_live = false;
            for (const auto& sp : slots) {
              if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                  !sp->hedge_backup) {
                any_live = true;
                break;
              }
            }
            if (!any_live) {
              spawn(pick_live(sched::kPrWeights), shared_units);
              ++outstanding;
              ins_.recovery_legs->inc();
            }
          }
        };
        // Due time for a waiting leg: the per-unit wall quantile scaled by
        // the units the leg carries (done + in-flight + still queued),
        // floored by hedge_min_delay. Scaling by the leg's own size is
        // what keeps big-but-healthy legs from tripping the trigger.
        const auto hedge_due = [&](const PrLegSlot& s, Seconds per_unit) {
          const double expected = static_cast<double>(
              s.done + (s.in_flight != kNoUnit ? 1 : 0) +
              (s.units != nullptr ? s.units->size() : 0));
          return s.spawned + std::max(per_unit * std::max(expected, 1.0),
                                      config_.tail.hedge_min_delay);
        };
        while (outstanding > 0) {
          // Hedge trigger: wake before the reply timeout when the oldest
          // hedgeable leg crosses the observed leg-wall quantile. A leg is
          // hedgeable once its remaining work is private (a shared-queue
          // leg only after the shared deque drained — its in-flight unit
          // is then all that is left of the stage on that node).
          Seconds wait = config_.net.membership_timeout;
          bool hedge_wake = false;
          if (hedge_on) {
            if (const auto delay = hedge_delay(sched::LegStage::kPr)) {
              std::optional<Seconds> due;
              for (const auto& sp : slots) {
                const PrLegSlot& s = *sp;
                if (s.reported || s.declared_dead || s.abandoned ||
                    s.hedged || s.hedge_backup) {
                  continue;
                }
                if (shared_queue &&
                    (!shared_units->empty() || s.in_flight == kNoUnit)) {
                  continue;
                }
                const Seconds at = hedge_due(s, *delay);
                if (!due.has_value() || at < *due) due = at;
              }
              if (due.has_value() && *due - sim_.now() < wait) {
                wait = std::max(*due - sim_.now(), 0.0);
                hedge_wake = true;
              }
            }
          }
          const auto msg = co_await reports.recv_for(wait);
          if (msg.has_value()) {
            --outstanding;
            PrLegSlot& s = *slots[*msg];
            if (!s.unreachable) {
              observe_leg(sched::LegStage::kPr, s.node, sim_.now() - s.spawned,
                          static_cast<double>(s.done), s.hedge_backup);
              resolve_hedge(*msg);
              if (sharded && !host_dead()) {
                // Partial merge: fold this shard leg's scored paragraphs
                // into the host's merged candidate stream feeding
                // Paragraph Ordering (the scatter-gather reduce step).
                co_await nodes_[host]->cpu().consume(
                    config_.shard.partial_merge_cpu *
                    nodes_[host]->work_multiplier() *
                    nodes_[host]->gray_cpu_factor());
              }
              continue;
            }
            // The leg burned its retry budget talking to its node: alive
            // but cut off. Steer placement away from it, then either
            // re-partition the work still parked in the slot over
            // reachable survivors or — past the deadline budget — drop it
            // and flag the answer degraded.
            ins_.legs_unreachable->inc();
            detector_.suspect_hint(s.node, sim_.now());
            if (detector_placement_) table_.mark_stale(s.node);
            record_trace(host, "N" + std::to_string(s.node + 1) +
                                   " unreachable during PR");
            // An unreachable backup drops out of its race without recovery:
            // its units are copies, the primary still owns the work.
            if (s.hedge_backup) continue;
            if (host_dead()) continue;  // the whole question restarts
            std::deque<std::size_t> lost;
            if (s.in_flight != kNoUnit) {
              lost.push_back(s.in_flight);
              s.in_flight = kNoUnit;
            }
            if (!shared_queue) {
              for (std::size_t u : *s.units) lost.push_back(u);
              s.units->clear();
            }
            if (lost.empty()) continue;
            if (deadline_exceeded(q)) {
              q.degraded = true;
              ins_.degraded_units_dropped->inc(
                  static_cast<double>(lost.size()));
              record_trace(host, "deadline spent: dropped " +
                                     std::to_string(lost.size()) +
                                     " collections (degraded)");
              continue;
            }
            ins_.items_recovered->inc(static_cast<double>(lost.size()));
            record_trace(host, "recovered " + std::to_string(lost.size()) +
                                   " collections from unreachable N" +
                                   std::to_string(s.node + 1));
            if (sharded) {
              // Failover to surviving replicas of each lost unit's shard
              // (excluding the unreachable holder). Units whose shard has
              // no other live ready holder are dropped: degraded.
              const std::vector<std::size_t> lost_units(lost.begin(),
                                                        lost.end());
              auto assignment = assign_pr_units(lost_units, s.node);
              for (auto& [node, block] : assignment.legs) {
                spawn(node, std::make_shared<std::deque<std::size_t>>(
                                std::move(block)));
                ++outstanding;
                ins_.recovery_legs->inc();
              }
              if (!assignment.unplaced.empty()) {
                q.degraded = true;
                ins_.degraded_units_dropped->inc(
                    static_cast<double>(assignment.unplaced.size()));
                ins_.shard_units_unserved->inc(
                    static_cast<double>(assignment.unplaced.size()));
                record_trace(host,
                             "no surviving replica for " +
                                 std::to_string(assignment.unplaced.size()) +
                                 " collections (degraded)");
              }
              continue;
            }
            if (shared_queue) {
              for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
                shared_units->push_front(*it);
              }
              bool any_live = false;
              for (const auto& sp : slots) {
                // A backup leg drains a private copy, not the shared
                // deque, so it cannot rescue requeued units.
                if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                    !sp->hedge_backup) {
                  any_live = true;
                  break;
                }
              }
              if (!any_live) {
                spawn(pick_live(sched::kPrWeights), shared_units);
                ++outstanding;
                ins_.recovery_legs->inc();
              }
            } else {
              std::vector<NodeId> survivors;
              std::vector<double> weights;
              for (std::size_t i = 0; i < pr_nodes.size(); ++i) {
                if (pr_nodes[i] == s.node || !schedulable(pr_nodes[i])) {
                  continue;
                }
                survivors.push_back(pr_nodes[i]);
                weights.push_back(pr_weights[i]);
              }
              if (survivors.empty()) {
                survivors.push_back(host);  // host is live and local
                weights.push_back(1.0);
              }
              const auto parts =
                  parallel::partition_send(lost.size(), weights);
              for (const auto& p : parts) {
                auto block = std::make_shared<std::deque<std::size_t>>();
                for (std::size_t j : p.items) block->push_back(lost[j]);
                spawn(survivors[p.worker], std::move(block));
                ++outstanding;
                ins_.recovery_legs->inc();
              }
            }
            continue;
          }
          if (hedge_wake) {
            // The shortened wait elapsed because a leg crossed the hedge
            // trigger, not because replies went silent: issue backups for
            // every due leg, then go back to waiting. Each leg is hedged
            // (or declined — no placement available) at most once.
            const auto delay = hedge_delay(sched::LegStage::kPr);
            if (delay.has_value()) {
              const std::size_t count = slots.size();
              for (std::size_t i = 0; i < count; ++i) {
                PrLegSlot& s = *slots[i];
                if (s.reported || s.declared_dead || s.abandoned ||
                    s.hedged || s.hedge_backup) {
                  continue;
                }
                if (shared_queue &&
                    (!shared_units->empty() || s.in_flight == kNoUnit)) {
                  continue;
                }
                if (sim_.now() < hedge_due(s, *delay)) continue;
                s.hedged = true;
                // Snapshot of the primary's remaining work — what the
                // backup re-runs. Private-queue legs only ever drain this
                // set, so the backups cover the primary completely.
                std::vector<std::size_t> snapshot;
                if (s.in_flight != kNoUnit) snapshot.push_back(s.in_flight);
                if (!shared_queue) {
                  for (const std::size_t u : *s.units) snapshot.push_back(u);
                }
                if (snapshot.empty()) continue;
                auto group = std::make_shared<HedgeGroup>();
                group->members.push_back(i);
                group->covered = snapshot;
                if (sharded) {
                  // Backups must be replica holders. Only hedge when the
                  // whole snapshot is placeable off the primary — a partial
                  // backup could not take over on a win.
                  auto assignment = assign_pr_units(snapshot, s.node);
                  if (!assignment.unplaced.empty() ||
                      assignment.legs.empty()) {
                    continue;
                  }
                  s.group = group;
                  for (auto& [node, block] : assignment.legs) {
                    spawn(node,
                          std::make_shared<std::deque<std::size_t>>(
                              std::move(block)),
                          group, /*backup=*/true);
                    group->members.push_back(slots.size() - 1);
                    ++outstanding;
                  }
                } else {
                  const auto backup_node =
                      pick_backup(s.node, sched::kPrWeights,
                                  sched::LegStage::kPr);
                  if (!backup_node.has_value()) continue;
                  s.group = group;
                  spawn(*backup_node,
                        std::make_shared<std::deque<std::size_t>>(
                            snapshot.begin(), snapshot.end()),
                        group, /*backup=*/true);
                  group->members.push_back(slots.size() - 1);
                  ++outstanding;
                }
                record_trace(host, "hedged PR leg on N" +
                                       std::to_string(s.node + 1));
              }
            }
            continue;
          }
          // Reply timeout: sweep the unreported legs for dead nodes.
          const bool host_down = host_dead();
          std::size_t requeued = 0;
          std::vector<std::pair<NodeId, std::deque<std::size_t>>> respawn;
          for (const auto& sp : slots) {
            PrLegSlot& s = *sp;
            if (s.reported || s.declared_dead || s.abandoned) continue;
            if (crash_epoch_[s.node] == s.epoch) continue;  // still alive
            s.declared_dead = true;
            --outstanding;
            ins_.legs_lost->inc();
            if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
              // The leg is a zombie and will never close its own span.
              tracer_->end_span(s.leg_span, sim_.now(),
                                {{"crashed", std::int64_t{1}}});
              s.leg_span = obs::kNoSpan;
            }
            table_.remove(s.node);
            record_trace(host, "lost contact with N" +
                                   std::to_string(s.node + 1) + " during PR");
            if (host_down) continue;  // the whole question restarts anyway
            // A dead backup's units are copies; whoever it was backing up
            // still owns the work — nothing to recover.
            if (s.hedge_backup) continue;
            std::deque<std::size_t> lost;
            if (s.in_flight != kNoUnit) {
              lost.push_back(s.in_flight);
              s.in_flight = kNoUnit;
            }
            if (!shared_queue) {
              for (std::size_t u : *s.units) lost.push_back(u);
              s.units->clear();
            }
            if (lost.empty()) continue;
            ins_.items_recovered->inc(static_cast<double>(lost.size()));
            ins_.recovery_latency->observe(sim_.now() - crash_time_[s.node]);
            record_trace(host, "recovered " + std::to_string(lost.size()) +
                                   " collections from N" +
                                   std::to_string(s.node + 1));
            if (sharded) {
              // Failover to surviving replicas (apply_crash already struck
              // the dead holder from the map and kicked off background
              // re-replication; retrieval needs only what's ready now).
              const std::vector<std::size_t> lost_units(lost.begin(),
                                                        lost.end());
              auto assignment = assign_pr_units(lost_units, s.node);
              for (auto& leg : assignment.legs) {
                respawn.push_back(std::move(leg));
              }
              if (!assignment.unplaced.empty()) {
                q.degraded = true;
                ins_.degraded_units_dropped->inc(
                    static_cast<double>(assignment.unplaced.size()));
                ins_.shard_units_unserved->inc(
                    static_cast<double>(assignment.unplaced.size()));
                record_trace(host,
                             "no surviving replica for " +
                                 std::to_string(assignment.unplaced.size()) +
                                 " collections (degraded)");
              }
              continue;
            }
            if (shared_queue) {
              // Requeue at the front: surviving legs pick the units up the
              // next time they hit the deque.
              for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
                shared_units->push_front(*it);
              }
              requeued += lost.size();
            } else {
              // Re-partition the dead leg's block over the surviving stage
              // nodes (their original weights).
              std::vector<NodeId> survivors;
              std::vector<double> weights;
              for (std::size_t i = 0; i < pr_nodes.size(); ++i) {
                if (!schedulable(pr_nodes[i])) continue;
                survivors.push_back(pr_nodes[i]);
                weights.push_back(pr_weights[i]);
              }
              if (survivors.empty()) {
                survivors.push_back(host);  // host is live: !host_down
                weights.push_back(1.0);
              }
              const auto parts =
                  parallel::partition_send(lost.size(), weights);
              for (const auto& p : parts) {
                std::deque<std::size_t> block;
                for (std::size_t j : p.items) block.push_back(lost[j]);
                respawn.emplace_back(survivors[p.worker], std::move(block));
              }
            }
          }
          for (auto& [node, block] : respawn) {
            spawn(node, std::make_shared<std::deque<std::size_t>>(
                            std::move(block)));
            ++outstanding;
            ins_.recovery_legs->inc();
          }
          if (requeued > 0) {
            // If no surviving leg is still draining the shared deque, the
            // requeued units would be stranded: spawn a recovery leg.
            bool any_live = false;
            for (const auto& sp : slots) {
              if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                  !sp->hedge_backup) {
                any_live = true;
                break;
              }
            }
            if (!any_live) {
              spawn(pick_live(sched::kPrWeights), shared_units);
              ++outstanding;
              ins_.recovery_legs->inc();
            }
          }
        }
      }
      q.t_pr_stage = sim_.now() - pr_start;
      if (pr_span != obs::kNoSpan) tracer_->end_span(pr_span, sim_.now());
      failed = host_dead();
    }

    // ---- PO (sequential and centralized, on the host).
    if (!failed) {
      const Seconds t0 = sim_.now();
      obs::SpanId sp = obs::kNoSpan;
      if (tracer_ != nullptr) {
        sp = tracer_->begin_span(t0, "PO", host, q_track, q_span, {});
      }
      co_await nodes_[host]->cpu().consume(plan.po.cpu_seconds *
                                           nodes_[host]->work_multiplier() *
                                           nodes_[host]->gray_cpu_factor());
      failed = host_dead();
      q.t_po = sim_.now() - t0;
      if (sp != obs::kNoSpan) tracer_->end_span(sp, sim_.now());
      if (!failed) {
        record_trace(host, "accepted " +
                               std::to_string(plan.accepted_paragraphs) +
                               " paragraphs");
      }
    }

    // ---- Scheduling point 3: the AP dispatcher (DQA only).
    if (!failed && !plan.ap_units.empty()) {
      // Covers the paragraph-cache-hit path, where the PR stage (and its
      // ensure_selection call) was skipped: AP still processes only the
      // candidates the selected sub-collections would have produced.
      ensure_selection();
      std::vector<NodeId> ap_nodes{host};
      std::vector<double> ap_weights{1.0};
      // Same empty-pool guard as the PR dispatcher above.
      if (config_.dispatch.policy == Policy::kDqa && table_.size() > 0) {
        auto ms = sched::meta_schedule(table_, sched::kApWeights,
                                       config_.dispatch.ap_underload_threshold,
                                       &registry_,
                                       straggler_mask(sched::LegStage::kAp));
        std::vector<NodeId> live_sel;
        std::vector<double> live_w;
        for (std::size_t i = 0; i < ms.selected.size(); ++i) {
          if (!schedulable(ms.selected[i])) continue;
          live_sel.push_back(ms.selected[i]);
          live_w.push_back(ms.weights[i]);
        }
        ms.selected = std::move(live_sel);
        ms.weights = std::move(live_w);
        if (ms.selected.empty()) {
          ms.selected = {host};
          ms.weights = {1.0};
        }
        if (!config_.partition.enable && ms.selected.size() > 1) {
          const std::size_t best = static_cast<std::size_t>(
              std::max_element(ms.weights.begin(), ms.weights.end()) -
              ms.weights.begin());
          ms.selected = {ms.selected[best]};
          ms.weights = {1.0};
          ms.partitioned = false;
        }
        if (!(ms.selected.size() == 1 && ms.selected[0] == host)) {
          ins_.migrations_ap->inc();
        }
        ap_nodes = std::move(ms.selected);
        ap_weights = std::move(ms.weights);
      }

      // ---- AP stage with supervision. Recovery granularity follows the
      // answer path: RECV loses only the in-flight chunk (requeued on the
      // shared deque); SEND/ISEND lose the whole partition (answers ship
      // once at the end), which is re-partitioned over the survivors.
      const Seconds ap_start = sim_.now();
      obs::SpanId ap_span = obs::kNoSpan;
      if (tracer_ != nullptr) {
        ap_span = tracer_->begin_span(
            ap_start, "AP", host, q_track, q_span,
            {{"legs", static_cast<std::int64_t>(ap_nodes.size())},
             {"paragraphs", static_cast<std::int64_t>(ap_count)}});
      }
      {
        simnet::Mailbox<std::size_t> reports(sim_);
        std::vector<std::shared_ptr<ApLegSlot>> slots;
        const auto spawn =
            [&](NodeId node, std::vector<std::size_t> units,
                std::shared_ptr<std::deque<parallel::Chunk>> chunks,
                std::shared_ptr<HedgeGroup> group = nullptr,
                bool backup = false) {
              auto slot = std::make_shared<ApLegSlot>();
              slot->node = node;
              slot->epoch = crash_epoch_[node];
              slot->units = std::move(units);
              slot->chunks = std::move(chunks);
              slot->stage_span = ap_span;
              slot->spawned = sim_.now();
              slot->group = std::move(group);
              slot->hedge_backup = backup;
              (backup ? ins_.hedges_issued : ins_.legs_spawned)->inc();
              slots.push_back(slot);
              ap_leg(q, slot, slots.size() - 1, reports);
            };
        const bool shared_queue =
            config_.partition.ap_strategy == Strategy::kRecv || ap_nodes.size() == 1;
        std::shared_ptr<std::deque<parallel::Chunk>> shared_chunks;
        if (shared_queue) {
          shared_chunks = std::make_shared<std::deque<parallel::Chunk>>();
          for (const auto& c :
               parallel::make_chunks(ap_count, config_.partition.ap_chunk)) {
            shared_chunks->push_back(c);
          }
          for (NodeId node : ap_nodes) spawn(node, {}, shared_chunks);
        } else {
          const auto partitions =
              config_.partition.ap_strategy == Strategy::kIsend
                  ? parallel::partition_isend(ap_count, ap_weights)
                  : parallel::partition_send(ap_count, ap_weights);
          for (const auto& p : partitions) {
            spawn(ap_nodes[p.worker], p.items, nullptr);
          }
        }

        std::size_t outstanding = slots.size();
        const bool hedge_on = config_.tail.hedge;
        // Hedge-race settlement — the AP twin of the PR resolve_hedge; the
        // only structural difference is the covered work unit (an in-flight
        // RECV chunk instead of PR sub-collections).
        const auto resolve_hedge = [&](std::size_t winner) {
          ApLegSlot& w = *slots[winner];
          if (w.group == nullptr || w.group->resolved) return;
          const auto group = w.group;
          group->resolved = true;
          (w.hedge_backup ? ins_.hedge_wins : ins_.hedge_losses)->inc();
          bool requeued = false;
          for (const std::size_t m : group->members) {
            if (m == winner) continue;
            ApLegSlot& s = *slots[m];
            if (s.reported || s.declared_dead || s.abandoned) continue;
            s.abandoned = true;
            --outstanding;
            if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
              tracer_->end_span(
                  s.leg_span, sim_.now(),
                  {{"hedge_loser", std::int64_t{1}},
                   {"cancelled", std::int64_t{config_.tail.tied ? 1 : 0}}});
              s.leg_span = obs::kNoSpan;
            }
            if (config_.tail.tied && s.busy_server != nullptr) {
              if (s.busy_server->cancel(s.busy_handle)) {
                ins_.legs_cancelled->inc();
              }
              s.busy_server = nullptr;
            }
            if (!s.hedge_backup && s.has_in_flight &&
                !(group->has_covered_chunk &&
                  s.in_flight.begin == group->covered_chunk.begin &&
                  s.in_flight.end == group->covered_chunk.end)) {
              // The primary moved on to a chunk nobody covers: requeue it.
              if (shared_chunks != nullptr) {
                shared_chunks->push_front(s.in_flight);
                requeued = true;
              }
            }
            s.has_in_flight = false;
          }
          if (requeued) {
            bool any_live = false;
            for (const auto& sp : slots) {
              if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                  !sp->hedge_backup) {
                any_live = true;
                break;
              }
            }
            if (!any_live) {
              spawn(pick_live(sched::kApWeights), {}, shared_chunks);
              ++outstanding;
              ins_.recovery_legs->inc();
            }
          }
        };
        // Per-unit due time — the AP analogue of the PR loop's hedge_due.
        // RECV legs carry done paragraphs plus the in-flight chunk; a
        // SEND/ISEND partition is fixed, so its size alone is the load
        // (done already counts within it).
        const auto hedge_due = [&](const ApLegSlot& s, Seconds per_unit) {
          const double expected =
              shared_queue
                  ? static_cast<double>(
                        s.done + (s.has_in_flight ? s.in_flight.size() : 0))
                  : static_cast<double>(s.units.size());
          return s.spawned + std::max(per_unit * std::max(expected, 1.0),
                                      config_.tail.hedge_min_delay);
        };
        while (outstanding > 0) {
          // Hedge trigger — see the PR loop for the protocol.
          Seconds wait = config_.net.membership_timeout;
          bool hedge_wake = false;
          if (hedge_on) {
            if (const auto delay = hedge_delay(sched::LegStage::kAp)) {
              std::optional<Seconds> due;
              for (const auto& sp : slots) {
                const ApLegSlot& s = *sp;
                if (s.reported || s.declared_dead || s.abandoned ||
                    s.hedged || s.hedge_backup) {
                  continue;
                }
                if (shared_queue) {
                  if (!shared_chunks->empty() || !s.has_in_flight) continue;
                } else if (s.units.empty()) {
                  continue;
                }
                const Seconds at = hedge_due(s, *delay);
                if (!due.has_value() || at < *due) due = at;
              }
              if (due.has_value() && *due - sim_.now() < wait) {
                wait = std::max(*due - sim_.now(), 0.0);
                hedge_wake = true;
              }
            }
          }
          const auto msg = co_await reports.recv_for(wait);
          if (msg.has_value()) {
            --outstanding;
            ApLegSlot& s = *slots[*msg];
            if (!s.unreachable) {
              observe_leg(sched::LegStage::kAp, s.node, sim_.now() - s.spawned,
                          static_cast<double>(s.done), s.hedge_backup);
              resolve_hedge(*msg);
              continue;
            }
            // Unreachable leg: same decision as in PR — recover the
            // stranded paragraphs over reachable survivors, or drop them
            // once the deadline budget is spent.
            ins_.legs_unreachable->inc();
            detector_.suspect_hint(s.node, sim_.now());
            if (detector_placement_) table_.mark_stale(s.node);
            record_trace(host, "N" + std::to_string(s.node + 1) +
                                   " unreachable during AP");
            // An unreachable backup drops out of its race without
            // recovery: its paragraphs are copies the primary still owns.
            if (s.hedge_backup) continue;
            if (host_dead()) continue;
            std::vector<std::size_t> lost;
            std::size_t lost_count = 0;
            if (s.chunks != nullptr) {
              if (s.has_in_flight) lost_count = s.in_flight.size();
            } else {
              lost = std::move(s.units);
              s.units.clear();
              lost_count = lost.size();
            }
            if (lost_count == 0) continue;
            if (deadline_exceeded(q)) {
              q.degraded = true;
              s.has_in_flight = false;  // RECV: the chunk dies with the leg
              ins_.degraded_units_dropped->inc(
                  static_cast<double>(lost_count));
              record_trace(host, "deadline spent: dropped " +
                                     std::to_string(lost_count) +
                                     " paragraphs (degraded)");
              continue;
            }
            ins_.items_recovered->inc(static_cast<double>(lost_count));
            record_trace(host, "recovered " + std::to_string(lost_count) +
                                   " paragraphs from unreachable N" +
                                   std::to_string(s.node + 1));
            if (s.chunks != nullptr) {
              s.chunks->push_front(s.in_flight);
              s.has_in_flight = false;
              bool any_live = false;
              for (const auto& sp : slots) {
                if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                    !sp->hedge_backup) {
                  any_live = true;
                  break;
                }
              }
              if (!any_live) {
                spawn(pick_live(sched::kApWeights), {}, shared_chunks);
                ++outstanding;
                ins_.recovery_legs->inc();
              }
            } else {
              std::vector<NodeId> survivors;
              std::vector<double> weights;
              for (std::size_t i = 0; i < ap_nodes.size(); ++i) {
                if (ap_nodes[i] == s.node || !schedulable(ap_nodes[i])) {
                  continue;
                }
                survivors.push_back(ap_nodes[i]);
                weights.push_back(ap_weights[i]);
              }
              if (survivors.empty()) {
                survivors.push_back(host);
                weights.push_back(1.0);
              }
              const auto parts =
                  config_.partition.ap_strategy == Strategy::kIsend
                      ? parallel::partition_isend(lost.size(), weights)
                      : parallel::partition_send(lost.size(), weights);
              for (const auto& p : parts) {
                std::vector<std::size_t> block;
                block.reserve(p.items.size());
                for (std::size_t j : p.items) block.push_back(lost[j]);
                spawn(survivors[p.worker], std::move(block), nullptr);
                ++outstanding;
                ins_.recovery_legs->inc();
              }
            }
            continue;
          }
          if (hedge_wake) {
            // Timed out at a hedge trigger: issue backups for the due legs.
            // Not a failure signal, so skip the crash sweep below.
            for (std::size_t i = 0; i < slots.size(); ++i) {
              ApLegSlot& s = *slots[i];
              if (s.reported || s.declared_dead || s.abandoned || s.hedged ||
                  s.hedge_backup) {
                continue;
              }
              if (shared_queue) {
                if (!shared_chunks->empty() || !s.has_in_flight) continue;
              } else if (s.units.empty()) {
                continue;
              }
              const auto delay = hedge_delay(sched::LegStage::kAp);
              if (!delay.has_value() || sim_.now() < hedge_due(s, *delay)) {
                continue;
              }
              s.hedged = true;  // one hedge per leg, even if declined
              std::vector<std::size_t> snapshot;
              auto group = std::make_shared<HedgeGroup>();
              if (shared_queue) {
                // The backup re-ships the in-flight chunk as a fixed
                // partition of its own; the chunk ids identify coverage.
                snapshot.reserve(s.in_flight.size());
                for (std::size_t u = s.in_flight.begin; u < s.in_flight.end;
                     ++u) {
                  snapshot.push_back(u);
                }
                group->covered_chunk = s.in_flight;
                group->has_covered_chunk = true;
              } else {
                snapshot = s.units;
              }
              if (snapshot.empty()) continue;
              const auto backup_node =
                  pick_backup(s.node, sched::kApWeights, sched::LegStage::kAp);
              if (!backup_node.has_value()) continue;
              group->members.push_back(i);
              s.group = group;
              spawn(*backup_node, std::move(snapshot), nullptr, group, true);
              group->members.push_back(slots.size() - 1);
              ++outstanding;
              record_trace(host,
                           "hedged AP leg on N" + std::to_string(s.node + 1));
            }
            continue;
          }
          const bool host_down = host_dead();
          std::size_t requeued = 0;
          std::vector<std::pair<NodeId, std::vector<std::size_t>>> respawn;
          for (const auto& sp : slots) {
            ApLegSlot& s = *sp;
            if (s.reported || s.declared_dead || s.abandoned) continue;
            if (crash_epoch_[s.node] == s.epoch) continue;  // still alive
            s.declared_dead = true;
            --outstanding;
            ins_.legs_lost->inc();
            if (tracer_ != nullptr && s.leg_span != obs::kNoSpan) {
              tracer_->end_span(s.leg_span, sim_.now(),
                                {{"crashed", std::int64_t{1}}});
              s.leg_span = obs::kNoSpan;
            }
            table_.remove(s.node);
            record_trace(host, "lost contact with N" +
                                   std::to_string(s.node + 1) + " during AP");
            if (host_down) continue;
            // A crashed backup needs no recovery: it held copies of
            // paragraphs the primary is still processing.
            if (s.hedge_backup) continue;
            if (s.chunks != nullptr) {
              if (!s.has_in_flight) continue;
              s.chunks->push_front(s.in_flight);
              s.has_in_flight = false;
              requeued += s.in_flight.size();
              ins_.items_recovered->inc(
                  static_cast<double>(s.in_flight.size()));
              ins_.recovery_latency->observe(sim_.now() - crash_time_[s.node]);
              record_trace(host, "requeued chunk of " +
                                     std::to_string(s.in_flight.size()) +
                                     " paragraphs from N" +
                                     std::to_string(s.node + 1));
            } else {
              std::vector<std::size_t> lost = std::move(s.units);
              s.units.clear();
              if (lost.empty()) continue;
              ins_.items_recovered->inc(static_cast<double>(lost.size()));
              ins_.recovery_latency->observe(sim_.now() - crash_time_[s.node]);
              record_trace(host, "recovered " + std::to_string(lost.size()) +
                                     " paragraphs from N" +
                                     std::to_string(s.node + 1));
              std::vector<NodeId> survivors;
              std::vector<double> weights;
              for (std::size_t i = 0; i < ap_nodes.size(); ++i) {
                if (!schedulable(ap_nodes[i])) continue;
                survivors.push_back(ap_nodes[i]);
                weights.push_back(ap_weights[i]);
              }
              if (survivors.empty()) {
                survivors.push_back(host);
                weights.push_back(1.0);
              }
              const auto parts =
                  config_.partition.ap_strategy == Strategy::kIsend
                      ? parallel::partition_isend(lost.size(), weights)
                      : parallel::partition_send(lost.size(), weights);
              for (const auto& p : parts) {
                std::vector<std::size_t> block;
                block.reserve(p.items.size());
                for (std::size_t j : p.items) block.push_back(lost[j]);
                respawn.emplace_back(survivors[p.worker], std::move(block));
              }
            }
          }
          for (auto& [node, block] : respawn) {
            spawn(node, std::move(block), nullptr);
            ++outstanding;
            ins_.recovery_legs->inc();
          }
          if (requeued > 0) {
            bool any_live = false;
            for (const auto& sp : slots) {
              if (!sp->reported && !sp->declared_dead && !sp->abandoned &&
                  !sp->hedge_backup) {
                any_live = true;
                break;
              }
            }
            if (!any_live) {
              spawn(pick_live(sched::kApWeights), {}, shared_chunks);
              ++outstanding;
              ins_.recovery_legs->inc();
            }
          }
        }
      }
      q.t_ap_stage = sim_.now() - ap_start;
      if (ap_span != obs::kNoSpan) tracer_->end_span(ap_span, sim_.now());
      failed = host_dead();
    }

    // ---- Answer merging + sorting (host).
    if (!failed) {
      const Seconds t0 = sim_.now();
      co_await nodes_[host]->cpu().consume(plan.answer_sort.cpu_seconds *
                                           nodes_[host]->work_multiplier() *
                                           nodes_[host]->gray_cpu_factor());
      failed = host_dead();
      q.oh_answer_sort = sim_.now() - t0;
    }

    if (!failed) {
      // Success: remember the results on the node that computed them, so a
      // repeat of this question (routed here by affinity) hits. A degraded
      // (partial) answer must not poison the cache.
      if (cache_on && !q.degraded) {
        NodeCaches& shard = *caches_[host];
        if (config_.cache.answers.enabled()) {
          shard.answers.insert(cache_key, CachedAnswer{plan.answer_bytes},
                               answer_footprint(cache_key, plan), sim_.now());
        }
        if (config_.cache.paragraphs.enabled()) {
          shard.paragraphs.insert(cache_key, CachedParagraphs{},
                                  paragraph_footprint(cache_key, plan),
                                  sim_.now());
        }
      }
      break;  // the host survived the whole attempt
    }

    // Host crash: everything this attempt computed died with it (no
    // question_departed — the crash already zeroed the residents). The
    // front-end notices after its reply timeout and resubmits.
    const Seconds detect = crash_time_[host] + config_.net.membership_timeout;
    if (detect > sim_.now()) {
      co_await simnet::Delay(sim_, detect - sim_.now());
    }
    ++restarts;
    ins_.question_restarts->inc();
    record_trace(host, "question " + std::to_string(plan.source.id) +
                           " lost its host; resubmitting");
    host = pick_live(sched::kQaWeights);
  }

  if (q.degraded) {
    ins_.questions_degraded->inc();
    // Best effort before returning a partial answer: a stale (TTL-expired
    // or superseded) cached answer for the same question, if this node
    // still holds one, is served alongside the degraded flag.
    bool stale_served = false;
    if (cache_on && caches_[host]->answers.peek_stale(cache_key) != nullptr) {
      stale_served = true;
      ins_.degraded_stale_served->inc();
    }
    record_event(host,
                 "question " + std::to_string(plan.source.id) +
                     " answered degraded" +
                     (stale_served ? " (stale cached answer served)" : ""),
                 {{"kind", std::string("degraded")},
                  {"stale_cache", std::int64_t{stale_served ? 1 : 0}}});
  }

  record_trace(host, "answered question " + std::to_string(plan.source.id) +
                         " in " + format_double(sim_.now() - q.submitted, 2) +
                         " secs");

  nodes_[host]->question_departed();

  // ---- Bookkeeping. Stage and overhead distributions describe the full
  // pipeline (paper Tables 8/9), so cache-served questions are excluded —
  // they would drag every column toward the probe cost. Latency keeps all
  // questions: the latency collapse IS the cache's effect.
  const Seconds latency = sim_.now() - q.submitted;
  ins_.latency->observe(latency);
  makespan_ = std::max(makespan_, sim_.now());
  if (!served_from_cache) {
    ins_.t_qp->observe(q.t_qp);
    ins_.t_pr->observe(std::max(0.0, q.t_pr_stage - q.t_ps_max));
    ins_.t_ps->observe(q.t_ps_max);
    ins_.t_po->observe(q.t_po);
    ins_.t_ap->observe(q.t_ap_stage);
    ins_.oh_keyword_send->observe(q.oh_keyword_send);
    ins_.oh_paragraph_receive->observe(q.oh_paragraph_receive);
    ins_.oh_paragraph_send->observe(q.oh_paragraph_send);
    ins_.oh_answer_receive->observe(q.oh_answer_receive);
    ins_.oh_answer_sort->observe(q.oh_answer_sort);
  }
  if (q_span != obs::kNoSpan) {
    obs::Attrs attrs{
        {"latency_seconds", latency},
        {"restarts", static_cast<std::int64_t>(restarts)},
        {"cached", std::int64_t{served_from_cache ? 1 : 0}}};
    // Only stamp the degraded flag when the fault layer is active so traces
    // from fault-free runs stay byte-identical with pre-fault builds.
    if (injector_ != nullptr) {
      attrs.emplace_back("degraded", std::int64_t{q.degraded ? 1 : 0});
    }
    tracer_->end_span(q_span, sim_.now(), std::move(attrs));
  }
  ins_.completed->inc();
  if (config_.admission.enabled()) finish_admitted();
  maybe_finish();
}

}  // namespace qadist::cluster
