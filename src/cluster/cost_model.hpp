#pragma once

#include <span>

#include "common/units.hpp"
#include "corpus/generator.hpp"
#include "qa/engine.hpp"

namespace qadist::cluster {

/// A sub-task's simulated resource demand.
struct Demand {
  double cpu_seconds = 0.0;
  double disk_bytes = 0.0;
};

/// Calibration anchors: the paper's measured single-processor module times
/// (Table 8) and resource splits (Table 3). `reference_disk` is the node
/// disk bandwidth the disk-byte volumes are derived against.
struct CostAnchors {
  double t_qp = 0.81;
  double t_pr_total = 38.01;   ///< all sub-collections, one question
  double t_ps_total = 2.06;
  double t_po = 0.02;
  double t_ap_total = 117.55;
  double pr_disk_fraction = 0.80;  ///< Table 3: PR is 80% disk
  double ap_disk_fraction = 0.00;  ///< Table 3: AP is pure CPU
  Bandwidth reference_disk = Bandwidth::from_mbps(250);
};

/// Execution-driven cost model: converts the *real* pipeline's work
/// counters (postings scanned, bytes materialized, tokens scanned, windows
/// scored) into simulated CPU-seconds and disk-bytes, scaled so that the
/// *average* question reproduces the paper's Table 8 module times on the
/// reference hardware. Per-question and per-paragraph variance — the thing
/// load balancing reacts to — comes from the actual work counts, not from
/// a random distribution.
class CostModel {
 public:
  /// Runs `sample` questions through the engine to measure average work,
  /// then derives per-unit rates hitting the anchors.
  [[nodiscard]] static CostModel calibrate(
      const qa::Engine& engine, std::span<const corpus::Question> sample,
      const CostAnchors& anchors = CostAnchors{});

  [[nodiscard]] Demand qp() const;
  [[nodiscard]] Demand po() const;

  /// One PR call against one sub-collection.
  [[nodiscard]] Demand pr(const qa::RetrievalWork& work) const;

  /// PS over a batch of paragraphs totalling `paragraph_bytes`.
  [[nodiscard]] Demand ps(std::size_t paragraph_bytes) const;

  /// AP over one paragraph with the given work counters.
  [[nodiscard]] Demand ap(const qa::AnswerWork& work) const;

  /// Answer merging/sorting of n answers (small, memory-bound).
  [[nodiscard]] Demand answer_sort(std::size_t n_answers) const;

  [[nodiscard]] const CostAnchors& anchors() const { return anchors_; }

 private:
  CostAnchors anchors_;
  // Per-unit rates derived by calibrate().
  double pr_cpu_per_posting_ = 0.0;
  double pr_disk_per_posting_ = 0.0;        // index I/O bytes
  double pr_disk_per_text_byte_ = 0.0;      // paragraph materialization I/O
  double ps_cpu_per_byte_ = 0.0;
  double ap_cpu_per_token_ = 0.0;
  double ap_cpu_per_window_ = 0.0;
};

}  // namespace qadist::cluster
