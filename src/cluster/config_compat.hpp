#pragma once

#include "cluster/system.hpp"

namespace qadist::cluster {

/// One-release compatibility alias for the pre-grouping SystemConfig: the
/// same flat field list, convertible to the nested SystemConfig. Existing
/// out-of-tree code can swap `SystemConfig` for `FlatSystemConfig` at its
/// construction sites and keep designated initializers unchanged while it
/// migrates; everything in-tree addresses the sub-structs directly.
///
/// Deprecated: will be removed in the next release. The [[deprecated]]
/// marker makes every use site visible under -Wdeprecated-declarations.
struct [[deprecated(
    "use SystemConfig's nested sub-structs (net/dispatch/partition/cache); "
    "FlatSystemConfig will be removed in the next release")]]
FlatSystemConfig {
  std::size_t nodes = 12;
  NodeConfig node;
  std::vector<double> node_cpu_speeds;
  Bandwidth network = Bandwidth::from_mbps(100);
  Seconds monitor_period = 1.0;
  Seconds membership_timeout = 3.0;
  std::size_t load_packet_bytes = 64;
  Seconds per_message_overhead = 2e-3;
  Seconds per_batch_answer_cpu = 0.1;
  Seconds load_smoothing_tau = 30.0;
  Policy policy = Policy::kDqa;
  std::uint64_t seed = 1;
  bool enable_partitioning = true;
  double pr_underload_threshold =
      sched::single_task_load(sched::kPrWeights) + 1.0;
  double ap_underload_threshold =
      sched::single_task_load(sched::kApWeights) + 1.0;
  parallel::Strategy pr_strategy = parallel::Strategy::kRecv;
  std::size_t pr_chunk = 1;
  parallel::Strategy ap_strategy = parallel::Strategy::kRecv;
  std::size_t ap_chunk = 40;
  FaultPlan faults;

  /// The equivalent nested configuration. Fields the flat layout never
  /// had (the cache plan, the affinity toggle) take their defaults.
  [[nodiscard]] SystemConfig to_config() const {
    SystemConfig config;
    config.nodes = nodes;
    config.node = node;
    config.node_cpu_speeds = node_cpu_speeds;
    config.seed = seed;
    config.net.bandwidth = network;
    config.net.monitor_period = monitor_period;
    config.net.membership_timeout = membership_timeout;
    config.net.load_packet_bytes = load_packet_bytes;
    config.net.per_message_overhead = per_message_overhead;
    config.net.load_smoothing_tau = load_smoothing_tau;
    config.dispatch.policy = policy;
    config.dispatch.pr_underload_threshold = pr_underload_threshold;
    config.dispatch.ap_underload_threshold = ap_underload_threshold;
    config.partition.enable = enable_partitioning;
    config.partition.pr_strategy = pr_strategy;
    config.partition.pr_chunk = pr_chunk;
    config.partition.ap_strategy = ap_strategy;
    config.partition.ap_chunk = ap_chunk;
    config.partition.per_batch_answer_cpu = per_batch_answer_cpu;
    config.faults = faults;
    return config;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): the implicit conversion
  // is the whole point — `System system(sim, flat_config)` keeps working.
  operator SystemConfig() const { return to_config(); }
};

}  // namespace qadist::cluster
