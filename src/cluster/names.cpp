#include "cluster/names.hpp"

#include <string>

#include "common/check.hpp"

namespace qadist::cluster {

namespace {

/// Case-folds and maps '_' to '-' so flag spellings compare canonically.
std::string canon(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '_') {
      out += '-';
    } else if (c >= 'a' && c <= 'z') {
      out += static_cast<char>(c - 'a' + 'A');
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string_view to_string(Policy policy) {
  switch (policy) {
    case Policy::kDns:
      return "DNS";
    case Policy::kInter:
      return "INTER";
    case Policy::kDqa:
      return "DQA";
    case Policy::kTwoChoice:
      return "TWO-CHOICE";
  }
  QADIST_UNREACHABLE("bad Policy");
}

std::optional<Policy> parse_policy(std::string_view name) {
  const std::string c = canon(name);
  for (const Policy p : {Policy::kDns, Policy::kInter, Policy::kDqa,
                         Policy::kTwoChoice}) {
    if (c == to_string(p)) return p;
  }
  return std::nullopt;
}

std::optional<parallel::Strategy> parse_strategy(std::string_view name) {
  const std::string c = canon(name);
  for (const parallel::Strategy s :
       {parallel::Strategy::kSend, parallel::Strategy::kIsend,
        parallel::Strategy::kRecv}) {
    if (c == parallel::to_string(s)) return s;
  }
  return std::nullopt;
}

}  // namespace qadist::cluster
