#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/span.hpp"
#include "sched/load.hpp"

namespace qadist::cluster {

/// Records per-node timestamped events during a simulation — the data
/// behind the paper's Figure 7 execution traces ("N2 finished collection 3
/// in 0.19 secs", "N4 sorted 220 paragraphs", ...).
///
/// Implements obs::TextSink so it can attach to an obs::Tracer: with a
/// tracer wired into the System, every instant event feeds both this text
/// view and the JSON/Perfetto exporters from one event stream.
class TraceRecorder : public obs::TextSink {
 public:
  void record(Seconds time, sched::NodeId node, std::string event);

  /// obs::TextSink: instant events from the tracer land here.
  void on_text(Seconds time, std::uint32_t node,
               const std::string& text) override {
    record(time, node, text);
  }

  struct Entry {
    Seconds time = 0.0;
    sched::NodeId node = 0;
    std::string event;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Renders the trace in the paper's "N<k> <event>  <t> secs" layout.
  /// Entries are stable-sorted by timestamp first: recovery events are
  /// recorded by the coordinator when it *detects* a loss, which can
  /// interleave out of order with the victims' own final events.
  [[nodiscard]] std::string render() const;

  /// Number of entries whose event text contains `needle` — lets tests
  /// assert on crash/recovery activity without parsing the rendering.
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace qadist::cluster
