#include "cluster/metrics.hpp"

#include <cstdlib>
#include <string>

namespace qadist::cluster {

namespace {

std::size_t counter_value(const obs::MetricsRegistry& registry,
                          std::string_view name, obs::Labels labels = {}) {
  const obs::Counter* c = registry.find_counter(name, std::move(labels));
  return c == nullptr ? 0 : static_cast<std::size_t>(c->value());
}

double gauge_value(const obs::MetricsRegistry& registry,
                   std::string_view name, obs::Labels labels = {}) {
  const obs::Gauge* g = registry.find_gauge(name, std::move(labels));
  return g == nullptr ? 0.0 : g->value();
}

RunningStats histogram_stats(const obs::MetricsRegistry& registry,
                             std::string_view name, obs::Labels labels = {}) {
  const obs::HistogramMetric* h =
      registry.find_histogram(name, std::move(labels));
  return h == nullptr ? RunningStats{} : h->stats();
}

/// Per-node gauges ("node" label holds the id) gathered into a dense
/// vector indexed by node id.
std::vector<double> node_series(const obs::MetricsRegistry& registry,
                                std::string_view name) {
  std::vector<double> out;
  for (const auto& g : registry.gauges()) {
    if (g.name() != name) continue;
    for (const auto& [k, v] : g.labels()) {
      if (k != "node") continue;
      const std::size_t id = std::strtoull(v.c_str(), nullptr, 10);
      if (out.size() <= id) out.resize(id + 1, 0.0);
      out[id] = g.value();
    }
  }
  return out;
}

/// Sums a counter over every label set it was registered under (e.g.
/// cache_evictions across {cache=answers} and {cache=paragraphs}).
std::size_t counter_total(const obs::MetricsRegistry& registry,
                          std::string_view name) {
  double total = 0.0;
  for (const auto& c : registry.counters()) {
    if (c.name() == name) total += c.value();
  }
  return static_cast<std::size_t>(total);
}

}  // namespace

Metrics Metrics::from_registry(const obs::MetricsRegistry& registry) {
  Metrics out;
  out.submitted = counter_value(registry, "questions_submitted");
  out.completed = counter_value(registry, "questions_completed");
  if (const auto* h = registry.find_histogram("question_latency_seconds")) {
    out.latencies = h->samples();
  }
  out.first_submit = gauge_value(registry, "first_submit_seconds");
  out.makespan = gauge_value(registry, "makespan_seconds");

  out.migrations_qa = counter_value(registry, "migrations", {{"stage", "qa"}});
  out.migrations_pr = counter_value(registry, "migrations", {{"stage", "pr"}});
  out.migrations_ap = counter_value(registry, "migrations", {{"stage", "ap"}});

  out.crashes = counter_value(registry, "crashes");
  out.crashes_skipped = counter_value(registry, "crashes_skipped");
  out.legs_lost = counter_value(registry, "legs_lost");
  out.items_recovered = counter_value(registry, "items_recovered");
  out.recovery_legs = counter_value(registry, "recovery_legs");
  out.question_restarts = counter_value(registry, "question_restarts");
  out.recovery_latency = histogram_stats(registry, "recovery_latency_seconds");

  out.net_drops = counter_value(registry, "net_drops");
  out.net_partition_drops = counter_value(registry, "net_partition_drops");
  out.net_duplicates = counter_value(registry, "net_duplicates");
  out.net_dedup_dropped = counter_value(registry, "net_dedup_dropped");
  out.net_retries = counter_value(registry, "net_retries");
  out.net_send_failures = counter_value(registry, "net_send_failures");
  out.legs_unreachable = counter_value(registry, "legs_unreachable");
  out.detector_suspicions = counter_value(registry, "detector_suspicions");
  out.detector_false_alarms = counter_value(registry, "detector_false_alarms");
  out.detector_deaths = counter_value(registry, "detector_deaths");
  out.detector_rejoins = counter_value(registry, "detector_rejoins");
  out.questions_degraded = counter_value(registry, "questions_degraded");
  out.degraded_units_dropped =
      counter_value(registry, "degraded_units_dropped");
  out.degraded_stale_served = counter_value(registry, "degraded_stale_served");

  out.shard_failovers = counter_value(registry, "shard_failovers");
  out.shard_rebuilds = counter_value(registry, "shard_rebuilds");
  out.shard_rebuild_bytes = counter_value(registry, "shard_rebuild_bytes");
  out.shard_revalidations = counter_value(registry, "shard_revalidations");
  out.shard_units_unserved = counter_value(registry, "shard_units_unserved");
  out.rejoin_cache_clears = counter_value(registry, "rejoin_cache_clears");
  out.shard_rebuild_seconds =
      histogram_stats(registry, "shard_rebuild_seconds");

  out.gray_onsets = counter_value(registry, "gray_onsets");
  out.gray_recoveries = counter_value(registry, "gray_recoveries");
  out.legs_spawned = counter_value(registry, "legs_spawned");
  out.hedges_issued = counter_value(registry, "hedges_issued");
  out.hedge_wins = counter_value(registry, "hedge_wins");
  out.hedge_losses = counter_value(registry, "hedge_losses");
  out.legs_cancelled = counter_value(registry, "legs_cancelled");
  out.straggler_avoidances = counter_value(registry, "straggler_avoidances");
  out.detector_hints_suppressed =
      counter_value(registry, "detector_hints_suppressed");

  out.t_qp = histogram_stats(registry, "stage_seconds", {{"stage", "qp"}});
  out.t_pr = histogram_stats(registry, "stage_seconds", {{"stage", "pr"}});
  out.t_ps = histogram_stats(registry, "stage_seconds", {{"stage", "ps"}});
  out.t_po = histogram_stats(registry, "stage_seconds", {{"stage", "po"}});
  out.t_ap = histogram_stats(registry, "stage_seconds", {{"stage", "ap"}});

  out.questions_rejected = counter_value(registry, "questions_rejected");
  out.questions_shed = counter_value(registry, "questions_shed");
  out.admission_degraded = counter_value(registry, "admission_degraded");
  out.admission_wait = histogram_stats(registry, "admission_wait_seconds");
  out.admission_queue_peak = gauge_value(registry, "admission_queue_peak");

  out.cache_hits =
      counter_value(registry, "cache_hits", {{"cache", "answers"}});
  out.cache_misses =
      counter_value(registry, "cache_misses", {{"cache", "answers"}});
  out.pr_cache_hits =
      counter_value(registry, "cache_hits", {{"cache", "paragraphs"}});
  out.pr_cache_misses =
      counter_value(registry, "cache_misses", {{"cache", "paragraphs"}});
  out.cache_evictions = counter_total(registry, "cache_evictions");
  out.cache_expirations = counter_total(registry, "cache_expirations");
  out.cache_invalidations = counter_total(registry, "cache_invalidations");
  out.affinity_routes = counter_value(registry, "affinity_routes");
  out.affinity_fallbacks = counter_value(registry, "affinity_fallbacks");

  out.overhead.keyword_send = histogram_stats(
      registry, "overhead_seconds", {{"component", "keyword_send"}});
  out.overhead.paragraph_receive = histogram_stats(
      registry, "overhead_seconds", {{"component", "paragraph_receive"}});
  out.overhead.paragraph_send = histogram_stats(
      registry, "overhead_seconds", {{"component", "paragraph_send"}});
  out.overhead.answer_receive = histogram_stats(
      registry, "overhead_seconds", {{"component", "answer_receive"}});
  out.overhead.answer_sort = histogram_stats(
      registry, "overhead_seconds", {{"component", "answer_sort"}});

  out.node_cpu_work = node_series(registry, "node_cpu_work_seconds");
  out.node_disk_bytes = node_series(registry, "node_disk_work_bytes");
  out.node_storage_bytes = node_series(registry, "node_storage_bytes");
  return out;
}

}  // namespace qadist::cluster
