#include "cluster/node.hpp"

#include <cmath>
#include <string>

#include "common/check.hpp"

namespace qadist::cluster {

Node::Node(simnet::Simulation& sim, sched::NodeId id, const NodeConfig& config)
    : id_(id), sim_(&sim), config_(config) {
  QADIST_CHECK(config.memory_slots >= 1);
  QADIST_CHECK(config.thrash_exponent >= 0.0);
  QADIST_CHECK(config.cpu_speed > 0.0);
  const std::string base = "node" + std::to_string(id);
  cpu_ = std::make_unique<simnet::FairShareServer>(
      sim, base + ".cpu", config.cpu_cores * config.cpu_speed,
      /*max_rate_per_customer=*/config.cpu_speed);
  disk_ = std::make_unique<simnet::FairShareServer>(
      sim, base + ".disk", config.disk.bytes_per_second,
      config.disk.bytes_per_second);
  last_sample_ = sim.now();
}

void Node::attach_registry(obs::MetricsRegistry& registry) {
  const obs::Labels labels{{"node", std::to_string(id_)}};
  cpu_load_gauge_ = &registry.gauge("node_cpu_load", labels);
  disk_load_gauge_ = &registry.gauge("node_disk_load", labels);
  hosted_counter_ = &registry.counter("node_questions_hosted", labels);
}

void Node::question_departed() {
  QADIST_CHECK(resident_questions_ > 0,
               << "node " << id_ << ": departure without arrival");
  --resident_questions_;
}

void Node::crash() {
  cpu_->halt();
  disk_->halt();
  resident_questions_ = 0;  // the hosted questions died with the process
}

void Node::restart() {
  cpu_->restart();
  disk_->restart();
}

double Node::work_multiplier() const {
  if (config_.thrash_exponent == 0.0 ||
      resident_questions_ <= config_.memory_slots) {
    return 1.0;
  }
  return std::pow(static_cast<double>(resident_questions_) /
                      static_cast<double>(config_.memory_slots),
                  config_.thrash_exponent);
}

sched::ResourceLoad Node::sample_load() {
  const Seconds now = sim_->now();
  const double cpu_integral = cpu_->load_integral();
  const double disk_integral = disk_->load_integral();
  sched::ResourceLoad load;
  const Seconds dt = now - last_sample_;
  if (dt > 0.0) {
    load.cpu = (cpu_integral - last_cpu_integral_) / dt;
    load.disk = (disk_integral - last_disk_integral_) / dt;
  } else {
    // Zero-length period: report instantaneous occupancy.
    load.cpu = cpu_->active();
    load.disk = disk_->active();
  }
  last_sample_ = now;
  last_cpu_integral_ = cpu_integral;
  last_disk_integral_ = disk_integral;
  if (cpu_load_gauge_ != nullptr) {
    cpu_load_gauge_->set(load.cpu);
    disk_load_gauge_->set(load.disk);
  }
  return load;
}

}  // namespace qadist::cluster
