#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "broker/config.hpp"
#include "broker/topology.hpp"
#include "cache/config.hpp"
#include "cache/lru_cache.hpp"
#include "cluster/metrics.hpp"
#include "cluster/names.hpp"
#include "common/rng.hpp"
#include "cluster/node.hpp"
#include "cluster/plan.hpp"
#include "cluster/trace.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "parallel/partition.hpp"
#include "sched/dispatcher.hpp"
#include "sched/failure_detector.hpp"
#include "sched/leg_latency.hpp"
#include "sched/load_table.hpp"
#include "sched/meta_scheduler.hpp"
#include "shard/config.hpp"
#include "shard/shard_map.hpp"
#include "simnet/event.hpp"
#include "simnet/gray_fault.hpp"
#include "simnet/link.hpp"
#include "simnet/link_fault.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/process.hpp"
#include "simnet/simulation.hpp"
#include "simnet/task.hpp"

namespace qadist::cluster {

/// One scripted node crash. A crash halts the node's CPU and disk
/// mid-flight (in-progress work is lost, not paused), drops its load
/// broadcasts, and kills the questions it hosts. With `restart_after >= 0`
/// the node reboots empty that many seconds later and rejoins the pool
/// with its next broadcast.
struct FaultEvent {
  sched::NodeId node = 0;
  Seconds at = 0.0;
  Seconds restart_after = -1.0;  ///< < 0: the node stays down
};

/// Fault injection plan: scripted crashes, plus an optional random crash
/// process (exponential inter-crash gaps with mean `mtbf`, uniform victim)
/// driven by the system seed. A crash that would take down the last live
/// node is skipped (and counted in Metrics::crashes_skipped) so every run
/// can still drain.
struct FaultPlan {
  std::vector<FaultEvent> crashes;
  Seconds mtbf = 0.0;            ///< > 0 enables random crashes
  Seconds restart_after = -1.0;  ///< restart delay for random crashes

  [[nodiscard]] bool enabled() const { return !crashes.empty() || mtbf > 0.0; }
};

/// Reliability envelope for cluster RPCs over an unreliable link: bounded
/// retries with exponential backoff + jitter, and an optional per-question
/// deadline budget. Every send carries an idempotent sequence number, so a
/// duplicated frame or a retry of one whose ack was lost is deduplicated at
/// the receiver rather than processed twice.
struct ReliabilityConfig {
  /// Send attempts beyond the first before a peer is declared unreachable.
  std::size_t max_retries = 3;
  /// First retry waits backoff_base, doubling per attempt up to
  /// backoff_max, each scaled by (1 + backoff_jitter * U[0,1)) to
  /// de-synchronize competing retriers.
  Seconds backoff_base = 0.05;
  Seconds backoff_max = 1.0;
  double backoff_jitter = 0.5;
  /// Per-question time budget measured from submission. Once exceeded, the
  /// coordinator stops re-partitioning lost work and finishes with what it
  /// has, flagging the answer `degraded`. 0 disables the budget (recovery
  /// never gives up — matches the crash-only behavior of earlier builds).
  Seconds question_deadline = 0.0;
};

/// Shared-segment network and cluster-monitoring knobs.
struct NetworkConfig {
  /// Shared-segment Ethernet: all transfers fair-share this link.
  Bandwidth bandwidth = Bandwidth::from_mbps(100);
  /// Fixed cost of every remote transfer (TCP connection setup, RPC
  /// framing) on top of the bandwidth-shared byte time.
  Seconds per_message_overhead = 2e-3;
  std::size_t load_packet_bytes = 64;
  Seconds monitor_period = 1.0;
  Seconds membership_timeout = 3.0;
  /// Time constant for exponentially-damped load averages (the kernel
  /// loadavg the paper's monitors read is damped the same way). A Q/A task
  /// alternates disk-bound (PR) and CPU-bound (AP) phases tens of seconds
  /// long; damping makes the broadcast load reflect a node's *backlog*
  /// rather than which phase its tasks happen to be in, so the question
  /// dispatcher stops chasing phases (see bench_ablations, ablation A).
  Seconds load_smoothing_tau = 30.0;

  /// Link-level fault plan (drops, jitter, duplication, partitions).
  /// Disabled by default: fault-free runs are bit-identical to builds
  /// without the fault layer.
  simnet::LinkFaultPlan faults;
  /// Retry/backoff/deadline envelope, effective once `faults` is enabled.
  ReliabilityConfig reliability;
  /// Heartbeat failure detector: load broadcasts double as heartbeats, and
  /// a peer silent for this many monitor periods becomes kSuspect (it
  /// hardens into kDead at membership_timeout). Suspects are skipped by
  /// placement while any trusted node exists.
  double suspect_after_missed = 2.0;
  /// Detector-driven placement (skip suspects, mark stale load entries) is
  /// active whenever `faults` is enabled; set this to force it on for
  /// crash-only runs too. Default off so existing crash benches keep their
  /// timeout-only placement behavior bit-for-bit.
  bool detector_placement = false;
  /// Suspect-hint hysteresis (sched::FailureDetectorConfig::hint_hysteresis):
  /// after a heartbeat clears a hint-raised suspicion, further hints against
  /// that peer are suppressed for this long while its heartbeats stay
  /// current. Keeps a gray-slow (but lossless) node from flapping between
  /// alive and suspect on sporadic send failures. 0 disables the window —
  /// bit-identical to the pre-hysteresis detector.
  Seconds hint_hysteresis = 0.0;
};

/// Question-dispatcher knobs: the policy under test plus the thresholds of
/// the embedded PR/AP dispatchers and the cache-affinity routing rule.
struct DispatchConfig {
  Policy policy = Policy::kDqa;

  /// Under-load thresholds for the embedded dispatchers (paper Eq. 7-8:
  /// a node is under-loaded while its module load function is below the
  /// load one sub-task generates). The monitored load includes the
  /// deciding question's *own* current activity — roughly one
  /// question-load — so the defaults sit one unit above the
  /// single-sub-task values (0.68 for PR, 1.0 for AP).
  double pr_underload_threshold =
      sched::single_task_load(sched::kPrWeights) + 1.0;
  double ap_underload_threshold =
      sched::single_task_load(sched::kApWeights) + 1.0;

  /// Cache-affinity routing (effective only when caching is configured and
  /// the policy has a question dispatcher, i.e. INTER/DQA): a question is
  /// routed to the rendezvous-preferred node for its signature — the node
  /// most likely to hold its cached answer — unless that node is down or
  /// its load exceeds the pool's best by more than the dispatcher's
  /// anti-ping-pong threshold, in which case the normal load-based
  /// migration rule takes over. The paper's load functions therefore stay
  /// authoritative under overload; affinity only biases placement while
  /// the preferred node can absorb the work.
  bool cache_affinity = true;
};

/// Intra-question partitioning knobs for the embedded PR/AP dispatchers.
struct PartitionConfig {
  /// DQA only: allow the embedded dispatchers to partition (low load).
  /// When false, they only migrate — used to isolate migration effects.
  bool enable = true;

  /// PR partitioning strategy: kRecv (the paper's choice — collection
  /// processing cost varies too widely for weight-based partitioning) or
  /// kSend (the ablation). kIsend is rejected: collections are unranked.
  parallel::Strategy pr_strategy = parallel::Strategy::kRecv;
  std::size_t pr_chunk = 1;  ///< sub-collections per RECV chunk

  /// AP partitioning strategy: any of the three.
  parallel::Strategy ap_strategy = parallel::Strategy::kRecv;
  std::size_t ap_chunk = 40;  ///< paragraphs per RECV chunk (paper Fig. 10)

  /// CPU floor per dispatched AP batch: each batch's AP module extracts and
  /// ranks its own top-N_a answer set before returning, regardless of batch
  /// size — "a constant number N_a of answers must be extracted from each
  /// chunk" (paper Sec. 4.1.2). This is what makes tiny RECV chunks
  /// expensive and produces the Figure 10 U-curve.
  Seconds per_batch_answer_cpu = 0.1;
};

/// What the dispatcher front door does with an arrival that finds the
/// cluster at its concurrency limit and the admission queue full.
enum class AdmissionPolicy {
  kReject,      ///< turn the new arrival away (fail fast)
  kShedOldest,  ///< drop the oldest queued question, queue the new one
  kDegrade,     ///< answer the new arrival from cache (or partial) now
};

[[nodiscard]] std::string_view to_string(AdmissionPolicy policy);

/// Admission control and load shedding at the DNS front door (extension;
/// disabled by default). With `max_concurrent == 0` every arrival starts
/// immediately — bit-identical to builds without admission control. With a
/// bound, at most `max_concurrent` questions execute concurrently; up to
/// `queue_capacity` more wait in FIFO order, and past that `policy`
/// decides. An open-loop arrival stream (workload/arrival.hpp) pushed past
/// saturation then sees bounded latency for admitted questions instead of
/// a queue growing without bound.
struct AdmissionConfig {
  std::size_t max_concurrent = 0;  ///< 0 = unlimited (admission off)
  std::size_t queue_capacity = 0;  ///< waiting room beyond max_concurrent
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// Load-based shedding (0 = off): while sched::mean_pool_load over the
  /// QA weights exceeds this, arrivals skip the waiting room and go
  /// straight to `policy` — the queue must not mask a saturated pool.
  double load_threshold = 0.0;

  [[nodiscard]] bool enabled() const { return max_concurrent > 0; }
};

/// Tail-tolerance toolkit (extension; disabled by default). Gray nodes —
/// slow disk, throttled CPU — heartbeat happily while stretching every
/// fork-join question to their pace, so the failure detector never helps.
/// These are the mitigations that do:
///
///   * hedging: a stage leg still outstanding past a p95-based delay
///     (measured live from this run's own leg-completion times) gets a
///     backup issued to a second ready replica; first reply wins.
///   * tied requests: when one side of a hedge pair wins, the loser is
///     cancelled — its remaining CPU/disk reservation is released
///     immediately (simnet::FairShareServer::cancel) instead of grinding
///     to completion, and its span closes as a cancelled hedge loser so
///     attribution never double-counts the work.
///   * latency-aware selection: a per-node leg-latency EWMA feeds the
///     meta-scheduler; nodes whose EWMA exceeds `straggler_ratio` × the
///     pool's best are down-ranked like stale entries, steering new legs
///     away from slow-but-alive holders.
///
/// With `hedge` and `latency_aware` both false the entire toolkit is inert:
/// no bookkeeping, no extra wakeups — runs are bit-identical to the
/// pre-tail-tolerance system (pinned by test).
struct TailConfig {
  bool hedge = false;          ///< issue backup legs past the hedge delay
  bool tied = false;           ///< cancel the hedge loser's in-flight work
  bool latency_aware = false;  ///< EWMA-based straggler down-ranking

  /// Hedge trigger: a leg is hedged once outstanding longer than this
  /// quantile of the observed *per-unit* leg walls for its stage, scaled
  /// by the work the leg carries (legs differ wildly in size; an
  /// unnormalized wall quantile hedges big legs merely for being big)...
  double hedge_quantile = 0.95;
  /// ...but never sooner than this floor, and only after the stage has
  /// this many completed-leg observations to estimate the quantile from.
  Seconds hedge_min_delay = 0.5;
  std::size_t hedge_min_samples = 8;

  /// Leg-latency EWMA smoothing (weight of the newest observation).
  double ewma_alpha = 0.2;
  /// A node is a straggler while its per-unit leg-latency EWMA exceeds
  /// this multiple of the fastest node's EWMA.
  double straggler_ratio = 3.0;

  [[nodiscard]] bool enabled() const { return hedge || latency_aware; }
};

/// Cluster configuration, grouped by concern. (The transitional
/// FlatSystemConfig alias shipped for one release and is gone; address the
/// sub-structs directly.)
struct SystemConfig {
  std::size_t nodes = 12;
  NodeConfig node;
  /// Per-node CPU speed overrides (extension; empty = homogeneous). When
  /// set, entry i replaces node.cpu_speed for node i; must have exactly
  /// `nodes` entries.
  std::vector<double> node_cpu_speeds;
  /// Seed for the system's own randomized decisions (only kTwoChoice uses
  /// randomness; everything else is deterministic given the workload).
  std::uint64_t seed = 1;

  NetworkConfig net;
  DispatchConfig dispatch;
  PartitionConfig partition;
  /// Per-node answer/paragraph caches (see cache::CacheConfig). Disabled
  /// by default: uncached runs are bit-identical to the pre-cache system.
  cache::CacheConfig cache;
  /// Admission control / load shedding (see AdmissionConfig). Disabled by
  /// default: unbounded runs are bit-identical to the pre-admission system.
  AdmissionConfig admission;
  /// Fault injection (see FaultPlan). Empty by default: no crashes.
  FaultPlan faults;
  /// Scripted gray degradation (see simnet::GrayFaultPlan): per-node
  /// CPU/disk slowdown windows with optional per-transfer latency
  /// inflation, invisible to the failure detector. Empty by default: no
  /// gray windows, bit-identical to the pre-gray system.
  simnet::GrayFaultPlan gray;
  /// Corpus sharding / index replication (see shard::ShardConfig).
  /// Disabled by default: unsharded runs are bit-identical to the
  /// pre-shard system.
  shard::ShardConfig shard;
  /// Tail-tolerance toolkit (see TailConfig). Disabled by default:
  /// unhedged runs are bit-identical to the pre-tail-tolerance system.
  TailConfig tail;
  /// Selective search + broker/mediator tier (see broker::BrokerConfig).
  /// Both axes require sharding; disabled by default (brokers = 0,
  /// selectivity = 1.0): flat exhaustive runs are bit-identical to the
  /// pre-broker system (pinned by test).
  broker::BrokerConfig broker;
};

/// The distributed question answering system (paper Fig. 2/3) running on
/// the discrete-event simulator: N nodes with CPUs and disks, a shared
/// network, per-node load monitors broadcasting once a second, and a Q/A
/// task coroutine with the three scheduling points.
///
/// Usage: construct, `submit()` plans with arrival times, then `run()`.
/// Plans must outlive the run.
class System {
 public:
  System(simnet::Simulation& sim, const SystemConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Schedules a question for arrival at absolute sim time `at`. The DNS
  /// front-end assigns it round-robin over the nodes (paper Sec. 3.1).
  void submit(const QuestionPlan& plan, Seconds at);

  /// Membership dynamics (paper Sec. 3.1: "processors must be able to
  /// dynamically join or leave the system pool" — membership is purely
  /// broadcast-driven). A leaving node stops broadcasting at `at` and
  /// drops out of the pool once its last broadcast ages past the
  /// membership timeout; work already placed on it drains normally
  /// (graceful leave). A joining node starts broadcasting at `at` and is
  /// schedulable from its first packet.
  void schedule_leave(sched::NodeId node, Seconds at);
  void schedule_join(sched::NodeId node, Seconds at);

  /// Schedules a crash at absolute sim time `at` (in addition to whatever
  /// config().faults scripts). See FaultEvent for the crash semantics;
  /// `restart_after < 0` means the node stays down.
  void schedule_crash(sched::NodeId node, Seconds at,
                      Seconds restart_after = -1.0);

  /// Whether `node` is currently down from a fault (tests/benches).
  [[nodiscard]] bool node_crashed(sched::NodeId node) const {
    return node_crashed_.at(node) != 0;
  }

  /// Seeds the caches with this question's results before the run starts:
  /// the rendezvous-preferred node gets the answer and the accepted
  /// paragraphs, as if it had answered the question in a previous run.
  /// Benches use this to measure warm-cache throughput without paying a
  /// fill pass inside the measured interval. No-op when caching is off.
  void prewarm(const QuestionPlan& plan);

  /// The node cache-affinity dispatch prefers for this question when every
  /// node is live (rendezvous hash over the full pool); nullopt when the
  /// system has no caches configured. Tests use this to script crashes of
  /// the caching node.
  [[nodiscard]] std::optional<sched::NodeId> preferred_node(
      const QuestionPlan& plan) const;

  /// Whether `node` currently holds a fresh cached answer for `plan`
  /// (introspection only: does not promote or count a probe).
  [[nodiscard]] bool answer_cached(sched::NodeId node,
                                   const QuestionPlan& plan) const;

  /// Lifetime operation counts of one node's caches (zero-initialized
  /// stats when caching is off).
  [[nodiscard]] cache::CacheStats answer_cache_stats(
      sched::NodeId node) const;
  [[nodiscard]] cache::CacheStats paragraph_cache_stats(
      sched::NodeId node) const;

  /// The shard placement map, when cfg.shard is enabled (tests/benches
  /// inspect placement and replica states); nullptr otherwise.
  [[nodiscard]] const shard::ShardMap* shard_map() const {
    return shard_map_.get();
  }

  /// Direct node access (metrics inspection in tests/benches).
  [[nodiscard]] Node& node(std::size_t index) { return *nodes_.at(index); }

  /// Optional Fig. 7-style execution trace (only wired when set). When a
  /// tracer is also set, the recorder is attached to it as the text sink,
  /// so both views render the same event stream.
  void set_trace(TraceRecorder* trace) {
    trace_ = trace;
    if (tracer_ != nullptr) tracer_->set_text_sink(trace);
  }

  /// Optional span tracer (obs/span.hpp): one span per question with child
  /// spans per stage (QP/PR/PS/PO/AP) and per PR/AP leg, instant events
  /// for migrations/crashes/recoveries, and a per-node CPU/disk
  /// utilization timeline sampled each monitor period. Must outlive run().
  /// Tracing off (the default) costs one pointer check per event site.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    if (tracer_ != nullptr && trace_ != nullptr) {
      tracer_->set_text_sink(trace_);
    }
  }

  /// The live metrics store this run measures into (see Metrics for the
  /// snapshot facade). Counters/gauges/histograms registered by System,
  /// Node, and the sched dispatchers all land here.
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

  /// Runs the simulation until every submitted question completes and
  /// returns the measurements. Call exactly once.
  [[nodiscard]] Metrics run();

  [[nodiscard]] const sched::LoadTable& load_table() const { return table_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

 private:
  struct QuestionState;  // per-question bookkeeping (defined in .cpp)
  struct PrLegSlot;      // coordinator/leg shared state (defined in .cpp)
  struct ApLegSlot;
  struct BrokerSlot;     // broker-tier leg shared state (defined in .cpp)
  struct HedgeGroup;     // one hedge race: primary + backups (defined in .cpp)
  struct NodeCaches;     // per-node answer/paragraph caches (defined in .cpp)

  simnet::SimProcess monitor_process(Node& node);
  simnet::SimProcess fault_process();
  simnet::SimProcess question_process(const QuestionPlan& plan,
                                      sched::NodeId dns_node,
                                      Seconds arrived);

  /// Admission front door, invoked at each question's arrival instant.
  /// With admission off this is a tail call into question_process; with it
  /// on, the arrival starts, waits, or is shed per AdmissionConfig.
  void on_arrival(const QuestionPlan& plan, sched::NodeId dns_node);
  /// Starts an admitted question and records its queue wait.
  void start_admitted(const QuestionPlan& plan, sched::NodeId dns_node,
                      Seconds arrived);
  /// Overflow handling for one arrival per the configured policy.
  void shed_arrival(const QuestionPlan& plan, sched::NodeId dns_node);
  /// kDegrade service: answers immediately from the preferred node's cache
  /// when possible (stale entries count), as a flagged partial otherwise.
  void complete_degraded(const QuestionPlan& plan, sched::NodeId dns_node);
  /// Completion hook under admission control: frees the execution slot and
  /// starts the next queued question, if any.
  void finish_admitted();
  /// Declares the run drained once every submitted question is accounted
  /// for (completed, rejected, or shed) — stops the monitor processes.
  void maybe_finish();

  /// Background re-replication after a holder crash: copies `shard` onto
  /// `target` from the rendezvous-best surviving ready replica, paying the
  /// source's disk read, the network transfer, the target's disk write,
  /// and the rebuild-bandwidth pacing floor. Aborts (idempotently) if the
  /// source pool or the target dies mid-copy.
  simnet::SimProcess rebuild_process(shard::ShardId shard,
                                     sched::NodeId target,
                                     std::size_t target_epoch);
  /// Rejoin re-validation: a restarted holder re-scans its stashed shard
  /// copies on disk before they serve retrieval again.
  simnet::SimProcess revalidate_process(sched::NodeId node,
                                        std::size_t epoch);

  // Stage legs. Each leg shares a slot with its coordinator (pending and
  // in-flight work, completion flag) and reports its slot index on the
  // stage mailbox when done. A leg whose node crashes reports nothing:
  // the coordinator's reply timeout (recv_for membership_timeout) is what
  // detects the loss, mirroring a real scatter-gather over TCP.
  // `relay` is the node the leg talks to — the question host in the flat
  // star, the group's broker under the broker tier (keywords arrive from
  // it, result bytes ship back to it, and it pays the receive disk).
  simnet::SimProcess pr_leg(QuestionState& q, std::shared_ptr<PrLegSlot> slot,
                            std::size_t index,
                            simnet::Mailbox<std::size_t>& reports,
                            sched::NodeId relay);
  simnet::SimProcess ap_leg(QuestionState& q, std::shared_ptr<ApLegSlot> slot,
                            std::size_t index,
                            simnet::Mailbox<std::size_t>& reports);
  /// Broker-tier PR leg: ships the keywords to the group's broker, which
  /// scores/routes, fans the group's units out to in-group shard holders
  /// over the subtree link, supervises them (reply timeouts, in-group
  /// failover), merges their partials, and ships one aggregate back.
  simnet::SimProcess broker_leg(QuestionState& q,
                                std::shared_ptr<BrokerSlot> slot,
                                std::size_t index,
                                simnet::Mailbox<std::size_t>& reports);

  /// Where a ship() call's wall-clock went: time with frames on the wire
  /// (delivered or dropped) versus time sleeping between retry attempts.
  /// Pure bookkeeping for the critical-path attribution — accumulating it
  /// never changes the event sequence.
  struct ShipCost {
    Seconds transfer = 0.0;
    Seconds backoff = 0.0;
  };

  /// Reliable unicast: moves `bytes` from `src` to `dst` with bounded
  /// retries (exponential backoff + jitter) and an idempotent sequence
  /// number per logical message. Resolves true once delivered, false when
  /// the retry budget (or the question deadline, when set) is exhausted —
  /// the peer is then unreachable as far as this RPC is concerned. With no
  /// fault injector installed this is exactly one transfer (bit-identical
  /// fast path). A non-null `cost` accumulates the transfer/backoff split.
  simnet::Task<bool> ship(double bytes, sched::NodeId src, sched::NodeId dst,
                          Seconds deadline, ShipCost* cost = nullptr);

  /// Whether placement may target `node`: it must be up, and — when the
  /// failure detector drives placement — not currently suspected.
  [[nodiscard]] bool schedulable(sched::NodeId node) const;

  /// Whether the question's deadline budget (reliability.question_deadline)
  /// has passed; always false when the budget is disabled.
  [[nodiscard]] bool deadline_exceeded(const QuestionState& q) const;

  /// Least-loaded pool member that is actually up; falls back to any live
  /// node when the table is momentarily empty. A live node always exists
  /// (apply_crash never takes down the last one). Prefers unsuspected
  /// nodes when the detector drives placement.
  [[nodiscard]] sched::NodeId pick_live(const sched::LoadWeights& weights) const;

  /// Rendezvous pick over the currently live pool members (the affinity
  /// dispatch target); nullopt when no live member is known yet.
  [[nodiscard]] std::optional<sched::NodeId> affinity_target(
      std::uint64_t signature) const;

  /// Replica-aware PR assignment (sharded mode only): partitions the given
  /// iterative units over schedulable ready holders of each unit's shard,
  /// weighted by the meta-schedule, least-assigned-first. Units whose
  /// shard has no schedulable ready holder land in `unplaced` — the
  /// question degrades by that much work.
  struct ShardAssignment {
    std::vector<std::pair<sched::NodeId, std::deque<std::size_t>>> legs;
    std::vector<std::size_t> unplaced;
  };
  [[nodiscard]] ShardAssignment assign_pr_units(
      std::span<const std::size_t> units,
      std::optional<sched::NodeId> exclude);

  /// The link a (src, dst) transfer rides. Flat star: the single shared
  /// LAN. Broker tier: endpoints in the same group share that group's
  /// subtree LAN; anything crossing groups rides the core backbone.
  [[nodiscard]] simnet::Link& link_for(sched::NodeId src,
                                       sched::NodeId dst) const;

  /// Collection selection (cfg.broker.selectivity / top_k): which PR
  /// iterative units this question will actually touch, plus the fraction
  /// of retrieval work kept (paragraph-weighted) — the AP stage is trimmed
  /// proportionally, since fewer retrieved paragraphs survive to scoring.
  /// With selection off (or not applicable) this is all units, fraction 1.
  struct SelectionResult {
    std::vector<std::size_t> units;  ///< ascending unit indices to run
    double kept_fraction = 1.0;      ///< selected / total paragraph work
    bool pruned = false;
  };
  [[nodiscard]] SelectionResult select_pr_units(const QuestionPlan& plan);

  void apply_crash(sched::NodeId node);
  void apply_restart(sched::NodeId node);

  /// Gray-fault schedule hooks (only wired when config().gray is enabled).
  /// Windows on one node may overlap; the effective degradation is the
  /// per-resource max over the node's open windows (recompute_gray), so a
  /// node recovers exactly when its last window closes.
  void apply_gray(std::size_t event_index);
  void clear_gray(sched::NodeId node, std::size_t event_index);
  void recompute_gray(sched::NodeId node);
  /// Extra one-way transfer delay from open gray windows on either
  /// endpoint; 0 whenever the plan is disabled (ship() fast path intact).
  [[nodiscard]] Seconds gray_extra_latency(sched::NodeId src,
                                           sched::NodeId dst) const;

  /// Tail-tolerance bookkeeping (all no-ops while config().tail is
  /// disabled). A completed leg's wall time feeds the per-stage hedge-delay
  /// estimate and the per-node per-unit EWMA behind straggler avoidance.
  /// Backup legs (`backup` true) feed only the EWMA: their walls start at
  /// the hedge, not the dispatch, and letting those short walls into the
  /// quantile pool drags the trigger down and over-hedges the next round.
  void observe_leg(sched::LegStage stage, sched::NodeId node, Seconds wall,
                   double units, bool backup = false);
  /// Current per-unit hedge trigger for a stage: the configured quantile
  /// of this run's observed per-unit leg walls. The supervision loops
  /// scale it by each leg's unit count (and floor the product with
  /// hedge_min_delay) to get that leg's due time; nullopt until
  /// hedge_min_samples legs have completed.
  [[nodiscard]] std::optional<Seconds> hedge_delay(
      sched::LegStage stage) const;
  /// Straggler mask for meta_schedule(_among) when latency-aware selection
  /// is on; empty span otherwise (scheduling unchanged).
  [[nodiscard]] std::span<const char> straggler_mask(sched::LegStage stage);

  void record_trace(sched::NodeId node, std::string event);
  /// record_trace with structured attributes on the JSON event (the text
  /// view renders identically either way).
  void record_event(sched::NodeId node, std::string event, obs::Attrs attrs);

  /// Hot-path instrument handles, registered once at construction so the
  /// simulation never pays a name lookup. The Metrics facade is built from
  /// these (plus the registry's node gauges) when run() finishes.
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* migrations_qa = nullptr;
    obs::Counter* migrations_pr = nullptr;
    obs::Counter* migrations_ap = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* crashes_skipped = nullptr;
    obs::Counter* legs_lost = nullptr;
    obs::Counter* items_recovered = nullptr;
    obs::Counter* recovery_legs = nullptr;
    obs::Counter* question_restarts = nullptr;
    obs::HistogramMetric* latency = nullptr;
    obs::HistogramMetric* recovery_latency = nullptr;
    obs::HistogramMetric* t_qp = nullptr;
    obs::HistogramMetric* t_pr = nullptr;
    obs::HistogramMetric* t_ps = nullptr;
    obs::HistogramMetric* t_po = nullptr;
    obs::HistogramMetric* t_ap = nullptr;
    obs::HistogramMetric* oh_keyword_send = nullptr;
    obs::HistogramMetric* oh_paragraph_receive = nullptr;
    obs::HistogramMetric* oh_paragraph_send = nullptr;
    obs::HistogramMetric* oh_answer_receive = nullptr;
    obs::HistogramMetric* oh_answer_sort = nullptr;
    obs::Counter* cache_hits = nullptr;        // answer cache
    obs::Counter* cache_misses = nullptr;
    obs::Counter* pr_cache_hits = nullptr;     // paragraph cache
    obs::Counter* pr_cache_misses = nullptr;
    obs::Counter* affinity_routes = nullptr;
    obs::Counter* affinity_fallbacks = nullptr;
    obs::Counter* net_retries = nullptr;       // unreliable-network layer
    obs::Counter* net_send_failures = nullptr;
    obs::Counter* legs_unreachable = nullptr;
    obs::Counter* questions_degraded = nullptr;
    obs::Counter* degraded_units_dropped = nullptr;
    obs::Counter* degraded_stale_served = nullptr;
    obs::Counter* shard_failovers = nullptr;   // shard subsystem
    obs::Counter* shard_rebuilds = nullptr;
    obs::Counter* shard_rebuild_bytes = nullptr;
    obs::Counter* shard_revalidations = nullptr;
    obs::Counter* shard_units_unserved = nullptr;
    obs::Counter* rejoin_cache_clears = nullptr;
    obs::HistogramMetric* shard_rebuild_seconds = nullptr;
    obs::Counter* questions_rejected = nullptr;  // admission control
    obs::Counter* questions_shed = nullptr;
    obs::Counter* admission_degraded = nullptr;
    obs::HistogramMetric* admission_wait = nullptr;
    obs::Counter* legs_spawned = nullptr;        // tail-tolerance toolkit
    obs::Counter* hedges_issued = nullptr;
    obs::Counter* hedge_wins = nullptr;
    obs::Counter* hedge_losses = nullptr;
    obs::Counter* legs_cancelled = nullptr;
    obs::Counter* straggler_avoidances = nullptr;
    obs::Counter* gray_onsets = nullptr;         // gray-fault schedule
    obs::Counter* gray_recoveries = nullptr;
    obs::Counter* selection_questions_pruned = nullptr;  // selective search
    obs::Counter* selection_units_pruned = nullptr;
    obs::Counter* selection_ap_units_pruned = nullptr;
    obs::Counter* selection_fallback_all = nullptr;
    obs::HistogramMetric* selection_shards_selected = nullptr;
    obs::Counter* broker_legs = nullptr;         // broker/mediator tier
    obs::Counter* broker_reroutes = nullptr;
    obs::Counter* broker_unreachable = nullptr;
    obs::Counter* broker_load_relays = nullptr;
  };
  void register_instruments();
  /// Folds per-node CacheStats (evictions, expirations, invalidations,
  /// occupancy) into the registry — called once at the end of run().
  void publish_cache_stats();
  /// Folds the fault injector's and failure detector's lifetime tallies
  /// (drops, duplicates, suspicions, rejoins) into the registry — called
  /// once at the end of run().
  void publish_net_stats();
  /// Publishes per-node storage gauges from the shard map — called once at
  /// the end of run() when sharding is enabled.
  void publish_shard_stats();

  simnet::Simulation& sim_;
  SystemConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<NodeCaches>> caches_;  // empty: caching off
  std::vector<char> node_broadcasting_;  // membership: monitor active?
  std::vector<char> node_crashed_;       // fault state: node currently down?
  std::vector<std::size_t> crash_epoch_;  // bumped per crash (zombie detection)
  std::vector<Seconds> crash_time_;       // last crash time per node
  std::unique_ptr<simnet::Link> network_;
  /// Broker-tier wiring (both empty in the flat star): the hierarchy's
  /// node grouping, the host<->broker core backbone, and one subtree LAN
  /// per group. The flat `network_` stays allocated but unused when the
  /// tier is on.
  std::optional<broker::Topology> topology_;
  std::unique_ptr<simnet::Link> core_link_;
  std::vector<std::unique_ptr<simnet::Link>> subtree_links_;
  std::unique_ptr<simnet::LinkFaultInjector> injector_;  // null: faults off
  std::unique_ptr<shard::ShardMap> shard_map_;  // null: sharding off
  bool shard_partial_ = false;  // R < nodes: replica-aware scheduling on
  sched::FailureDetector detector_;
  bool detector_placement_ = false;
  sched::LoadTable table_;
  /// Tail-tolerance state (untouched while config().tail is disabled).
  sched::LegLatencyTracker leg_latency_;
  std::array<std::vector<double>, sched::kLegStages> leg_walls_;
  std::vector<char> straggler_scratch_;
  /// Gray-fault state (empty when disabled): per-node effective extra
  /// link latency, and which plan events are currently open per node.
  std::vector<Seconds> gray_extra_latency_;
  std::vector<std::vector<std::size_t>> gray_open_;
  obs::MetricsRegistry registry_;
  Instruments ins_;
  TraceRecorder* trace_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::vector<simnet::UtilizationProbe> cpu_probes_;
  std::vector<simnet::UtilizationProbe> disk_probes_;
  Rng two_choice_rng_{1};
  Rng net_rng_{1};  // backoff jitter (own stream: retries never perturb
                    // the two-choice draw sequence)
  std::uint64_t next_msg_seq_ = 0;  // idempotency tokens for ship()
  sched::NodeId next_dns_node_ = 0;
  Seconds first_submit_ = 0.0;
  Seconds makespan_ = 0.0;
  bool all_done_ = false;
  bool started_ = false;

  /// Admission state (untouched when config().admission is disabled).
  struct QueuedArrival {
    const QuestionPlan* plan = nullptr;
    sched::NodeId dns_node = 0;
    Seconds arrived = 0.0;
  };
  std::deque<QueuedArrival> admission_queue_;
  std::size_t executing_ = 0;          ///< questions currently in flight
  std::size_t admission_queue_peak_ = 0;
};

}  // namespace qadist::cluster
