#include "cluster/cost_model.hpp"

#include "common/check.hpp"

namespace qadist::cluster {

CostModel CostModel::calibrate(const qa::Engine& engine,
                               std::span<const corpus::Question> sample,
                               const CostAnchors& anchors) {
  QADIST_CHECK(!sample.empty(), << "calibration needs sample questions");

  // Measure the average per-question work of the real pipeline.
  double postings = 0.0;
  double text_bytes = 0.0;
  double accepted_bytes = 0.0;
  double ap_tokens = 0.0;
  double ap_windows = 0.0;
  for (const auto& q : sample) {
    const auto result = engine.answer(q);
    postings += static_cast<double>(result.work.retrieval.postings_scanned);
    text_bytes +=
        static_cast<double>(result.work.retrieval.bytes_materialized);
    ap_tokens += static_cast<double>(result.work.answer.tokens_scanned);
    ap_windows += static_cast<double>(result.work.answer.windows_scored);
    accepted_bytes += static_cast<double>(result.work.paragraphs_accepted);
  }
  const auto n = static_cast<double>(sample.size());
  postings /= n;
  text_bytes /= n;
  ap_tokens /= n;
  ap_windows /= n;

  CostModel model;
  model.anchors_ = anchors;

  // --- PR: t_pr_total splits into disk and CPU by Table 3's 80/20. Disk
  // time becomes a byte volume at the reference bandwidth, spread across
  // index postings (half) and paragraph text (half) so both query
  // selectivity and paragraph sizes move the per-sub-collection cost.
  const double pr_disk_time = anchors.t_pr_total * anchors.pr_disk_fraction;
  const double pr_disk_volume =
      pr_disk_time * anchors.reference_disk.bytes_per_second;
  const double pr_cpu_time = anchors.t_pr_total - pr_disk_time;
  QADIST_CHECK(postings > 0.0, << "sample produced no postings");
  QADIST_CHECK(text_bytes > 0.0, << "sample materialized no paragraphs");
  model.pr_cpu_per_posting_ = pr_cpu_time / postings;
  model.pr_disk_per_posting_ = 0.5 * pr_disk_volume / postings;
  model.pr_disk_per_text_byte_ = 0.5 * pr_disk_volume / text_bytes;

  // --- PS: pure CPU per paragraph byte.
  model.ps_cpu_per_byte_ = anchors.t_ps_total / text_bytes;

  // --- AP: pure CPU (Table 3), split half per scanned token, half per
  // scored window; both scale with paragraph complexity.
  QADIST_CHECK(ap_tokens > 0.0, << "sample scanned no AP tokens");
  model.ap_cpu_per_token_ =
      0.5 * anchors.t_ap_total * (1.0 - anchors.ap_disk_fraction) / ap_tokens;
  model.ap_cpu_per_window_ =
      ap_windows > 0.0
          ? 0.5 * anchors.t_ap_total * (1.0 - anchors.ap_disk_fraction) /
                ap_windows
          : 0.0;
  return model;
}

Demand CostModel::qp() const { return Demand{anchors_.t_qp, 0.0}; }

Demand CostModel::po() const { return Demand{anchors_.t_po, 0.0}; }

Demand CostModel::pr(const qa::RetrievalWork& work) const {
  Demand d;
  const auto postings = static_cast<double>(work.postings_scanned);
  const auto bytes = static_cast<double>(work.bytes_materialized);
  d.cpu_seconds = pr_cpu_per_posting_ * postings;
  d.disk_bytes =
      pr_disk_per_posting_ * postings + pr_disk_per_text_byte_ * bytes;
  return d;
}

Demand CostModel::ps(std::size_t paragraph_bytes) const {
  return Demand{ps_cpu_per_byte_ * static_cast<double>(paragraph_bytes), 0.0};
}

Demand CostModel::ap(const qa::AnswerWork& work) const {
  Demand d;
  d.cpu_seconds =
      ap_cpu_per_token_ * static_cast<double>(work.tokens_scanned) +
      ap_cpu_per_window_ * static_cast<double>(work.windows_scored);
  return d;
}

Demand CostModel::answer_sort(std::size_t n_answers) const {
  // Merging/sorting a handful of answers: microseconds each, never a
  // bottleneck (paper Eq. 29 drops it) but modelled for completeness.
  return Demand{1e-5 * static_cast<double>(n_answers), 0.0};
}

}  // namespace qadist::cluster
