#pragma once

#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"

#include <vector>

namespace qadist::cluster {

/// Per-question distribution overhead components — the paper's Table 9
/// columns (keyword sending, paragraph receiving, paragraph sending,
/// answer receiving, answer sorting).
struct OverheadBreakdown {
  RunningStats keyword_send;
  RunningStats paragraph_receive;
  RunningStats paragraph_send;
  RunningStats answer_receive;
  RunningStats answer_sort;

  [[nodiscard]] double total_mean() const {
    return keyword_send.mean() + paragraph_receive.mean() +
           paragraph_send.mean() + answer_receive.mean() + answer_sort.mean();
  }
};

/// Everything a simulation run measures.
///
/// Read-only view: the live store is the System's obs::MetricsRegistry
/// (every counter below is a registry counter, every RunningStats/Samples
/// a registry histogram, updated as the run executes). System::run()
/// builds this struct with from_registry() at the end so benches and tests
/// keep field-level access; new code that wants names, labels, or JSON
/// should read System::registry() instead.
struct Metrics {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  Samples latencies;        ///< per-question response times (seconds)
  Seconds first_submit = 0.0;
  Seconds makespan = 0.0;   ///< completion time of the last question

  // Migration counts at the three scheduling points (paper Table 7).
  std::size_t migrations_qa = 0;
  std::size_t migrations_pr = 0;
  std::size_t migrations_ap = 0;

  // Fault injection and recovery (paper Sec. 5 operates the cluster for
  // months; these measure what a mid-flight node loss costs).
  std::size_t crashes = 0;          ///< node crashes actually applied
  std::size_t crashes_skipped = 0;  ///< crashes dropped (last live node)
  std::size_t legs_lost = 0;        ///< PR/AP legs killed by a crash
  std::size_t items_recovered = 0;  ///< units re-dispatched after a loss
  std::size_t recovery_legs = 0;    ///< replacement legs spawned
  std::size_t question_restarts = 0;  ///< whole questions re-hosted
  RunningStats recovery_latency;  ///< crash detection -> recovered dispatch

  // Unreliable-network layer: message-level faults, the reliability
  // envelope's reaction, and the heartbeat failure detector (all zero when
  // the run is configured without link faults).
  std::size_t net_drops = 0;            ///< messages randomly dropped
  std::size_t net_partition_drops = 0;  ///< messages lost to a partition
  std::size_t net_duplicates = 0;       ///< messages delivered twice
  std::size_t net_dedup_dropped = 0;    ///< duplicates discarded at receipt
  std::size_t net_retries = 0;          ///< send attempts after the first
  std::size_t net_send_failures = 0;    ///< sends abandoned after retries
  std::size_t legs_unreachable = 0;     ///< PR/AP legs lost to the network
  std::size_t detector_suspicions = 0;  ///< alive -> suspect transitions
  std::size_t detector_false_alarms = 0;  ///< suspects cleared by a beat
  std::size_t detector_deaths = 0;        ///< suspect -> dead confirmations
  std::size_t detector_rejoins = 0;       ///< dead peers heard from again
  std::size_t questions_degraded = 0;   ///< partial answers returned
  std::size_t degraded_units_dropped = 0;  ///< work units a deadline forfeited
  std::size_t degraded_stale_served = 0;   ///< stale cache entries handed out

  // Sharded corpus / index replication (extension; all zero when the run
  // is configured without sharding).
  std::size_t shard_failovers = 0;      ///< rebuild tasks scheduled on crash
  std::size_t shard_rebuilds = 0;       ///< re-replications completed
  std::size_t shard_rebuild_bytes = 0;  ///< bytes copied by re-replication
  std::size_t shard_revalidations = 0;  ///< replicas re-validated on rejoin
  std::size_t shard_units_unserved = 0; ///< PR units with no live replica
  std::size_t rejoin_cache_clears = 0;  ///< cache shards cleared on rejoin
  RunningStats shard_rebuild_seconds;   ///< crash -> replica ready again

  // Gray faults and the tail-tolerance toolkit (extension; all zero when
  // the run is configured without cfg.gray / cfg.tail). A hedge "win"
  // means the backup finished before the primary; a "loss" means the
  // primary won and the backup work was wasted (and, in tied mode,
  // cancelled mid-flight).
  std::size_t gray_onsets = 0;       ///< gray windows opened
  std::size_t gray_recoveries = 0;   ///< gray windows closed
  std::size_t legs_spawned = 0;      ///< primary PR/AP legs issued
  std::size_t hedges_issued = 0;     ///< backup legs issued
  std::size_t hedge_wins = 0;        ///< backups that beat their primary
  std::size_t hedge_losses = 0;      ///< backups beaten by their primary
  std::size_t legs_cancelled = 0;    ///< tied losers cancelled mid-flight
  std::size_t straggler_avoidances = 0;  ///< placements steered off stragglers
  std::size_t detector_hints_suppressed = 0;  ///< hints eaten by hysteresis

  /// Backup legs as a fraction of primary legs — the hedge overhead the
  /// acceptance bar caps (≤ 15% at the default p95 trigger).
  [[nodiscard]] double hedge_overhead() const {
    if (legs_spawned == 0) return 0.0;
    return static_cast<double>(hedges_issued) /
           static_cast<double>(legs_spawned);
  }

  // Per-question simulated module stage times (paper Table 8 columns).
  RunningStats t_qp;
  RunningStats t_pr;   ///< PR stage wall (retrieval legs incl. transfers)
  RunningStats t_ps;   ///< scoring time on the slowest PR leg
  RunningStats t_po;
  RunningStats t_ap;   ///< AP stage wall

  // Admission control / load shedding (extension; all zero when the run
  // is configured without admission control). Degraded-at-admission
  // questions count as completed; rejected and shed ones do not.
  std::size_t questions_rejected = 0;  ///< arrivals turned away
  std::size_t questions_shed = 0;      ///< queued questions dropped
  std::size_t admission_degraded = 0;  ///< arrivals served cached/partial
  RunningStats admission_wait;         ///< queue wait of admitted questions
  double admission_queue_peak = 0.0;   ///< high-water mark of the queue

  // Answer/paragraph caching and cache-affinity dispatch (extension; all
  // zero when the run is configured without caches).
  std::size_t cache_hits = 0;        ///< answer-cache hits
  std::size_t cache_misses = 0;      ///< answer-cache misses
  std::size_t pr_cache_hits = 0;     ///< paragraph-cache hits (PR skipped)
  std::size_t pr_cache_misses = 0;
  std::size_t cache_evictions = 0;      ///< capacity + byte-budget, all caches
  std::size_t cache_expirations = 0;    ///< TTL drops, all caches
  std::size_t cache_invalidations = 0;  ///< crash-invalidated entries
  std::size_t affinity_routes = 0;      ///< questions routed to the preferred node
  std::size_t affinity_fallbacks = 0;   ///< preferred node overloaded/down

  OverheadBreakdown overhead;  ///< paper Table 9

  /// Per-node work served over the whole run (CPU-seconds, disk bytes),
  /// indexed by node id — the balance view behind the policy comparisons.
  std::vector<double> node_cpu_work;
  std::vector<double> node_disk_bytes;

  /// Per-node simulated index storage (bytes), indexed by node id; empty
  /// when sharding is off. The storage-scaling axis of bench_shard_scaling.
  std::vector<double> node_storage_bytes;

  /// Largest per-node index storage footprint (0 when sharding is off).
  [[nodiscard]] double max_storage_bytes() const {
    double max_bytes = 0.0;
    for (double b : node_storage_bytes) {
      max_bytes = max_bytes > b ? max_bytes : b;
    }
    return max_bytes;
  }

  /// max/mean of per-node CPU work — 1.0 is a perfectly balanced run.
  [[nodiscard]] double cpu_work_imbalance() const {
    if (node_cpu_work.empty()) return 1.0;
    double max_work = 0.0;
    double total = 0.0;
    for (double w : node_cpu_work) {
      max_work = max_work > w ? max_work : w;
      total += w;
    }
    const double mean = total / static_cast<double>(node_cpu_work.size());
    return mean > 0.0 ? max_work / mean : 1.0;
  }

  /// Questions per minute over the busy interval.
  [[nodiscard]] double throughput_qpm() const {
    const Seconds busy = makespan - first_submit;
    if (busy <= 0.0) return 0.0;
    return static_cast<double>(completed) / (busy / 60.0);
  }

  /// Fraction of completed questions answered in full, i.e. not flagged
  /// degraded (1.0 when nothing completed — an empty run loses nothing).
  [[nodiscard]] double non_degraded_fraction() const {
    if (completed == 0) return 1.0;
    return 1.0 - static_cast<double>(questions_degraded) /
                     static_cast<double>(completed);
  }

  /// Fraction of submitted questions the front door turned away (rejected
  /// or shed; degraded ones were still answered). 0 for an empty run.
  [[nodiscard]] double shed_fraction() const {
    if (submitted == 0) return 0.0;
    return static_cast<double>(questions_rejected + questions_shed) /
           static_cast<double>(submitted);
  }

  /// Answer-cache hit rate over all probes (0 when the cache never ran).
  [[nodiscard]] double answer_cache_hit_rate() const {
    const std::size_t probes = cache_hits + cache_misses;
    return probes == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                   static_cast<double>(probes);
  }

  /// Builds the view from a registry populated by a System run. Absent
  /// instruments read as zero/empty, so snapshots taken from partially
  /// instrumented registries (or mid-run) degrade gracefully.
  [[nodiscard]] static Metrics from_registry(
      const obs::MetricsRegistry& registry);
};

}  // namespace qadist::cluster
