#pragma once

#include <optional>
#include <string_view>

#include "parallel/partition.hpp"

namespace qadist::cluster {

/// The three load-balancing policies compared in paper Sec. 6.1:
///  DNS   — round-robin placement only (the DNS name-to-address baseline);
///  INTER — DNS plus the question dispatcher (whole-task migration before
///          the task starts; the model of [3,7]);
///  DQA   — INTER plus the PR and AP dispatchers embedded in the task (the
///          paper's contribution). Under low load the embedded dispatchers
///          partition the bottleneck modules (intra-question parallelism);
///          under high load they degrade gracefully into extra migration
///          points.
/// An extension beyond the paper: kTwoChoice implements the classic
/// "power of two choices" dispatcher — each question samples two pool
/// members and takes the lighter one. No threshold, no broadcast scan;
/// included as a modern baseline against the paper's INTER design.
enum class Policy { kDns, kInter, kDqa, kTwoChoice };

/// Canonical names and parsers for the enums that cross program boundaries
/// (bench CLI flags, trace attributes, JSON reports). to_string and parse
/// round-trip exactly; parse is additionally case-insensitive and accepts
/// '-'/'_' interchangeably ("two-choice" == "TWO_CHOICE").
[[nodiscard]] std::string_view to_string(Policy policy);
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name);
[[nodiscard]] std::optional<parallel::Strategy> parse_strategy(
    std::string_view name);

}  // namespace qadist::cluster
