#pragma once

#include <memory>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "sched/load.hpp"
#include "simnet/fair_share.hpp"

namespace qadist::cluster {

/// Hardware of one simulated cluster node, mirroring the paper's testbed:
/// a single-CPU Pentium III box with a local disk and 256 MB of RAM. The
/// CPU and disk are fair-share servers — time-sharing under load is what
/// makes overloaded nodes slow, which is what load balancing exists to
/// avoid.
struct NodeConfig {
  double cpu_cores = 1.0;
  Bandwidth disk = Bandwidth::from_mbps(250);

  /// Memory-pressure model (paper Sec. 4.2: a question needs 25-40 MB;
  /// with 256 MB per node, more than ~4 simultaneous questions cause
  /// "excessive page swapping"). While more than `memory_slots` questions
  /// are resident, every unit of work on the node is inflated by
  /// (resident/slots)^thrash_exponent. The default exponent of 0 disables
  /// the model (pure CPU/disk time-sharing), which is what the calibrated
  /// experiments use; bench_ablations measures its effect.
  int memory_slots = 4;
  double thrash_exponent = 0.0;

  /// Relative CPU speed (1.0 = the reference Pentium III). The paper's
  /// testbed is homogeneous; heterogeneous speeds are an extension that
  /// exercises the meta-scheduler's weighted partitioning for real —
  /// slower nodes accumulate backlog, broadcast higher loads, and receive
  /// smaller partitions.
  double cpu_speed = 1.0;
};

class Node {
 public:
  Node(simnet::Simulation& sim, sched::NodeId id, const NodeConfig& config);

  [[nodiscard]] sched::NodeId id() const { return id_; }
  [[nodiscard]] simnet::FairShareServer& cpu() { return *cpu_; }
  [[nodiscard]] simnet::FairShareServer& disk() { return *disk_; }

  /// Registers this node's observability instruments (labeled by node id):
  /// `node_cpu_load` / `node_disk_load` gauges refreshed on every load
  /// sample, and a `node_questions_hosted` counter. The registry must
  /// outlive the node; called by System at construction, optional for
  /// standalone nodes in tests.
  void attach_registry(obs::MetricsRegistry& registry);

  /// Resident-question tracking for the memory model. The System calls
  /// these when a question starts/finishes on this node as its host.
  void question_arrived() {
    ++resident_questions_;
    if (hosted_counter_ != nullptr) hosted_counter_->inc();
  }
  void question_departed();
  [[nodiscard]] int resident_questions() const { return resident_questions_; }

  /// Fault injection: a crash halts CPU and disk (in-flight work resumes
  /// unserved — customers must check the owning System's crash flag after
  /// every co_await) and forgets the resident questions, which die with
  /// the process. restart() brings the hardware back empty.
  void crash();
  void restart();
  [[nodiscard]] bool crashed() const { return cpu_->halted(); }

  /// Work inflation factor from memory pressure; 1.0 while the model is
  /// disabled or the node is within its memory budget.
  [[nodiscard]] double work_multiplier() const;

  /// Gray degradation (simnet::GrayFaultPlan): service-time stretch factors
  /// applied on top of work_multiplier() while a gray window is open.
  /// Defaults to 1.0 on both resources, which multiplies work demands by
  /// exactly 1.0 — bit-identical to a build without the gray-fault path.
  /// Unlike crash(), gray degradation is invisible to the failure detector:
  /// heartbeats keep flowing, only data-path service times stretch.
  void set_gray(double cpu_factor, double disk_factor) {
    gray_cpu_factor_ = cpu_factor;
    gray_disk_factor_ = disk_factor;
  }
  void clear_gray() { set_gray(1.0, 1.0); }
  [[nodiscard]] double gray_cpu_factor() const { return gray_cpu_factor_; }
  [[nodiscard]] double gray_disk_factor() const { return gray_disk_factor_; }
  [[nodiscard]] bool gray() const {
    return gray_cpu_factor_ != 1.0 || gray_disk_factor_ != 1.0;
  }

  /// Time-averaged resource loads since the previous call — the load
  /// monitor's per-period measurement (average active customers per
  /// resource over the period).
  [[nodiscard]] sched::ResourceLoad sample_load();

 private:
  sched::NodeId id_;
  simnet::Simulation* sim_;
  NodeConfig config_;
  std::unique_ptr<simnet::FairShareServer> cpu_;
  std::unique_ptr<simnet::FairShareServer> disk_;
  int resident_questions_ = 0;
  double gray_cpu_factor_ = 1.0;
  double gray_disk_factor_ = 1.0;
  Seconds last_sample_ = 0.0;
  double last_cpu_integral_ = 0.0;
  double last_disk_integral_ = 0.0;
  obs::Gauge* cpu_load_gauge_ = nullptr;
  obs::Gauge* disk_load_gauge_ = nullptr;
  obs::Counter* hosted_counter_ = nullptr;
};

}  // namespace qadist::cluster
