#include "cluster/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace qadist::cluster {

void TraceRecorder::record(Seconds time, sched::NodeId node,
                           std::string event) {
  entries_.push_back(Entry{time, node, std::move(event)});
}

std::size_t TraceRecorder::count_containing(std::string_view needle) const {
  std::size_t count = 0;
  for (const auto& e : entries_) {
    if (e.event.find(needle) != std::string::npos) ++count;
  }
  return count;
}

std::string TraceRecorder::render() const {
  std::vector<Entry> sorted(entries_);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.time < b.time;
                   });
  std::ostringstream os;
  for (const auto& e : sorted) {
    os << "[" << format_double(e.time, 2) << "s] N" << (e.node + 1) << " "
       << e.event << "\n";
  }
  return os.str();
}

}  // namespace qadist::cluster
