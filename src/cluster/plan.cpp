#include "cluster/plan.hpp"

namespace qadist::cluster {

double QuestionPlan::total_cpu_seconds() const {
  double cpu = qp.cpu_seconds + po.cpu_seconds + answer_sort.cpu_seconds;
  for (const auto& u : pr_units) cpu += u.demand.cpu_seconds + u.ps.cpu_seconds;
  for (const auto& u : ap_units) cpu += u.demand.cpu_seconds;
  return cpu;
}

double QuestionPlan::total_disk_bytes() const {
  double bytes = 0.0;
  for (const auto& u : pr_units) bytes += u.demand.disk_bytes;
  for (const auto& u : ap_units) bytes += u.demand.disk_bytes;
  return bytes;
}

void scale_plan(QuestionPlan& plan, double factor) {
  const auto scale_demand = [factor](Demand& d) {
    d.cpu_seconds *= factor;
    d.disk_bytes *= factor;
  };
  const auto scale_bytes = [factor](std::size_t& b) {
    b = static_cast<std::size_t>(static_cast<double>(b) * factor);
  };
  scale_demand(plan.qp);
  scale_demand(plan.po);
  scale_demand(plan.answer_sort);
  for (auto& u : plan.pr_units) {
    scale_demand(u.demand);
    scale_demand(u.ps);
    scale_bytes(u.bytes_out);
  }
  for (auto& u : plan.ap_units) {
    scale_demand(u.demand);
    scale_bytes(u.bytes_in);
    scale_bytes(u.answer_bytes_out);
  }
}

QuestionPlan make_plan(const qa::Engine& engine, const CostModel& cost,
                       const corpus::Question& question) {
  QuestionPlan plan;
  plan.source = question;
  plan.processed = engine.process_question(question.id, question.text);
  plan.qp = cost.qp();
  plan.question_bytes = question.text.size();
  for (const auto& k : plan.processed.keywords) {
    plan.keyword_bytes += k.size() + 1;
  }

  // --- PR + PS, per sub-collection (the PR iterative unit).
  std::vector<qa::ScoredParagraph> scored;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    qa::RetrievalWork work;
    auto paragraphs = engine.retrieve(sub, plan.processed, &work);

    QuestionPlan::PrUnit unit;
    unit.demand = cost.pr(work);
    unit.paragraphs = paragraphs.size();
    std::size_t bytes = 0;
    for (const auto& p : paragraphs) bytes += p.text.size();
    unit.bytes_out = bytes;
    unit.ps = cost.ps(bytes);
    plan.pr_units.push_back(unit);

    for (auto& p : paragraphs) {
      scored.push_back(engine.score(plan.processed, std::move(p)));
    }
  }

  // --- PO (centralized).
  auto accepted = engine.order(std::move(scored));
  plan.po = cost.po();
  plan.accepted_paragraphs = accepted.size();

  // --- AP, per accepted paragraph (the AP iterative unit), in rank order.
  std::vector<qa::Answer> all_answers;
  plan.ap_units.reserve(accepted.size());
  for (const auto& paragraph : accepted) {
    qa::AnswerWork work;
    auto answers = engine.answer_processor().process_paragraph(
        plan.processed, paragraph, &work);

    QuestionPlan::ApUnit unit;
    unit.demand = cost.ap(work);
    unit.bytes_in = paragraph.paragraph.text.size();
    for (const auto& a : answers) {
      unit.answer_bytes_out += a.candidate.size() + a.window.size();
    }
    plan.ap_units.push_back(unit);

    all_answers.insert(all_answers.end(),
                       std::make_move_iterator(answers.begin()),
                       std::make_move_iterator(answers.end()));
  }

  plan.answers = qa::sort_answers(
      std::move(all_answers),
      engine.answer_processor().config().answers_requested);
  plan.answer_sort = cost.answer_sort(plan.answers.size());
  for (const auto& a : plan.answers) {
    plan.answer_bytes += a.candidate.size() + a.window.size();
  }
  return plan;
}

}  // namespace qadist::cluster
