#pragma once

#include <span>
#include <vector>

#include "cluster/system.hpp"

namespace qadist::cluster {

/// The paper's two experiment protocols (Sec. 6.1 / 6.2), packaged so
/// benches, tests and downstream users drive identical workloads.

/// Mean sequential service time of a plan set: total CPU plus disk bytes
/// at the given reference bandwidth, averaged per plan.
[[nodiscard]] double mean_service_seconds(std::span<const QuestionPlan> plans,
                                          Bandwidth reference_disk);

/// Makes the plan population bimodal in place, mirroring the paper's mixed
/// TREC-8/TREC-9 question set: every other plan is scaled to
/// `light_scale` of its work (TREC-8's 48 s average vs TREC-9's 94 s gives
/// the default 48/94).
void apply_bimodal_mix(std::span<QuestionPlan> plans,
                       double light_scale = 48.0 / 94.0);

/// High-load protocol (paper Sec. 6.1): submits `count` questions drawn
/// from `plans` (deterministically in `seed`) with inter-arrival gaps
/// uniform in [0, 2·g], where the mean gap g sustains arrivals at
/// `overload_factor` times the system's aggregate service rate. The same
/// seed produces the same question sequence and arrival times for every
/// policy — "the same questions and the same startup sequence for all
/// tests".
struct OverloadWorkload {
  std::size_t count = 0;                 ///< 0 = 8 x nodes (the paper's 8N)
  double overload_factor = 2.0;
  std::uint64_t seed = 1;
  Bandwidth reference_disk = Bandwidth::from_mbps(250);

  /// Question repetition (extension, off by default): with
  /// `repeat_exponent > 0` the submitted questions are drawn Zipf-skewed
  /// over a population of `distinct_questions` plans — rank k is picked
  /// with probability proportional to 1/(k+1)^s, the skew real question
  /// streams show (a handful of very popular questions, a long tail). At
  /// the default 0 the legacy deterministic scan over the plan set is
  /// used, bit-identical to before the field existed.
  double repeat_exponent = 0.0;
  std::size_t distinct_questions = 0;  ///< 0 = all plans are candidates
};

/// The plan indices submit_overload will submit, in order — the pick
/// sequence is pure in (workload, plan_count, count), which is what makes
/// cache-hit sequences reproducible across runs and policies. Exposed for
/// tests and benches that need to know the question stream (e.g. to
/// prewarm caches with exactly the plans that will repeat).
[[nodiscard]] std::vector<std::size_t> overload_pick_sequence(
    const OverloadWorkload& workload, std::size_t plan_count,
    std::size_t count);

/// Compatibility shim over workload::Driver (RunSpec shape kOverload):
/// same pick sequence and arrival instants, bit for bit. New code should
/// use the Driver directly — it also covers the serial and open-loop
/// protocols and can run the whole experiment in one call.
void submit_overload(System& system, std::span<const QuestionPlan> plans,
                     const OverloadWorkload& workload);

/// Low-load protocol (paper Sec. 6.2): `count` questions submitted one at
/// a time, with gaps long enough that the system fully drains between
/// them ("questions were executed one at a time"). `stride`/`offset`
/// select which plans are used (the benches use odd indices to stay on
/// the unscaled TREC-9-like population).
struct SerialWorkload {
  std::size_t count = 1;
  std::size_t stride = 1;
  std::size_t offset = 0;
  Bandwidth reference_disk = Bandwidth::from_mbps(250);
};

/// Compatibility shim over workload::Driver (RunSpec shape kSerial).
void submit_serial(System& system, std::span<const QuestionPlan> plans,
                   const SerialWorkload& workload);

}  // namespace qadist::cluster
