#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "corpus/collection.hpp"
#include "corpus/generator.hpp"
#include "ir/analyzer.hpp"
#include "ir/inverted_index.hpp"
#include "ir/shard_stats.hpp"

namespace qadist::ir {

/// Binary serialization of a document collection. Each cluster node keeps a
/// copy of the collection on its local disk in the paper's deployment;
/// these routines make that a real on-disk artifact for host-mode runs
/// (examples persist the corpus, PR loads sub-collections back).
void save_collection(const corpus::Collection& collection, std::ostream& out);
[[nodiscard]] corpus::Collection load_collection(std::istream& in);

/// File-path convenience wrappers (fail via QADIST_CHECK on I/O errors).
void save_collection_file(const corpus::Collection& collection,
                          const std::string& path);
[[nodiscard]] corpus::Collection load_collection_file(const std::string& path);

/// Serialization of the complete generated world — collection, gazetteer
/// and ground-truth facts — so a deployment (or a later benchmark run) can
/// reload exactly the corpus it was built against without re-generating.
void save_world(const corpus::GeneratedCorpus& world, std::ostream& out);
[[nodiscard]] corpus::GeneratedCorpus load_world(std::istream& in);
void save_world_file(const corpus::GeneratedCorpus& world,
                     const std::string& path);
[[nodiscard]] corpus::GeneratedCorpus load_world_file(const std::string& path);

/// Document-partitioned index shards: the collection is split into
/// `num_shards` contiguous sub-collections (the paper's TREC-9 split into
/// eight) and each is indexed separately. Shard s indexes sub-collection s,
/// so the shard striping of PR iterative units (unit % num_shards) lines up
/// with which index can answer them.
[[nodiscard]] std::vector<InvertedIndex> build_shard_indexes(
    const corpus::Collection& collection, std::size_t num_shards,
    const Analyzer& analyzer);

/// Header of a serialized shard set — enough to seek to and load any single
/// shard without reading the others, which is the point: a replica holder
/// only pays I/O for the shards placed on it.
struct ShardSetInfo {
  std::uint32_t version = 0;
  std::uint32_t num_shards = 0;
  std::vector<std::uint64_t> shard_bytes;    ///< serialized size per shard
  std::vector<std::uint64_t> shard_offsets;  ///< absolute stream offsets
  /// Per-shard term statistics for collection selection (QASS v2 files;
  /// empty when loading a v1 artifact, which predates selective search).
  std::vector<ShardTermStats> stats;
};

/// Writes all shards as one artifact (QASS format v2): magic/version
/// header, per-shard byte sizes, a collection-selection statistics section
/// (per-shard term df + size summaries, extracted here at save time), then
/// each shard's own (magic-checked) index serialization. v1 files (no
/// stats section) still load.
void save_index_shards(std::span<const InvertedIndex> shards,
                       std::ostream& out);

/// Reads and validates the shard-set header, leaving the stream positioned
/// at the first shard blob. Fails via QADIST_CHECK on corrupt input.
[[nodiscard]] ShardSetInfo read_shard_set_info(std::istream& in);

/// Loads one shard by seeking to its offset (stream must be seekable).
[[nodiscard]] InvertedIndex load_index_shard(std::istream& in,
                                             const ShardSetInfo& info,
                                             std::size_t shard);

/// Loads every shard of the set (full replication / tooling path).
[[nodiscard]] std::vector<InvertedIndex> load_index_shards(std::istream& in);

void save_index_shards_file(std::span<const InvertedIndex> shards,
                            const std::string& path);
[[nodiscard]] std::vector<InvertedIndex> load_index_shards_file(
    const std::string& path);

}  // namespace qadist::ir
