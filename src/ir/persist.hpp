#pragma once

#include <iosfwd>
#include <string>

#include "corpus/collection.hpp"
#include "corpus/generator.hpp"

namespace qadist::ir {

/// Binary serialization of a document collection. Each cluster node keeps a
/// copy of the collection on its local disk in the paper's deployment;
/// these routines make that a real on-disk artifact for host-mode runs
/// (examples persist the corpus, PR loads sub-collections back).
void save_collection(const corpus::Collection& collection, std::ostream& out);
[[nodiscard]] corpus::Collection load_collection(std::istream& in);

/// File-path convenience wrappers (fail via QADIST_CHECK on I/O errors).
void save_collection_file(const corpus::Collection& collection,
                          const std::string& path);
[[nodiscard]] corpus::Collection load_collection_file(const std::string& path);

/// Serialization of the complete generated world — collection, gazetteer
/// and ground-truth facts — so a deployment (or a later benchmark run) can
/// reload exactly the corpus it was built against without re-generating.
void save_world(const corpus::GeneratedCorpus& world, std::ostream& out);
[[nodiscard]] corpus::GeneratedCorpus load_world(std::istream& in);
void save_world_file(const corpus::GeneratedCorpus& world,
                     const std::string& path);
[[nodiscard]] corpus::GeneratedCorpus load_world_file(const std::string& path);

}  // namespace qadist::ir
