#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qadist::ir {

/// Minimal little-endian binary framing used by all qadist persistence
/// (index files, corpus files). Writers/readers are symmetric; readers
/// validate stream health and fail via QADIST_CHECK on truncation —
/// a corrupt index is not a recoverable condition for an experiment.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_string(std::string_view s);  ///< u32 length + bytes

  /// LEB128 variable-length unsigned integer (1 byte for values < 128).
  /// Index files store delta-encoded postings this way: paragraph-key
  /// deltas and term frequencies are tiny, so varints shrink index files
  /// by several-fold versus fixed-width words.
  void write_varint(std::uint64_t v);

 private:
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::uint64_t read_varint();

 private:
  std::istream& in_;
};

}  // namespace qadist::ir
