#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "corpus/collection.hpp"
#include "ir/analyzer.hpp"

namespace qadist::ir {

/// One postings entry: a term occurs `tf` times in paragraph
/// (`doc`, `paragraph`). Postings are sorted by (doc, paragraph), which is
/// what intersection/union evaluation relies on.
struct Posting {
  corpus::DocId doc = 0;
  std::uint32_t paragraph = 0;
  std::uint32_t tf = 0;

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(doc) << 32) | paragraph;
  }
  friend bool operator==(const Posting&, const Posting&) = default;
};

/// Paragraph-granularity Boolean inverted index over one sub-collection —
/// our stand-in for the ZPrise Boolean IR engine the paper indexes each
/// TREC-9 sub-collection with.
///
/// Terms are analyzer-normalized (lowercase, stemmed, stopped). The index is
/// immutable after build; queries are thread-safe reads, so host-parallel PR
/// partitions can share one instance.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes every paragraph of a sub-collection.
  [[nodiscard]] static InvertedIndex build(const corpus::SubCollection& sub,
                                           const Analyzer& analyzer);

  /// Postings for an (already analyzer-normalized) term; nullptr if absent.
  [[nodiscard]] const std::vector<Posting>* postings(
      std::string_view term) const;

  /// Number of paragraphs containing the term (its postings length).
  [[nodiscard]] std::size_t document_frequency(std::string_view term) const;

  [[nodiscard]] std::size_t term_count() const { return terms_.size(); }
  [[nodiscard]] std::size_t posting_count() const { return posting_count_; }
  [[nodiscard]] std::size_t paragraph_count() const { return paragraph_count_; }

  /// Approximate in-memory footprint; also the serialized size driver.
  [[nodiscard]] std::size_t byte_size() const;

  /// Visits every indexed term with its postings list. Iteration order is
  /// the hash map's (unspecified); callers that need a canonical order
  /// (e.g. stats serialization) must collect and sort. Used by the broker
  /// tier's collection-selection statistics extraction.
  template <typename Fn>
  void for_each_term(Fn&& fn) const {
    for (const auto& [term, slot] : terms_) {
      fn(std::string_view(term), std::span<const Posting>(postings_[slot]));
    }
  }

  /// Binary serialization (little-endian, versioned, magic-checked). The
  /// paper's PR module reads indexes from per-node disks; persistence makes
  /// that a real I/O path in host-mode experiments.
  void save(std::ostream& out) const;
  [[nodiscard]] static InvertedIndex load(std::istream& in);

 private:
  std::unordered_map<std::string, std::uint32_t> terms_;  // term -> slot
  std::vector<std::vector<Posting>> postings_;            // slot -> postings
  std::size_t posting_count_ = 0;
  std::size_t paragraph_count_ = 0;
};

}  // namespace qadist::ir
