#include "ir/shard_stats.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "ir/binary_io.hpp"

namespace qadist::ir {

ShardTermStats extract_term_stats(const InvertedIndex& index) {
  ShardTermStats stats;
  stats.paragraphs = static_cast<std::uint32_t>(index.paragraph_count());
  stats.df.reserve(index.term_count());
  index.for_each_term([&](std::string_view term,
                          std::span<const Posting> postings) {
    stats.df.emplace(std::string(term),
                     static_cast<std::uint32_t>(postings.size()));
    for (const Posting& p : postings) stats.words += p.tf;
  });
  return stats;
}

void save_term_stats(const ShardTermStats& stats, std::ostream& out) {
  BinaryWriter w(out);
  w.write_u32(stats.paragraphs);
  w.write_u64(stats.words);
  w.write_u32(static_cast<std::uint32_t>(stats.df.size()));
  // Canonical byte stream: terms in lexicographic order.
  std::vector<const std::pair<const std::string, std::uint32_t>*> entries;
  entries.reserve(stats.df.size());
  for (const auto& entry : stats.df) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) {
    w.write_string(entry->first);
    w.write_varint(entry->second);
  }
}

ShardTermStats load_term_stats(std::istream& in) {
  BinaryReader r(in);
  ShardTermStats stats;
  stats.paragraphs = r.read_u32();
  stats.words = r.read_u64();
  const std::uint32_t terms = r.read_u32();
  stats.df.reserve(terms);
  std::uint64_t df_sum = 0;
  for (std::uint32_t i = 0; i < terms; ++i) {
    std::string term = r.read_string();
    QADIST_CHECK(!term.empty(), << "corrupt term stats: empty term");
    const std::uint64_t df = r.read_varint();
    QADIST_CHECK(df > 0 && df <= stats.paragraphs,
                 << "corrupt term stats: df " << df << " of "
                 << stats.paragraphs << " paragraphs");
    const bool inserted =
        stats.df.emplace(std::move(term), static_cast<std::uint32_t>(df))
            .second;
    QADIST_CHECK(inserted, << "corrupt term stats: duplicate term");
    df_sum += df;
  }
  QADIST_CHECK(stats.words >= df_sum,
               << "corrupt term stats: word count " << stats.words
               << " below df sum " << df_sum);
  return stats;
}

}  // namespace qadist::ir
