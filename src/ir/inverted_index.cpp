#include "ir/inverted_index.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>

#include "common/check.hpp"
#include "ir/binary_io.hpp"

namespace qadist::ir {

namespace {
constexpr std::uint32_t kIndexMagic = 0x51414958;  // "QAIX"
// Version 2: postings are delta-encoded varints — each entry stores the
// gap between successive (doc, paragraph) keys plus the term frequency,
// all LEB128-encoded. Typical gaps and frequencies are small, so index
// files shrink several-fold versus the fixed-width v1 layout.
constexpr std::uint32_t kIndexVersion = 2;
}  // namespace

InvertedIndex InvertedIndex::build(const corpus::SubCollection& sub,
                                   const Analyzer& analyzer) {
  InvertedIndex index;
  for (corpus::DocId doc = sub.first(); doc < sub.last(); ++doc) {
    const corpus::Document& document = sub.document(doc);
    for (std::uint32_t p = 0; p < document.paragraphs.size(); ++p) {
      ++index.paragraph_count_;
      // Count term frequencies within this paragraph.
      std::map<std::string, std::uint32_t> tf;
      for (auto& term : analyzer.index_terms(document.paragraphs[p])) {
        ++tf[std::move(term)];
      }
      for (const auto& [term, count] : tf) {
        auto [it, inserted] = index.terms_.try_emplace(
            term, static_cast<std::uint32_t>(index.postings_.size()));
        if (inserted) index.postings_.emplace_back();
        index.postings_[it->second].push_back(Posting{doc, p, count});
        ++index.posting_count_;
      }
    }
  }
  // Paragraphs were visited in (doc, paragraph) order, so each postings list
  // is already sorted; assert rather than re-sort.
  for (const auto& list : index.postings_) {
    QADIST_CHECK(std::is_sorted(list.begin(), list.end(),
                                [](const Posting& a, const Posting& b) {
                                  return a.key() < b.key();
                                }));
  }
  return index;
}

const std::vector<Posting>* InvertedIndex::postings(
    std::string_view term) const {
  const auto it = terms_.find(std::string(term));
  if (it == terms_.end()) return nullptr;
  return &postings_[it->second];
}

std::size_t InvertedIndex::document_frequency(std::string_view term) const {
  const auto* list = postings(term);
  return list != nullptr ? list->size() : 0;
}

std::size_t InvertedIndex::byte_size() const {
  std::size_t bytes = 0;
  for (const auto& [term, slot] : terms_) {
    bytes += term.size() + sizeof(std::uint32_t);
    bytes += postings_[slot].size() * sizeof(Posting);
  }
  return bytes;
}

void InvertedIndex::save(std::ostream& out) const {
  BinaryWriter w(out);
  w.write_u32(kIndexMagic);
  w.write_u32(kIndexVersion);
  w.write_u64(paragraph_count_);
  w.write_u32(static_cast<std::uint32_t>(terms_.size()));
  // Emit terms in deterministic (sorted) order so files are reproducible.
  std::vector<const std::string*> ordered;
  ordered.reserve(terms_.size());
  std::vector<std::uint32_t> slots;
  for (const auto& [term, slot] : terms_) {
    ordered.push_back(&term);
    slots.push_back(slot);
  }
  std::vector<std::size_t> perm(ordered.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return *ordered[a] < *ordered[b];
  });
  for (std::size_t i : perm) {
    w.write_string(*ordered[i]);
    const auto& list = postings_[slots[i]];
    w.write_u32(static_cast<std::uint32_t>(list.size()));
    std::uint64_t previous_key = 0;
    for (const Posting& p : list) {
      const std::uint64_t key = p.key();
      w.write_varint(key - previous_key);  // sorted: gaps are non-negative
      w.write_varint(p.tf);
      previous_key = key;
    }
  }
}

InvertedIndex InvertedIndex::load(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kIndexMagic, << "not a qadist index file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kIndexVersion,
               << "unsupported index version " << version);
  InvertedIndex index;
  index.paragraph_count_ = r.read_u64();
  const std::uint32_t term_count = r.read_u32();
  index.postings_.reserve(term_count);
  for (std::uint32_t t = 0; t < term_count; ++t) {
    std::string term = r.read_string();
    const std::uint32_t len = r.read_u32();
    std::vector<Posting> list(len);
    std::uint64_t key = 0;
    for (auto& p : list) {
      key += r.read_varint();
      p.doc = static_cast<corpus::DocId>(key >> 32);
      p.paragraph = static_cast<std::uint32_t>(key & 0xffffffff);
      p.tf = static_cast<std::uint32_t>(r.read_varint());
    }
    index.posting_count_ += list.size();
    index.terms_.emplace(std::move(term),
                         static_cast<std::uint32_t>(index.postings_.size()));
    index.postings_.push_back(std::move(list));
  }
  return index;
}

}  // namespace qadist::ir
