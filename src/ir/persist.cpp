#include "ir/persist.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "ir/binary_io.hpp"

namespace qadist::ir {

namespace {
constexpr std::uint32_t kCollectionMagic = 0x5141434c;  // "QACL"
constexpr std::uint32_t kCollectionVersion = 1;
constexpr std::uint32_t kWorldMagic = 0x51415744;  // "QAWD"
constexpr std::uint32_t kWorldVersion = 1;
constexpr std::uint32_t kShardSetMagic = 0x51415353;  // "QASS"
// v1: header + index blobs. v2 adds a collection-selection statistics
// section (per-shard term df + size summaries) between header and blobs,
// so brokers can score shards without touching any postings. v1 files
// still load (stats stay empty).
constexpr std::uint32_t kShardSetVersionV1 = 1;
constexpr std::uint32_t kShardSetVersion = 2;
}  // namespace

void save_collection(const corpus::Collection& collection, std::ostream& out) {
  BinaryWriter w(out);
  w.write_u32(kCollectionMagic);
  w.write_u32(kCollectionVersion);
  w.write_u32(static_cast<std::uint32_t>(collection.size()));
  for (const auto& doc : collection.documents()) {
    w.write_u32(doc.id);
    w.write_string(doc.title);
    w.write_u32(static_cast<std::uint32_t>(doc.paragraphs.size()));
    for (const auto& p : doc.paragraphs) w.write_string(p);
  }
}

corpus::Collection load_collection(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kCollectionMagic,
               << "not a qadist collection file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kCollectionVersion,
               << "unsupported collection version " << version);
  corpus::Collection collection;
  const std::uint32_t docs = r.read_u32();
  for (std::uint32_t i = 0; i < docs; ++i) {
    corpus::Document doc;
    doc.id = r.read_u32();
    doc.title = r.read_string();
    const std::uint32_t paragraphs = r.read_u32();
    doc.paragraphs.reserve(paragraphs);
    for (std::uint32_t p = 0; p < paragraphs; ++p)
      doc.paragraphs.push_back(r.read_string());
    collection.add(std::move(doc));
  }
  return collection;
}

void save_collection_file(const corpus::Collection& collection,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QADIST_CHECK(out.good(), << "cannot open " << path << " for writing");
  save_collection(collection, out);
  QADIST_CHECK(out.good(), << "write failed for " << path);
}

corpus::Collection load_collection_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QADIST_CHECK(in.good(), << "cannot open " << path);
  return load_collection(in);
}

void save_world(const corpus::GeneratedCorpus& world, std::ostream& out) {
  BinaryWriter w(out);
  w.write_u32(kWorldMagic);
  w.write_u32(kWorldVersion);
  save_collection(world.collection, out);

  const auto entries = world.gazetteer.entries();
  w.write_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [surface, type] : entries) {
    w.write_string(surface);
    w.write_u8(static_cast<std::uint8_t>(type));
  }

  w.write_u32(static_cast<std::uint32_t>(world.facts.size()));
  for (const auto& fact : world.facts) {
    w.write_string(fact.subject);
    w.write_u8(static_cast<std::uint8_t>(fact.relation));
    w.write_string(fact.object);
    w.write_u32(fact.doc);
    w.write_u32(fact.paragraph);
  }
}

corpus::GeneratedCorpus load_world(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kWorldMagic, << "not a qadist world file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kWorldVersion,
               << "unsupported world version " << version);
  corpus::GeneratedCorpus world;
  world.collection = load_collection(in);

  const std::uint32_t entities = r.read_u32();
  for (std::uint32_t i = 0; i < entities; ++i) {
    std::string surface = r.read_string();
    const auto type = static_cast<corpus::EntityType>(r.read_u8());
    QADIST_CHECK(static_cast<int>(type) < corpus::kEntityTypeCount,
                 << "corrupt entity type");
    world.gazetteer.add(surface, type);
  }

  const std::uint32_t facts = r.read_u32();
  world.facts.reserve(facts);
  for (std::uint32_t i = 0; i < facts; ++i) {
    corpus::Fact fact;
    fact.subject = r.read_string();
    const auto relation = r.read_u8();
    QADIST_CHECK(relation < corpus::kRelationCount, << "corrupt relation");
    fact.relation = static_cast<corpus::Relation>(relation);
    fact.object = r.read_string();
    fact.doc = r.read_u32();
    fact.paragraph = r.read_u32();
    world.facts.push_back(std::move(fact));
  }
  return world;
}

void save_world_file(const corpus::GeneratedCorpus& world,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QADIST_CHECK(out.good(), << "cannot open " << path << " for writing");
  save_world(world, out);
  QADIST_CHECK(out.good(), << "write failed for " << path);
}

corpus::GeneratedCorpus load_world_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QADIST_CHECK(in.good(), << "cannot open " << path);
  return load_world(in);
}

std::vector<InvertedIndex> build_shard_indexes(
    const corpus::Collection& collection, std::size_t num_shards,
    const Analyzer& analyzer) {
  QADIST_CHECK(num_shards > 0, << "cannot build zero index shards");
  std::vector<InvertedIndex> shards;
  shards.reserve(num_shards);
  for (const auto& sub : corpus::split_collection(collection, num_shards)) {
    shards.push_back(InvertedIndex::build(sub, analyzer));
  }
  return shards;
}

void save_index_shards(std::span<const InvertedIndex> shards,
                       std::ostream& out) {
  QADIST_CHECK(!shards.empty(), << "cannot save an empty shard set");
  // Serialize each shard first: the header records the blob sizes so a
  // loader can seek straight to any one shard.
  std::vector<std::string> blobs;
  blobs.reserve(shards.size());
  for (const auto& shard : shards) {
    std::ostringstream buf(std::ios::binary);
    shard.save(buf);
    blobs.push_back(std::move(buf).str());
  }
  // The stats section, serialized separately so the header can carry its
  // byte size — a loader that only wants the indexes can skip it in one
  // seek, and a stats-only loader (the broker) never reads a posting.
  std::ostringstream stats_buf(std::ios::binary);
  for (const auto& shard : shards) {
    save_term_stats(extract_term_stats(shard), stats_buf);
  }
  const std::string stats_blob = std::move(stats_buf).str();
  BinaryWriter w(out);
  w.write_u32(kShardSetMagic);
  w.write_u32(kShardSetVersion);
  w.write_u32(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& blob : blobs) w.write_u64(blob.size());
  w.write_u64(stats_blob.size());
  out.write(stats_blob.data(), static_cast<std::streamsize>(stats_blob.size()));
  for (const auto& blob : blobs) {
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
}

ShardSetInfo read_shard_set_info(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kShardSetMagic,
               << "not a qadist shard-set file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kShardSetVersionV1 || version == kShardSetVersion,
               << "unsupported shard-set version " << version);
  ShardSetInfo info;
  info.version = version;
  info.num_shards = r.read_u32();
  QADIST_CHECK(info.num_shards > 0, << "corrupt shard set: zero shards");
  info.shard_bytes.reserve(info.num_shards);
  for (std::uint32_t s = 0; s < info.num_shards; ++s) {
    info.shard_bytes.push_back(r.read_u64());
  }
  if (version >= 2) {
    const std::uint64_t stats_bytes = r.read_u64();
    const auto stats_start = static_cast<std::uint64_t>(in.tellg());
    info.stats.reserve(info.num_shards);
    for (std::uint32_t s = 0; s < info.num_shards; ++s) {
      info.stats.push_back(load_term_stats(in));
    }
    const auto consumed = static_cast<std::uint64_t>(in.tellg()) - stats_start;
    QADIST_CHECK(consumed == stats_bytes,
                 << "corrupt shard set: stats section is " << consumed
                 << " bytes, header says " << stats_bytes);
  }
  // Blobs start right where the header (and stats section) ends; offsets
  // are prefix sums.
  std::uint64_t offset = static_cast<std::uint64_t>(in.tellg());
  info.shard_offsets.reserve(info.num_shards);
  for (std::uint32_t s = 0; s < info.num_shards; ++s) {
    info.shard_offsets.push_back(offset);
    offset += info.shard_bytes[s];
  }
  return info;
}

InvertedIndex load_index_shard(std::istream& in, const ShardSetInfo& info,
                               std::size_t shard) {
  QADIST_CHECK(shard < info.num_shards,
               << "shard " << shard << " out of range ("
               << info.num_shards << " shards)");
  in.seekg(static_cast<std::streamoff>(info.shard_offsets[shard]));
  QADIST_CHECK(in.good(), << "seek failed loading shard " << shard);
  return InvertedIndex::load(in);
}

std::vector<InvertedIndex> load_index_shards(std::istream& in) {
  const ShardSetInfo info = read_shard_set_info(in);
  std::vector<InvertedIndex> shards;
  shards.reserve(info.num_shards);
  for (std::uint32_t s = 0; s < info.num_shards; ++s) {
    shards.push_back(load_index_shard(in, info, s));
  }
  return shards;
}

void save_index_shards_file(std::span<const InvertedIndex> shards,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QADIST_CHECK(out.good(), << "cannot open " << path << " for writing");
  save_index_shards(shards, out);
  QADIST_CHECK(out.good(), << "write failed for " << path);
}

std::vector<InvertedIndex> load_index_shards_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QADIST_CHECK(in.good(), << "cannot open " << path);
  return load_index_shards(in);
}

}  // namespace qadist::ir
