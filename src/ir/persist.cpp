#include "ir/persist.hpp"

#include <fstream>

#include "common/check.hpp"
#include "ir/binary_io.hpp"

namespace qadist::ir {

namespace {
constexpr std::uint32_t kCollectionMagic = 0x5141434c;  // "QACL"
constexpr std::uint32_t kCollectionVersion = 1;
constexpr std::uint32_t kWorldMagic = 0x51415744;  // "QAWD"
constexpr std::uint32_t kWorldVersion = 1;
}  // namespace

void save_collection(const corpus::Collection& collection, std::ostream& out) {
  BinaryWriter w(out);
  w.write_u32(kCollectionMagic);
  w.write_u32(kCollectionVersion);
  w.write_u32(static_cast<std::uint32_t>(collection.size()));
  for (const auto& doc : collection.documents()) {
    w.write_u32(doc.id);
    w.write_string(doc.title);
    w.write_u32(static_cast<std::uint32_t>(doc.paragraphs.size()));
    for (const auto& p : doc.paragraphs) w.write_string(p);
  }
}

corpus::Collection load_collection(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kCollectionMagic,
               << "not a qadist collection file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kCollectionVersion,
               << "unsupported collection version " << version);
  corpus::Collection collection;
  const std::uint32_t docs = r.read_u32();
  for (std::uint32_t i = 0; i < docs; ++i) {
    corpus::Document doc;
    doc.id = r.read_u32();
    doc.title = r.read_string();
    const std::uint32_t paragraphs = r.read_u32();
    doc.paragraphs.reserve(paragraphs);
    for (std::uint32_t p = 0; p < paragraphs; ++p)
      doc.paragraphs.push_back(r.read_string());
    collection.add(std::move(doc));
  }
  return collection;
}

void save_collection_file(const corpus::Collection& collection,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QADIST_CHECK(out.good(), << "cannot open " << path << " for writing");
  save_collection(collection, out);
  QADIST_CHECK(out.good(), << "write failed for " << path);
}

corpus::Collection load_collection_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QADIST_CHECK(in.good(), << "cannot open " << path);
  return load_collection(in);
}

void save_world(const corpus::GeneratedCorpus& world, std::ostream& out) {
  BinaryWriter w(out);
  w.write_u32(kWorldMagic);
  w.write_u32(kWorldVersion);
  save_collection(world.collection, out);

  const auto entries = world.gazetteer.entries();
  w.write_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [surface, type] : entries) {
    w.write_string(surface);
    w.write_u8(static_cast<std::uint8_t>(type));
  }

  w.write_u32(static_cast<std::uint32_t>(world.facts.size()));
  for (const auto& fact : world.facts) {
    w.write_string(fact.subject);
    w.write_u8(static_cast<std::uint8_t>(fact.relation));
    w.write_string(fact.object);
    w.write_u32(fact.doc);
    w.write_u32(fact.paragraph);
  }
}

corpus::GeneratedCorpus load_world(std::istream& in) {
  BinaryReader r(in);
  QADIST_CHECK(r.read_u32() == kWorldMagic, << "not a qadist world file");
  const auto version = r.read_u32();
  QADIST_CHECK(version == kWorldVersion,
               << "unsupported world version " << version);
  corpus::GeneratedCorpus world;
  world.collection = load_collection(in);

  const std::uint32_t entities = r.read_u32();
  for (std::uint32_t i = 0; i < entities; ++i) {
    std::string surface = r.read_string();
    const auto type = static_cast<corpus::EntityType>(r.read_u8());
    QADIST_CHECK(static_cast<int>(type) < corpus::kEntityTypeCount,
                 << "corrupt entity type");
    world.gazetteer.add(surface, type);
  }

  const std::uint32_t facts = r.read_u32();
  world.facts.reserve(facts);
  for (std::uint32_t i = 0; i < facts; ++i) {
    corpus::Fact fact;
    fact.subject = r.read_string();
    const auto relation = r.read_u8();
    QADIST_CHECK(relation < corpus::kRelationCount, << "corrupt relation");
    fact.relation = static_cast<corpus::Relation>(relation);
    fact.object = r.read_string();
    fact.doc = r.read_u32();
    fact.paragraph = r.read_u32();
    world.facts.push_back(std::move(fact));
  }
  return world;
}

void save_world_file(const corpus::GeneratedCorpus& world,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QADIST_CHECK(out.good(), << "cannot open " << path << " for writing");
  save_world(world, out);
  QADIST_CHECK(out.good(), << "write failed for " << path);
}

corpus::GeneratedCorpus load_world_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QADIST_CHECK(in.good(), << "cannot open " << path);
  return load_world(in);
}

}  // namespace qadist::ir
