#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "ir/inverted_index.hpp"

namespace qadist::ir {

/// Per-shard term statistics for collection selection: for each analyzer-
/// normalized term, the number of paragraphs containing it (df), plus the
/// shard-size summaries CORI-style scoring needs (total term occurrences
/// and paragraph count). Extracted from the shard's InvertedIndex at
/// build time and persisted alongside the index blobs in the QASS
/// shard-set format, so a broker can score shards without loading any
/// postings.
struct ShardTermStats {
  std::unordered_map<std::string, std::uint32_t> df;  ///< term -> paragraph df
  std::uint64_t words = 0;      ///< total term occurrences (sum of tf)
  std::uint32_t paragraphs = 0; ///< paragraphs indexed by the shard

  friend bool operator==(const ShardTermStats&,
                         const ShardTermStats&) = default;
};

/// Derives the term statistics of one index shard.
[[nodiscard]] ShardTermStats extract_term_stats(const InvertedIndex& index);

/// Binary (de)serialization used by the QASS v2 shard-set section. Terms
/// are written in lexicographic order so the byte stream is canonical.
/// Loading fails via QADIST_CHECK on truncation or corruption.
void save_term_stats(const ShardTermStats& stats, std::ostream& out);
[[nodiscard]] ShardTermStats load_term_stats(std::istream& in);

}  // namespace qadist::ir
