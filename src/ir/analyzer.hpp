#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qadist::ir {

/// A lexical token with enough surface detail for downstream NER.
struct Token {
  std::string text;          ///< lowercased surface form
  std::uint32_t position;    ///< token index within the input
  bool capitalized = false;  ///< original form started with an uppercase letter
  bool numeric = false;      ///< all digits
};

/// True for closed-class words that carry no retrieval signal ("the", "of",
/// question words, ...). The list mirrors what FALCON's keyword extractor
/// would discard.
[[nodiscard]] bool is_stopword(std::string_view word);

/// Text analysis bundle shared by the indexer, the query side, and the
/// scorers: tokenization, stopping, and a light suffix stemmer. Index terms
/// and query keywords MUST come from the same analyzer or postings won't
/// line up — hence one type owning all three steps.
class Analyzer {
 public:
  /// Splits into tokens: maximal runs of alphanumerics; '$' is its own
  /// token (money amounts); everything else is a separator. Lowercases,
  /// recording the original capitalization flag.
  [[nodiscard]] std::vector<Token> tokenize(std::string_view text) const;

  /// Light suffix stemmer ("-'s", "-ies", "-ing", "-ed", plural "-s").
  /// Deliberately conservative: never stems below 3 characters.
  [[nodiscard]] std::string stem(std::string_view word) const;

  /// Lowercased, stemmed, stopword-free terms for indexing a text.
  [[nodiscard]] std::vector<std::string> index_terms(
      std::string_view text) const;
};

}  // namespace qadist::ir
