#pragma once

#include <span>
#include <string>
#include <vector>

#include "corpus/types.hpp"
#include "ir/inverted_index.hpp"

namespace qadist::ir {

/// A paragraph matched by retrieval, with the number of distinct query
/// keywords it contains — the raw signal paragraph scoring builds on.
struct ParagraphMatch {
  corpus::ParagraphRef ref;
  std::uint32_t keywords_present = 0;
  std::uint32_t total_tf = 0;  ///< summed term frequency over matched terms

  friend bool operator==(const ParagraphMatch&, const ParagraphMatch&) = default;
};

/// Strict Boolean AND: paragraphs containing *all* terms. Uses galloping
/// (exponential-search) intersection ordered shortest-list-first — the
/// classical skippy intersection that keeps conjunctive queries cheap when
/// one term is rare.
[[nodiscard]] std::vector<ParagraphMatch> intersect_all(
    const InvertedIndex& index, std::span<const std::string> terms);

/// Linear k-way merge intersection (reference implementation; also the
/// baseline for the micro-benchmark ablation of galloping vs linear).
[[nodiscard]] std::vector<ParagraphMatch> intersect_all_linear(
    const InvertedIndex& index, std::span<const std::string> terms);

/// Union with per-paragraph match counting: every paragraph containing at
/// least one term, annotated with how many distinct terms it contains.
[[nodiscard]] std::vector<ParagraphMatch> union_count(
    const InvertedIndex& index, std::span<const std::string> terms);

/// The Boolean retrieval policy of the PR module: start from the strict
/// conjunction and progressively relax the required-keyword count until at
/// least `min_paragraphs` paragraphs match (or the requirement reaches one
/// keyword). Mirrors FALCON's keyword relaxation loop.
[[nodiscard]] std::vector<ParagraphMatch> retrieve(
    const InvertedIndex& index, std::span<const std::string> terms,
    std::size_t min_paragraphs);

}  // namespace qadist::ir
