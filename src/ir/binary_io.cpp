#include "ir/binary_io.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace qadist::ir {

void BinaryWriter::write_u8(std::uint8_t v) {
  out_.put(static_cast<char>(v));
}

void BinaryWriter::write_u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_.write(buf, 4);
}

void BinaryWriter::write_u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_.write(buf, 8);
}

void BinaryWriter::write_string(std::string_view s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_.put(static_cast<char>(v));
}

std::uint8_t BinaryReader::read_u8() {
  const int c = in_.get();
  QADIST_CHECK(c != std::char_traits<char>::eof(), << "truncated stream");
  return static_cast<std::uint8_t>(c);
}

std::uint32_t BinaryReader::read_u32() {
  char buf[4];
  in_.read(buf, 4);
  QADIST_CHECK(in_.gcount() == 4, << "truncated stream reading u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  char buf[8];
  in_.read(buf, 8);
  QADIST_CHECK(in_.gcount() == 8, << "truncated stream reading u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in_.get();
    QADIST_CHECK(c != std::char_traits<char>::eof(),
                 << "truncated stream reading varint");
    QADIST_CHECK(shift < 64, << "varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string BinaryReader::read_string() {
  const std::uint32_t len = read_u32();
  std::string s(len, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(len));
  QADIST_CHECK(static_cast<std::uint32_t>(in_.gcount()) == len,
               << "truncated stream reading string of length " << len);
  return s;
}

}  // namespace qadist::ir
