#include "ir/retrieval.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qadist::ir {

namespace {

/// Gathers the postings lists for each term; returns false (empty AND) if
/// any term is absent from the index.
bool gather(const InvertedIndex& index, std::span<const std::string> terms,
            std::vector<const std::vector<Posting>*>& lists) {
  lists.clear();
  for (const auto& term : terms) {
    const auto* p = index.postings(term);
    if (p == nullptr) return false;
    lists.push_back(p);
  }
  return true;
}

/// Galloping lower_bound: exponential probe then binary search. `hint` is
/// the position to start from (monotonically advancing across calls).
std::size_t gallop_to(const std::vector<Posting>& list, std::size_t hint,
                      std::uint64_t key) {
  std::size_t lo = hint;
  std::size_t step = 1;
  while (lo + step < list.size() && list[lo + step].key() < key) {
    lo += step;
    step <<= 1;
  }
  const std::size_t hi = std::min(lo + step + 1, list.size());
  const auto it = std::lower_bound(
      list.begin() + static_cast<std::ptrdiff_t>(lo),
      list.begin() + static_cast<std::ptrdiff_t>(hi), key,
      [](const Posting& p, std::uint64_t k) { return p.key() < k; });
  return static_cast<std::size_t>(it - list.begin());
}

}  // namespace

std::vector<ParagraphMatch> intersect_all(const InvertedIndex& index,
                                          std::span<const std::string> terms) {
  std::vector<ParagraphMatch> out;
  if (terms.empty()) return out;
  std::vector<const std::vector<Posting>*> lists;
  if (!gather(index, terms, lists)) return out;

  // Drive from the shortest list; gallop the others.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  const auto& pivot = *lists.front();
  std::vector<std::size_t> cursors(lists.size(), 0);

  for (const Posting& candidate : pivot) {
    const std::uint64_t key = candidate.key();
    std::uint32_t tf = candidate.tf;
    bool in_all = true;
    for (std::size_t l = 1; l < lists.size(); ++l) {
      auto& cur = cursors[l];
      cur = gallop_to(*lists[l], cur, key);
      if (cur >= lists[l]->size() || (*lists[l])[cur].key() != key) {
        in_all = false;
        break;
      }
      tf += (*lists[l])[cur].tf;
    }
    if (in_all) {
      out.push_back(ParagraphMatch{
          corpus::ParagraphRef{candidate.doc, candidate.paragraph},
          static_cast<std::uint32_t>(lists.size()), tf});
    }
  }
  return out;
}

std::vector<ParagraphMatch> intersect_all_linear(
    const InvertedIndex& index, std::span<const std::string> terms) {
  std::vector<ParagraphMatch> out;
  if (terms.empty()) return out;
  std::vector<const std::vector<Posting>*> lists;
  if (!gather(index, terms, lists)) return out;

  std::vector<std::size_t> cursors(lists.size(), 0);
  for (;;) {
    // Find the max current key; advance everyone to it.
    std::uint64_t max_key = 0;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      if (cursors[l] >= lists[l]->size()) return out;
      max_key = std::max(max_key, (*lists[l])[cursors[l]].key());
    }
    bool aligned = true;
    std::uint32_t tf = 0;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      auto& cur = cursors[l];
      while (cur < lists[l]->size() && (*lists[l])[cur].key() < max_key) ++cur;
      if (cur >= lists[l]->size()) return out;
      if ((*lists[l])[cur].key() != max_key) {
        aligned = false;
      } else {
        tf += (*lists[l])[cur].tf;
      }
    }
    if (aligned) {
      const Posting& p = (*lists[0])[cursors[0]];
      out.push_back(ParagraphMatch{corpus::ParagraphRef{p.doc, p.paragraph},
                                   static_cast<std::uint32_t>(lists.size()),
                                   tf});
      for (auto& cur : cursors) ++cur;
    }
  }
}

std::vector<ParagraphMatch> union_count(const InvertedIndex& index,
                                        std::span<const std::string> terms) {
  // k-way merge over sorted postings, counting distinct matched terms.
  struct Cursor {
    const std::vector<Posting>* list;
    std::size_t pos;
  };
  std::vector<Cursor> cursors;
  for (const auto& term : terms) {
    const auto* p = index.postings(term);
    if (p != nullptr && !p->empty()) cursors.push_back(Cursor{p, 0});
  }
  std::vector<ParagraphMatch> out;
  while (!cursors.empty()) {
    std::uint64_t min_key = ~std::uint64_t{0};
    for (const auto& c : cursors)
      min_key = std::min(min_key, (*c.list)[c.pos].key());
    ParagraphMatch match;
    match.ref = corpus::ParagraphRef{
        static_cast<corpus::DocId>(min_key >> 32),
        static_cast<std::uint32_t>(min_key & 0xffffffff)};
    for (auto it = cursors.begin(); it != cursors.end();) {
      if ((*it->list)[it->pos].key() == min_key) {
        ++match.keywords_present;
        match.total_tf += (*it->list)[it->pos].tf;
        if (++it->pos >= it->list->size()) {
          it = cursors.erase(it);
          continue;
        }
      }
      ++it;
    }
    out.push_back(match);
  }
  return out;
}

std::vector<ParagraphMatch> retrieve(const InvertedIndex& index,
                                     std::span<const std::string> terms,
                                     std::size_t min_paragraphs) {
  if (terms.empty()) return {};
  // One union pass gives every relaxation level at once; then lower the
  // required distinct-keyword count until enough paragraphs qualify.
  std::vector<ParagraphMatch> all = union_count(index, terms);
  for (std::uint32_t required = static_cast<std::uint32_t>(terms.size());
       required >= 1; --required) {
    std::vector<ParagraphMatch> selected;
    for (const auto& m : all) {
      if (m.keywords_present >= required) selected.push_back(m);
    }
    if (selected.size() >= min_paragraphs || required == 1) return selected;
  }
  return {};
}

}  // namespace qadist::ir
