#include "ir/analyzer.hpp"

#include <cctype>
#include <unordered_set>

namespace qadist::ir {

bool is_stopword(std::string_view word) {
  static const std::unordered_set<std::string_view> kStopwords = {
      "a",    "an",    "and",  "are",  "as",    "at",    "be",   "by",
      "did",  "do",    "does", "for",  "from",  "had",   "has",  "have",
      "how",  "in",    "is",   "it",   "its",   "many",  "much", "of",
      "on",   "or",    "that", "the",  "their", "there", "this", "to",
      "was",  "were",  "what", "when", "where", "which", "who",  "whom",
      "why",  "will",  "with"};
  return kStopwords.contains(word);
}

std::vector<Token> Analyzer::tokenize(std::string_view text) const {
  std::vector<Token> tokens;
  std::uint32_t position = 0;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (c == '$') {
      tokens.push_back(Token{"$", position++, false, false});
      ++i;
      continue;
    }
    if (!std::isalnum(c)) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    bool capitalized = std::isupper(c) != 0;
    bool numeric = true;
    while (i < n && std::isalnum(static_cast<unsigned char>(text[i]))) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) numeric = false;
      ++i;
    }
    std::string lowered;
    lowered.reserve(i - start);
    for (std::size_t k = start; k < i; ++k) {
      lowered.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[k]))));
    }
    tokens.push_back(Token{std::move(lowered), position++, capitalized, numeric});
  }
  return tokens;
}

std::string Analyzer::stem(std::string_view word) const {
  std::string w(word);
  const auto ends_with = [&](std::string_view suffix) {
    return w.size() >= suffix.size() &&
           std::string_view(w).substr(w.size() - suffix.size()) == suffix;
  };
  const auto chop = [&](std::size_t n) { w.resize(w.size() - n); };

  if (w.size() > 4 && ends_with("ies")) {
    chop(3);
    w += 'y';
  } else if (w.size() > 5 && ends_with("ing")) {
    chop(3);
  } else if (w.size() > 4 && ends_with("ed")) {
    chop(2);
  } else if (w.size() > 4 && (ends_with("sses") || ends_with("xes") ||
                              ends_with("zes") || ends_with("ches") ||
                              ends_with("shes"))) {
    // Sibilant plurals take -es ("churches" -> "church"); a bare -es rule
    // would over-chop regular plurals like "lighthouses".
    chop(2);
  } else if (w.size() > 3 && ends_with("s") && !ends_with("ss")) {
    chop(1);
  }
  return w;
}

std::vector<std::string> Analyzer::index_terms(std::string_view text) const {
  std::vector<std::string> terms;
  for (const Token& token : tokenize(text)) {
    if (is_stopword(token.text)) continue;
    terms.push_back(token.numeric ? token.text : stem(token.text));
  }
  return terms;
}

}  // namespace qadist::ir
