#pragma once

#include <span>
#include <string_view>

#include "cluster/metrics.hpp"
#include "cluster/plan.hpp"
#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "workload/arrival.hpp"

namespace qadist::workload {

/// Which submit protocol a RunSpec drives.
enum class WorkloadShape {
  kOverload,  ///< closed-loop high-load protocol (paper Sec. 6.1)
  kSerial,    ///< one-at-a-time low-load protocol (paper Sec. 6.2)
  kOpenLoop,  ///< seeded open-loop arrival process (extension)
};

[[nodiscard]] std::string_view to_string(WorkloadShape shape);

/// One experiment, fully described: the workload shape plus the
/// shape-specific parameters (question counts, seeds, arrival process).
/// Exactly one of the three sub-configs is read, selected by `shape`; the
/// others keep their defaults and are ignored. Everything about the
/// cluster itself (nodes, policy, admission, faults, cfg.tail) stays in
/// cluster::SystemConfig — a RunSpec describes the *traffic*, not the
/// system under test.
struct RunSpec {
  WorkloadShape shape = WorkloadShape::kOverload;
  cluster::OverloadWorkload overload;   ///< read when shape == kOverload
  cluster::SerialWorkload serial;       ///< read when shape == kSerial
  ArrivalProcessConfig open_loop;       ///< read when shape == kOpenLoop
};

/// What one driven run produced.
struct RunResult {
  std::size_t submitted = 0;  ///< questions handed to System::submit
  cluster::Metrics metrics;   ///< end-of-run registry snapshot
};

/// The front door for driving a System through a workload. The three
/// legacy protocols (cluster::submit_overload, cluster::submit_serial,
/// submit_stream over arrival_stream) are one API here: build a Driver
/// over the system and its plan set, describe the traffic in a RunSpec,
/// and run(). The pick sequences and arrival instants are bit-identical
/// to the legacy free functions at the same parameters — those functions
/// are now thin wrappers over this class, kept for compatibility.
class Driver {
 public:
  Driver(cluster::System& system,
         std::span<const cluster::QuestionPlan> plans)
      : system_(system), plans_(plans) {}

  /// Submits the spec's question stream against the (not yet running)
  /// system and returns how many questions were submitted. Split from
  /// run() so callers can attach more simulation processes, prewarm
  /// caches, or drive several specs into one run.
  ///
  /// Validation (QADIST_CHECK, i.e. a panic with a clear message — mutated
  /// or hand-edited specs must fail loudly, not no-op):
  ///   * rates and factors must be finite and positive (NaN and infinity
  ///     are rejected, not just non-positive values);
  ///   * zero-length runs are rejected: a serial or open-loop spec must
  ///     submit at least one question;
  ///   * every scripted fault in the system's config — crash, gray window,
  ///     partition — must start within the submitted stream's horizon plus
  ///     a drain allowance (see drain_allowance); an event scheduled past
  ///     that can never influence the run it was scripted for.
  std::size_t submit(const RunSpec& spec);

  /// How long after the last arrival a scripted fault may still start and
  /// plausibly matter: generous (the larger of 60 s and the stream length
  /// itself, covering overloaded queues that drain long past the last
  /// arrival) but finite, so a fault at t=1e9 against a 600 s stream is an
  /// error instead of a silent no-op.
  [[nodiscard]] static Seconds drain_allowance(Seconds last_arrival) {
    return last_arrival > 60.0 ? last_arrival : 60.0;
  }

  /// submit() + System::run(): one whole experiment.
  RunResult run(const RunSpec& spec);

 private:
  cluster::System& system_;
  std::span<const cluster::QuestionPlan> plans_;
};

}  // namespace qadist::workload
