#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/plan.hpp"
#include "cluster/system.hpp"
#include "common/units.hpp"

namespace qadist::workload {

/// Open-loop arrival processes (extension). The paper's Sec. 6.1 protocol
/// is closed-loop: a fixed question set paced against the system's own
/// service rate. Production traffic is open-loop — arrivals do not wait
/// for the system — so pushing past saturation needs a generator whose
/// rate is set by the world, not the cluster. Each shape below is a
/// deterministic seeded process emitting a (plan, arrival_time) stream;
/// the same config yields the same stream for every policy under test.
enum class ArrivalShape {
  kPoisson,     ///< homogeneous Poisson at rate_qps
  kMmpp,        ///< 2-state Markov-modulated Poisson (bursty)
  kDiurnal,     ///< sinusoidal rate curve, mean rate_qps
  kFlashCrowd,  ///< rate_qps baseline with one multiplied window
};

[[nodiscard]] std::string_view to_string(ArrivalShape shape);

/// Deterministic open-loop arrival stream description. `rate_qps` is the
/// long-run mean arrival rate for every shape except kFlashCrowd, where it
/// is the baseline outside the flash window.
struct ArrivalProcessConfig {
  ArrivalShape shape = ArrivalShape::kPoisson;
  double rate_qps = 1.0;
  std::size_t count = 100;  ///< arrivals to emit
  std::uint64_t seed = 1;

  /// kMmpp: dwell times are exponential with these means; the burst state
  /// arrives `burst_rate_multiplier` times faster than the calm state, and
  /// the calm rate is solved so the long-run mean stays rate_qps.
  double burst_rate_multiplier = 4.0;
  Seconds mean_burst_seconds = 10.0;
  Seconds mean_calm_seconds = 30.0;

  /// kDiurnal: rate(t) = rate_qps · (1 + amplitude · sin(2π t / period)).
  Seconds diurnal_period = 600.0;
  double diurnal_amplitude = 0.8;  ///< in [0, 1)

  /// kFlashCrowd: rate is rate_qps · flash_multiplier inside
  /// [flash_at, flash_at + flash_duration), rate_qps elsewhere.
  Seconds flash_at = 60.0;
  Seconds flash_duration = 30.0;
  double flash_multiplier = 8.0;

  /// Plan selection, decorrelated from the arrival-time stream (same
  /// semantics as OverloadWorkload: 0 = deterministic scan; > 0 draws
  /// Zipf-skewed repeats over `distinct_questions` plans).
  double repeat_exponent = 0.0;
  std::size_t distinct_questions = 0;
};

/// One emitted question arrival.
struct Arrival {
  std::size_t plan_index = 0;
  Seconds at = 0.0;
};

/// The arrival instants alone (ascending, starting after t=0). Pure in the
/// config: the same seed gives the same times on every call.
[[nodiscard]] std::vector<Seconds> arrival_times(
    const ArrivalProcessConfig& config);

/// The full (plan, arrival_time) stream over `plan_count` plans. The plan
/// picks come from overload_pick_sequence's generator, so closed-loop and
/// open-loop experiments share one repetition model.
[[nodiscard]] std::vector<Arrival> arrival_stream(
    const ArrivalProcessConfig& config, std::size_t plan_count);

/// Submits a stream against a constructed (not yet running) system.
/// This is the open-loop primitive workload::Driver builds on; prefer the
/// Driver (RunSpec shape kOpenLoop) unless you need to submit a stream
/// you generated or edited yourself.
void submit_stream(cluster::System& system,
                   std::span<const cluster::QuestionPlan> plans,
                   std::span<const Arrival> stream);

/// Peak-to-mean arrival-rate ratio of the shape — the burst headroom a
/// capacity plan must absorb (1.0 for Poisson).
[[nodiscard]] double peak_to_mean(const ArrivalProcessConfig& config);

/// Squared coefficient of variation of the interarrival times. Exactly 1
/// for Poisson; for modulated shapes it is measured on a deterministic
/// sample of the configured process (seeded by config.seed), which is what
/// the capacity planner feeds its burstiness correction.
[[nodiscard]] double interarrival_cv2(const ArrivalProcessConfig& config);

}  // namespace qadist::workload
