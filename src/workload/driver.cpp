#include "workload/driver.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace qadist::workload {

std::string_view to_string(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kOverload:
      return "overload";
    case WorkloadShape::kSerial:
      return "serial";
    case WorkloadShape::kOpenLoop:
      return "open-loop";
  }
  QADIST_UNREACHABLE("bad WorkloadShape");
}

namespace {

/// Result of one spec submission: how many questions went in and when the
/// last one arrives (the stream horizon the fault-schedule check needs).
struct Submitted {
  std::size_t count = 0;
  Seconds last_arrival = 0.0;
};

bool finite_positive(double value) {
  return std::isfinite(value) && value > 0.0;
}

/// High-load protocol (paper Sec. 6.1). The arrival-gap RNG and the pick
/// sequence are exactly the legacy submit_overload streams: gaps uniform
/// in [0, 2g] from Rng(seed), picks from overload_pick_sequence.
Submitted submit_overload_spec(cluster::System& system,
                               std::span<const cluster::QuestionPlan> plans,
                               const cluster::OverloadWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(finite_positive(workload.overload_factor),
               << "overload workload: overload_factor must be finite and "
                  "positive, got "
               << workload.overload_factor);
  QADIST_CHECK(std::isfinite(workload.repeat_exponent) &&
                   workload.repeat_exponent >= 0.0,
               << "overload workload: repeat_exponent must be finite and "
                  ">= 0, got "
               << workload.repeat_exponent);
  const std::size_t nodes = system.config().nodes;
  const std::size_t count =
      workload.count != 0 ? workload.count : 8 * nodes;
  const double mean_service =
      cluster::mean_service_seconds(plans, workload.reference_disk);
  // An all-zero-work plan set would make max_gap 0 and silently submit
  // every question at t=0 — an infinite overload factor, not the protocol
  // the caller asked for.
  QADIST_CHECK(mean_service > 0.0,
               << "overload workload: plan set has zero mean service time; "
                  "arrival gaps would all collapse to t=0");
  // Mean gap g = service / (overload · N)  =>  gaps uniform in [0, 2g].
  const double max_gap = 2.0 * mean_service /
                         (workload.overload_factor *
                          static_cast<double>(nodes));
  Rng arrivals(workload.seed);
  Seconds at = 0.0;
  Submitted out;
  for (const std::size_t pick :
       cluster::overload_pick_sequence(workload, plans.size(), count)) {
    system.submit(plans[pick], at);
    out.last_arrival = at;
    at += arrivals.uniform(0.0, max_gap);
  }
  out.count = count;
  return out;
}

/// Low-load protocol (paper Sec. 6.2): long fixed gaps, strided picks.
Submitted submit_serial_spec(cluster::System& system,
                             std::span<const cluster::QuestionPlan> plans,
                             const cluster::SerialWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(workload.count >= 1,
               << "serial workload: count must be >= 1 — a zero-length run "
                  "submits nothing and measures nothing");
  QADIST_CHECK(workload.stride >= 1);
  const double gap =
      10.0 * cluster::mean_service_seconds(plans, workload.reference_disk);
  Seconds at = 0.0;
  Submitted out;
  for (std::size_t i = 0; i < workload.count; ++i) {
    const std::size_t pick =
        (workload.offset + i * workload.stride) % plans.size();
    system.submit(plans[pick], at);
    out.last_arrival = at;
    at += gap;
  }
  out.count = workload.count;
  return out;
}

/// Open-loop arrival process. arrival_times() enforces its own parameter
/// invariants, but with `> 0` comparisons that a NaN fails without saying
/// why — name the rejected value here so mutated specs die legibly.
Submitted submit_open_loop_spec(cluster::System& system,
                                std::span<const cluster::QuestionPlan> plans,
                                const ArrivalProcessConfig& config) {
  QADIST_CHECK(finite_positive(config.rate_qps),
               << "open-loop workload: rate_qps must be finite and "
                  "positive, got "
               << config.rate_qps);
  QADIST_CHECK(config.count >= 1,
               << "open-loop workload: count must be >= 1 — a zero-length "
                  "run submits nothing and measures nothing");
  QADIST_CHECK(std::isfinite(config.repeat_exponent) &&
                   config.repeat_exponent >= 0.0,
               << "open-loop workload: repeat_exponent must be finite and "
                  ">= 0, got "
               << config.repeat_exponent);
  const auto stream = arrival_stream(config, plans.size());
  submit_stream(system, plans, stream);
  Submitted out;
  out.count = stream.size();
  out.last_arrival = stream.empty() ? 0.0 : stream.back().at;
  return out;
}

/// Every scripted fault in the system's config must be able to influence
/// the run: an event starting past the stream horizon plus the drain
/// allowance would fire on an idle, fully drained cluster — always a spec
/// bug (typically a mutated schedule that outlived a shortened workload),
/// never an experiment.
void check_fault_horizon(const cluster::System& system, Seconds last_arrival) {
  const Seconds limit = last_arrival + Driver::drain_allowance(last_arrival);
  const cluster::SystemConfig& config = system.config();
  for (const cluster::FaultEvent& crash : config.faults.crashes) {
    QADIST_CHECK(crash.at <= limit,
                 << "scripted crash of node " << crash.node << " at t="
                 << crash.at << "s starts after the stream horizon ("
                 << last_arrival << "s) plus drain allowance — it can never "
                 << "affect this run");
  }
  for (const simnet::GrayFaultEvent& event : config.gray.events) {
    QADIST_CHECK(event.at <= limit,
                 << "gray window on node " << event.node << " at t="
                 << event.at << "s starts after the stream horizon ("
                 << last_arrival << "s) plus drain allowance — it can never "
                 << "affect this run");
  }
  for (const simnet::PartitionWindow& window : config.net.faults.partitions) {
    QADIST_CHECK(window.from <= limit,
                 << "partition window at t=" << window.from
                 << "s starts after the stream horizon (" << last_arrival
                 << "s) plus drain allowance — it can never affect this run");
  }
}

}  // namespace

std::size_t Driver::submit(const RunSpec& spec) {
  Submitted out;
  switch (spec.shape) {
    case WorkloadShape::kOverload:
      out = submit_overload_spec(system_, plans_, spec.overload);
      break;
    case WorkloadShape::kSerial:
      out = submit_serial_spec(system_, plans_, spec.serial);
      break;
    case WorkloadShape::kOpenLoop:
      out = submit_open_loop_spec(system_, plans_, spec.open_loop);
      break;
  }
  check_fault_horizon(system_, out.last_arrival);
  return out.count;
}

RunResult Driver::run(const RunSpec& spec) {
  RunResult out;
  out.submitted = submit(spec);
  out.metrics = system_.run();
  return out;
}

}  // namespace qadist::workload
