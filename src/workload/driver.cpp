#include "workload/driver.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace qadist::workload {

std::string_view to_string(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kOverload:
      return "overload";
    case WorkloadShape::kSerial:
      return "serial";
    case WorkloadShape::kOpenLoop:
      return "open-loop";
  }
  QADIST_UNREACHABLE("bad WorkloadShape");
}

namespace {

/// High-load protocol (paper Sec. 6.1). The arrival-gap RNG and the pick
/// sequence are exactly the legacy submit_overload streams: gaps uniform
/// in [0, 2g] from Rng(seed), picks from overload_pick_sequence.
std::size_t submit_overload_spec(cluster::System& system,
                                 std::span<const cluster::QuestionPlan> plans,
                                 const cluster::OverloadWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(workload.overload_factor > 0.0);
  const std::size_t nodes = system.config().nodes;
  const std::size_t count =
      workload.count != 0 ? workload.count : 8 * nodes;
  const double mean_service =
      cluster::mean_service_seconds(plans, workload.reference_disk);
  // An all-zero-work plan set would make max_gap 0 and silently submit
  // every question at t=0 — an infinite overload factor, not the protocol
  // the caller asked for.
  QADIST_CHECK(mean_service > 0.0,
               << "overload workload: plan set has zero mean service time; "
                  "arrival gaps would all collapse to t=0");
  // Mean gap g = service / (overload · N)  =>  gaps uniform in [0, 2g].
  const double max_gap = 2.0 * mean_service /
                         (workload.overload_factor *
                          static_cast<double>(nodes));
  Rng arrivals(workload.seed);
  Seconds at = 0.0;
  for (const std::size_t pick :
       cluster::overload_pick_sequence(workload, plans.size(), count)) {
    system.submit(plans[pick], at);
    at += arrivals.uniform(0.0, max_gap);
  }
  return count;
}

/// Low-load protocol (paper Sec. 6.2): long fixed gaps, strided picks.
std::size_t submit_serial_spec(cluster::System& system,
                               std::span<const cluster::QuestionPlan> plans,
                               const cluster::SerialWorkload& workload) {
  QADIST_CHECK(!plans.empty());
  QADIST_CHECK(workload.stride >= 1);
  const double gap =
      10.0 * cluster::mean_service_seconds(plans, workload.reference_disk);
  Seconds at = 0.0;
  for (std::size_t i = 0; i < workload.count; ++i) {
    const std::size_t pick =
        (workload.offset + i * workload.stride) % plans.size();
    system.submit(plans[pick], at);
    at += gap;
  }
  return workload.count;
}

}  // namespace

std::size_t Driver::submit(const RunSpec& spec) {
  switch (spec.shape) {
    case WorkloadShape::kOverload:
      return submit_overload_spec(system_, plans_, spec.overload);
    case WorkloadShape::kSerial:
      return submit_serial_spec(system_, plans_, spec.serial);
    case WorkloadShape::kOpenLoop: {
      const auto stream = arrival_stream(spec.open_loop, plans_.size());
      submit_stream(system_, plans_, stream);
      return stream.size();
    }
  }
  QADIST_UNREACHABLE("bad WorkloadShape");
}

RunResult Driver::run(const RunSpec& spec) {
  RunResult out;
  out.submitted = submit(spec);
  out.metrics = system_.run();
  return out;
}

}  // namespace qadist::workload
