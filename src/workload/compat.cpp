// Compatibility shims: the legacy per-protocol submit functions, kept so
// existing call sites (and their bit-exact pick sequences) survive the
// consolidation behind workload::Driver. Each wrapper builds the RunSpec
// the protocol corresponds to and delegates; the definitions live in the
// workload library because cluster cannot link against it (the dependency
// points the other way).
#include "cluster/workload.hpp"
#include "workload/driver.hpp"

namespace qadist::cluster {

void submit_overload(System& system, std::span<const QuestionPlan> plans,
                     const OverloadWorkload& workload) {
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kOverload;
  spec.overload = workload;
  workload::Driver(system, plans).submit(spec);
}

void submit_serial(System& system, std::span<const QuestionPlan> plans,
                   const SerialWorkload& workload) {
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kSerial;
  spec.serial = workload;
  workload::Driver(system, plans).submit(spec);
}

}  // namespace qadist::cluster
