#include "workload/arrival.hpp"

#include <cmath>

#include "cluster/workload.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace qadist::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925287;

/// Instantaneous rate lambda(t) of the time-varying shapes.
double instantaneous_rate(const ArrivalProcessConfig& c, Seconds t) {
  switch (c.shape) {
    case ArrivalShape::kDiurnal:
      return c.rate_qps * (1.0 + c.diurnal_amplitude *
                                     std::sin(kTwoPi * t / c.diurnal_period));
    case ArrivalShape::kFlashCrowd:
      return (t >= c.flash_at && t < c.flash_at + c.flash_duration)
                 ? c.rate_qps * c.flash_multiplier
                 : c.rate_qps;
    case ArrivalShape::kPoisson:
    case ArrivalShape::kMmpp:
      return c.rate_qps;
  }
  QADIST_UNREACHABLE("bad ArrivalShape");
}

/// Lewis-Shedler thinning: candidates from a homogeneous Poisson process
/// at the shape's peak rate, each kept with probability lambda(t)/peak.
/// Exact for any bounded lambda(t), and deterministic in the seed.
std::vector<Seconds> thinned_times(const ArrivalProcessConfig& c,
                                   double peak_rate) {
  Rng rng(c.seed);
  std::vector<Seconds> out;
  out.reserve(c.count);
  Seconds t = 0.0;
  while (out.size() < c.count) {
    t += rng.exponential(peak_rate);
    if (rng.uniform01() * peak_rate <= instantaneous_rate(c, t)) {
      out.push_back(t);
    }
  }
  return out;
}

/// 2-state MMPP: exponential dwell in each state, Poisson arrivals at the
/// state's rate. The calm rate is solved so the long-run mean is rate_qps:
/// with burst fraction f = E[burst]/(E[burst]+E[calm]) and multiplier m,
/// mean = calm·(1-f) + m·calm·f  =>  calm = rate_qps / (1 - f + m·f).
std::vector<Seconds> mmpp_times(const ArrivalProcessConfig& c) {
  const double f =
      c.mean_burst_seconds / (c.mean_burst_seconds + c.mean_calm_seconds);
  const double calm_rate =
      c.rate_qps / (1.0 - f + c.burst_rate_multiplier * f);
  const double burst_rate = calm_rate * c.burst_rate_multiplier;
  Rng rng(c.seed);
  std::vector<Seconds> out;
  out.reserve(c.count);
  Seconds t = 0.0;
  bool burst = false;  // the stream opens calm
  Seconds switch_at = rng.exponential(1.0 / c.mean_calm_seconds);
  while (out.size() < c.count) {
    const Seconds gap =
        rng.exponential(burst ? burst_rate : calm_rate);
    if (t + gap < switch_at) {
      t += gap;
      out.push_back(t);
      continue;
    }
    // The pending arrival draw is memoryless, so it restarts cleanly in
    // the new state at the switch instant.
    t = switch_at;
    burst = !burst;
    switch_at =
        t + rng.exponential(1.0 / (burst ? c.mean_burst_seconds
                                         : c.mean_calm_seconds));
  }
  return out;
}

void validate(const ArrivalProcessConfig& c) {
  QADIST_CHECK(c.rate_qps > 0.0, << "arrival rate must be positive");
  QADIST_CHECK(c.count > 0, << "arrival stream must have at least one event");
  switch (c.shape) {
    case ArrivalShape::kMmpp:
      QADIST_CHECK(c.burst_rate_multiplier >= 1.0);
      QADIST_CHECK(c.mean_burst_seconds > 0.0 && c.mean_calm_seconds > 0.0);
      break;
    case ArrivalShape::kDiurnal:
      QADIST_CHECK(c.diurnal_amplitude >= 0.0 && c.diurnal_amplitude < 1.0,
                   << "diurnal amplitude must stay in [0,1) so the rate "
                      "never goes negative");
      QADIST_CHECK(c.diurnal_period > 0.0);
      break;
    case ArrivalShape::kFlashCrowd:
      QADIST_CHECK(c.flash_multiplier >= 1.0);
      QADIST_CHECK(c.flash_at >= 0.0 && c.flash_duration > 0.0);
      break;
    case ArrivalShape::kPoisson:
      break;
  }
}

}  // namespace

std::string_view to_string(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kPoisson:
      return "poisson";
    case ArrivalShape::kMmpp:
      return "mmpp";
    case ArrivalShape::kDiurnal:
      return "diurnal";
    case ArrivalShape::kFlashCrowd:
      return "flash_crowd";
  }
  QADIST_UNREACHABLE("bad ArrivalShape");
}

std::vector<Seconds> arrival_times(const ArrivalProcessConfig& config) {
  validate(config);
  switch (config.shape) {
    case ArrivalShape::kPoisson:
      return thinned_times(config, config.rate_qps);
    case ArrivalShape::kMmpp:
      return mmpp_times(config);
    case ArrivalShape::kDiurnal:
      return thinned_times(config,
                           config.rate_qps * (1.0 + config.diurnal_amplitude));
    case ArrivalShape::kFlashCrowd:
      return thinned_times(config,
                           config.rate_qps * config.flash_multiplier);
  }
  QADIST_UNREACHABLE("bad ArrivalShape");
}

std::vector<Arrival> arrival_stream(const ArrivalProcessConfig& config,
                                    std::size_t plan_count) {
  QADIST_CHECK(plan_count > 0);
  const auto times = arrival_times(config);
  // Plan picks ride the overload generator so closed-loop and open-loop
  // experiments share one repetition model (and its decorrelation from
  // the timing stream).
  cluster::OverloadWorkload picker;
  picker.seed = config.seed;
  picker.repeat_exponent = config.repeat_exponent;
  picker.distinct_questions = config.distinct_questions;
  const auto picks =
      cluster::overload_pick_sequence(picker, plan_count, times.size());
  std::vector<Arrival> out;
  out.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    out.push_back(Arrival{picks[i], times[i]});
  }
  return out;
}

void submit_stream(cluster::System& system,
                   std::span<const cluster::QuestionPlan> plans,
                   std::span<const Arrival> stream) {
  for (const Arrival& a : stream) {
    QADIST_CHECK(a.plan_index < plans.size());
    system.submit(plans[a.plan_index], a.at);
  }
}

double peak_to_mean(const ArrivalProcessConfig& config) {
  validate(config);
  switch (config.shape) {
    case ArrivalShape::kPoisson:
      return 1.0;
    case ArrivalShape::kMmpp: {
      const double f = config.mean_burst_seconds /
                       (config.mean_burst_seconds + config.mean_calm_seconds);
      const double m = config.burst_rate_multiplier;
      return m / (1.0 - f + m * f);
    }
    case ArrivalShape::kDiurnal:
      return 1.0 + config.diurnal_amplitude;
    case ArrivalShape::kFlashCrowd:
      return config.flash_multiplier;
  }
  QADIST_UNREACHABLE("bad ArrivalShape");
}

double interarrival_cv2(const ArrivalProcessConfig& config) {
  if (config.shape == ArrivalShape::kPoisson) return 1.0;
  // Measured on a deterministic probe stream long enough that the estimate
  // is stable yet independent of the experiment's own count (smoke runs
  // use tiny counts; the planner should not see a different burstiness).
  ArrivalProcessConfig probe = config;
  probe.count = 4096;
  const auto times = arrival_times(probe);
  RunningStats gaps;
  Seconds prev = 0.0;
  for (const Seconds t : times) {
    gaps.add(t - prev);
    prev = t;
  }
  const double mean = gaps.mean();
  return mean > 0.0 ? gaps.variance() / (mean * mean) : 1.0;
}

}  // namespace qadist::workload
