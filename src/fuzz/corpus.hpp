#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz/scenario.hpp"

namespace qadist::fuzz {

/// One surviving scenario in the corpus, with the measurements that earned
/// its slot.
struct CorpusEntry {
  Scenario scenario;
  double fitness = 0.0;
  std::uint64_t coverage = 0;  ///< coverage_signature of its run
  double p99 = 0.0;
  double degraded_fraction = 0.0;
  std::size_t discovered_at = 0;  ///< fuzz iteration that found it
};

/// The survivor pool, bucketed by coverage signature: for each distinct set
/// of subsystem counters a scenario lights up, the corpus keeps only the
/// fittest scenario seen so far. That is the feedback signal — a mediocre
/// scenario that fires counters nothing else fires is worth more than a
/// slightly-worse clone of the current champion.
class Corpus {
 public:
  /// Offers an entry. Returns true if it was admitted (novel signature, or
  /// fitter than the incumbent with the same signature).
  bool offer(CorpusEntry entry);

  /// Fitness-weighted parent selection for the next mutation round.
  /// Deterministic given the rng stream. Nullopt while the corpus is empty.
  [[nodiscard]] std::optional<std::size_t> pick_parent(Rng& rng) const;

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Writes each entry as `<dir>/<name>.json` (canonical scenario JSON).
  /// Creates the directory if needed. Returns the files written.
  std::vector<std::string> save(const std::string& dir) const;

 private:
  std::vector<CorpusEntry> entries_;  ///< one per coverage signature
};

/// Loads every `*.json` under `dir` as a scenario, sorted by filename so
/// the order is stable across filesystems. Panics on a file that does not
/// parse — a corrupt committed scenario is a build-stopping event, not a
/// skip. Returns scenario + source path pairs.
struct LoadedScenario {
  std::string path;
  Scenario scenario;
};
[[nodiscard]] std::vector<LoadedScenario> load_scenario_dir(
    const std::string& dir);

}  // namespace qadist::fuzz
