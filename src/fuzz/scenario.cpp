#include "fuzz/scenario.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace qadist::fuzz {

namespace {

constexpr std::string_view kSchema = "qadist-scenario-v1";

// ---- serialization helpers ------------------------------------------------

std::string_view shape_token(workload::ArrivalShape shape) {
  // workload::to_string already emits stable lowercase tokens; reuse them.
  return to_string(shape);
}

workload::ArrivalShape shape_from_token(std::string_view token) {
  using workload::ArrivalShape;
  if (token == "poisson") return ArrivalShape::kPoisson;
  if (token == "mmpp") return ArrivalShape::kMmpp;
  if (token == "diurnal") return ArrivalShape::kDiurnal;
  if (token == "flash_crowd") return ArrivalShape::kFlashCrowd;
  QADIST_CHECK(false, << "scenario: unknown arrival shape \"" << token
                      << "\"");
  return ArrivalShape::kPoisson;  // unreachable
}

std::string_view policy_token(cluster::AdmissionPolicy policy) {
  using cluster::AdmissionPolicy;
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShedOldest:
      return "shed_oldest";
    case AdmissionPolicy::kDegrade:
      return "degrade";
  }
  QADIST_UNREACHABLE("bad AdmissionPolicy");
}

cluster::AdmissionPolicy policy_from_token(std::string_view token) {
  using cluster::AdmissionPolicy;
  if (token == "reject") return AdmissionPolicy::kReject;
  if (token == "shed_oldest") return AdmissionPolicy::kShedOldest;
  if (token == "degrade") return AdmissionPolicy::kDegrade;
  QADIST_CHECK(false, << "scenario: unknown admission policy \"" << token
                      << "\"");
  return AdmissionPolicy::kReject;  // unreachable
}

/// Scenario JSON writer with the canonical fixed field order. Doubles go
/// through format_double (exact round trip), not obs::json_number (12
/// significant digits — fine for reports, lossy for replay).
class Writer {
 public:
  void field(std::string_view key, double value) {
    QADIST_CHECK(std::isfinite(value),
                 << "scenario field " << key << " is not finite");
    open_field(key);
    out_ << format_double(value);
  }
  void field(std::string_view key, std::size_t value) {
    open_field(key);
    out_ << value;
  }
  void field(std::string_view key, std::uint32_t value) {
    open_field(key);
    out_ << value;
  }
  void field(std::string_view key, bool value) {
    open_field(key);
    out_ << (value ? "true" : "false");
  }
  void field(std::string_view key, std::string_view value) {
    open_field(key);
    obs::json_string(out_, value);
  }
  void begin_object(std::string_view key = {}) {
    open_field(key);
    out_ << "{";
    first_.push_back(true);
  }
  void end_object() {
    first_.pop_back();
    out_ << "}";
  }
  void begin_array(std::string_view key) {
    open_field(key);
    out_ << "[";
    first_.push_back(true);
  }
  void end_array() {
    first_.pop_back();
    out_ << "]";
  }
  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  void open_field(std::string_view key) {
    if (!first_.empty()) {
      if (!first_.back()) out_ << ",";
      first_.back() = false;
    }
    if (!key.empty()) {
      obs::json_string(out_, key);
      out_ << ":";
    }
  }
  std::ostringstream out_;
  std::vector<char> first_;
};

// ---- parsing helpers ------------------------------------------------------

const obs::JsonValue& member(const obs::JsonValue& object,
                             const std::string& key) {
  const obs::JsonValue& v = object.at(key);
  QADIST_CHECK(!v.is_null(), << "scenario: missing field \"" << key << "\"");
  return v;
}

double num(const obs::JsonValue& object, const std::string& key) {
  const obs::JsonValue& v = member(object, key);
  QADIST_CHECK(v.is_number(),
               << "scenario: field \"" << key << "\" must be a number");
  return v.number;
}

std::size_t count_field(const obs::JsonValue& object, const std::string& key) {
  const double v = num(object, key);
  QADIST_CHECK(v >= 0.0 && v == std::floor(v),
               << "scenario: field \"" << key
               << "\" must be a non-negative integer, got " << v);
  return static_cast<std::size_t>(v);
}

bool bool_field(const obs::JsonValue& object, const std::string& key) {
  const obs::JsonValue& v = member(object, key);
  QADIST_CHECK(v.is_bool(),
               << "scenario: field \"" << key << "\" must be a boolean");
  return v.boolean;
}

std::string string_field(const obs::JsonValue& object,
                         const std::string& key) {
  const obs::JsonValue& v = member(object, key);
  QADIST_CHECK(v.is_string(),
               << "scenario: field \"" << key << "\" must be a string");
  return v.string;
}

// Seeds use the full 64-bit range, which JSON numbers (doubles) cannot
// carry exactly — they travel as decimal strings instead.
std::uint64_t u64_field(const obs::JsonValue& object, const std::string& key) {
  const std::string text = string_field(object, key);
  QADIST_CHECK(!text.empty() &&
                   text.find_first_not_of("0123456789") == std::string::npos,
               << "scenario: field \"" << key
               << "\" must be a decimal digit string, got \"" << text << "\"");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  QADIST_CHECK(errno == 0 && end == text.c_str() + text.size(),
               << "scenario: field \"" << key << "\" out of range: " << text);
  return static_cast<std::uint64_t>(value);
}

}  // namespace

std::string format_double(double value) {
  QADIST_CHECK(std::isfinite(value), << "cannot serialize non-finite double");
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string to_json(const Scenario& s) {
  Writer w;
  w.begin_object();
  w.field("schema", kSchema);
  w.field("name", std::string_view(s.name));
  const std::string system_seed = std::to_string(s.seed);
  w.field("seed", std::string_view(system_seed));
  w.field("nodes", s.nodes);

  w.begin_object("traffic");
  w.field("shape", shape_token(s.traffic.shape));
  w.field("rate_qps", s.traffic.rate_qps);
  w.field("count", s.traffic.count);
  const std::string traffic_seed = std::to_string(s.traffic.seed);
  w.field("seed", std::string_view(traffic_seed));
  w.field("burst_rate_multiplier", s.traffic.burst_rate_multiplier);
  w.field("mean_burst_seconds", s.traffic.mean_burst_seconds);
  w.field("mean_calm_seconds", s.traffic.mean_calm_seconds);
  w.field("diurnal_period", s.traffic.diurnal_period);
  w.field("diurnal_amplitude", s.traffic.diurnal_amplitude);
  w.field("flash_at", s.traffic.flash_at);
  w.field("flash_duration", s.traffic.flash_duration);
  w.field("flash_multiplier", s.traffic.flash_multiplier);
  w.field("repeat_exponent", s.traffic.repeat_exponent);
  w.field("distinct_questions", s.traffic.distinct_questions);
  w.end_object();

  w.field("plan_offset", s.plan_offset);
  w.field("plan_stride", s.plan_stride);
  w.field("ap_chunk", s.ap_chunk);
  w.field("num_shards", s.num_shards);
  w.field("replication", s.replication);
  w.field("brokers", s.brokers);
  w.field("selectivity", s.selectivity);
  w.field("top_k", s.top_k);

  w.begin_array("crashes");
  for (const cluster::FaultEvent& crash : s.crashes) {
    w.begin_object();
    w.field("node", crash.node);
    w.field("at", crash.at);
    w.field("restart_after", crash.restart_after);
    w.end_object();
  }
  w.end_array();

  w.begin_object("link");
  w.field("drop_probability", s.drop_probability);
  w.field("duplicate_probability", s.duplicate_probability);
  w.field("jitter_min", s.jitter_min);
  w.field("jitter_max", s.jitter_max);
  w.begin_array("partitions");
  for (const simnet::PartitionWindow& window : s.partitions) {
    w.begin_object();
    w.field("from", window.from);
    w.field("until", window.until);
    w.begin_array("isolated");
    for (const std::uint32_t node : window.isolated) {
      w.begin_object();
      w.field("node", node);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.begin_array("gray");
  for (const simnet::GrayFaultEvent& event : s.gray) {
    w.begin_object();
    w.field("node", event.node);
    w.field("at", event.at);
    w.field("recover_after", event.recover_after);
    w.field("cpu_factor", event.cpu_factor);
    w.field("disk_factor", event.disk_factor);
    w.field("extra_latency", event.extra_latency);
    w.end_object();
  }
  w.end_array();

  w.begin_object("admission");
  w.field("max_concurrent", s.max_concurrent);
  w.field("queue_capacity", s.queue_capacity);
  w.field("policy", policy_token(s.admission_policy));
  w.field("load_threshold", s.load_threshold);
  w.end_object();

  w.begin_object("tail");
  w.field("hedge", s.hedge);
  w.field("tied", s.tied);
  w.field("latency_aware", s.latency_aware);
  w.field("hedge_quantile", s.hedge_quantile);
  w.end_object();

  w.begin_object("cache");
  w.field("answer_entries", s.answer_cache_entries);
  w.field("paragraph_entries", s.paragraph_cache_entries);
  w.field("ttl", s.cache_ttl);
  w.end_object();

  w.field("question_deadline", s.question_deadline);

  if (s.pin.present) {
    w.begin_object("pin");
    w.field("p99_seconds", s.pin.p99_seconds);
    w.field("degraded_fraction", s.pin.degraded_fraction);
    w.field("baseline_p99_seconds", s.pin.baseline_p99_seconds);
    w.field("slack", s.pin.slack);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

Scenario scenario_from_json(std::string_view text) {
  const auto parsed = obs::parse_json(text);
  QADIST_CHECK(parsed.has_value(),
               << "scenario: malformed or truncated JSON ("
               << text.size() << " bytes)");
  const obs::JsonValue& root = *parsed;
  QADIST_CHECK(root.is_object(), << "scenario: root must be an object");
  const std::string schema = string_field(root, "schema");
  QADIST_CHECK(schema == kSchema,
               << "scenario: schema mismatch, expected \"" << kSchema
               << "\", got \"" << schema << "\"");

  Scenario s;
  s.name = string_field(root, "name");
  s.seed = u64_field(root, "seed");
  s.nodes = count_field(root, "nodes");

  const obs::JsonValue& traffic = member(root, "traffic");
  QADIST_CHECK(traffic.is_object(),
               << "scenario: field \"traffic\" must be an object");
  s.traffic.shape = shape_from_token(string_field(traffic, "shape"));
  s.traffic.rate_qps = num(traffic, "rate_qps");
  s.traffic.count = count_field(traffic, "count");
  s.traffic.seed = u64_field(traffic, "seed");
  s.traffic.burst_rate_multiplier = num(traffic, "burst_rate_multiplier");
  s.traffic.mean_burst_seconds = num(traffic, "mean_burst_seconds");
  s.traffic.mean_calm_seconds = num(traffic, "mean_calm_seconds");
  s.traffic.diurnal_period = num(traffic, "diurnal_period");
  s.traffic.diurnal_amplitude = num(traffic, "diurnal_amplitude");
  s.traffic.flash_at = num(traffic, "flash_at");
  s.traffic.flash_duration = num(traffic, "flash_duration");
  s.traffic.flash_multiplier = num(traffic, "flash_multiplier");
  s.traffic.repeat_exponent = num(traffic, "repeat_exponent");
  s.traffic.distinct_questions = count_field(traffic, "distinct_questions");

  s.plan_offset = count_field(root, "plan_offset");
  s.plan_stride = count_field(root, "plan_stride");
  s.ap_chunk = count_field(root, "ap_chunk");
  s.num_shards = count_field(root, "num_shards");
  s.replication = count_field(root, "replication");
  // Broker knobs postdate the original corpus: absent fields keep their
  // defaults (off) so older pinned scenarios still parse.
  if (!root.at("brokers").is_null()) {
    s.brokers = count_field(root, "brokers");
  }
  if (!root.at("selectivity").is_null()) {
    s.selectivity = num(root, "selectivity");
  }
  if (!root.at("top_k").is_null()) {
    s.top_k = count_field(root, "top_k");
  }

  for (const obs::JsonValue& crash : member(root, "crashes").items()) {
    cluster::FaultEvent event;
    event.node =
        static_cast<sched::NodeId>(count_field(crash, "node"));
    event.at = num(crash, "at");
    event.restart_after = num(crash, "restart_after");
    s.crashes.push_back(event);
  }

  const obs::JsonValue& link = member(root, "link");
  s.drop_probability = num(link, "drop_probability");
  s.duplicate_probability = num(link, "duplicate_probability");
  s.jitter_min = num(link, "jitter_min");
  s.jitter_max = num(link, "jitter_max");
  for (const obs::JsonValue& window : member(link, "partitions").items()) {
    simnet::PartitionWindow w;
    w.from = num(window, "from");
    w.until = num(window, "until");
    for (const obs::JsonValue& node : member(window, "isolated").items()) {
      w.isolated.push_back(
          static_cast<std::uint32_t>(count_field(node, "node")));
    }
    s.partitions.push_back(std::move(w));
  }

  for (const obs::JsonValue& event : member(root, "gray").items()) {
    simnet::GrayFaultEvent g;
    g.node = static_cast<std::uint32_t>(count_field(event, "node"));
    g.at = num(event, "at");
    g.recover_after = num(event, "recover_after");
    g.cpu_factor = num(event, "cpu_factor");
    g.disk_factor = num(event, "disk_factor");
    g.extra_latency = num(event, "extra_latency");
    s.gray.push_back(g);
  }

  const obs::JsonValue& admission = member(root, "admission");
  s.max_concurrent = count_field(admission, "max_concurrent");
  s.queue_capacity = count_field(admission, "queue_capacity");
  s.admission_policy = policy_from_token(string_field(admission, "policy"));
  s.load_threshold = num(admission, "load_threshold");

  const obs::JsonValue& tail = member(root, "tail");
  s.hedge = bool_field(tail, "hedge");
  s.tied = bool_field(tail, "tied");
  s.latency_aware = bool_field(tail, "latency_aware");
  s.hedge_quantile = num(tail, "hedge_quantile");

  const obs::JsonValue& cache = member(root, "cache");
  s.answer_cache_entries = count_field(cache, "answer_entries");
  s.paragraph_cache_entries = count_field(cache, "paragraph_entries");
  s.cache_ttl = num(cache, "ttl");

  s.question_deadline = num(root, "question_deadline");

  const obs::JsonValue& pin = root.at("pin");
  if (!pin.is_null()) {
    s.pin.present = true;
    s.pin.p99_seconds = num(pin, "p99_seconds");
    s.pin.degraded_fraction = num(pin, "degraded_fraction");
    s.pin.baseline_p99_seconds = num(pin, "baseline_p99_seconds");
    s.pin.slack = num(pin, "slack");
  }
  return s;
}

std::vector<std::size_t> Scenario::plan_subset(std::size_t plan_count) const {
  std::vector<std::size_t> subset;
  if (plan_stride == 0) return subset;
  for (std::size_t i = plan_offset; i < plan_count; i += plan_stride) {
    subset.push_back(i);
  }
  return subset;
}

Seconds Scenario::last_arrival() const {
  const auto times = workload::arrival_times(traffic);
  return times.empty() ? 0.0 : times.back();
}

std::optional<std::string> Scenario::problem(std::size_t plan_count) const {
  const auto fail = [](std::string message) {
    return std::optional<std::string>(std::move(message));
  };
  const auto finite_in = [](double v, double lo, double hi) {
    return std::isfinite(v) && v >= lo && v <= hi;
  };

  if (nodes < 2 || nodes > 64) return fail("nodes must be in [2, 64]");
  if (plan_stride < 1) return fail("plan_stride must be >= 1");
  if (plan_subset(plan_count).empty()) {
    return fail("plan skew selects no plans (offset past the plan set)");
  }
  if (ap_chunk < 1) return fail("ap_chunk must be >= 1");
  if (num_shards > 0 &&
      (replication < 1 || replication > nodes)) {
    return fail("replication must be in [1, nodes] when sharded");
  }
  if (!finite_in(selectivity, 0.0, 1.0) || selectivity <= 0.0) {
    return fail("selectivity must be in (0, 1]");
  }
  if (brokers > nodes) return fail("brokers must be <= nodes");
  if (num_shards == 0 &&
      (brokers > 0 || selectivity < 1.0 || top_k > 0)) {
    return fail("broker/selection knobs require a sharded corpus");
  }

  // Traffic. Bounds chosen so every valid scenario runs in bounded time:
  // the fuzzer's fitness loop depends on runs being seconds, not minutes.
  const workload::ArrivalProcessConfig& t = traffic;
  if (t.count < 1 || t.count > 100000) {
    return fail("traffic.count must be in [1, 100000]");
  }
  if (!std::isfinite(t.rate_qps) || t.rate_qps <= 0.0) {
    return fail("traffic.rate_qps must be finite and positive");
  }
  if (!finite_in(t.burst_rate_multiplier, 1.0, 64.0)) {
    return fail("traffic.burst_rate_multiplier must be in [1, 64]");
  }
  if (!std::isfinite(t.mean_burst_seconds) || t.mean_burst_seconds <= 0.0 ||
      !std::isfinite(t.mean_calm_seconds) || t.mean_calm_seconds <= 0.0) {
    return fail("traffic MMPP dwell means must be finite and positive");
  }
  if (!std::isfinite(t.diurnal_period) || t.diurnal_period <= 0.0) {
    return fail("traffic.diurnal_period must be finite and positive");
  }
  if (!finite_in(t.diurnal_amplitude, 0.0, 0.99)) {
    return fail("traffic.diurnal_amplitude must be in [0, 0.99]");
  }
  if (!std::isfinite(t.flash_at) || t.flash_at < 0.0 ||
      !std::isfinite(t.flash_duration) || t.flash_duration < 0.0) {
    return fail("traffic flash window must be finite and non-negative");
  }
  if (!finite_in(t.flash_multiplier, 1.0, 64.0)) {
    return fail("traffic.flash_multiplier must be in [1, 64]");
  }
  if (!std::isfinite(t.repeat_exponent) || t.repeat_exponent < 0.0) {
    return fail("traffic.repeat_exponent must be finite and >= 0");
  }

  // Fault schedules. Event instants must land inside the stream horizon
  // plus the Driver's drain allowance — exactly the Driver's own check, so
  // a scenario that validates here never panics there.
  const Seconds horizon = last_arrival();
  const Seconds limit = horizon + workload::Driver::drain_allowance(horizon);
  for (const cluster::FaultEvent& crash : crashes) {
    if (crash.node >= nodes) return fail("crash targets unknown node");
    if (!finite_in(crash.at, 0.0, limit)) {
      return fail("crash instant outside [0, horizon + drain allowance]");
    }
    if (std::isnan(crash.restart_after)) {
      return fail("crash restart_after must not be NaN");
    }
  }
  if (!finite_in(drop_probability, 0.0, 0.5)) {
    return fail("drop_probability must be in [0, 0.5]");
  }
  if (!finite_in(duplicate_probability, 0.0, 0.5)) {
    return fail("duplicate_probability must be in [0, 0.5]");
  }
  if (!std::isfinite(jitter_min) || !std::isfinite(jitter_max) ||
      jitter_min < 0.0 || jitter_max < jitter_min) {
    return fail("jitter window must satisfy 0 <= jitter_min <= jitter_max");
  }
  for (const simnet::PartitionWindow& window : partitions) {
    if (!finite_in(window.from, 0.0, limit) ||
        !std::isfinite(window.until) || window.until <= window.from) {
      return fail("partition window must satisfy 0 <= from < until and "
                  "start inside the horizon");
    }
    if (window.isolated.empty() || window.isolated.size() >= nodes) {
      return fail("partition must isolate at least one node and leave at "
                  "least one connected");
    }
    for (const std::uint32_t node : window.isolated) {
      if (node >= nodes) return fail("partition isolates unknown node");
    }
  }
  for (const simnet::GrayFaultEvent& event : gray) {
    if (event.node >= nodes) return fail("gray window targets unknown node");
    if (!finite_in(event.at, 0.0, limit)) {
      return fail("gray onset outside [0, horizon + drain allowance]");
    }
    if (std::isnan(event.recover_after)) {
      return fail("gray recover_after must not be NaN");
    }
    if (!finite_in(event.cpu_factor, 1.0, 64.0) ||
        !finite_in(event.disk_factor, 1.0, 64.0)) {
      return fail("gray factors must be in [1, 64]");
    }
    if (!finite_in(event.extra_latency, 0.0, 10.0)) {
      return fail("gray extra_latency must be in [0, 10] seconds");
    }
  }

  if (max_concurrent > 0 && queue_capacity > 100000) {
    return fail("queue_capacity must be <= 100000");
  }
  if (!std::isfinite(load_threshold) || load_threshold < 0.0) {
    return fail("load_threshold must be finite and >= 0");
  }
  if (!finite_in(hedge_quantile, 0.0, 1.0)) {
    return fail("hedge_quantile must be in [0, 1]");
  }
  if (!std::isfinite(cache_ttl) || cache_ttl < 0.0) {
    return fail("cache ttl must be finite and >= 0");
  }
  // Liveness by construction: a positive deadline guarantees that under
  // any fault schedule a question degrades rather than hangs.
  if (!finite_in(question_deadline, 10.0, 3600.0)) {
    return fail("question_deadline must be in [10, 3600] seconds");
  }
  return std::nullopt;
}

cluster::SystemConfig Scenario::system_config() const {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = cluster::Policy::kDqa;
  cfg.partition.ap_chunk = ap_chunk;
  cfg.net.faults.drop_probability = drop_probability;
  cfg.net.faults.duplicate_probability = duplicate_probability;
  cfg.net.faults.jitter_min = jitter_min;
  cfg.net.faults.jitter_max = jitter_max;
  cfg.net.faults.partitions = partitions;
  cfg.net.reliability.question_deadline = question_deadline;
  cfg.faults.crashes = crashes;
  cfg.gray.events = gray;
  cfg.admission.max_concurrent = max_concurrent;
  cfg.admission.queue_capacity = queue_capacity;
  cfg.admission.policy = admission_policy;
  cfg.admission.load_threshold = load_threshold;
  cfg.tail.hedge = hedge;
  cfg.tail.tied = tied;
  cfg.tail.latency_aware = latency_aware;
  cfg.tail.hedge_quantile = hedge_quantile;
  cfg.cache.answers.max_entries = answer_cache_entries;
  cfg.cache.answers.ttl = cache_ttl;
  cfg.cache.paragraphs.max_entries = paragraph_cache_entries;
  cfg.cache.paragraphs.ttl = cache_ttl;
  cfg.shard.num_shards = num_shards;
  cfg.shard.replication = replication;
  cfg.broker.brokers = brokers;
  cfg.broker.selectivity = selectivity;
  cfg.broker.top_k = top_k;
  return cfg;
}

workload::RunSpec Scenario::run_spec() const {
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kOpenLoop;
  spec.open_loop = traffic;
  return spec;
}

Scenario reference_scenario(std::size_t nodes, double mean_service_seconds,
                            std::uint64_t seed) {
  QADIST_CHECK(mean_service_seconds > 0.0);
  Scenario s;
  s.name = "reference";
  s.seed = seed;
  s.nodes = nodes;
  s.traffic.shape = workload::ArrivalShape::kPoisson;
  // Half the aggregate service rate: comfortably under saturation, so the
  // baseline tail is a healthy tail and a 3x blowup means something.
  s.traffic.rate_qps =
      0.5 * static_cast<double>(nodes) / mean_service_seconds;
  s.traffic.count = 8 * nodes;
  s.traffic.seed = seed;
  return s;
}

}  // namespace qadist::fuzz
