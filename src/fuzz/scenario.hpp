#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/system.hpp"
#include "workload/arrival.hpp"
#include "workload/driver.hpp"

namespace qadist::fuzz {

/// Pinned regression envelope of a committed survivor: what the scenario
/// measured when it was pinned, so bench_adversarial can fail the build if
/// a later change makes the same scenario meaningfully *worse* (or lets
/// the pathology silently vanish — see bench_adversarial).
struct Pin {
  bool present = false;
  double p99_seconds = 0.0;          ///< observed latency p99 at pin time
  double degraded_fraction = 0.0;    ///< observed degraded share at pin time
  double baseline_p99_seconds = 0.0; ///< the healthy reference p99 it beat
  /// Relative slack of the envelope: a replayed p99 up to
  /// (1 + slack) * p99_seconds still passes. Deterministic replay means
  /// drift only comes from real code changes, but unrelated changes to
  /// event ordering legitimately move tails a little.
  double slack = 0.25;
};

/// One fuzzable simulation scenario — the complete, serializable genome
/// the adversarial hunter mutates. Everything a run depends on is either
/// in here or pure in it (the plan set comes from the world the runner is
/// handed, skewed by plan_offset/plan_stride), so a scenario JSON replays
/// bit-identically: same arrivals, same faults, same knobs, same seed.
///
/// Canonical wire format: JSON, schema "qadist-scenario-v1", fixed field
/// order, doubles printed with enough digits to round-trip exactly (the
/// shortest of %.15g/%.16g/%.17g that strtod's back to the same bits).
/// Seeds use the full 64-bit range, which JSON numbers (doubles) cannot
/// carry — they travel as decimal strings.
struct Scenario {
  std::string name = "reference";
  std::uint64_t seed = 1;
  std::size_t nodes = 12;

  /// Open-loop traffic (arrival process + rate + Zipf skew + distinct
  /// question count). The fuzzer drives everything open-loop: it is the
  /// only shape that can push past saturation, which is where the
  /// pathologies live.
  workload::ArrivalProcessConfig traffic;

  /// Corpus skew: the runner's plan set is sub-sampled to indices
  /// offset, offset+stride, offset+2*stride, ... — a stride > 1 starves
  /// the question mix down to fewer, heavier plans.
  std::size_t plan_offset = 0;
  std::size_t plan_stride = 1;

  std::size_t ap_chunk = 40;

  /// Corpus sharding (0 shards = off, full replication semantics).
  std::size_t num_shards = 0;
  std::size_t replication = 0;

  /// Selective search + broker/mediator tier (both require sharding when
  /// non-default). 0 brokers = flat star; selectivity 1 with top_k 0 =
  /// exhaustive search. Selection in the fuzzer always uses the per-
  /// question work proxy (scenarios carry no term statistics).
  std::size_t brokers = 0;
  double selectivity = 1.0;
  std::size_t top_k = 0;

  /// Fault schedules: scripted node crashes, link-level faults, scripted
  /// partitions, gray-degradation windows. All deterministic given the
  /// scenario (no MTBF process — the genome must *be* the schedule).
  std::vector<cluster::FaultEvent> crashes;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  Seconds jitter_min = 0.0;
  Seconds jitter_max = 0.0;
  std::vector<simnet::PartitionWindow> partitions;
  std::vector<simnet::GrayFaultEvent> gray;

  /// Admission-control knobs (max_concurrent 0 = off).
  std::size_t max_concurrent = 0;
  std::size_t queue_capacity = 0;
  cluster::AdmissionPolicy admission_policy = cluster::AdmissionPolicy::kReject;
  double load_threshold = 0.0;

  /// Tail-tolerance toggles.
  bool hedge = false;
  bool tied = false;
  bool latency_aware = false;
  double hedge_quantile = 0.95;

  /// Per-node caches (0 entries = off) with a shared TTL.
  std::size_t answer_cache_entries = 0;
  std::size_t paragraph_cache_entries = 0;
  Seconds cache_ttl = 0.0;

  /// Per-question deadline budget. Kept > 0 by validation so every
  /// scenario is live by construction: under arbitrary fault schedules a
  /// question may degrade, but it can never hang the run.
  Seconds question_deadline = 240.0;

  Pin pin;

  /// Validation: nullopt when the scenario is well-formed and runnable,
  /// otherwise the first problem found, in plain words. Mirrors (and is at
  /// least as strict as) the System + Driver QADIST_CHECKs, so a scenario
  /// that passes here never panics downstream. `plan_count` is the size of
  /// the plan set the runner will skew.
  [[nodiscard]] std::optional<std::string> problem(
      std::size_t plan_count) const;

  /// The plan indices this scenario's skew selects from a set of
  /// `plan_count` plans (ascending; non-empty for a valid scenario).
  [[nodiscard]] std::vector<std::size_t> plan_subset(
      std::size_t plan_count) const;

  /// Builders for the run: the cluster under test and the traffic spec.
  [[nodiscard]] cluster::SystemConfig system_config() const;
  [[nodiscard]] workload::RunSpec run_spec() const;

  /// Last arrival instant of the traffic stream (deterministic in the
  /// config). Only valid once traffic passes validation.
  [[nodiscard]] Seconds last_arrival() const;
};

/// Canonical JSON serialization (schema qadist-scenario-v1).
[[nodiscard]] std::string to_json(const Scenario& scenario);

/// Parses a canonical scenario JSON. Panics (QADIST_CHECK) with a clear
/// message on malformed/truncated input, a wrong schema tag, or missing /
/// mistyped fields — corrupt scenario files must fail loudly, mirroring
/// ir::persist. Structural validity only: call problem() before running.
[[nodiscard]] Scenario scenario_from_json(std::string_view text);

/// Exact round-trip double formatting: the shortest %g form that strtod's
/// back to the same bits (exposed for tests).
[[nodiscard]] std::string format_double(double value);

/// The healthy reference configuration the hunter mutates from and
/// baselines against: `nodes` nodes, open-loop Poisson at half the
/// aggregate service rate (`nodes / (2 * mean_service_seconds)` qps),
/// 8 questions per node, no faults, every knob at its default.
[[nodiscard]] Scenario reference_scenario(std::size_t nodes,
                                          double mean_service_seconds,
                                          std::uint64_t seed = 1);

}  // namespace qadist::fuzz
