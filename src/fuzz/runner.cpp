#include "fuzz/runner.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "shard/config.hpp"
#include "simnet/simulation.hpp"
#include "workload/driver.hpp"

namespace qadist::fuzz {

namespace {

/// Coverage bit assignments. Appending is fine; reordering is not (saved
/// corpora key on the signature).
enum CoverageBit : std::uint64_t {
  kCrashes = 0,
  kCrashesSkipped,
  kQuestionRestarts,
  kRecoveryLegs,
  kNetDrops,
  kNetPartitionDrops,
  kNetDuplicates,
  kNetRetries,
  kNetSendFailures,
  kLegsUnreachable,
  kDetectorSuspicions,
  kDetectorFalseAlarms,
  kDetectorDeaths,
  kDetectorRejoins,
  kQuestionsDegraded,
  kDegradedUnitsDropped,
  kDegradedStaleServed,
  kShardFailovers,
  kShardRebuilds,
  kShardUnitsUnserved,
  kShardRevalidations,
  kQuestionsRejected,
  kQuestionsShed,
  kAdmissionDegraded,
  kAdmissionQueued,
  kCacheHits,
  kParagraphCacheHits,
  kHedgesIssued,
  kHedgeWins,
  kLegsCancelled,
  kStragglerAvoidances,
  kGrayOnsets,
  kMigrations,
  kCoverageBits,  // count, keep last
};

constexpr const char* kCoverageNames[kCoverageBits] = {
    "crashes",
    "crashes_skipped",
    "question_restarts",
    "recovery_legs",
    "net_drops",
    "net_partition_drops",
    "net_duplicates",
    "net_retries",
    "net_send_failures",
    "legs_unreachable",
    "detector_suspicions",
    "detector_false_alarms",
    "detector_deaths",
    "detector_rejoins",
    "questions_degraded",
    "degraded_units_dropped",
    "degraded_stale_served",
    "shard_failovers",
    "shard_rebuilds",
    "shard_units_unserved",
    "shard_revalidations",
    "questions_rejected",
    "questions_shed",
    "admission_degraded",
    "admission_queued",
    "cache_hits",
    "pr_cache_hits",
    "hedges_issued",
    "hedge_wins",
    "legs_cancelled",
    "straggler_avoidances",
    "gray_onsets",
    "migrations",
};

/// One simulation pass over the scenario. `trace` attaches a span tracer
/// (pure observation — attaching one never changes the event sequence, so
/// the replay pass can skip it and still digest identically).
Observation execute(std::span<const cluster::QuestionPlan> plans,
                    const Scenario& scenario, bool trace) {
  std::vector<cluster::QuestionPlan> subset;
  for (const std::size_t index : scenario.plan_subset(plans.size())) {
    subset.push_back(plans[index]);
  }

  simnet::Simulation sim;
  cluster::System system(sim, scenario.system_config());
  obs::Tracer tracer;
  if (trace) system.set_tracer(&tracer);
  workload::Driver driver(system, subset);
  const workload::RunResult result = driver.run(scenario.run_spec());

  Observation o;
  o.metrics = result.metrics;
  const cluster::Metrics& m = o.metrics;
  o.p50 = m.latencies.quantile_or(0.50, 0.0);
  o.p95 = m.latencies.quantile_or(0.95, 0.0);
  o.p99 = m.latencies.quantile_or(0.99, 0.0);
  o.max_latency = m.latencies.quantile_or(1.0, 0.0);
  o.degraded_fraction =
      m.completed == 0 ? 0.0
                       : static_cast<double>(m.questions_degraded) /
                             static_cast<double>(m.completed);
  o.shed_fraction = m.shed_fraction();
  o.hedge_overhead = m.hedge_overhead();
  o.coverage = coverage_signature(m);
  o.digest = digest_of(m);

  if (trace) {
    // Zombie spans: every span opened during the run must have closed by
    // the time the simulation drained.
    if (tracer.open_spans() != 0) {
      std::ostringstream msg;
      msg << "zombie spans: " << tracer.open_spans()
          << " spans still open after the run drained";
      o.violations.push_back(msg.str());
    }
    // Critical-path telescoping: each analyzed question's five latency
    // components must sum to its end-to-end total (exact decomposition up
    // to float round-off).
    for (const obs::QuestionBreakdown& q : obs::analyze_questions(tracer)) {
      const double err = std::fabs(q.component_sum() - q.total);
      if (err > 1e-6) {
        std::ostringstream msg;
        msg << "critical-path telescoping broke for question " << q.question
            << ": components sum to " << q.component_sum() << " but total is "
            << q.total << " (error " << err << ")";
        o.violations.push_back(msg.str());
      }
    }
  }
  return o;
}

void append(std::vector<std::string>& out, std::ostringstream& msg) {
  out.push_back(msg.str());
  msg.str({});
}

}  // namespace

RunDigest digest_of(const cluster::Metrics& m) {
  RunDigest d;
  d.makespan = m.makespan;
  d.latency_mean = m.latencies.mean();
  d.latency_p99 = m.latencies.quantile_or(0.99, 0.0);
  d.submitted = m.submitted;
  d.completed = m.completed;
  d.rejected = m.questions_rejected;
  d.shed = m.questions_shed;
  d.degraded = m.questions_degraded;
  d.crashes = m.crashes;
  d.net_drops = m.net_drops;
  d.net_retries = m.net_retries;
  d.hedges_issued = m.hedges_issued;
  d.legs_cancelled = m.legs_cancelled;
  d.gray_onsets = m.gray_onsets;
  return d;
}

std::string to_string(const RunDigest& d) {
  std::ostringstream out;
  out << "makespan=" << format_double(d.makespan)
      << " mean=" << format_double(d.latency_mean)
      << " p99=" << format_double(d.latency_p99) << " submitted=" << d.submitted
      << " completed=" << d.completed << " rejected=" << d.rejected
      << " shed=" << d.shed << " degraded=" << d.degraded
      << " crashes=" << d.crashes << " drops=" << d.net_drops
      << " retries=" << d.net_retries << " hedges=" << d.hedges_issued
      << " cancelled=" << d.legs_cancelled << " gray=" << d.gray_onsets;
  return out.str();
}

std::uint64_t coverage_signature(const cluster::Metrics& m) {
  const auto bit = [](CoverageBit b, std::size_t value) -> std::uint64_t {
    return value > 0 ? (std::uint64_t{1} << b) : 0;
  };
  std::uint64_t sig = 0;
  sig |= bit(kCrashes, m.crashes);
  sig |= bit(kCrashesSkipped, m.crashes_skipped);
  sig |= bit(kQuestionRestarts, m.question_restarts);
  sig |= bit(kRecoveryLegs, m.recovery_legs);
  sig |= bit(kNetDrops, m.net_drops);
  sig |= bit(kNetPartitionDrops, m.net_partition_drops);
  sig |= bit(kNetDuplicates, m.net_duplicates);
  sig |= bit(kNetRetries, m.net_retries);
  sig |= bit(kNetSendFailures, m.net_send_failures);
  sig |= bit(kLegsUnreachable, m.legs_unreachable);
  sig |= bit(kDetectorSuspicions, m.detector_suspicions);
  sig |= bit(kDetectorFalseAlarms, m.detector_false_alarms);
  sig |= bit(kDetectorDeaths, m.detector_deaths);
  sig |= bit(kDetectorRejoins, m.detector_rejoins);
  sig |= bit(kQuestionsDegraded, m.questions_degraded);
  sig |= bit(kDegradedUnitsDropped, m.degraded_units_dropped);
  sig |= bit(kDegradedStaleServed, m.degraded_stale_served);
  sig |= bit(kShardFailovers, m.shard_failovers);
  sig |= bit(kShardRebuilds, m.shard_rebuilds);
  sig |= bit(kShardUnitsUnserved, m.shard_units_unserved);
  sig |= bit(kShardRevalidations, m.shard_revalidations);
  sig |= bit(kQuestionsRejected, m.questions_rejected);
  sig |= bit(kQuestionsShed, m.questions_shed);
  sig |= bit(kAdmissionDegraded, m.admission_degraded);
  sig |= bit(kAdmissionQueued, m.admission_wait.count());
  sig |= bit(kCacheHits, m.cache_hits);
  sig |= bit(kParagraphCacheHits, m.pr_cache_hits);
  sig |= bit(kHedgesIssued, m.hedges_issued);
  sig |= bit(kHedgeWins, m.hedge_wins);
  sig |= bit(kLegsCancelled, m.legs_cancelled);
  sig |= bit(kStragglerAvoidances, m.straggler_avoidances);
  sig |= bit(kGrayOnsets, m.gray_onsets);
  sig |= bit(kMigrations,
             m.migrations_qa + m.migrations_pr + m.migrations_ap);
  return sig;
}

std::vector<std::string> coverage_names(std::uint64_t signature) {
  std::vector<std::string> names;
  for (std::uint64_t b = 0; b < kCoverageBits; ++b) {
    if ((signature & (std::uint64_t{1} << b)) != 0) {
      names.emplace_back(kCoverageNames[b]);
    }
  }
  return names;
}

std::vector<std::string> counter_violations(const cluster::Metrics& m,
                                            const Scenario& s) {
  std::vector<std::string> out;
  std::ostringstream msg;

  // Drain accounting: every submitted question is completed, rejected, or
  // shed — nothing vanishes, nothing is double-counted.
  if (m.completed + m.questions_rejected + m.questions_shed != m.submitted) {
    msg << "drain accounting broke: completed " << m.completed
        << " + rejected " << m.questions_rejected << " + shed "
        << m.questions_shed << " != submitted " << m.submitted;
    append(out, msg);
  }
  if (m.latencies.count() != m.completed) {
    msg << "latency samples (" << m.latencies.count()
        << ") != completed questions (" << m.completed << ")";
    append(out, msg);
  }
  if (m.questions_degraded > m.completed) {
    msg << "degraded (" << m.questions_degraded << ") exceeds completed ("
        << m.completed << ")";
    append(out, msg);
  }

  // Fault-schedule accounting: every scripted event fires exactly once
  // (the simulation drains its whole queue, so scheduled != fired is a
  // scheduler bug, not a timing artifact).
  if (m.crashes + m.crashes_skipped != s.crashes.size()) {
    msg << "crash accounting broke: applied " << m.crashes << " + skipped "
        << m.crashes_skipped << " != scheduled " << s.crashes.size();
    append(out, msg);
  }
  if (m.gray_onsets != s.gray.size()) {
    msg << "gray onsets (" << m.gray_onsets << ") != scheduled windows ("
        << s.gray.size() << ")";
    append(out, msg);
  }
  std::size_t recovering = 0;
  for (const simnet::GrayFaultEvent& event : s.gray) {
    if (event.recover_after >= 0.0) ++recovering;
  }
  if (m.gray_recoveries != recovering) {
    msg << "gray recoveries (" << m.gray_recoveries
        << ") != windows with a recovery scheduled (" << recovering << ")";
    append(out, msg);
  }

  // Tail-tolerance accounting: settled hedge races never exceed issued
  // backups.
  if (m.hedge_wins + m.hedge_losses > m.hedges_issued) {
    msg << "hedge races settled (" << m.hedge_wins + m.hedge_losses
        << ") exceed hedges issued (" << m.hedges_issued << ")";
    append(out, msg);
  }
  // A settled race may cancel several loser legs (a group can hold more
  // than one outstanding member), so cancellations are bounded by spawned
  // legs, not by settled races — and they require tied requests.
  if (m.legs_cancelled > m.legs_spawned) {
    msg << "cancelled legs (" << m.legs_cancelled << ") exceed spawned legs ("
        << m.legs_spawned << ")";
    append(out, msg);
  }
  if (!s.tied && m.legs_cancelled > 0) {
    msg << "legs cancelled (" << m.legs_cancelled
        << ") with tied requests disabled";
    append(out, msg);
  }
  if (!s.hedge && m.hedges_issued > 0) {
    msg << "hedges issued (" << m.hedges_issued
        << ") with hedging disabled";
    append(out, msg);
  }

  // Detector accounting: every resolution consumed a suspicion.
  if (m.detector_deaths + m.detector_false_alarms > m.detector_suspicions) {
    msg << "detector resolutions ("
        << m.detector_deaths + m.detector_false_alarms
        << ") exceed suspicions (" << m.detector_suspicions << ")";
    append(out, msg);
  }

  // Shard accounting: completed rebuilds never exceed the failovers that
  // scheduled them, and each rebuild copied exactly one shard artifact.
  if (m.shard_rebuilds > m.shard_failovers) {
    msg << "shard rebuilds (" << m.shard_rebuilds << ") exceed failovers ("
        << m.shard_failovers << ")";
    append(out, msg);
  }
  const std::size_t shard_bytes = shard::ShardConfig{}.shard_bytes;
  if (m.shard_rebuild_bytes != m.shard_rebuilds * shard_bytes) {
    msg << "shard rebuild bytes (" << m.shard_rebuild_bytes
        << ") != rebuilds (" << m.shard_rebuilds << ") x shard size ("
        << shard_bytes << ")";
    append(out, msg);
  }

  // Admission accounting: nothing rejected or shed without admission
  // control configured.
  if (s.max_concurrent == 0 &&
      (m.questions_rejected > 0 || m.questions_shed > 0 ||
       m.admission_degraded > 0)) {
    msg << "admission counters fired (" << m.questions_rejected
        << " rejected, " << m.questions_shed << " shed, "
        << m.admission_degraded << " degraded) with admission disabled";
    append(out, msg);
  }
  return out;
}

Observation run_scenario(std::span<const cluster::QuestionPlan> plans,
                         const Scenario& scenario,
                         const RunOptions& options) {
  const auto issue = scenario.problem(plans.size());
  QADIST_CHECK(!issue.has_value(),
               << "run_scenario: invalid scenario \"" << scenario.name
               << "\": " << *issue);

  Observation o = execute(plans, scenario, options.check_invariants);
  if (options.check_invariants) {
    for (std::string& v : counter_violations(o.metrics, scenario)) {
      o.violations.push_back(std::move(v));
    }
  }
  if (options.check_replay) {
    // Bit-identical replay from the wire format: serialize, parse, re-run,
    // and require the exact same digest. This is the property that makes a
    // committed survivor a *reproducer* rather than an anecdote.
    const Scenario replayed = scenario_from_json(to_json(scenario));
    const Observation again =
        execute(plans, replayed, /*trace=*/false);
    if (!(again.digest == o.digest)) {
      o.violations.push_back(
          "replay from serialized scenario diverged:\n  first:  " +
          to_string(o.digest) + "\n  replay: " + to_string(again.digest));
    }
  }
  return o;
}

double fitness(const Observation& o, const Baseline& b) {
  const double p99_ratio = b.p99 > 0.0 ? o.p99 / b.p99 : 0.0;
  const double max_ratio =
      b.max_latency > 0.0 ? o.max_latency / b.max_latency : 0.0;
  // Weights: tail latency is the primary signal; a degraded or shed answer
  // is worse than a slow one (the paper's SLO is about *answers*), hedge
  // overhead is a mild pressure so "fixes" that hedge everything don't
  // look free.
  return p99_ratio + 0.5 * max_ratio + 8.0 * o.degraded_fraction +
         4.0 * o.shed_fraction + o.hedge_overhead;
}

bool pathological(const Observation& o, const Baseline& b, double ratio) {
  if (b.p99 > 0.0 && o.p99 >= ratio * b.p99) return true;
  const double degraded_floor =
      b.degraded_fraction > 0.0 ? ratio * b.degraded_fraction : 0.0;
  return o.degraded_fraction >= 0.15 &&
         o.degraded_fraction >= degraded_floor;
}

}  // namespace qadist::fuzz
