#include "fuzz/shrink.hpp"

#include <utility>
#include <vector>

#include "common/check.hpp"

namespace qadist::fuzz {

namespace {

/// Shared shrink state: the best reproducer so far plus the attempt budget.
struct Session {
  Scenario best;
  std::size_t plan_count;
  const Predicate& predicate;
  std::size_t max_attempts;
  std::size_t attempts = 0;
  std::size_t accepted = 0;

  [[nodiscard]] bool exhausted() const { return attempts >= max_attempts; }

  /// Tests one candidate; adopts it as the new best when the predicate
  /// still holds. Invalid candidates are skipped for free — they were
  /// never going to run.
  bool try_candidate(const Scenario& candidate) {
    if (exhausted()) return false;
    if (candidate.problem(plan_count).has_value()) return false;
    ++attempts;
    if (!predicate(candidate)) return false;
    best = candidate;
    ++accepted;
    return true;
  }
};

/// Classic ddmin over one event list: try dropping chunks of half the
/// list, then quarters, ... down to single events, re-scanning after every
/// successful removal.
template <typename GetList>
void ddmin_list(Session& session, GetList get_list) {
  for (std::size_t chunk = get_list(session.best).size(); chunk >= 1;
       chunk /= 2) {
    std::size_t start = 0;
    while (!session.exhausted() &&
           start + chunk <= get_list(session.best).size()) {
      Scenario candidate = session.best;
      auto& list = get_list(candidate);
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(start),
                 list.begin() + static_cast<std::ptrdiff_t>(start + chunk));
      if (!session.try_candidate(candidate)) start += chunk;
      // On success the list shrank in place; re-test the same start.
    }
    if (chunk == 1) break;
  }
}

}  // namespace

ShrinkResult shrink(const Scenario& scenario, std::size_t plan_count,
                    const Predicate& predicate, std::size_t max_attempts) {
  QADIST_CHECK(!scenario.problem(plan_count).has_value(),
               << "shrink: input scenario is invalid");
  Session session{scenario, plan_count, predicate, max_attempts};

  // 1. Fault schedules: fewer events beats smaller knobs, so go first.
  ddmin_list(session, [](Scenario& s) -> auto& { return s.crashes; });
  ddmin_list(session, [](Scenario& s) -> auto& { return s.gray; });
  ddmin_list(session, [](Scenario& s) -> auto& { return s.partitions; });

  // 2. Knob resets toward the reference defaults — each one tried
  // independently against the current best, so unrelated complexity falls
  // away even when the core pathology needs several knobs.
  const Scenario defaults;
  using Reset = void (*)(Scenario&, const Scenario&);
  static constexpr Reset kResets[] = {
      [](Scenario& s, const Scenario& d) {
        s.traffic.shape = d.traffic.shape;
        s.traffic.burst_rate_multiplier = d.traffic.burst_rate_multiplier;
        s.traffic.mean_burst_seconds = d.traffic.mean_burst_seconds;
        s.traffic.mean_calm_seconds = d.traffic.mean_calm_seconds;
        s.traffic.diurnal_period = d.traffic.diurnal_period;
        s.traffic.diurnal_amplitude = d.traffic.diurnal_amplitude;
        s.traffic.flash_at = d.traffic.flash_at;
        s.traffic.flash_duration = d.traffic.flash_duration;
        s.traffic.flash_multiplier = d.traffic.flash_multiplier;
      },
      [](Scenario& s, const Scenario& d) {
        s.traffic.repeat_exponent = d.traffic.repeat_exponent;
        s.traffic.distinct_questions = d.traffic.distinct_questions;
      },
      [](Scenario& s, const Scenario& d) {
        s.plan_offset = d.plan_offset;
        s.plan_stride = d.plan_stride;
      },
      [](Scenario& s, const Scenario& d) {
        s.num_shards = d.num_shards;
        s.replication = d.replication;
      },
      [](Scenario& s, const Scenario& d) {
        s.drop_probability = d.drop_probability;
        s.duplicate_probability = d.duplicate_probability;
        s.jitter_min = d.jitter_min;
        s.jitter_max = d.jitter_max;
      },
      [](Scenario& s, const Scenario& d) {
        s.max_concurrent = d.max_concurrent;
        s.queue_capacity = d.queue_capacity;
        s.admission_policy = d.admission_policy;
        s.load_threshold = d.load_threshold;
      },
      [](Scenario& s, const Scenario& d) {
        s.hedge = d.hedge;
        s.tied = d.tied;
        s.latency_aware = d.latency_aware;
        s.hedge_quantile = d.hedge_quantile;
      },
      [](Scenario& s, const Scenario& d) {
        s.answer_cache_entries = d.answer_cache_entries;
        s.paragraph_cache_entries = d.paragraph_cache_entries;
        s.cache_ttl = d.cache_ttl;
      },
      [](Scenario& s, const Scenario& d) {
        s.question_deadline = d.question_deadline;
      },
  };
  for (const Reset reset : kResets) {
    if (session.exhausted()) break;
    Scenario candidate = session.best;
    reset(candidate, defaults);
    session.try_candidate(candidate);
  }

  // 3. Halve the stream length while the pathology survives — short
  // reproducers replay fast in CI.
  while (!session.exhausted() && session.best.traffic.count >= 16) {
    Scenario candidate = session.best;
    candidate.traffic.count /= 2;
    if (!session.try_candidate(candidate)) break;
  }

  return {std::move(session.best), session.attempts, session.accepted};
}

}  // namespace qadist::fuzz
