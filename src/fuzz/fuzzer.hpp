#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/plan.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/scenario.hpp"

namespace qadist::fuzz {

struct FuzzConfig {
  /// Stop conditions: whichever of runs / seconds hits first. `seconds` is
  /// simulated-wall-clock-free — it is real host time, the only
  /// non-deterministic input, and it only affects *when* the loop stops,
  /// never what any individual run computes. seconds = 0 disables the
  /// time budget (pure run-count mode, fully deterministic — what CI
  /// uses).
  std::size_t runs = 200;
  double seconds = 0.0;
  std::uint64_t seed = 1;
  /// Shrink pathological survivors to minimal reproducers before pinning.
  bool shrink = true;
  std::size_t shrink_attempts = 150;
  /// Verify serialize → parse → re-run bit-identity on every corpus
  /// admission (always on for pinned survivors regardless).
  bool check_replay = true;
  /// Pathology bar relative to the healthy baseline (p99 or degraded
  /// share at least this multiple).
  double pathological_ratio = 3.0;
  /// Cap on pinned survivors (different corpus entries often shrink to the
  /// same minimal reproducer; duplicates are dropped, and the corpus only
  /// needs the distinct worst offenders).
  std::size_t max_survivors = 8;
  MutationConfig mutation;
};

struct FuzzStats {
  std::size_t runs = 0;
  std::size_t admitted = 0;           ///< corpus admissions
  std::size_t pathological = 0;       ///< runs past the pathology bar
  std::size_t shrink_attempts = 0;    ///< total shrink candidate runs
  std::vector<std::string> violations;  ///< every invariant violation seen
};

/// A fully shrunk, pinned survivor ready to commit under
/// results/scenarios/.
struct Survivor {
  Scenario scenario;  ///< pin filled in
  Observation observation;
  double fitness = 0.0;
};

/// The adversarial scenario hunter. Feedback loop:
///
///   baseline ← run(reference)
///   corpus ← { reference }
///   repeat: parent ← fitness-weighted pick; child ← mutate(parent);
///           o ← run(child); offer(child, fitness(o, baseline))
///   survivors ← shrink + pin every corpus entry past the pathology bar
///
/// Deterministic for a fixed seed and runs budget (seconds = 0): the same
/// campaign finds the same survivors, byte for byte.
class Fuzzer {
 public:
  Fuzzer(std::span<const cluster::QuestionPlan> plans, Scenario reference,
         FuzzConfig config = {});

  /// Runs the campaign. Safe to call once.
  void run();

  [[nodiscard]] const Baseline& baseline() const { return baseline_; }
  [[nodiscard]] const Corpus& corpus() const { return corpus_; }
  [[nodiscard]] const FuzzStats& stats() const { return stats_; }
  /// Pathological survivors, shrunk (if configured) and pinned, ordered by
  /// descending fitness, named `<reference.name>-NNN`.
  [[nodiscard]] const std::vector<Survivor>& survivors() const {
    return survivors_;
  }

 private:
  [[nodiscard]] Observation observe(const Scenario& scenario,
                                    bool check_replay) const;
  void harvest_survivors();

  std::span<const cluster::QuestionPlan> plans_;
  Scenario reference_;
  FuzzConfig config_;
  Mutator mutator_;
  Rng pick_rng_;
  Baseline baseline_;
  Corpus corpus_;
  FuzzStats stats_;
  std::vector<Survivor> survivors_;
};

}  // namespace qadist::fuzz
