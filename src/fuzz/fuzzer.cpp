#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "fuzz/shrink.hpp"

namespace qadist::fuzz {

Fuzzer::Fuzzer(std::span<const cluster::QuestionPlan> plans,
               Scenario reference, FuzzConfig config)
    : plans_(plans),
      reference_(std::move(reference)),
      config_(config),
      mutator_(config.seed, config.mutation),
      pick_rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  const auto issue = reference_.problem(plans_.size());
  QADIST_CHECK(!issue.has_value(),
               << "fuzzer: reference scenario invalid: " << *issue);
}

Observation Fuzzer::observe(const Scenario& scenario,
                            bool check_replay) const {
  RunOptions options;
  options.check_invariants = true;
  options.check_replay = check_replay;
  return run_scenario(plans_, scenario, options);
}

void Fuzzer::run() {
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();
  const auto out_of_time = [&] {
    if (config_.seconds <= 0.0) return false;
    return std::chrono::duration<double>(Clock::now() - started).count() >=
           config_.seconds;
  };

  // Healthy reference run: the baseline every mutant is scored against.
  Observation reference_run = observe(reference_, config_.check_replay);
  ++stats_.runs;
  for (const std::string& violation : reference_run.violations) {
    stats_.violations.push_back("reference: " + violation);
  }
  baseline_.p99 = reference_run.p99;
  baseline_.max_latency = reference_run.max_latency;
  baseline_.degraded_fraction = reference_run.degraded_fraction;

  CorpusEntry seed_entry;
  seed_entry.scenario = reference_;
  seed_entry.fitness = fitness(reference_run, baseline_);
  seed_entry.coverage = reference_run.coverage;
  seed_entry.p99 = reference_run.p99;
  seed_entry.degraded_fraction = reference_run.degraded_fraction;
  corpus_.offer(std::move(seed_entry));

  while (stats_.runs < config_.runs && !out_of_time()) {
    const auto parent_index = corpus_.pick_parent(pick_rng_);
    QADIST_CHECK(parent_index.has_value());
    const Scenario parent = corpus_.entries()[*parent_index].scenario;
    Scenario child = mutator_.mutate(parent, plans_.size());

    Observation o = observe(child, config_.check_replay);
    ++stats_.runs;
    for (const std::string& violation : o.violations) {
      stats_.violations.push_back("run " + std::to_string(stats_.runs) +
                                  " (" + mutator_.last_ops() +
                                  "): " + violation);
    }
    if (pathological(o, baseline_, config_.pathological_ratio)) {
      ++stats_.pathological;
    }

    CorpusEntry entry;
    entry.scenario = std::move(child);
    entry.fitness = fitness(o, baseline_);
    entry.coverage = o.coverage;
    entry.p99 = o.p99;
    entry.degraded_fraction = o.degraded_fraction;
    entry.discovered_at = stats_.runs;
    if (corpus_.offer(std::move(entry))) ++stats_.admitted;
  }

  harvest_survivors();
}

void Fuzzer::harvest_survivors() {
  // Candidates: corpus entries past the pathology bar, fittest first.
  std::vector<const CorpusEntry*> candidates;
  for (const CorpusEntry& entry : corpus_.entries()) {
    candidates.push_back(&entry);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CorpusEntry* a, const CorpusEntry* b) {
              if (a->fitness != b->fitness) return a->fitness > b->fitness;
              return a->coverage < b->coverage;  // deterministic tie-break
            });

  // Different corpus entries frequently shrink to the same minimal
  // reproducer — dedupe by the canonical JSON with identity fields
  // normalized out.
  std::vector<std::string> seen;
  const auto genome = [](const Scenario& s) {
    Scenario bare = s;
    bare.name = "x";
    bare.pin = Pin{};
    return to_json(bare);
  };

  std::size_t index = 0;
  for (const CorpusEntry* candidate : candidates) {
    if (survivors_.size() >= config_.max_survivors) break;
    Observation o = observe(candidate->scenario, /*check_replay=*/false);
    if (!o.violations.empty()) continue;  // already reported during the hunt
    if (!pathological(o, baseline_, config_.pathological_ratio)) continue;

    Scenario minimal = candidate->scenario;
    if (config_.shrink) {
      // A simplification must keep the run pathological, invariant-clean,
      // AND still fire every counter family the original fired — otherwise
      // shrinking collapses the whole corpus onto the one easiest pathology
      // (pure overload) and the per-signature variety is lost.
      const std::uint64_t want = o.coverage;
      const Predicate still_bad = [&](const Scenario& s) {
        Observation trial = observe(s, /*check_replay=*/false);
        return trial.violations.empty() &&
               (trial.coverage & want) == want &&
               pathological(trial, baseline_, config_.pathological_ratio);
      };
      ShrinkResult shrunk = shrink(minimal, plans_.size(), still_bad,
                                   config_.shrink_attempts);
      stats_.shrink_attempts += shrunk.attempts;
      minimal = std::move(shrunk.scenario);
    }

    const std::string key = genome(minimal);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);

    // Final measurement of the minimal reproducer, replay-checked, and the
    // pin that bench_adversarial will enforce.
    Observation final_run = observe(minimal, /*check_replay=*/true);
    for (const std::string& violation : final_run.violations) {
      stats_.violations.push_back("survivor " + minimal.name + ": " +
                                  violation);
    }
    if (!final_run.violations.empty()) continue;
    if (!pathological(final_run, baseline_, config_.pathological_ratio)) {
      continue;
    }

    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), "%03zu", index);
    minimal.name = reference_.name + "-" + suffix;
    minimal.pin.present = true;
    minimal.pin.p99_seconds = final_run.p99;
    minimal.pin.degraded_fraction = final_run.degraded_fraction;
    minimal.pin.baseline_p99_seconds = baseline_.p99;
    ++index;

    Survivor survivor;
    survivor.scenario = std::move(minimal);
    survivor.observation = std::move(final_run);
    survivor.fitness = candidate->fitness;
    survivors_.push_back(std::move(survivor));
  }
}

}  // namespace qadist::fuzz
