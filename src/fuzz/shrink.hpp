#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/scenario.hpp"

namespace qadist::fuzz {

/// Returns true when the candidate still exhibits the behaviour being
/// shrunk (still pathological AND still invariant-clean). The shrinker
/// only keeps simplifications the predicate accepts.
using Predicate = std::function<bool(const Scenario&)>;

struct ShrinkResult {
  Scenario scenario;        ///< the minimal reproducer found
  std::size_t attempts = 0; ///< candidate runs spent
  std::size_t accepted = 0; ///< simplifications that stuck
};

/// Delta-debugging shrink: greedily removes fault-schedule events
/// (halves first, then singles — classic ddmin), resets knobs toward the
/// reference defaults, and halves the stream length, re-testing the
/// predicate after every candidate. Candidates that fail
/// Scenario::problem(plan_count) are skipped without consuming an attempt.
/// Deterministic; bounded by `max_attempts` predicate calls so a slow
/// reproducer cannot stall the hunt. The input scenario must satisfy the
/// predicate.
[[nodiscard]] ShrinkResult shrink(const Scenario& scenario,
                                  std::size_t plan_count,
                                  const Predicate& predicate,
                                  std::size_t max_attempts = 200);

}  // namespace qadist::fuzz
