#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "fuzz/scenario.hpp"

namespace qadist::fuzz {

/// Bounds the mutator keeps every child inside. The defaults trade search
/// breadth for run time: fuzz runs must stay sub-second-ish each, or the
/// feedback loop starves.
struct MutationConfig {
  std::size_t min_nodes = 4;
  std::size_t max_nodes = 16;
  std::size_t min_count = 8;
  std::size_t max_count = 160;
  double min_rate = 0.01;
  double max_rate = 16.0;
  /// Per-kind schedule caps (crashes / gray windows / partitions).
  std::size_t max_events = 5;
  /// Mutation ops applied per child (drawn uniformly in [1, max_ops]).
  std::size_t max_ops = 3;
};

/// Feedback-guided scenario mutator. Deterministic: the same seed and the
/// same parent sequence produce the same children, which is what makes a
/// whole fuzz campaign replayable from its seed. Every child is valid by
/// construction (mutate repairs out-of-range values and re-clamps fault
/// schedules to the mutated traffic's horizon) — Scenario::problem() is
/// checked before returning.
class Mutator {
 public:
  explicit Mutator(std::uint64_t seed, MutationConfig config = {});

  /// One child: the parent with 1..max_ops random mutations applied.
  [[nodiscard]] Scenario mutate(const Scenario& parent,
                                std::size_t plan_count);

  /// Names of the ops applied by the last mutate() call (diagnostics).
  [[nodiscard]] const std::string& last_ops() const { return last_ops_; }

 private:
  void apply_random_op(Scenario& s, std::size_t plan_count);
  void repair(Scenario& s, std::size_t plan_count);

  Rng rng_;
  MutationConfig config_;
  std::string last_ops_;
};

}  // namespace qadist::fuzz
