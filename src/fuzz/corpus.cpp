#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace qadist::fuzz {

bool Corpus::offer(CorpusEntry entry) {
  for (CorpusEntry& incumbent : entries_) {
    if (incumbent.coverage == entry.coverage) {
      if (entry.fitness > incumbent.fitness) {
        incumbent = std::move(entry);
        return true;
      }
      return false;
    }
  }
  entries_.push_back(std::move(entry));
  return true;
}

std::optional<std::size_t> Corpus::pick_parent(Rng& rng) const {
  if (entries_.empty()) return std::nullopt;
  double total = 0.0;
  for (const CorpusEntry& entry : entries_) {
    total += std::max(entry.fitness, 0.1);  // floor keeps every entry drawable
  }
  double ticket = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    ticket -= std::max(entries_[i].fitness, 0.1);
    if (ticket <= 0.0) return i;
  }
  return entries_.size() - 1;
}

std::vector<std::string> Corpus::save(const std::string& dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::vector<std::string> written;
  for (const CorpusEntry& entry : entries_) {
    const fs::path path = fs::path(dir) / (entry.scenario.name + ".json");
    std::ofstream out(path);
    QADIST_CHECK(out.good(), << "corpus: cannot open " << path.string()
                             << " for writing");
    out << to_json(entry.scenario) << '\n';
    out.close();
    QADIST_CHECK(out.good(), << "corpus: write failed for " << path.string());
    written.push_back(path.string());
  }
  return written;
}

std::vector<LoadedScenario> load_scenario_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<LoadedScenario> loaded;
  if (!fs::exists(dir)) return loaded;
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    std::ifstream in(path);
    QADIST_CHECK(in.good(), << "corpus: cannot read " << path.string());
    std::ostringstream text;
    text << in.rdbuf();
    loaded.push_back({path.string(), scenario_from_json(text.str())});
  }
  return loaded;
}

}  // namespace qadist::fuzz
