#include "fuzz/mutate.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/check.hpp"

namespace qadist::fuzz {

namespace {

double clamp(double v, double lo, double hi) {
  if (!std::isfinite(v)) return lo;
  return std::min(std::max(v, lo), hi);
}

}  // namespace

Mutator::Mutator(std::uint64_t seed, MutationConfig config)
    : rng_(seed ^ 0xbf58476d1ce4e5b9ULL), config_(config) {}

Scenario Mutator::mutate(const Scenario& parent, std::size_t plan_count) {
  QADIST_CHECK(plan_count > 0);
  Scenario child = parent;
  child.pin = Pin{};  // a mutant is a new hypothesis, not a pinned survivor
  last_ops_.clear();
  const std::size_t ops = 1 + rng_.below(config_.max_ops);
  for (std::size_t i = 0; i < ops; ++i) {
    apply_random_op(child, plan_count);
  }
  repair(child, plan_count);
  const auto issue = child.problem(plan_count);
  QADIST_CHECK(!issue.has_value(),
               << "mutator produced an invalid scenario (" << last_ops_
               << "): " << *issue);
  return child;
}

void Mutator::apply_random_op(Scenario& s, std::size_t plan_count) {
  const auto note = [this](const char* op) {
    if (!last_ops_.empty()) last_ops_ += "+";
    last_ops_ += op;
  };
  // The arrival horizon the schedules should aim inside. Uses the rough
  // open-loop estimate count/rate (not the exact stream — the traffic may
  // be mutated again this round); repair() re-clamps against the exact
  // horizon at the end.
  const double rough_horizon =
      static_cast<double>(s.traffic.count) / s.traffic.rate_qps;

  switch (rng_.below(20)) {
    case 0: {  // scale the arrival rate (the saturation axis)
      note("rate");
      static constexpr double kScales[] = {0.25, 0.5, 0.8, 1.25, 2.0, 4.0};
      s.traffic.rate_qps *= kScales[rng_.below(std::size(kScales))];
      break;
    }
    case 1: {  // switch the arrival process shape and re-draw its params
      note("shape");
      using workload::ArrivalShape;
      static constexpr ArrivalShape kShapes[] = {
          ArrivalShape::kPoisson, ArrivalShape::kMmpp, ArrivalShape::kDiurnal,
          ArrivalShape::kFlashCrowd};
      s.traffic.shape = kShapes[rng_.below(std::size(kShapes))];
      s.traffic.burst_rate_multiplier = rng_.uniform(2.0, 12.0);
      s.traffic.mean_burst_seconds = rng_.uniform(5.0, 40.0);
      s.traffic.mean_calm_seconds = rng_.uniform(10.0, 80.0);
      s.traffic.diurnal_period = rng_.uniform(120.0, 900.0);
      s.traffic.diurnal_amplitude = rng_.uniform(0.2, 0.95);
      s.traffic.flash_at = rng_.uniform(0.0, 0.6 * rough_horizon);
      s.traffic.flash_duration = rng_.uniform(5.0, 60.0);
      s.traffic.flash_multiplier = rng_.uniform(2.0, 16.0);
      break;
    }
    case 2: {  // scale the stream length
      note("count");
      s.traffic.count = rng_.bernoulli(0.5) ? s.traffic.count / 2
                                            : s.traffic.count * 2;
      break;
    }
    case 3: {  // Zipf question repetition
      note("zipf");
      if (rng_.bernoulli(0.25)) {
        s.traffic.repeat_exponent = 0.0;
        s.traffic.distinct_questions = 0;
      } else {
        s.traffic.repeat_exponent = rng_.uniform(0.3, 2.5);
        s.traffic.distinct_questions = 1 + rng_.below(plan_count);
      }
      break;
    }
    case 4: {  // corpus/plan skew
      note("plan_skew");
      s.plan_offset = rng_.below(plan_count);
      s.plan_stride = std::uint64_t{1} << rng_.below(3);
      break;
    }
    case 5: {  // sharding preset
      note("shard");
      switch (rng_.below(4)) {
        case 0:
          s.num_shards = 0;
          s.replication = 0;
          break;
        case 1:
          s.num_shards = 8;
          s.replication = 2;
          break;
        case 2:
          s.num_shards = 16;
          s.replication = 2;
          break;
        default:
          s.num_shards = 8;
          s.replication = 1;  // no redundancy: crashes cost real coverage
          break;
      }
      break;
    }
    case 6: {  // add a crash
      note("crash_add");
      cluster::FaultEvent crash;
      crash.node = static_cast<sched::NodeId>(rng_.below(s.nodes));
      crash.at = rng_.uniform(0.0, rough_horizon);
      crash.restart_after =
          rng_.bernoulli(0.6) ? rng_.uniform(10.0, 180.0) : -1.0;
      s.crashes.push_back(crash);
      break;
    }
    case 7: {  // drop or move a crash
      note("crash_edit");
      if (s.crashes.empty()) break;
      const std::size_t i = rng_.below(s.crashes.size());
      if (rng_.bernoulli(0.5)) {
        s.crashes.erase(s.crashes.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        s.crashes[i].at = rng_.uniform(0.0, rough_horizon);
      }
      break;
    }
    case 8: {  // link-fault knobs
      note("link");
      s.drop_probability = rng_.bernoulli(0.3) ? 0.0 : rng_.uniform(0.0, 0.12);
      s.duplicate_probability =
          rng_.bernoulli(0.5) ? 0.0 : rng_.uniform(0.0, 0.05);
      if (rng_.bernoulli(0.5)) {
        s.jitter_min = rng_.uniform(0.0, 0.01);
        s.jitter_max = s.jitter_min + rng_.uniform(0.0, 0.05);
      } else {
        s.jitter_min = 0.0;
        s.jitter_max = 0.0;
      }
      break;
    }
    case 9: {  // add a partition window
      note("partition_add");
      simnet::PartitionWindow window;
      window.from = rng_.uniform(0.0, 0.8 * rough_horizon);
      window.until = window.from + rng_.uniform(10.0, 120.0);
      const std::size_t cut = 1 + rng_.below(std::min<std::size_t>(
                                      3, s.nodes > 1 ? s.nodes - 1 : 1));
      for (std::size_t i = 0; i < cut; ++i) {
        window.isolated.push_back(
            static_cast<std::uint32_t>(rng_.below(s.nodes)));
      }
      s.partitions.push_back(std::move(window));
      break;
    }
    case 10: {  // drop a partition window
      note("partition_drop");
      if (s.partitions.empty()) break;
      s.partitions.erase(s.partitions.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng_.below(s.partitions.size())));
      break;
    }
    case 11: {  // add a gray window
      note("gray_add");
      simnet::GrayFaultEvent event;
      event.node = static_cast<std::uint32_t>(rng_.below(s.nodes));
      event.at = rng_.uniform(0.0, rough_horizon);
      event.recover_after =
          rng_.bernoulli(0.8) ? rng_.uniform(20.0, 200.0) : -1.0;
      event.cpu_factor = rng_.uniform(1.5, 12.0);
      event.disk_factor = rng_.uniform(1.5, 12.0);
      event.extra_latency =
          rng_.bernoulli(0.5) ? rng_.uniform(0.0, 0.05) : 0.0;
      s.gray.push_back(event);
      break;
    }
    case 12: {  // drop or re-aim a gray window
      note("gray_edit");
      if (s.gray.empty()) break;
      const std::size_t i = rng_.below(s.gray.size());
      if (rng_.bernoulli(0.4)) {
        s.gray.erase(s.gray.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        s.gray[i].cpu_factor = rng_.uniform(1.5, 12.0);
        s.gray[i].disk_factor = rng_.uniform(1.5, 12.0);
        s.gray[i].at = rng_.uniform(0.0, rough_horizon);
      }
      break;
    }
    case 13: {  // admission-control preset
      note("admission");
      if (rng_.bernoulli(0.3)) {
        s.max_concurrent = 0;
        s.queue_capacity = 0;
        s.load_threshold = 0.0;
      } else {
        static constexpr std::size_t kPerNode[] = {1, 2, 4};
        s.max_concurrent = s.nodes * kPerNode[rng_.below(std::size(kPerNode))];
        s.queue_capacity = rng_.below(33);
        static constexpr cluster::AdmissionPolicy kPolicies[] = {
            cluster::AdmissionPolicy::kReject,
            cluster::AdmissionPolicy::kShedOldest,
            cluster::AdmissionPolicy::kDegrade};
        s.admission_policy = kPolicies[rng_.below(std::size(kPolicies))];
        s.load_threshold =
            rng_.bernoulli(0.5) ? 0.0 : rng_.uniform(1.0, 6.0);
      }
      break;
    }
    case 14: {  // tail-tolerance toggles
      note("tail");
      s.hedge = rng_.bernoulli(0.5);
      s.tied = s.hedge && rng_.bernoulli(0.5);
      s.latency_aware = rng_.bernoulli(0.5);
      static constexpr double kQuantiles[] = {0.75, 0.9, 0.95, 0.99};
      s.hedge_quantile = kQuantiles[rng_.below(std::size(kQuantiles))];
      break;
    }
    case 15: {  // cache preset
      note("cache");
      static constexpr std::size_t kEntries[] = {0, 32, 128, 512};
      s.answer_cache_entries = kEntries[rng_.below(std::size(kEntries))];
      s.paragraph_cache_entries = kEntries[rng_.below(std::size(kEntries))];
      s.cache_ttl = rng_.bernoulli(0.5) ? 0.0 : rng_.uniform(30.0, 300.0);
      break;
    }
    case 16: {  // question deadline budget
      note("deadline");
      static constexpr double kDeadlines[] = {60.0, 120.0, 240.0, 480.0};
      s.question_deadline = kDeadlines[rng_.below(std::size(kDeadlines))];
      break;
    }
    case 17: {  // reseed system + traffic randomness
      note("seed");
      s.seed = rng_();
      s.traffic.seed = rng_();
      break;
    }
    case 18: {  // broker tier + selective search preset
      note("broker");
      if (rng_.bernoulli(0.3)) {
        s.brokers = 0;
        s.selectivity = 1.0;
        s.top_k = 0;
      } else {
        // Broker knobs need a sharded corpus; force one on rather than
        // wasting the mutation (repair would zero the knobs again).
        if (s.num_shards == 0) {
          s.num_shards = 8;
          s.replication = 2;
        }
        static constexpr std::size_t kBrokers[] = {0, 2, 3, 4};
        s.brokers = kBrokers[rng_.below(std::size(kBrokers))];
        if (rng_.bernoulli(0.5)) {
          static constexpr double kSelectivity[] = {0.25, 0.5, 0.75, 1.0};
          s.selectivity = kSelectivity[rng_.below(std::size(kSelectivity))];
          s.top_k = 0;
        } else {
          s.selectivity = 1.0;
          s.top_k = 1 + rng_.below(s.num_shards);
        }
      }
      break;
    }
    default: {  // resize the cluster
      note("nodes");
      s.nodes = config_.min_nodes +
                rng_.below(config_.max_nodes - config_.min_nodes + 1);
      break;
    }
  }
}

void Mutator::repair(Scenario& s, std::size_t plan_count) {
  s.nodes = std::clamp(s.nodes, config_.min_nodes, config_.max_nodes);
  s.traffic.count =
      std::clamp(s.traffic.count, config_.min_count, config_.max_count);
  s.traffic.rate_qps =
      clamp(s.traffic.rate_qps, config_.min_rate, config_.max_rate);
  s.traffic.burst_rate_multiplier =
      clamp(s.traffic.burst_rate_multiplier, 1.0, 64.0);
  s.traffic.mean_burst_seconds =
      clamp(s.traffic.mean_burst_seconds, 1.0, 600.0);
  s.traffic.mean_calm_seconds =
      clamp(s.traffic.mean_calm_seconds, 1.0, 600.0);
  s.traffic.diurnal_period = clamp(s.traffic.diurnal_period, 30.0, 3600.0);
  s.traffic.diurnal_amplitude = clamp(s.traffic.diurnal_amplitude, 0.0, 0.95);
  s.traffic.flash_duration = clamp(s.traffic.flash_duration, 0.0, 600.0);
  s.traffic.flash_multiplier = clamp(s.traffic.flash_multiplier, 1.0, 64.0);
  s.traffic.repeat_exponent = clamp(s.traffic.repeat_exponent, 0.0, 4.0);
  if (s.plan_stride < 1) s.plan_stride = 1;
  s.plan_offset %= plan_count;
  if (s.num_shards > 0) {
    s.replication = std::clamp<std::size_t>(s.replication, 1, s.nodes);
  } else {
    s.replication = 0;
  }
  // Broker/selection knobs ride on sharding: an unsharded mutant (e.g. a
  // later shard-preset op turned sharding off) loses them, and the tier
  // can never outnumber the nodes.
  if (s.num_shards == 0) {
    s.brokers = 0;
    s.selectivity = 1.0;
    s.top_k = 0;
  } else {
    s.brokers = std::min(s.brokers, s.nodes);
    s.selectivity = clamp(s.selectivity, 0.05, 1.0);
  }
  s.drop_probability = clamp(s.drop_probability, 0.0, 0.5);
  s.duplicate_probability = clamp(s.duplicate_probability, 0.0, 0.5);
  s.jitter_min = clamp(s.jitter_min, 0.0, 1.0);
  s.jitter_max = clamp(s.jitter_max, s.jitter_min, 1.0);
  s.hedge_quantile = clamp(s.hedge_quantile, 0.0, 1.0);
  s.load_threshold = clamp(s.load_threshold, 0.0, 64.0);
  s.cache_ttl = clamp(s.cache_ttl, 0.0, 3600.0);
  s.question_deadline = clamp(s.question_deadline, 10.0, 3600.0);
  if (s.max_concurrent == 0) s.queue_capacity = 0;

  // Schedules: re-target node ids after a resize, clamp every instant to
  // the *exact* mutated traffic horizon, cap schedule sizes. flash_at must
  // also land inside the stream, or the flash never happens.
  const double horizon = s.last_arrival();
  s.traffic.flash_at = clamp(s.traffic.flash_at, 0.0, 0.9 * horizon);
  if (s.crashes.size() > config_.max_events) {
    s.crashes.resize(config_.max_events);
  }
  for (cluster::FaultEvent& crash : s.crashes) {
    crash.node = static_cast<sched::NodeId>(crash.node % s.nodes);
    crash.at = clamp(crash.at, 0.0, horizon);
    if (std::isnan(crash.restart_after)) crash.restart_after = -1.0;
  }
  if (s.gray.size() > config_.max_events) s.gray.resize(config_.max_events);
  for (simnet::GrayFaultEvent& event : s.gray) {
    event.node = static_cast<std::uint32_t>(event.node % s.nodes);
    event.at = clamp(event.at, 0.0, horizon);
    if (std::isnan(event.recover_after)) event.recover_after = -1.0;
    event.cpu_factor = clamp(event.cpu_factor, 1.0, 64.0);
    event.disk_factor = clamp(event.disk_factor, 1.0, 64.0);
    event.extra_latency = clamp(event.extra_latency, 0.0, 10.0);
  }
  if (s.partitions.size() > config_.max_events) {
    s.partitions.resize(config_.max_events);
  }
  for (simnet::PartitionWindow& window : s.partitions) {
    window.from = clamp(window.from, 0.0, horizon);
    if (!(window.until > window.from)) window.until = window.from + 30.0;
    std::vector<std::uint32_t> isolated;
    for (std::uint32_t node : window.isolated) {
      node %= static_cast<std::uint32_t>(s.nodes);
      if (std::find(isolated.begin(), isolated.end(), node) ==
          isolated.end()) {
        isolated.push_back(node);
      }
    }
    if (isolated.size() >= s.nodes) isolated.resize(s.nodes - 1);
    window.isolated = std::move(isolated);
  }
  std::erase_if(s.partitions, [](const simnet::PartitionWindow& window) {
    return window.isolated.empty();
  });
}

}  // namespace qadist::fuzz
