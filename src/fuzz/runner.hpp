#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/plan.hpp"
#include "fuzz/scenario.hpp"

namespace qadist::fuzz {

/// Exact fingerprint of one run, compared bit-for-bit between the original
/// scenario and its serialize → parse → re-run replay. Doubles are
/// compared exactly (operator== default): the simulation is deterministic,
/// so any difference at all means the scenario did not round-trip.
struct RunDigest {
  double makespan = 0.0;
  double latency_mean = 0.0;
  double latency_p99 = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t crashes = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t net_retries = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t legs_cancelled = 0;
  std::uint64_t gray_onsets = 0;

  bool operator==(const RunDigest&) const = default;
};

[[nodiscard]] std::string to_string(const RunDigest& digest);
[[nodiscard]] RunDigest digest_of(const cluster::Metrics& metrics);

/// Everything the fuzzer scores and gates on from one scenario run.
struct Observation {
  cluster::Metrics metrics;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max_latency = 0.0;
  double degraded_fraction = 0.0;  ///< questions_degraded / completed
  double shed_fraction = 0.0;      ///< (rejected + shed) / submitted
  double hedge_overhead = 0.0;
  /// Coverage signature: which counter families fired (see
  /// coverage_signature). The corpus's novelty signal.
  std::uint64_t coverage = 0;
  RunDigest digest;
  /// Invariant violations found after the run; empty means clean. Filled
  /// regardless of fitness — a violation on a boring scenario is still a
  /// bug.
  std::vector<std::string> violations;
};

struct RunOptions {
  /// Post-run invariant suite: drain accounting, zombie spans,
  /// critical-path telescoping, counter consistency.
  bool check_invariants = true;
  /// Serialize → parse → re-run and require an identical RunDigest. Doubles
  /// the cost of a run; the fuzzer keeps it on (replayability is the whole
  /// point of the corpus), shrinking turns it off for intermediate
  /// candidates.
  bool check_replay = true;
};

/// Runs one scenario against the given plan set (skewed per the scenario)
/// and returns the observation. Panics if the scenario fails validation —
/// callers own pre-checking with Scenario::problem().
[[nodiscard]] Observation run_scenario(
    std::span<const cluster::QuestionPlan> plans, const Scenario& scenario,
    const RunOptions& options = {});

/// Pure counter-consistency checks over a finished run's metrics (split
/// out of run_scenario for unit testing): returns the violated invariants
/// in plain words, empty when consistent.
[[nodiscard]] std::vector<std::string> counter_violations(
    const cluster::Metrics& metrics, const Scenario& scenario);

/// Bitmask of which subsystem counter families fired in this run. Two runs
/// with the same signature stressed the same subsystems, however different
/// their knobs look — the corpus keeps only the fittest scenario per
/// signature.
[[nodiscard]] std::uint64_t coverage_signature(const cluster::Metrics& m);

/// Human-readable names of the bits set in a signature, for reports.
[[nodiscard]] std::vector<std::string> coverage_names(std::uint64_t signature);

/// Healthy-reference measurements the fitness function normalizes against.
struct Baseline {
  double p99 = 1.0;
  double max_latency = 1.0;
  double degraded_fraction = 0.0;
};

/// Scalar fitness: how pathological this observation is relative to the
/// healthy baseline. Monotone in tail latency, degraded share, shed share,
/// and hedge overhead; dimensionless so survivors are comparable.
[[nodiscard]] double fitness(const Observation& o, const Baseline& b);

/// The acceptance bar for the pinned corpus: p99 at least `ratio` times
/// the healthy baseline, or a degraded-answer share that is both `ratio`
/// times the baseline's and at least 15% in absolute terms.
[[nodiscard]] bool pathological(const Observation& o, const Baseline& b,
                                double ratio = 3.0);

}  // namespace qadist::fuzz
