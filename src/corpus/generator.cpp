#include "corpus/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.hpp"
#include "corpus/name_forge.hpp"

namespace qadist::corpus {

namespace {

/// Entity pools minted once per corpus; facts and distractors draw from
/// these so the gazetteer stays closed over the generated world.
struct EntityPools {
  std::vector<std::string> persons;
  std::vector<std::string> locations;
  std::vector<std::string> organizations;
  std::vector<std::string> nationalities;
  std::vector<std::string> diseases;

  const std::vector<std::string>& of(EntityType type) const {
    switch (type) {
      case EntityType::kPerson:
        return persons;
      case EntityType::kLocation:
        return locations;
      case EntityType::kOrganization:
        return organizations;
      case EntityType::kNationality:
        return nationalities;
      case EntityType::kDisease:
        return diseases;
      default:
        QADIST_UNREACHABLE("pooled types only");
    }
  }
};

std::vector<std::string> mint_pool(NameForge& forge, EntityType type,
                                   std::uint32_t count,
                                   std::unordered_set<std::string>& taken) {
  std::vector<std::string> pool;
  pool.reserve(count);
  while (pool.size() < count) {
    std::string name = forge.of_type(type);
    if (taken.insert(name).second) pool.push_back(std::move(name));
  }
  return pool;
}

EntityPools mint_pools(NameForge& forge, std::uint32_t per_type,
                       Gazetteer& gazetteer,
                       std::unordered_set<std::string>& taken) {
  EntityPools pools;
  pools.persons = mint_pool(forge, EntityType::kPerson, per_type, taken);
  pools.locations = mint_pool(forge, EntityType::kLocation, per_type, taken);
  pools.organizations =
      mint_pool(forge, EntityType::kOrganization, per_type, taken);
  pools.nationalities =
      mint_pool(forge, EntityType::kNationality, per_type, taken);
  pools.diseases = mint_pool(forge, EntityType::kDisease, per_type, taken);
  const auto reg = [&](const std::vector<std::string>& pool, EntityType t) {
    for (const auto& name : pool) gazetteer.add(name, t);
  };
  reg(pools.persons, EntityType::kPerson);
  reg(pools.locations, EntityType::kLocation);
  reg(pools.organizations, EntityType::kOrganization);
  reg(pools.nationalities, EntityType::kNationality);
  reg(pools.diseases, EntityType::kDisease);
  return pools;
}

const std::string& pick(Rng& rng, const std::vector<std::string>& pool) {
  QADIST_CHECK(!pool.empty());
  return pool[rng.below(pool.size())];
}

std::string filler_sentence(Rng& rng, const Vocabulary& vocab,
                            const CorpusConfig& cfg, const EntityPools& pools) {
  const auto words =
      cfg.min_words_per_sentence +
      rng.below(cfg.max_words_per_sentence - cfg.min_words_per_sentence + 1);
  std::string s;
  for (std::uint64_t w = 0; w < words; ++w) {
    if (!s.empty()) s += ' ';
    s += vocab.sample(rng);
  }
  if (rng.bernoulli(cfg.distractor_mention_probability)) {
    // Drop a pooled entity mention mid-sentence: a plausible-but-wrong
    // candidate for the answer processor to consider and reject.
    static constexpr EntityType kMentionable[] = {
        EntityType::kPerson, EntityType::kLocation, EntityType::kOrganization,
        EntityType::kNationality, EntityType::kDisease};
    const EntityType t = kMentionable[rng.below(std::size(kMentionable))];
    s += ' ';
    s += pick(rng, pools.of(t));
  }
  s += " .";
  return s;
}

/// Mints a fresh, unique subject appropriate for a relation, registering it
/// in the gazetteer under its own entity type.
std::string mint_subject(Relation relation, NameForge& forge,
                         Gazetteer& gazetteer,
                         std::unordered_set<std::string>& taken) {
  for (;;) {
    std::string subject;
    EntityType type = EntityType::kUnknown;
    switch (relation) {
      case Relation::kLocatedIn:
      case Relation::kCostOf:
        subject = forge.landmark();
        type = EntityType::kLocation;
        break;
      case Relation::kFoundedBy:
      case Relation::kFoundedIn:
      case Relation::kLeaderOf:
      case Relation::kHeadquarteredIn:
        subject = forge.organization();
        type = EntityType::kOrganization;
        break;
      case Relation::kPopulationOf:
        subject = forge.location();
        type = EntityType::kLocation;
        break;
      case Relation::kNationalityOf:
        subject = forge.person();
        type = EntityType::kPerson;
        break;
      case Relation::kTreats:
        subject = forge.stem() + "ine";  // a medication-style name
        type = EntityType::kOrganization;  // not an answer candidate type
        break;
    }
    if (!taken.insert(subject).second) continue;
    gazetteer.add(subject, type);
    return subject;
  }
}

std::string mint_object(Relation relation, Rng& rng, NameForge& forge,
                        const EntityPools& pools) {
  switch (answer_type_of(relation)) {
    case EntityType::kDate:
      return forge.date();  // pattern-recognized, not pooled
    case EntityType::kQuantity:
      return forge.quantity();
    case EntityType::kMoney:
      return forge.money();
    case EntityType::kPerson:
      return pick(rng, pools.persons);
    case EntityType::kLocation:
      return pick(rng, pools.locations);
    case EntityType::kNationality:
      return pick(rng, pools.nationalities);
    case EntityType::kDisease:
      return pick(rng, pools.diseases);
    default:
      QADIST_UNREACHABLE("unexpected answer type");
  }
}

}  // namespace

GeneratedCorpus generate_corpus(const CorpusConfig& config) {
  QADIST_CHECK(config.num_documents >= 1);
  QADIST_CHECK(config.max_sentences_per_paragraph >=
               config.min_sentences_per_paragraph);
  QADIST_CHECK(config.max_words_per_sentence >= config.min_words_per_sentence);

  GeneratedCorpus out;
  out.config = config;

  Rng rng(config.seed);
  NameForge forge(rng.split());
  Vocabulary vocab(config.vocabulary_size, config.zipf_exponent, rng());

  std::unordered_set<std::string> taken;
  EntityPools pools =
      mint_pools(forge, config.entities_per_type, out.gazetteer, taken);

  const double log_mean = std::log(config.mean_paragraphs_per_doc) -
                          0.5 * config.paragraph_length_sigma *
                              config.paragraph_length_sigma;

  for (DocId doc_id = 0; doc_id < config.num_documents; ++doc_id) {
    Document doc;
    doc.id = doc_id;
    doc.title = forge.stem() + " " + vocab.sample(rng) + " report";

    const auto paragraphs = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(
               rng.lognormal(log_mean, config.paragraph_length_sigma))));

    // Decide which facts this document will carry, and where.
    std::uint32_t fact_count = 0;
    {
      // Cheap Poisson(mean) via inversion — means are small.
      const double mean = config.facts_per_document;
      double p = std::exp(-mean);
      double cdf = p;
      const double u = rng.uniform01();
      while (u > cdf && fact_count < 8) {
        ++fact_count;
        p *= mean / fact_count;
        cdf += p;
      }
    }

    for (std::uint32_t p = 0; p < paragraphs; ++p) {
      const auto sentences = config.min_sentences_per_paragraph +
                             rng.below(config.max_sentences_per_paragraph -
                                       config.min_sentences_per_paragraph + 1);
      std::string paragraph;
      for (std::uint64_t s = 0; s < sentences; ++s) {
        if (!paragraph.empty()) paragraph += ' ';
        paragraph += filler_sentence(rng, vocab, config, pools);
      }
      doc.paragraphs.push_back(std::move(paragraph));
    }

    for (std::uint32_t f = 0; f < fact_count; ++f) {
      const auto relation =
          static_cast<Relation>(rng.below(kRelationCount));
      Fact fact;
      fact.relation = relation;
      fact.subject = mint_subject(relation, forge, out.gazetteer, taken);
      fact.object = mint_object(relation, rng, forge, pools);
      fact.doc = doc_id;
      fact.paragraph = static_cast<std::uint32_t>(
          rng.below(doc.paragraphs.size()));
      // Splice the fact sentence into the chosen paragraph.
      std::string& target = doc.paragraphs[fact.paragraph];
      target += ' ';
      target += render_fact_sentence(fact);
      out.facts.push_back(std::move(fact));
    }

    out.collection.add(std::move(doc));
  }
  return out;
}

std::vector<Question> generate_questions(const GeneratedCorpus& corpus,
                                         std::size_t count,
                                         std::uint64_t seed) {
  std::vector<std::size_t> order(corpus.facts.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(std::span<std::size_t>(order));

  std::vector<Question> questions;
  const std::size_t n = std::min(count, order.size());
  questions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Fact& fact = corpus.facts[order[i]];
    Question q;
    q.id = static_cast<std::uint32_t>(i);
    q.text = render_question_text(fact);
    q.gold_type = answer_type_of(fact.relation);
    q.gold_answer = fact.object;
    q.gold_doc = fact.doc;
    questions.push_back(std::move(q));
  }
  return questions;
}

}  // namespace qadist::corpus
