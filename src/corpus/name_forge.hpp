#pragma once

#include <string>

#include "common/rng.hpp"
#include "corpus/entity.hpp"

namespace qadist::corpus {

/// Deterministic synthetic proper-name generator.
///
/// Mints pronounceable, capitalized entity names ("Doran Veltis",
/// "Port Amsen", "Velinosis") from syllable tables, plus pattern-shaped
/// dates, quantities and money amounts. Names are built from a seeded RNG,
/// so the same seed always produces the same world. Collisions across calls
/// are possible in principle; the corpus generator deduplicates.
class NameForge {
 public:
  explicit NameForge(Rng rng) : rng_(rng) {}

  /// A capitalized pronounceable stem, 2-3 syllables ("Amsen", "Veltor").
  std::string stem();

  std::string person();        ///< "Doran Veltis"
  std::string location();      ///< "Port Amsen" / "Lake Tarnin" / "Amsen City"
  std::string organization();  ///< "Amsen Textile Group"
  std::string disease();       ///< "Velinosis" / "Amsen Fever"
  std::string nationality();   ///< "Amsenian"
  std::string date();          ///< "March 14 , 1912" (pattern-recognizable)
  std::string quantity();      ///< "3400000" style numeral
  std::string money();         ///< "$ 12 million"

  /// A concrete landmark-style subject ("the Amsen Lighthouse").
  std::string landmark();

  /// Mints a name of the requested type (kUnknown is invalid).
  std::string of_type(EntityType type);

 private:
  Rng rng_;
};

}  // namespace qadist::corpus
