#pragma once

#include <optional>
#include <utility>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qadist::corpus {

/// Semantic categories of answer entities — the answer types the question
/// processing module predicts and the answer processing module matches
/// (paper Sec. 1.1: DISEASE, LOCATION, NATIONALITY, ... entities).
enum class EntityType {
  kPerson,
  kLocation,
  kOrganization,
  kDate,
  kQuantity,
  kNationality,
  kDisease,
  kMoney,
  kUnknown,
};

[[nodiscard]] std::string_view to_string(EntityType type);

/// Number of concrete (non-kUnknown) entity types.
inline constexpr int kEntityTypeCount = 8;

/// Surface-string → entity-type dictionary.
///
/// The corpus generator registers every entity it mints, so the answer
/// processing NER recognizes exactly the generated world plus pattern-based
/// types (dates, quantities, money) — the same closed-world trick FALCON's
/// gazetteers play for the TREC collections. Keys are stored lowercase;
/// lookups are case-normalized by the caller (the tokenizer already
/// lowercases).
class Gazetteer {
 public:
  /// Registers an entity surface form. Multi-word entities are stored as
  /// their space-joined lowercase token sequence.
  void add(std::string_view surface, EntityType type);

  /// Looks up a (lowercase, space-joined) token sequence.
  [[nodiscard]] std::optional<EntityType> lookup(std::string_view key) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Longest entity length in tokens — bounds the NER n-gram scan.
  [[nodiscard]] std::size_t max_tokens() const { return max_tokens_; }

  /// All surface forms of a given type (test support).
  [[nodiscard]] std::vector<std::string> surfaces_of(EntityType type) const;

  /// Every (surface, type) entry, sorted by surface — deterministic order
  /// for serialization.
  [[nodiscard]] std::vector<std::pair<std::string, EntityType>> entries()
      const;

 private:
  std::unordered_map<std::string, EntityType> entries_;
  std::size_t max_tokens_ = 0;
};

}  // namespace qadist::corpus
