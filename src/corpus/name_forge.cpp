#include "corpus/name_forge.hpp"

#include <array>

#include "common/check.hpp"

namespace qadist::corpus {

namespace {

constexpr std::array<const char*, 20> kOnsets = {
    "b", "d", "f", "g", "h", "k", "l", "m",  "n",  "p",
    "r", "s", "t", "v", "z", "br", "dr", "st", "tr", "gr"};
constexpr std::array<const char*, 10> kVowels = {"a", "e", "i", "o",  "u",
                                                 "ai", "ei", "or", "ar", "el"};
constexpr std::array<const char*, 12> kCodas = {"n", "r", "s", "l", "m", "t",
                                                "nd", "rn", "st", "x", "k", ""};
constexpr std::array<const char*, 12> kMonths = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};
constexpr std::array<const char*, 6> kLocationPrefixes = {
    "Port", "Lake", "Mount", "New", "East", "Fort"};
constexpr std::array<const char*, 6> kLocationSuffixes = {
    "City", "Valley", "Island", "Harbor", "Springs", "Province"};
constexpr std::array<const char*, 8> kOrgKinds = {
    "Textile Group",   "Steel Works",    "Observatory",     "Institute",
    "Trading Company", "Rail Consortium", "Shipping Lines", "Foundation"};
constexpr std::array<const char*, 5> kLandmarkKinds = {
    "Lighthouse", "Cathedral", "Bridge", "Monument", "Aqueduct"};

template <std::size_t N>
const char* pick(Rng& rng, const std::array<const char*, N>& options) {
  return options[rng.below(N)];
}

std::string capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

}  // namespace

std::string NameForge::stem() {
  const int syllables = 2 + static_cast<int>(rng_.below(2));
  std::string s;
  for (int i = 0; i < syllables; ++i) {
    s += pick(rng_, kOnsets);
    s += pick(rng_, kVowels);
    if (i + 1 == syllables) s += pick(rng_, kCodas);
  }
  return capitalize(std::move(s));
}

std::string NameForge::person() { return stem() + " " + stem(); }

std::string NameForge::location() {
  switch (rng_.below(3)) {
    case 0:
      return std::string(pick(rng_, kLocationPrefixes)) + " " + stem();
    case 1:
      return stem() + " " + pick(rng_, kLocationSuffixes);
    default:
      return stem();
  }
}

std::string NameForge::organization() {
  return stem() + " " + pick(rng_, kOrgKinds);
}

std::string NameForge::disease() {
  if (rng_.bernoulli(0.5)) return stem() + "osis";
  return stem() + " Fever";
}

std::string NameForge::nationality() { return stem() + "ian"; }

std::string NameForge::date() {
  const char* month = kMonths[rng_.below(kMonths.size())];
  const int day = 1 + static_cast<int>(rng_.below(28));
  const int year = 1800 + static_cast<int>(rng_.below(200));
  return std::string(month) + " " + std::to_string(day) + " , " +
         std::to_string(year);
}

std::string NameForge::quantity() {
  // Population-style numeral: 5-9 digits, round-ish. Kept >= 10000 so a
  // quantity can never be mistaken for a 4-digit year by the NER patterns.
  const auto magnitude = 4 + rng_.below(4);
  std::uint64_t value = 1 + rng_.below(9);
  for (std::uint64_t i = 0; i < magnitude; ++i) value *= 10;
  value += rng_.below(value / 10 + 1);
  return std::to_string(value);
}

std::string NameForge::money() {
  const auto amount = 1 + rng_.below(900);
  const char* unit = rng_.bernoulli(0.5) ? "million" : "thousand";
  return "$ " + std::to_string(amount) + " " + unit;
}

std::string NameForge::landmark() {
  return std::string("the ") + stem() + " " + pick(rng_, kLandmarkKinds);
}

std::string NameForge::of_type(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return person();
    case EntityType::kLocation:
      return location();
    case EntityType::kOrganization:
      return organization();
    case EntityType::kDate:
      return date();
    case EntityType::kQuantity:
      return quantity();
    case EntityType::kNationality:
      return nationality();
    case EntityType::kDisease:
      return disease();
    case EntityType::kMoney:
      return money();
    case EntityType::kUnknown:
      break;
  }
  QADIST_UNREACHABLE("cannot mint a name of unknown type");
}

}  // namespace qadist::corpus
