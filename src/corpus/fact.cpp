#include "corpus/fact.hpp"

#include "common/check.hpp"

namespace qadist::corpus {

std::string_view to_string(Relation relation) {
  switch (relation) {
    case Relation::kLocatedIn:
      return "LOCATED_IN";
    case Relation::kFoundedBy:
      return "FOUNDED_BY";
    case Relation::kFoundedIn:
      return "FOUNDED_IN";
    case Relation::kLeaderOf:
      return "LEADER_OF";
    case Relation::kPopulationOf:
      return "POPULATION_OF";
    case Relation::kNationalityOf:
      return "NATIONALITY_OF";
    case Relation::kTreats:
      return "TREATS";
    case Relation::kHeadquarteredIn:
      return "HEADQUARTERED_IN";
    case Relation::kCostOf:
      return "COST_OF";
  }
  QADIST_UNREACHABLE("bad Relation");
}

EntityType answer_type_of(Relation relation) {
  switch (relation) {
    case Relation::kLocatedIn:
    case Relation::kHeadquarteredIn:
      return EntityType::kLocation;
    case Relation::kFoundedBy:
    case Relation::kLeaderOf:
      return EntityType::kPerson;
    case Relation::kFoundedIn:
      return EntityType::kDate;
    case Relation::kPopulationOf:
      return EntityType::kQuantity;
    case Relation::kNationalityOf:
      return EntityType::kNationality;
    case Relation::kTreats:
      return EntityType::kDisease;
    case Relation::kCostOf:
      return EntityType::kMoney;
  }
  QADIST_UNREACHABLE("bad Relation");
}

std::string render_fact_sentence(const Fact& fact) {
  switch (fact.relation) {
    case Relation::kLocatedIn:
      return fact.subject + " is located in " + fact.object + " .";
    case Relation::kFoundedBy:
      return fact.subject + " was founded by " + fact.object + " .";
    case Relation::kFoundedIn:
      return fact.subject + " was founded in " + fact.object + " .";
    case Relation::kLeaderOf:
      return fact.object + " is the leader of " + fact.subject + " .";
    case Relation::kPopulationOf:
      return fact.subject + " has a population of " + fact.object + " .";
    case Relation::kNationalityOf:
      return fact.subject + " is of " + fact.object + " nationality .";
    case Relation::kTreats:
      return fact.subject + " is used to treat " + fact.object + " .";
    case Relation::kHeadquarteredIn:
      return fact.subject + " is headquartered in " + fact.object + " .";
    case Relation::kCostOf:
      return "the construction of " + fact.subject + " cost " + fact.object +
             " .";
  }
  QADIST_UNREACHABLE("bad Relation");
}

std::string render_question_text(const Fact& fact) {
  switch (fact.relation) {
    case Relation::kLocatedIn:
      return "Where is " + fact.subject + " ?";
    case Relation::kFoundedBy:
      return "Who founded " + fact.subject + " ?";
    case Relation::kFoundedIn:
      return "When was " + fact.subject + " founded ?";
    case Relation::kLeaderOf:
      return "Who is the leader of " + fact.subject + " ?";
    case Relation::kPopulationOf:
      return "What is the population of " + fact.subject + " ?";
    case Relation::kNationalityOf:
      return "What is the nationality of " + fact.subject + " ?";
    case Relation::kTreats:
      return "What does " + fact.subject + " treat ?";
    case Relation::kHeadquarteredIn:
      return "Where is " + fact.subject + " headquartered ?";
    case Relation::kCostOf:
      return "How much did " + fact.subject + " cost ?";
  }
  QADIST_UNREACHABLE("bad Relation");
}

}  // namespace qadist::corpus
