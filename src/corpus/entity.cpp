#include "corpus/entity.hpp"

#include <algorithm>
#include "common/check.hpp"
#include "common/strings.hpp"

namespace qadist::corpus {

std::string_view to_string(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "PERSON";
    case EntityType::kLocation:
      return "LOCATION";
    case EntityType::kOrganization:
      return "ORGANIZATION";
    case EntityType::kDate:
      return "DATE";
    case EntityType::kQuantity:
      return "QUANTITY";
    case EntityType::kNationality:
      return "NATIONALITY";
    case EntityType::kDisease:
      return "DISEASE";
    case EntityType::kMoney:
      return "MONEY";
    case EntityType::kUnknown:
      return "UNKNOWN";
  }
  QADIST_UNREACHABLE("bad EntityType");
}

void Gazetteer::add(std::string_view surface, EntityType type) {
  QADIST_CHECK(!surface.empty());
  std::string key = to_lower(surface);
  const std::size_t tokens = split_whitespace(key).size();
  max_tokens_ = std::max(max_tokens_, tokens);
  entries_.insert_or_assign(std::move(key), type);
}

std::optional<EntityType> Gazetteer::lookup(std::string_view key) const {
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, EntityType>> Gazetteer::entries() const {
  std::vector<std::pair<std::string, EntityType>> out(entries_.begin(),
                                                      entries_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Gazetteer::surfaces_of(EntityType type) const {
  std::vector<std::string> out;
  for (const auto& [surface, t] : entries_) {
    if (t == type) out.push_back(surface);
  }
  return out;
}

}  // namespace qadist::corpus
