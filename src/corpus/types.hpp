#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qadist::corpus {

using DocId = std::uint32_t;

/// A document: a title plus a sequence of paragraphs. Paragraphs are the
/// unit the Q/A pipeline scores and partitions (paper Table 2: PS and AP
/// iterate at paragraph granularity).
struct Document {
  DocId id = 0;
  std::string title;
  std::vector<std::string> paragraphs;

  /// Total text bytes (title + paragraphs); drives the simulated disk cost.
  [[nodiscard]] std::size_t byte_size() const {
    std::size_t n = title.size();
    for (const auto& p : paragraphs) n += p.size();
    return n;
  }
};

/// Globally unique paragraph address within a collection.
struct ParagraphRef {
  DocId doc = 0;
  std::uint32_t index = 0;

  friend bool operator==(const ParagraphRef&, const ParagraphRef&) = default;
  friend auto operator<=>(const ParagraphRef&, const ParagraphRef&) = default;
};

}  // namespace qadist::corpus
