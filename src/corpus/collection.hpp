#pragma once

#include <span>
#include <vector>

#include "corpus/types.hpp"

namespace qadist::corpus {

/// An ordered set of documents — the searchable universe of one Q/A
/// deployment. Mirrors the TREC collection the paper retrieves from.
class Collection {
 public:
  Collection() = default;
  explicit Collection(std::vector<Document> docs);

  [[nodiscard]] std::size_t size() const { return docs_.size(); }
  [[nodiscard]] bool empty() const { return docs_.empty(); }
  [[nodiscard]] std::span<const Document> documents() const { return docs_; }

  /// Document lookup by id. Ids are dense and equal to position.
  [[nodiscard]] const Document& document(DocId id) const;

  [[nodiscard]] const std::string& paragraph(const ParagraphRef& ref) const;

  [[nodiscard]] std::size_t total_paragraphs() const { return paragraphs_; }
  [[nodiscard]] std::size_t total_bytes() const { return bytes_; }

  void add(Document doc);

 private:
  std::vector<Document> docs_;
  std::size_t paragraphs_ = 0;
  std::size_t bytes_ = 0;
};

/// A contiguous document-id slice of a parent collection — the paper's
/// "sub-collection" (TREC-9 was split into 8, each separately indexed,
/// PR iterating over them). Cheap value type: holds a pointer to the parent.
class SubCollection {
 public:
  SubCollection() = default;
  SubCollection(const Collection* parent, DocId first, DocId last);

  [[nodiscard]] DocId first() const { return first_; }
  [[nodiscard]] DocId last() const { return last_; }  ///< exclusive
  [[nodiscard]] std::size_t size() const { return last_ - first_; }
  [[nodiscard]] const Collection& parent() const { return *parent_; }

  [[nodiscard]] const Document& document(DocId id) const;
  [[nodiscard]] bool contains(DocId id) const {
    return id >= first_ && id < last_;
  }

  /// Bytes of text in this slice (drives simulated PR disk cost).
  [[nodiscard]] std::size_t total_bytes() const;

 private:
  const Collection* parent_ = nullptr;
  DocId first_ = 0;
  DocId last_ = 0;
};

/// Splits a collection into `k` contiguous sub-collections with near-equal
/// document counts (the paper's "logical separation ... into eight
/// sub-collections").
[[nodiscard]] std::vector<SubCollection> split_collection(
    const Collection& collection, std::size_t k);

/// Splits into `k` contiguous sub-collections whose document counts follow
/// a geometric progression with largest/smallest = `size_ratio`. Real TREC
/// sub-collections are topic-oriented and wildly uneven — the paper's PR
/// processing times per collection spread by ~8x (Fig. 7: 0.19 s-1.52 s),
/// which is precisely why weight-based (SEND) partitioning fails for PR.
/// size_ratio = 1 reduces to the even split.
[[nodiscard]] std::vector<SubCollection> split_collection_skewed(
    const Collection& collection, std::size_t k, double size_ratio);

}  // namespace qadist::corpus
