#pragma once

#include <string>
#include <string_view>

#include "corpus/entity.hpp"
#include "corpus/types.hpp"

namespace qadist::corpus {

/// Relations a fact sentence can express. Each relation determines the
/// answer entity type of the question derived from it.
enum class Relation {
  kLocatedIn,       // "<subj> is located in <LOCATION>"
  kFoundedBy,       // "<subj> was founded by <PERSON>"
  kFoundedIn,       // "<subj> was founded in <DATE>"
  kLeaderOf,        // "<PERSON> is the leader of <subj>"  (answer: person)
  kPopulationOf,    // "<subj> has a population of <QUANTITY>"
  kNationalityOf,   // "<PERSON-subj> is of <NATIONALITY> descent"
  kTreats,          // "<subj> is a known treatment for <DISEASE>"
  kHeadquarteredIn, // "<subj> is headquartered in <LOCATION>"
  kCostOf,          // "<subj> was built for <MONEY>"
};

inline constexpr int kRelationCount = 9;

[[nodiscard]] std::string_view to_string(Relation relation);

/// Entity type of the object slot (= expected answer type of the question).
[[nodiscard]] EntityType answer_type_of(Relation relation);

/// A ground-truth triple embedded in exactly one corpus sentence. The
/// question generator turns facts into questions with known gold answers,
/// which lets tests assert that the pipeline extracts correct answers —
/// not just that it runs.
struct Fact {
  std::string subject;
  Relation relation = Relation::kLocatedIn;
  std::string object;
  DocId doc = 0;           ///< document carrying the fact sentence
  std::uint32_t paragraph = 0;  ///< paragraph index within that document
};

/// Renders the canonical corpus sentence expressing a fact.
[[nodiscard]] std::string render_fact_sentence(const Fact& fact);

/// Renders the natural-language question asking for the fact's object.
[[nodiscard]] std::string render_question_text(const Fact& fact);

}  // namespace qadist::corpus
