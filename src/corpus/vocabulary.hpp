#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace qadist::corpus {

/// Background vocabulary with Zipfian usage frequencies.
///
/// Words are lowercase pronounceable strings, rank 0 being the most
/// frequent. The generator draws filler text from here, which gives the
/// inverted index the posting-length skew that makes paragraph-retrieval
/// cost vary widely across sub-collections (the effect behind the paper's
/// Figure 7 traces and Table 8's uneven PR partitions).
class Vocabulary {
 public:
  /// @param size number of distinct words
  /// @param zipf_s frequency skew exponent (~1.0 for natural text)
  Vocabulary(std::uint32_t size, double zipf_s, std::uint64_t seed);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(words_.size());
  }
  [[nodiscard]] const std::string& word(std::uint32_t rank) const;

  /// Draws a word according to the Zipfian distribution.
  const std::string& sample(Rng& rng) const;

  /// Draws a rank (useful when the caller wants the rank itself).
  [[nodiscard]] std::uint32_t sample_rank(Rng& rng) const;

 private:
  std::vector<std::string> words_;
  ZipfDistribution dist_;
};

}  // namespace qadist::corpus
