#include "corpus/vocabulary.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace qadist::corpus {

namespace {

// Lowercase pronounceable word synthesis: alternate consonant clusters and
// vowels. Distinctness is guaranteed by a suffix counter on collision.
std::string make_word(Rng& rng, std::uint32_t rank) {
  static constexpr const char* kC[] = {"b", "c", "d",  "f",  "g",  "j",
                                       "l", "m", "n",  "p",  "r",  "s",
                                       "t", "v", "w",  "th", "ch", "sh"};
  static constexpr const char* kV[] = {"a", "e", "i", "o", "u", "ea", "ou"};
  // Short words for low ranks (frequent words are short in real language).
  const int syllables = rank < 50 ? 1 : (rank < 2000 ? 2 : 3);
  std::string w;
  for (int i = 0; i < syllables; ++i) {
    w += kC[rng.below(std::size(kC))];
    w += kV[rng.below(std::size(kV))];
  }
  if (rng.bernoulli(0.4)) w += kC[rng.below(std::size(kC))];
  return w;
}

}  // namespace

Vocabulary::Vocabulary(std::uint32_t size, double zipf_s, std::uint64_t seed)
    : dist_(size, zipf_s) {
  QADIST_CHECK(size >= 1);
  Rng rng(seed);
  words_.reserve(size);
  std::unordered_set<std::string> seen;
  seen.reserve(size * 2);
  for (std::uint32_t rank = 0; rank < size; ++rank) {
    std::string w = make_word(rng, rank);
    while (!seen.insert(w).second) {
      w += 'x';  // cheap de-collision; keeps the word pronounceable enough
    }
    words_.push_back(std::move(w));
  }
}

const std::string& Vocabulary::word(std::uint32_t rank) const {
  QADIST_CHECK(rank < words_.size());
  return words_[rank];
}

const std::string& Vocabulary::sample(Rng& rng) const {
  return words_[dist_(rng)];
}

std::uint32_t Vocabulary::sample_rank(Rng& rng) const { return dist_(rng); }

}  // namespace qadist::corpus
