#pragma once

#include <cstdint>
#include <vector>

#include "corpus/collection.hpp"
#include "corpus/entity.hpp"
#include "corpus/fact.hpp"
#include "corpus/vocabulary.hpp"

namespace qadist::corpus {

/// Knobs for the synthetic world. Defaults produce a test-sized corpus;
/// benches scale `num_documents` up.
struct CorpusConfig {
  std::uint64_t seed = 42;
  std::uint32_t num_documents = 400;
  std::uint32_t vocabulary_size = 8000;
  double zipf_exponent = 1.05;

  // Document shape. Lengths are drawn log-normally so a few documents are
  // much longer than most — the heavy tail behind uneven PR sub-task cost.
  double mean_paragraphs_per_doc = 6.0;
  double paragraph_length_sigma = 0.6;  ///< lognormal sigma for doc length
  std::uint32_t min_sentences_per_paragraph = 2;
  std::uint32_t max_sentences_per_paragraph = 6;
  std::uint32_t min_words_per_sentence = 6;
  std::uint32_t max_words_per_sentence = 14;

  // World population.
  std::uint32_t entities_per_type = 120;  ///< pool size per entity type
  double facts_per_document = 1.4;        ///< mean; Poisson-ish per doc
  double distractor_mention_probability = 0.12;  ///< per filler sentence
};

/// The generated world: searchable text plus the ground truth about it.
struct GeneratedCorpus {
  CorpusConfig config;
  Collection collection;
  Gazetteer gazetteer;
  std::vector<Fact> facts;
};

/// Builds a corpus. Deterministic in `config.seed`.
[[nodiscard]] GeneratedCorpus generate_corpus(const CorpusConfig& config);

/// A benchmark/test question with its ground truth attached.
struct Question {
  std::uint32_t id = 0;
  std::string text;
  EntityType gold_type = EntityType::kUnknown;  ///< for evaluation only
  std::string gold_answer;                      ///< for evaluation only
  DocId gold_doc = 0;
};

/// Derives up to `count` questions from distinct corpus facts.
/// Deterministic in `seed`.
[[nodiscard]] std::vector<Question> generate_questions(
    const GeneratedCorpus& corpus, std::size_t count, std::uint64_t seed);

}  // namespace qadist::corpus
