#include "corpus/collection.hpp"

#include <algorithm>
#include <cmath>
#include "common/check.hpp"

namespace qadist::corpus {

Collection::Collection(std::vector<Document> docs) {
  for (auto& d : docs) add(std::move(d));
}

void Collection::add(Document doc) {
  QADIST_CHECK(doc.id == docs_.size(),
               << "document ids must be dense: expected " << docs_.size()
               << " got " << doc.id);
  paragraphs_ += doc.paragraphs.size();
  bytes_ += doc.byte_size();
  docs_.push_back(std::move(doc));
}

const Document& Collection::document(DocId id) const {
  QADIST_CHECK(id < docs_.size(), << "doc id " << id << " out of range");
  return docs_[id];
}

const std::string& Collection::paragraph(const ParagraphRef& ref) const {
  const Document& doc = document(ref.doc);
  QADIST_CHECK(ref.index < doc.paragraphs.size(),
               << "paragraph " << ref.index << " out of range in doc "
               << ref.doc);
  return doc.paragraphs[ref.index];
}

SubCollection::SubCollection(const Collection* parent, DocId first, DocId last)
    : parent_(parent), first_(first), last_(last) {
  QADIST_CHECK(parent != nullptr);
  QADIST_CHECK(first <= last && last <= parent->size());
}

const Document& SubCollection::document(DocId id) const {
  QADIST_CHECK(contains(id));
  return parent_->document(id);
}

std::size_t SubCollection::total_bytes() const {
  std::size_t bytes = 0;
  for (DocId id = first_; id < last_; ++id)
    bytes += parent_->document(id).byte_size();
  return bytes;
}

std::vector<SubCollection> split_collection(const Collection& collection,
                                            std::size_t k) {
  QADIST_CHECK(k >= 1);
  const auto n = collection.size();
  std::vector<SubCollection> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto first = static_cast<DocId>(n * i / k);
    const auto last = static_cast<DocId>(n * (i + 1) / k);
    out.emplace_back(&collection, first, last);
  }
  return out;
}

std::vector<SubCollection> split_collection_skewed(const Collection& collection,
                                                   std::size_t k,
                                                   double size_ratio) {
  QADIST_CHECK(k >= 1);
  QADIST_CHECK(size_ratio >= 1.0, << "size_ratio must be >= 1");
  if (k == 1 || size_ratio == 1.0) return split_collection(collection, k);

  // Geometric weights w_i = r^i with r chosen so w_{k-1}/w_0 = size_ratio.
  const double r = std::pow(size_ratio, 1.0 / static_cast<double>(k - 1));
  std::vector<double> cumulative(k);
  double acc = 0.0;
  double w = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += w;
    cumulative[i] = acc;
    w *= r;
  }

  const auto n = static_cast<double>(collection.size());
  std::vector<SubCollection> out;
  out.reserve(k);
  DocId first = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto last = static_cast<DocId>(
        i + 1 == k ? collection.size()
                   : std::llround(n * cumulative[i] / acc));
    out.emplace_back(&collection, first, std::max(first, last));
    first = std::max(first, last);
  }
  return out;
}

}  // namespace qadist::corpus
