#include "parallel/thread_pool.hpp"

#include <utility>

#include "common/check.hpp"

namespace qadist::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  QADIST_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QADIST_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    QADIST_CHECK(!shutting_down_, << "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qadist::parallel
