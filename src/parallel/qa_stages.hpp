#pragma once

#include <span>

#include "common/units.hpp"
#include "parallel/executor.hpp"
#include "qa/engine.hpp"

namespace qadist::parallel {

/// Result of a host-parallel PR(+PS) stage: the scored paragraphs from all
/// sub-collections, ready for the centralized PO module.
struct ParallelRetrievalResult {
  std::vector<qa::ScoredParagraph> paragraphs;
  Seconds wall = 0.0;
  ExecutorReport report;
};

/// Runs paragraph retrieval + paragraph scoring across host threads, one
/// item per sub-collection — the paper's "Paragraph Retrieval (k) →
/// Paragraph Scoring (k)" pipeline legs (Fig. 3), ending at the paragraph
/// merging module (here: concatenation + deterministic ordering is left to
/// PO). ISEND is rejected: document collections are not rank-sorted, so the
/// paper deems ISEND inapplicable to PR (Sec. 6.3).
[[nodiscard]] ParallelRetrievalResult parallel_retrieve_and_score(
    const qa::Engine& engine, const qa::ProcessedQuestion& question,
    ThreadPool& pool, const ExecutorOptions& options);

/// Result of a host-parallel AP stage.
struct ParallelAnswerResult {
  std::vector<qa::Answer> answers;
  Seconds wall = 0.0;
  ExecutorReport report;
};

/// Runs answer processing across host threads, one item per accepted
/// paragraph, using any of SEND/ISEND/RECV; per-worker answer buffers are
/// merged and globally sorted afterwards (the answer merging + answer
/// sorting modules of Fig. 3). The final answer list is identical to the
/// sequential pipeline's regardless of strategy or thread interleaving —
/// tested as an invariant.
[[nodiscard]] ParallelAnswerResult parallel_answer_processing(
    const qa::Engine& engine, const qa::ProcessedQuestion& question,
    std::span<const qa::ScoredParagraph> paragraphs, ThreadPool& pool,
    const ExecutorOptions& options);

/// Full question answering with host-parallel PR+PS and AP stages and
/// centralized QP/PO. Stage timings are reported like Engine::answer's.
[[nodiscard]] qa::QAResult answer_parallel(const qa::Engine& engine,
                                           std::uint32_t id,
                                           const std::string& text,
                                           ThreadPool& pool,
                                           const ExecutorOptions& pr_options,
                                           const ExecutorOptions& ap_options);

/// Inter-question parallelism on the host: answers a whole batch with one
/// question per pool task (each question runs the sequential pipeline).
/// This is the throughput side of the paper's design — questions are
/// independent, so the engine's const stage API shares one index across
/// all workers. Results are returned in input order.
[[nodiscard]] std::vector<qa::QAResult> answer_batch(
    const qa::Engine& engine, std::span<const corpus::Question> questions,
    ThreadPool& pool);

}  // namespace qadist::parallel
