#pragma once

#include <functional>
#include <vector>

#include "parallel/partition.hpp"
#include "parallel/thread_pool.hpp"

namespace qadist::parallel {

/// Failure injection: `worker` permanently dies after it has processed
/// `after_items` items (counted across the whole run). Models the node /
/// network failures the paper's distribution algorithms recover from
/// (Fig. 5c step 4, Fig. 6b step iv).
struct FailureSpec {
  std::size_t worker = 0;
  std::size_t after_items = 0;
};

struct ExecutorOptions {
  Strategy strategy = Strategy::kRecv;
  std::size_t workers = 4;
  std::size_t chunk_size = 40;        ///< RECV only
  std::vector<double> weights;        ///< empty => equal weights
  std::vector<FailureSpec> failures;  ///< injected failures
};

/// What happened during a run — recovery rounds, per-worker item counts.
struct ExecutorReport {
  std::size_t rounds = 0;  ///< dispatch rounds (>1 means recovery happened)
  std::size_t surviving_workers = 0;
  std::vector<std::size_t> items_per_worker;
};

/// Executes an iterative task (items 0..n-1) across host threads using one
/// of the paper's partitioning strategies, with failure recovery:
///
///  * SEND/ISEND (sender-controlled): partitions are dispatched, the sender
///    waits for termination; unprocessed partitions of failed workers are
///    concatenated into a new task and re-dispatched over the survivors —
///    the distribution loop of paper Fig. 5(c).
///  * RECV (receiver-controlled): workers self-schedule over equal chunks;
///    a failing worker's unfinished chunk remainder returns to the chunk
///    set and the worker leaves the pool — paper Fig. 6(b).
///
/// Guarantee (tested): `fn` is invoked exactly once per item as long as at
/// least one worker survives; otherwise run() aborts via QADIST_CHECK.
///
/// `fn(item, worker)` may run concurrently with itself on different items
/// and must be thread-safe with respect to shared state it touches.
class PartitionedExecutor {
 public:
  explicit PartitionedExecutor(ThreadPool& pool) : pool_(&pool) {}

  using ItemFn = std::function<void(std::size_t item, std::size_t worker)>;

  ExecutorReport run(std::size_t total_items, const ExecutorOptions& options,
                     const ItemFn& fn);

 private:
  ExecutorReport run_sender(std::size_t total_items,
                            const ExecutorOptions& options, const ItemFn& fn);
  ExecutorReport run_receiver(std::size_t total_items,
                              const ExecutorOptions& options, const ItemFn& fn);

  ThreadPool* pool_;
};

}  // namespace qadist::parallel
