#include "parallel/executor.hpp"

#include <atomic>
#include <deque>
#include <mutex>

#include "common/check.hpp"

namespace qadist::parallel {

namespace {

/// Per-worker run state shared between dispatch rounds.
struct WorkerState {
  std::size_t processed = 0;           // items completed so far (whole run)
  std::size_t fail_after = SIZE_MAX;   // injected failure threshold
  bool failed = false;
};

std::vector<WorkerState> init_workers(const ExecutorOptions& options) {
  std::vector<WorkerState> workers(options.workers);
  for (const auto& f : options.failures) {
    QADIST_CHECK(f.worker < options.workers,
                 << "failure spec for unknown worker " << f.worker);
    workers[f.worker].fail_after = f.after_items;
  }
  return workers;
}

std::vector<double> effective_weights(const ExecutorOptions& options,
                                      std::size_t count) {
  if (options.weights.empty()) return std::vector<double>(count, 1.0);
  QADIST_CHECK(options.weights.size() == options.workers,
               << "weights arity mismatch");
  return options.weights;
}

}  // namespace

ExecutorReport PartitionedExecutor::run(std::size_t total_items,
                                        const ExecutorOptions& options,
                                        const ItemFn& fn) {
  QADIST_CHECK(options.workers >= 1);
  QADIST_CHECK(fn != nullptr);
  if (options.strategy == Strategy::kRecv) {
    return run_receiver(total_items, options, fn);
  }
  return run_sender(total_items, options, fn);
}

ExecutorReport PartitionedExecutor::run_sender(std::size_t total_items,
                                               const ExecutorOptions& options,
                                               const ItemFn& fn) {
  auto workers = init_workers(options);
  const auto all_weights = effective_weights(options, options.workers);

  // `pending` holds the item ids still to process; each round re-partitions
  // it over the surviving workers (paper Fig. 5c: "build a new task from
  // the unprocessed partitions; jump to Step 1").
  std::vector<std::size_t> pending(total_items);
  for (std::size_t i = 0; i < total_items; ++i) pending[i] = i;

  ExecutorReport report;
  while (!pending.empty()) {
    ++report.rounds;
    std::vector<std::size_t> alive;
    std::vector<double> weights;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].failed) {
        alive.push_back(w);
        weights.push_back(all_weights[w]);
      }
    }
    QADIST_CHECK(!alive.empty(),
                 << "all workers failed with " << pending.size()
                 << " items unprocessed");

    const auto partitions =
        options.strategy == Strategy::kIsend
            ? partition_isend(pending.size(), weights)
            : partition_send(pending.size(), weights);

    // done[] is indexed by position in `pending`; each slot is written by
    // exactly one worker, read by the dispatcher after wait_idle().
    std::vector<char> done(pending.size(), 0);

    for (const auto& partition : partitions) {
      const std::size_t w = alive[partition.worker];
      WorkerState& state = workers[w];
      pool_->submit([&, w, items = partition.items] {
        for (std::size_t idx : items) {
          if (state.processed >= state.fail_after) {
            state.failed = true;
            return;  // dies mid-partition; remainder stays unprocessed
          }
          fn(pending[idx], w);
          done[idx] = 1;
          ++state.processed;
        }
      });
    }
    pool_->wait_idle();

    std::vector<std::size_t> unprocessed;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (done[i] == 0) unprocessed.push_back(pending[i]);
    }
    pending = std::move(unprocessed);
  }

  for (const auto& w : workers) {
    report.items_per_worker.push_back(w.processed);
    if (!w.failed) ++report.surviving_workers;
  }
  return report;
}

ExecutorReport PartitionedExecutor::run_receiver(std::size_t total_items,
                                                 const ExecutorOptions& options,
                                                 const ItemFn& fn) {
  auto workers = init_workers(options);

  std::mutex mutex;
  std::deque<Chunk> available;
  for (const Chunk& c : make_chunks(total_items, options.chunk_size)) {
    available.push_back(c);
  }
  std::size_t outstanding = total_items;

  ExecutorReport report;
  report.rounds = 1;

  for (std::size_t w = 0; w < options.workers; ++w) {
    pool_->submit([&, w] {
      WorkerState& state = workers[w];
      for (;;) {
        Chunk chunk;
        {
          std::lock_guard lock(mutex);
          if (available.empty()) return;
          chunk = available.front();
          available.pop_front();
        }
        for (std::size_t item = chunk.begin; item < chunk.end; ++item) {
          if (state.processed >= state.fail_after) {
            // Die mid-chunk: the unprocessed remainder goes back to the
            // chunk set for a surviving worker (paper Fig. 6b step iv-z).
            state.failed = true;
            std::lock_guard lock(mutex);
            available.push_back(Chunk{item, chunk.end});
            return;
          }
          fn(item, w);
          ++state.processed;
          {
            std::lock_guard lock(mutex);
            --outstanding;
          }
        }
      }
    });
  }
  pool_->wait_idle();

  // Survivors exit when `available` momentarily empties, which can strand a
  // re-queued remainder chunk from a late failure. Drain until done.
  for (;;) {
    std::vector<std::size_t> alive;
    {
      std::lock_guard lock(mutex);
      if (outstanding == 0) break;
      QADIST_CHECK(!available.empty(), << "items lost");
    }
    for (std::size_t w = 0; w < options.workers; ++w) {
      if (!workers[w].failed) alive.push_back(w);
    }
    QADIST_CHECK(!alive.empty(), << "all workers failed with items pending");
    ++report.rounds;
    for (std::size_t w : alive) {
      pool_->submit([&, w] {
        WorkerState& state = workers[w];
        for (;;) {
          Chunk chunk;
          {
            std::lock_guard lock(mutex);
            if (available.empty()) return;
            chunk = available.front();
            available.pop_front();
          }
          for (std::size_t item = chunk.begin; item < chunk.end; ++item) {
            if (state.processed >= state.fail_after) {
              state.failed = true;
              std::lock_guard lock(mutex);
              available.push_back(Chunk{item, chunk.end});
              return;
            }
            fn(item, w);
            ++state.processed;
            {
              std::lock_guard lock(mutex);
              --outstanding;
            }
          }
        }
      });
    }
    pool_->wait_idle();
  }

  for (const auto& w : workers) {
    report.items_per_worker.push_back(w.processed);
    if (!w.failed) ++report.surviving_workers;
  }
  return report;
}

}  // namespace qadist::parallel
