#include "parallel/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace qadist::parallel {

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::kSend:
      return "SEND";
    case Strategy::kIsend:
      return "ISEND";
    case Strategy::kRecv:
      return "RECV";
  }
  QADIST_UNREACHABLE("bad Strategy");
}

std::vector<std::size_t> apportion(std::size_t total_items,
                                   std::span<const double> weights) {
  QADIST_CHECK(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    QADIST_CHECK(w >= 0.0, << "negative weight " << w);
    sum += w;
  }
  QADIST_CHECK(sum > 0.0, << "all weights zero");

  const std::size_t n = weights.size();
  std::vector<std::size_t> counts(n, 0);
  std::vector<double> remainders(n, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(total_items) * weights[i] / sum;
    counts[i] = static_cast<std::size_t>(std::floor(exact));
    remainders[i] = exact - std::floor(exact);
    assigned += counts[i];
  }
  // Hand the leftover items to the largest remainders (ties: lower index).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  for (std::size_t k = 0; assigned < total_items; ++k) {
    ++counts[order[k % n]];
    ++assigned;
  }
  return counts;
}

namespace {

/// Drops zero-item partitions (no point shipping them) and asserts the
/// survivors still cover every item exactly once.
std::vector<Partition> drop_empty_checked(std::vector<Partition> partitions,
                                          std::size_t total_items) {
  std::erase_if(partitions, [](const Partition& p) { return p.items.empty(); });
  std::size_t covered = 0;
  for (const auto& p : partitions) covered += p.items.size();
  QADIST_CHECK(covered == total_items,
               << "partitions cover " << covered << "/" << total_items);
  return partitions;
}

}  // namespace

std::vector<Partition> partition_send(std::size_t total_items,
                                      std::span<const double> weights) {
  const auto counts = apportion(total_items, weights);
  std::vector<Partition> partitions(weights.size());
  std::size_t next = 0;
  for (std::size_t w = 0; w < weights.size(); ++w) {
    partitions[w].worker = w;
    partitions[w].items.reserve(counts[w]);
    for (std::size_t k = 0; k < counts[w]; ++k)
      partitions[w].items.push_back(next++);
  }
  QADIST_CHECK(next == total_items);
  return drop_empty_checked(std::move(partitions), total_items);
}

std::vector<Partition> partition_isend(std::size_t total_items,
                                       std::span<const double> weights) {
  const auto counts = apportion(total_items, weights);
  std::vector<Partition> partitions(weights.size());
  std::vector<std::size_t> remaining = counts;
  for (std::size_t w = 0; w < weights.size(); ++w) {
    partitions[w].worker = w;
    partitions[w].items.reserve(counts[w]);
  }
  // Deal items round-robin, skipping workers whose quota is exhausted. With
  // equal weights this is the plain interleaving of paper Fig. 5(b); with
  // unequal weights heavier workers simply stay in the rotation longer.
  std::size_t item = 0;
  while (item < total_items) {
    bool dealt = false;
    for (std::size_t w = 0; w < weights.size() && item < total_items; ++w) {
      if (remaining[w] > 0) {
        partitions[w].items.push_back(item++);
        --remaining[w];
        dealt = true;
      }
    }
    QADIST_CHECK(dealt, << "apportion under-counted");
  }
  return drop_empty_checked(std::move(partitions), total_items);
}

std::vector<Chunk> make_chunks(std::size_t total_items,
                               std::size_t chunk_size) {
  QADIST_CHECK(chunk_size >= 1);
  std::vector<Chunk> chunks;
  if (total_items == 0) return chunks;
  const std::size_t full = total_items / chunk_size;
  for (std::size_t c = 0; c < full; ++c) {
    chunks.push_back(Chunk{c * chunk_size, (c + 1) * chunk_size});
  }
  if (chunks.empty()) {
    chunks.push_back(Chunk{0, total_items});
  } else {
    // Absorb the remainder into the final (padded) chunk — paper Fig. 6(a).
    chunks.back().end = total_items;
  }
  return chunks;
}

}  // namespace qadist::parallel
