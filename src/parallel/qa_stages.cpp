#include "parallel/qa_stages.hpp"

#include <chrono>

#include "common/check.hpp"

namespace qadist::parallel {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelRetrievalResult parallel_retrieve_and_score(
    const qa::Engine& engine, const qa::ProcessedQuestion& question,
    ThreadPool& pool, const ExecutorOptions& options) {
  QADIST_CHECK(options.strategy != Strategy::kIsend,
               << "ISEND does not apply to PR: collections are unranked "
                  "(paper Sec. 6.3)");
  ParallelRetrievalResult result;
  const std::size_t subs = engine.subcollection_count();
  std::vector<std::vector<qa::ScoredParagraph>> buffers(subs);

  PartitionedExecutor executor(pool);
  const double t0 = now_seconds();
  result.report = executor.run(
      subs, options, [&](std::size_t sub, std::size_t /*worker*/) {
        auto retrieved = engine.retrieve(sub, question);
        auto& out = buffers[sub];
        out.reserve(retrieved.size());
        for (auto& p : retrieved) {
          out.push_back(engine.score(question, std::move(p)));
        }
      });
  // Paragraph merging: concatenate in sub-collection order so the merged
  // set is independent of worker interleaving.
  for (auto& buffer : buffers) {
    result.paragraphs.insert(result.paragraphs.end(),
                             std::make_move_iterator(buffer.begin()),
                             std::make_move_iterator(buffer.end()));
  }
  result.wall = now_seconds() - t0;
  return result;
}

ParallelAnswerResult parallel_answer_processing(
    const qa::Engine& engine, const qa::ProcessedQuestion& question,
    std::span<const qa::ScoredParagraph> paragraphs, ThreadPool& pool,
    const ExecutorOptions& options) {
  ParallelAnswerResult result;
  std::vector<std::vector<qa::Answer>> buffers(options.workers);

  PartitionedExecutor executor(pool);
  const double t0 = now_seconds();
  result.report = executor.run(
      paragraphs.size(), options, [&](std::size_t item, std::size_t worker) {
        auto answers =
            engine.answer_processor().process_paragraph(question,
                                                        paragraphs[item]);
        auto& out = buffers[worker];
        out.insert(out.end(), std::make_move_iterator(answers.begin()),
                   std::make_move_iterator(answers.end()));
      });
  // Answer merging + answer sorting (paper Fig. 3): global deterministic
  // order regardless of which worker produced what.
  std::vector<qa::Answer> merged;
  for (auto& buffer : buffers) {
    merged.insert(merged.end(), std::make_move_iterator(buffer.begin()),
                  std::make_move_iterator(buffer.end()));
  }
  result.answers = qa::sort_answers(
      std::move(merged), engine.answer_processor().config().answers_requested);
  result.wall = now_seconds() - t0;
  return result;
}

std::vector<qa::QAResult> answer_batch(
    const qa::Engine& engine, std::span<const corpus::Question> questions,
    ThreadPool& pool) {
  std::vector<qa::QAResult> results(questions.size());
  for (std::size_t i = 0; i < questions.size(); ++i) {
    pool.submit([&engine, &questions, &results, i] {
      results[i] = engine.answer(questions[i]);
    });
  }
  pool.wait_idle();
  return results;
}

qa::QAResult answer_parallel(const qa::Engine& engine, std::uint32_t id,
                             const std::string& text, ThreadPool& pool,
                             const ExecutorOptions& pr_options,
                             const ExecutorOptions& ap_options) {
  qa::QAResult result;

  double t0 = now_seconds();
  result.question = engine.process_question(id, text);
  result.times.qp = now_seconds() - t0;

  auto retrieval =
      parallel_retrieve_and_score(engine, result.question, pool, pr_options);
  // PR and PS ran fused on the workers; attribute the fused wall time to PR
  // (PS is ~2% of it, paper Table 2) and report PS as merged.
  result.times.pr = retrieval.wall;
  result.times.ps = 0.0;
  result.work.paragraphs_retrieved = retrieval.paragraphs.size();

  t0 = now_seconds();
  auto accepted = engine.order(std::move(retrieval.paragraphs));
  result.work.paragraphs_accepted = accepted.size();
  result.times.po = now_seconds() - t0;

  auto answers = parallel_answer_processing(engine, result.question, accepted,
                                            pool, ap_options);
  result.times.ap = answers.wall;
  result.answers = std::move(answers.answers);
  return result;
}

}  // namespace qadist::parallel
