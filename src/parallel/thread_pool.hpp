#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qadist::parallel {

/// Fixed-size worker pool with a FIFO task queue.
///
/// Deliberately minimal: the partitioned executors built on top own all
/// scheduling policy (that's the point of the paper); the pool only
/// provides host threads. `wait_idle()` blocks until the queue is empty
/// *and* every worker has finished its current task, which is the join
/// point sender-controlled distribution needs ("wait task termination",
/// paper Fig. 5c).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A task that throws does not kill the worker thread:
  /// the first exception of a batch is captured and rethrown from the next
  /// wait_idle() (later ones are dropped — by then the batch is already
  /// failing and the first cause is the one worth reporting).
  void submit(std::function<void()> task);

  /// Blocks the calling thread until all submitted work has completed,
  /// then rethrows the first exception any task raised since the previous
  /// wait_idle(). The pool stays usable after the throw.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not finished
  std::exception_ptr first_error_;  // first task failure since last wait_idle
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qadist::parallel
