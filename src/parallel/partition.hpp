#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace qadist::parallel {

/// The three partitioning strategies of paper Sec. 4.1.
enum class Strategy {
  kSend,   ///< sender-controlled, contiguous weighted blocks (Fig. 5a)
  kIsend,  ///< sender-controlled, weighted interleaving (Fig. 5b)
  kRecv,   ///< receiver-controlled chunk self-scheduling (Fig. 6)
};

[[nodiscard]] std::string_view to_string(Strategy s);

/// One worker's share of the item array (item indices, not values — the
/// same partitioner drives host threads and simulated nodes). Workers
/// apportioned zero items get no Partition at all: shipping an empty
/// partition still costs a message round-trip, so partition_send /
/// partition_isend drop them before dispatch. `worker` always indexes the
/// caller's weight array, so results stay attributable after the drop.
struct Partition {
  std::size_t worker = 0;
  std::vector<std::size_t> items;
};

/// Splits `total_items` into integer counts proportional to `weights`
/// (largest-remainder apportionment; weights need not be normalized; all
/// counts sum exactly to total_items). This is Step 5 of the paper's
/// meta-scheduling algorithm turned into arithmetic.
[[nodiscard]] std::vector<std::size_t> apportion(
    std::size_t total_items, std::span<const double> weights);

/// SEND: worker i receives the next count[i] *consecutive* items. Assumes
/// near-uniform per-item cost — the assumption the paper shows failing for
/// AP (Fig. 7a: equal counts, 60s spread in finish times). Empty
/// partitions are dropped (see Partition).
[[nodiscard]] std::vector<Partition> partition_send(
    std::size_t total_items, std::span<const double> weights);

/// ISEND: worker i still receives count[i] items, but dealt in a weighted
/// round-robin over the (rank-sorted) item array, so each worker's average
/// per-item cost is similar when cost decreases with rank (paper Fig. 5b).
/// Empty partitions are dropped (see Partition).
[[nodiscard]] std::vector<Partition> partition_isend(
    std::size_t total_items, std::span<const double> weights);

/// RECV chunking: equal-size [begin, end) chunks, the last one padded to
/// absorb the remainder (paper Fig. 6a). Workers self-schedule over these.
struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const Chunk&, const Chunk&) = default;
};

[[nodiscard]] std::vector<Chunk> make_chunks(std::size_t total_items,
                                             std::size_t chunk_size);

}  // namespace qadist::parallel
