#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace qadist {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void Samples::sort() {
  if (sorted_) return;
  std::sort(values_.begin(), values_.end());
  sorted_ = true;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::quantile_of(const std::vector<double>& sorted, double q) {
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double Samples::quantile(double q) {
  QADIST_CHECK(q >= 0.0 && q <= 1.0, << "quantile " << q << " out of range");
  QADIST_CHECK(!values_.empty(), << "quantile of empty sample set");
  sort();
  return quantile_of(values_, q);
}

double Samples::quantile(double q) const {
  QADIST_CHECK(q >= 0.0 && q <= 1.0, << "quantile " << q << " out of range");
  QADIST_CHECK(!values_.empty(), << "quantile of empty sample set");
  if (sorted_) return quantile_of(values_, q);
  std::vector<double> copy(values_);
  std::sort(copy.begin(), copy.end());
  return quantile_of(copy, q);
}

double Samples::min() const {
  QADIST_CHECK(!values_.empty(), << "quantile of empty sample set");
  if (sorted_) return values_.front();
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  QADIST_CHECK(!values_.empty(), << "quantile of empty sample set");
  if (sorted_) return values_.back();
  return *std::max_element(values_.begin(), values_.end());
}

std::string Samples::summary() const {
  std::ostringstream os;
  if (values_.empty()) {
    os << "n=0";
    return os.str();
  }
  // One sorted copy for every order statistic in the line (a const method
  // must not sort values_ in place).
  std::vector<double> copy(values_);
  std::sort(copy.begin(), copy.end());
  os << "n=" << copy.size() << " mean=" << mean()
     << " p50=" << quantile_of(copy, 0.5) << " p95=" << quantile_of(copy, 0.95)
     << " max=" << copy.back();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  QADIST_CHECK(hi > lo, << "histogram range empty: [" << lo << ", " << hi << ")");
  QADIST_CHECK(buckets >= 1);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x) {
  if (!std::isfinite(x)) {
    // NaN compares false against every bound and ±inf overflows the index
    // cast (UB), so non-finite samples get their own tally instead of a
    // bucket.
    ++nonfinite_;
    return;
  }
  // Clamp in double space: casting a huge finite value (e.g. 1e300 with
  // unit-width buckets) to an integer before clamping is equally UB.
  double pos = (x - lo_) / bucket_width_;
  pos = std::clamp(pos, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(pos)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  QADIST_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_low(std::size_t bucket) const {
  QADIST_CHECK(bucket < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket) + bucket_width_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os.width(12);
    os << bucket_low(b) << " |";
    os << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace qadist
