#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qadist {

/// Aligned plain-text table, used by every benchmark harness to print the
/// paper's tables in a recognizable layout.
///
///   TextTable t({"Module", "% of Task Time"});
///   t.add_row({"QP", "1.2 %"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t rows() const;

  /// Renders with a header rule; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Convenience: "123.46" / "1.2 %" style cell helpers.
[[nodiscard]] std::string cell(double value, int decimals = 2);
[[nodiscard]] std::string cell_percent(double fraction, int decimals = 1);

}  // namespace qadist
