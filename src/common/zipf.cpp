#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace qadist {

ZipfDistribution::ZipfDistribution(std::uint32_t n, double s) : s_(s) {
  QADIST_CHECK(n >= 1, << "Zipf needs at least one rank");
  QADIST_CHECK(s >= 0.0, << "Zipf exponent must be non-negative, got " << s);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k) + 1.0, s_);
    cdf_[k] = acc;
  }
  norm_ = acc;
  const double inv = 1.0 / acc;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

std::uint32_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::uint32_t rank) const {
  QADIST_CHECK(rank < cdf_.size());
  return 1.0 / (std::pow(static_cast<double>(rank) + 1.0, s_) * norm_);
}

}  // namespace qadist
