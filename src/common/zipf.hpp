#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qadist {

/// Zipfian sampler over ranks {0, 1, ..., n-1} with exponent s:
/// P(rank = k) proportional to 1 / (k+1)^s.
///
/// Term frequencies in natural-language corpora follow a Zipf law, and the
/// synthetic corpus generator relies on this to reproduce realistic posting
/// list skew (a handful of very long lists, a long tail of short ones) —
/// the property that makes paragraph-retrieval cost vary so widely across
/// sub-collections in the paper's Figure 7.
///
/// Implementation: inverse-CDF over a precomputed cumulative table. Build is
/// O(n); sampling is O(log n). For corpus-sized vocabularies (<= a few
/// hundred thousand terms) this is both simple and fast, and unlike
/// rejection-based samplers it is exactly distributed.
class ZipfDistribution {
 public:
  /// @param n number of ranks; must be >= 1.
  /// @param s exponent; s = 0 degenerates to uniform, s ~ 1 is classic Zipf.
  ZipfDistribution(std::uint32_t n, double s);

  /// Draws a rank in [0, n).
  std::uint32_t operator()(Rng& rng) const;

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::uint32_t rank) const;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  [[nodiscard]] double exponent() const { return s_; }

 private:
  double s_;
  double norm_;  // generalized harmonic number H_{n,s}
  std::vector<double> cdf_;
};

}  // namespace qadist
