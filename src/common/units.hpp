#pragma once

#include <cstdint>

namespace qadist {

/// Simulation time is kept in double seconds throughout; these aliases make
/// interfaces self-documenting.
using Seconds = double;
using Bytes = std::uint64_t;

/// Bandwidth in bytes/second. The paper quotes link speeds in bits/second
/// (10 Mbps Ethernet etc.), so conversions are provided to keep bench code
/// speaking the paper's language.
struct Bandwidth {
  double bytes_per_second = 0.0;

  [[nodiscard]] static constexpr Bandwidth from_bits_per_second(double bps) {
    return Bandwidth{bps / 8.0};
  }
  [[nodiscard]] static constexpr Bandwidth from_mbps(double mbps) {
    return from_bits_per_second(mbps * 1e6);
  }
  [[nodiscard]] static constexpr Bandwidth from_gbps(double gbps) {
    return from_bits_per_second(gbps * 1e9);
  }
  [[nodiscard]] static constexpr Bandwidth from_megabytes_per_second(double mbs) {
    return Bandwidth{mbs * 1e6};
  }

  [[nodiscard]] constexpr double mbps() const {
    return bytes_per_second * 8.0 / 1e6;
  }

  /// Time to move `n` bytes at this bandwidth.
  [[nodiscard]] constexpr Seconds transfer_time(double n) const {
    return n / bytes_per_second;
  }
};

constexpr Bytes operator""_KB(unsigned long long v) { return v * 1024; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * 1024 * 1024; }
constexpr Bytes operator""_GB(unsigned long long v) {
  return v * 1024 * 1024 * 1024;
}

}  // namespace qadist
