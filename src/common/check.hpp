#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qadist {

/// Terminates the program with a diagnostic. Used by QADIST_CHECK; callable
/// directly for unconditional failures ("unreachable" branches).
[[noreturn]] inline void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "qadist panic at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace detail {

// Builds the failure message lazily so the happy path stays cheap.
struct CheckMessage {
  std::ostringstream os;
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os << v;
    return *this;
  }
  [[nodiscard]] std::string str() const { return os.str(); }
};

}  // namespace detail

}  // namespace qadist

/// Invariant check that stays enabled in release builds. Prefer this over
/// <cassert> for conditions whose violation means internal corruption: a
/// scheduler handing out work twice is not something to optimize away.
#define QADIST_CHECK(cond, ...)                                              \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::qadist::panic(__FILE__, __LINE__,                                    \
                      (::qadist::detail::CheckMessage{}                      \
                       << "QADIST_CHECK(" #cond ") failed " __VA_ARGS__)     \
                          .str());                                           \
    }                                                                        \
  } while (false)

/// Marks a branch that must never execute.
#define QADIST_UNREACHABLE(msg) ::qadist::panic(__FILE__, __LINE__, (msg))
