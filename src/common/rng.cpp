#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace qadist {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  has_normal_spare_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  QADIST_CHECK(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  QADIST_CHECK(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  return lo + below(span + 1);
}

double Rng::uniform01() {
  // 53 random bits mapped to [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double rate) {
  QADIST_CHECK(rate > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return mean + stddev * normal_spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  normal_spare_ = v * factor;
  has_normal_spare_ = true;
  return mean + stddev * u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() {
  // Mixing two successive outputs keeps child streams decorrelated.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 29) ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace qadist
