#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace qadist {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, std::string_view component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line.append(component.data(), component.size());
  line += ": ";
  line += message;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace qadist
