#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace qadist {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text)
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  const int decimals = unit == 0 ? 0 : (bytes < 10 ? 2 : 1);
  return format_double(bytes, decimals) + " " + kUnits[unit];
}

}  // namespace qadist
