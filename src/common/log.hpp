#pragma once

#include <sstream>
#include <string>

namespace qadist {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded. Benches set
/// this to kWarn so table output stays clean.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one formatted line to stderr (thread-safe: single write call).
void log_message(LogLevel level, std::string_view component,
                 const std::string& message);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace qadist

/// Streaming log macros: QADIST_LOG_INFO("cluster") << "node " << id << " up";
#define QADIST_LOG_AT(level, component)                    \
  if (static_cast<int>(level) < static_cast<int>(::qadist::log_level())) { \
  } else                                                   \
    ::qadist::detail::LogLine(level, component)

#define QADIST_LOG_DEBUG(component) QADIST_LOG_AT(::qadist::LogLevel::kDebug, component)
#define QADIST_LOG_INFO(component) QADIST_LOG_AT(::qadist::LogLevel::kInfo, component)
#define QADIST_LOG_WARN(component) QADIST_LOG_AT(::qadist::LogLevel::kWarn, component)
#define QADIST_LOG_ERROR(component) QADIST_LOG_AT(::qadist::LogLevel::kError, component)
