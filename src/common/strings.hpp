#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qadist {

/// Splits on a single delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char delim);

/// Splits on any run of whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view text);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// ASCII lowercasing (the corpus is ASCII by construction).
[[nodiscard]] std::string to_lower(std::string_view text);

/// printf-light formatting of a double with fixed decimals.
[[nodiscard]] std::string format_double(double value, int decimals);

/// Human-readable byte count ("1.5 MB").
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace qadist
