#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace qadist {

namespace {

bool looks_numeric(std::string_view s) {
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ' ' &&
               c != 'x' && c != 'e') {
      return false;
    }
  }
  return digit;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QADIST_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  QADIST_CHECK(cells.size() == headers_.size(),
               << "row arity " << cells.size() << " != header arity "
               << headers_.size());
  rows_.push_back({std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back({{}, true}); }

std::size_t TextTable::rows() const {
  std::size_t n = 0;
  for (const auto& r : rows_)
    if (!r.separator) ++n;
  return n;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  const auto rule = [&] {
    std::string line = "+";
    for (auto w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  }();

  const auto emit = [&](const std::vector<std::string>& cells,
                        std::ostringstream& os) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto& text = cells[c];
      const std::size_t pad = widths[c] - text.size();
      if (looks_numeric(text)) {
        os << " " << std::string(pad, ' ') << text << " |";
      } else {
        os << " " << text << std::string(pad, ' ') << " |";
      }
    }
    os << "\n";
  };

  std::ostringstream os;
  os << rule;
  emit(headers_, os);
  os << rule;
  for (const auto& row : rows_) {
    if (row.separator) {
      os << rule;
    } else {
      emit(row.cells, os);
    }
  }
  os << rule;
  return os.str();
}

std::string cell(double value, int decimals) {
  return format_double(value, decimals);
}

std::string cell_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + " %";
}

}  // namespace qadist
