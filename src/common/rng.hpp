#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

namespace qadist {

/// Deterministic, fast PRNG: xoshiro256** seeded via SplitMix64.
///
/// Every stochastic component in qadist takes an explicit seed so that
/// corpus generation, workload arrival processes, and simulations are fully
/// reproducible run-to-run. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value (xoshiro256** scrambler).
  result_type operator()();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Normally distributed value (Marsaglia polar method).
  double normal(double mean, double stddev);

  /// Log-normal with the given underlying normal parameters. Useful for
  /// modelling heavy-tailed per-item service times.
  double lognormal(double mu, double sigma);

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; use to give each parallel
  /// worker / node its own stream without correlation.
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second output of the polar method.
  double normal_spare_ = 0.0;
  bool has_normal_spare_ = false;
};

/// SplitMix64 step: the canonical 64-bit seed expander.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace qadist
