#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qadist {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs — the cluster simulator feeds millions
/// of latency samples through these during a throughput experiment.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1 denom)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample reservoir with exact quantiles. Stores all samples; intended for
/// experiment-scale data (up to a few million doubles), where exactness is
/// worth more than memory.
///
/// Quantile queries need order statistics. The non-const overloads sort
/// the reservoir in place (amortized across queries); the const overloads
/// never mutate — on an unsorted reservoir they work from a sorted copy,
/// so concurrent const readers are race-free. Callers holding a const view
/// of a large unsorted reservoir should copy once and sort() explicitly
/// rather than pay the copy per query.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  /// Sorts the reservoir in place; subsequent const queries read order
  /// statistics directly. add() invalidates the sorted state.
  void sort();
  [[nodiscard]] bool is_sorted() const { return sorted_; }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Quantile q in [0,1] by linear interpolation between order statistics.
  /// Panics on an empty sample set — use quantile_or when emptiness is a
  /// legal state.
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] double quantile(double q) const;

  /// Non-asserting quantile: `fallback` when the sample set is empty.
  /// Exporters serialize whatever ran, including runs where a metric never
  /// fired (no crashes, no migrations), so they must not hard-fail here.
  [[nodiscard]] double quantile_or(double q, double fallback) {
    return values_.empty() ? fallback : quantile(q);
  }
  [[nodiscard]] double quantile_or(double q, double fallback) const {
    return values_.empty() ? fallback : quantile(q);
  }
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() { return quantile(0.0); }
  [[nodiscard]] double min() const;  ///< O(n) scan when unsorted
  [[nodiscard]] double max() { return quantile(1.0); }
  [[nodiscard]] double max() const;  ///< O(n) scan when unsorted

  /// "mean=.. p50=.. p95=.. max=.." one-liner for logs.
  [[nodiscard]] std::string summary() const;

 private:
  /// Interpolated quantile over an already-sorted vector.
  [[nodiscard]] static double quantile_of(const std::vector<double>& sorted,
                                          double q);

  std::vector<double> values_;
  bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); finite out-of-range samples clamp
/// to the edge buckets, non-finite samples (NaN, ±inf) are tallied in a
/// dedicated counter instead of being bucketed. Used for service-time
/// distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  /// Bucketed (finite) samples only; excludes nonfinite().
  [[nodiscard]] std::size_t total() const { return total_; }
  /// NaN/±inf samples seen by add() — never bucketed, never UB.
  [[nodiscard]] std::size_t nonfinite() const { return nonfinite_; }
  [[nodiscard]] double bucket_low(std::size_t bucket) const;
  [[nodiscard]] double bucket_high(std::size_t bucket) const;

  /// Renders an ASCII bar chart, one bucket per line.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nonfinite_ = 0;
};

}  // namespace qadist
