#include "simnet/link_fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace qadist::simnet {

LinkFaultInjector::LinkFaultInjector(LinkFaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {
  QADIST_CHECK(plan_.drop_probability >= 0.0 && plan_.drop_probability <= 1.0,
               << "drop_probability out of [0,1]: " << plan_.drop_probability);
  QADIST_CHECK(
      plan_.duplicate_probability >= 0.0 && plan_.duplicate_probability <= 1.0,
      << "duplicate_probability out of [0,1]: " << plan_.duplicate_probability);
  QADIST_CHECK(std::isfinite(plan_.jitter_min) &&
                   std::isfinite(plan_.jitter_max),
               << "jitter bounds must be finite");
  QADIST_CHECK(plan_.jitter_min >= 0.0 && plan_.jitter_max >= plan_.jitter_min,
               << "need 0 <= jitter_min <= jitter_max, got [" << plan_.jitter_min
               << ", " << plan_.jitter_max << "]");
  for (const PartitionWindow& w : plan_.partitions) {
    QADIST_CHECK(std::isfinite(w.from) && std::isfinite(w.until) &&
                     w.from >= 0.0 && w.until >= w.from,
                 << "partition window [" << w.from << ", " << w.until
                 << ") is malformed");
    QADIST_CHECK(!w.isolated.empty(),
                 << "partition window isolates no nodes");
  }
}

bool LinkFaultInjector::isolated_at(std::uint32_t node, Seconds now) const {
  for (const PartitionWindow& w : plan_.partitions) {
    if (now < w.from || now >= w.until) continue;
    if (std::find(w.isolated.begin(), w.isolated.end(), node) !=
        w.isolated.end()) {
      return true;
    }
  }
  return false;
}

bool LinkFaultInjector::partitioned(std::uint32_t a, std::uint32_t b,
                                    Seconds now) const {
  if (plan_.partitions.empty()) return false;
  if (b == kBroadcastNode) return isolated_at(a, now);
  // Each window cuts the cluster in two; a message is lost when exactly one
  // endpoint sits on the isolated side of some active window.
  for (const PartitionWindow& w : plan_.partitions) {
    if (now < w.from || now >= w.until) continue;
    const bool a_in = std::find(w.isolated.begin(), w.isolated.end(), a) !=
                      w.isolated.end();
    const bool b_in = std::find(w.isolated.begin(), w.isolated.end(), b) !=
                      w.isolated.end();
    if (a_in != b_in) return true;
  }
  return false;
}

LinkVerdict LinkFaultInjector::decide(std::uint32_t src, std::uint32_t dst,
                                      Seconds now) {
  ++messages_;
  LinkVerdict v;
  if (partitioned(src, dst, now)) {
    ++partition_drops_;
    v.delivered = false;
    return v;
  }
  // Draws happen in a fixed order (drop, jitter, duplicate) so a given seed
  // replays the same fault schedule; disabled features draw nothing.
  if (plan_.drop_probability > 0.0 && rng_.bernoulli(plan_.drop_probability)) {
    ++random_drops_;
    v.delivered = false;
    return v;
  }
  if (plan_.jitter_max > 0.0) {
    v.jitter = rng_.uniform(plan_.jitter_min, plan_.jitter_max);
  }
  if (plan_.duplicate_probability > 0.0 &&
      rng_.bernoulli(plan_.duplicate_probability)) {
    ++duplicates_;
    v.duplicated = true;
  }
  return v;
}

}  // namespace qadist::simnet
