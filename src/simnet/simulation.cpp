#include "simnet/simulation.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace qadist::simnet {

void Simulation::schedule(Seconds delay, std::function<void()> fn) {
  QADIST_CHECK(!std::isnan(delay),
               << "NaN delay would corrupt the event-queue ordering");
  if (delay < 0.0) delay = 0.0;
  schedule_at(now_ + delay, std::move(fn));
}

void Simulation::schedule_at(Seconds when, std::function<void()> fn) {
  QADIST_CHECK(fn != nullptr);
  QADIST_CHECK(!std::isnan(when),
               << "NaN timestamp would corrupt the event-queue ordering");
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(fn)});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires a copy
  // otherwise, so we const_cast the known-unique top entry.
  auto& top = const_cast<Entry&>(queue_.top());
  Seconds when = top.when;
  auto fn = std::move(top.fn);
  queue_.pop();
  QADIST_CHECK(when >= now_, << "time went backwards: " << when << " < " << now_);
  now_ = when;
  ++executed_;
  fn();
  return true;
}

Seconds Simulation::run() {
  while (step()) {
  }
  return now_;
}

Seconds Simulation::run_until(Seconds deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace qadist::simnet
