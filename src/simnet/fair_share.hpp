#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

/// Fluid-flow fair-sharing server: the single resource primitive behind all
/// three contended resources in the simulated cluster.
///
/// Customers `co_await server.consume(work)`, where `work` is in resource
/// units (CPU-seconds for a processor, bytes for a disk or network link).
/// While F customers are active, each progresses at
///
///     rate = min(max_rate_per_customer, total_rate / F)
///
/// which models:
///   * a CPU with c cores:  max_rate = 1 cpu-sec/sec, total_rate = c
///     (a lone task can't use two cores; c tasks run at full speed; more
///     than c tasks timeshare — exactly the paper's ">4 simultaneous
///     questions slow down" behaviour),
///   * a disk:              max_rate = total_rate = bandwidth,
///   * a shared Ethernet:   max_rate = total_rate = link bandwidth
///     (fluid-flow TCP fairness across concurrent transfers).
///
/// The implementation is event-driven: whenever the customer set changes,
/// remaining work is advanced at the old rate, the per-customer rate is
/// recomputed, and the next completion is (re)scheduled. Completion events
/// are invalidated by a generation counter rather than removed from the
/// queue. Cost: O(F) per arrival/departure — fine for cluster-scale F.
///
/// Load accounting for the schedulers: the server integrates both the
/// customer count (`load_integral`, the simulated /proc loadavg) and the
/// saturation fraction (`busy_integral`, utilization in [0,1]) over time;
/// LoadMonitor differentiates these per broadcast period.
class FairShareServer {
 public:
  FairShareServer(Simulation& sim, std::string name, double total_rate,
                  double max_rate_per_customer);
  FairShareServer(const FairShareServer&) = delete;
  FairShareServer& operator=(const FairShareServer&) = delete;

  class [[nodiscard]] ConsumeAwaiter {
   public:
    ConsumeAwaiter(FairShareServer& server, double work)
        : server_(server), work_(work) {}
    bool await_ready() const noexcept { return work_ <= 0.0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    FairShareServer& server_;
    double work_;
  };

  /// Awaitable: completes once `work` resource-units have been served.
  ConsumeAwaiter consume(double work) { return ConsumeAwaiter(*this, work); }

  /// Fails the server (a node crash): every in-service customer is resumed
  /// immediately with its remaining work unserved, and later enqueues
  /// complete instantly without serving anything. The server cannot signal
  /// failure through the void-returning awaitable, so the contract is that
  /// every customer checks its node's crash flag right after each co_await
  /// and discards the partial result (see cluster::System's PR/AP legs).
  /// Work lost to a halt is not added to work_served().
  void halt();

  /// Returns a halted server to service (node reboot). Idempotent.
  void restart();

  /// Withdraws an in-service customer before completion (tied-request
  /// cancellation): the flow's remaining work is released immediately —
  /// returning its share of the rate to the other customers — and `h` is
  /// resumed on the next event tick without its work being credited to
  /// work_served(). The contract mirrors halt(): the resumed customer must
  /// check its abandonment flag right after the co_await and discard the
  /// partial result. Returns false when `h` is not currently in service
  /// (already completed, or waiting on a different resource).
  bool cancel(std::coroutine_handle<> h);

  [[nodiscard]] bool halted() const { return halted_; }

  /// Low-level entry used by composite awaitables (e.g. simnet::Link):
  /// registers `h` as a customer with `work` units remaining; `h` is
  /// resumed when the work completes. Equivalent to what awaiting
  /// consume(work) does on suspension.
  void enqueue(double work, std::coroutine_handle<> h);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double total_rate() const { return total_rate_; }
  [[nodiscard]] double max_rate_per_customer() const { return max_rate_; }

  /// Number of customers a full-speed server can host before slowdown.
  [[nodiscard]] double parallelism() const { return total_rate_ / max_rate_; }

  /// Customers currently in service.
  [[nodiscard]] int active() const { return static_cast<int>(flows_.size()); }

  /// Time-integral of the active customer count since construction.
  [[nodiscard]] double load_integral();

  /// Time-integral of min(1, active/parallelism) since construction.
  [[nodiscard]] double busy_integral();

  /// Total work units served to completed customers.
  [[nodiscard]] double work_served() const { return work_served_; }

 private:
  friend class ConsumeAwaiter;

  struct Flow {
    double remaining;
    double total;
    std::coroutine_handle<> handle;
  };

  [[nodiscard]] double per_flow_rate() const;
  void advance();      // settle work/integrals up to sim_.now()
  void reschedule();   // plan the next completion event
  void on_completion(std::uint64_t generation);

  Simulation& sim_;
  std::string name_;
  double total_rate_;
  double max_rate_;
  std::vector<Flow> flows_;
  Seconds last_update_ = 0.0;
  double load_integral_ = 0.0;
  double busy_integral_ = 0.0;
  double work_served_ = 0.0;
  std::uint64_t generation_ = 0;
  bool halted_ = false;
};

/// Differentiates a server's busy_integral into per-period utilization:
/// each sample(now) returns the busy fraction in [0, 1] over the window
/// since the previous sample (or since construction). One probe per
/// server — the observability layer keeps a CPU and a disk probe per node
/// to build the utilization timeline behind the Fig. 7 traces.
class UtilizationProbe {
 public:
  explicit UtilizationProbe(FairShareServer& server)
      : server_(&server), last_busy_(server.busy_integral()) {}

  double sample(Seconds now) {
    const double busy = server_->busy_integral();
    const double fraction =
        now > last_time_ ? (busy - last_busy_) / (now - last_time_) : 0.0;
    last_busy_ = busy;
    last_time_ = now;
    return fraction;
  }

  [[nodiscard]] const FairShareServer& server() const { return *server_; }

 private:
  FairShareServer* server_;
  double last_busy_;
  Seconds last_time_ = 0.0;
};

}  // namespace qadist::simnet
