#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace qadist::simnet {

/// Discrete-event simulation kernel: a clock plus a time-ordered queue of
/// callbacks. All higher-level primitives (processes, resources, links)
/// reduce to `schedule()` calls against this kernel.
///
/// Determinism: events at equal timestamps fire in scheduling order (a
/// monotone sequence number breaks ties), so simulations are exactly
/// reproducible for a fixed seed.
///
/// Threading: a Simulation is single-threaded by design — the simulated
/// cluster's concurrency is virtual. Never touch one from two host threads.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedules `fn` to run at `now() + delay`. Negative delays are clamped
  /// to zero (events never fire in the past); a NaN delay panics — NaN
  /// compares false against everything, so admitting one would silently
  /// corrupt the priority-queue ordering.
  void schedule(Seconds delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute simulated time (>= now()).
  void schedule_at(Seconds when, std::function<void()> fn);

  /// Runs until the event queue drains. Returns the final clock value.
  Seconds run();

  /// Runs until the queue drains or the clock would pass `deadline`;
  /// the clock is left at min(deadline, last event time).
  Seconds run_until(Seconds deadline);

  /// Executes at most one event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace qadist::simnet
