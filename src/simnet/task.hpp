#pragma once

#include <coroutine>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace qadist::simnet {

/// An awaitable coroutine returning a value — the composable sibling of the
/// fire-and-forget SimProcess. A Task starts eagerly (simulated work begins
/// at the co_await-free prefix immediately), and when a parent coroutine
/// co_awaits it, the parent is resumed via symmetric transfer as soon as the
/// task's final value is ready.
///
///   Task<bool> System::ship(...);          // retries inside
///   bool ok = co_await ship(bytes, a, b);  // from any SimProcess
///
/// Lifetime: a Task owns its coroutine frame and destroys it in ~Task.
/// Always co_await the task in the same full expression that created it
/// (`co_await ship(...)`) — the temporary then outlives the suspension
/// because the awaiting coroutine's frame keeps the full expression alive
/// until resumption. Tasks are move-only and single-awaiter.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    // Eager start: like SimProcess, the body runs until its first suspension
    // the moment the task is created.
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    // Suspend at the end (so the frame survives until ~Task reads the
    // value) and hand control straight back to the awaiter, if any.
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { QADIST_UNREACHABLE("Task body threw"); }
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  bool await_ready() const noexcept { return handle_.done(); }
  void await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
  }
  T await_resume() {
    QADIST_CHECK(handle_.promise().value.has_value(),
                 << "Task awaited but produced no value");
    return std::move(*handle_.promise().value);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace qadist::simnet
