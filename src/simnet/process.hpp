#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>

#include "common/units.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

/// A detached simulated process, written as a C++20 coroutine.
///
/// A process function returns SimProcess and uses `co_await` on simnet
/// awaitables (Delay, Event, WaitGroup, FairShareServer::consume, ...).
/// Calling the function *starts* the process immediately (eager initial
/// suspend): it runs synchronously until its first suspension point, then
/// resumes from Simulation events.
///
///   SimProcess client(Simulation& sim, Mailbox<int>& inbox) {
///     co_await Delay(sim, 1.0);
///     int v = co_await inbox.recv();
///     ...
///   }
///
/// Lifetime: the coroutine frame self-destroys when the process finishes.
/// A process suspended when the Simulation is destroyed leaks its frame;
/// simulations are expected to run to completion (all of ours do — every
/// experiment drains its event queue).
///
/// Exceptions escaping a process terminate the program: a simulated node
/// has no one to propagate to, and silently dropping failures would corrupt
/// experiments. Model recoverable failures explicitly — see
/// parallel::ExecutorOptions::failures for host-thread workers and
/// cluster::FaultPlan (node crashes detected by reply timeout, per-strategy
/// recovery) for the simulated cluster.
class SimProcess {
 public:
  struct promise_type {
    SimProcess get_return_object() noexcept { return SimProcess{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      std::fputs("qadist: exception escaped a SimProcess\n", stderr);
      std::terminate();
    }
  };
};

/// Awaitable that suspends the current process for `delay` simulated
/// seconds: `co_await Delay(sim, 0.5);`
class Delay {
 public:
  Delay(Simulation& sim, Seconds delay) : sim_(sim), delay_(delay) {}

  [[nodiscard]] bool await_ready() const noexcept { return delay_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim_.schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulation& sim_;
  Seconds delay_;
};

}  // namespace qadist::simnet
