#pragma once

#include <coroutine>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "simnet/fair_share.hpp"

namespace qadist::simnet {

/// A network link: fixed per-message latency (connection setup, RPC
/// framing) followed by fair-share bandwidth across all concurrent
/// transfers — the fluid-flow model of a shared Ethernet segment.
///
///   Link lan(sim, "lan", Bandwidth::from_mbps(100), 2e-3);
///   co_await lan.transfer(bytes);   // from any SimProcess
class Link {
 public:
  Link(Simulation& sim, std::string name, Bandwidth bandwidth,
       Seconds per_message_latency)
      : sim_(&sim),
        per_message_latency_(per_message_latency),
        channel_(std::make_unique<FairShareServer>(
            sim, std::move(name), bandwidth.bytes_per_second,
            bandwidth.bytes_per_second)) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Chained awaiter: suspends for the per-message latency, then joins the
  /// shared channel for the payload bytes. The awaiter object lives in the
  /// awaiting coroutine's frame for the whole transfer, so capturing
  /// `this` across the two phases is safe.
  class [[nodiscard]] TransferAwaiter {
   public:
    TransferAwaiter(Link& link, double bytes) : link_(link), bytes_(bytes) {}

    bool await_ready() const noexcept {
      return link_.per_message_latency_ <= 0.0 && bytes_ <= 0.0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++link_.messages_;
      link_.sim_->schedule(link_.per_message_latency_, [this, h] {
        link_.channel_->enqueue(bytes_, h);
      });
    }
    void await_resume() const noexcept {}

   private:
    Link& link_;
    double bytes_;
  };

  /// Awaitable: completes when `bytes` have crossed the link.
  TransferAwaiter transfer(double bytes) { return TransferAwaiter(*this, bytes); }

  [[nodiscard]] Seconds per_message_latency() const {
    return per_message_latency_;
  }
  [[nodiscard]] FairShareServer& channel() { return *channel_; }

  /// Messages transferred so far (latency legs counted).
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  /// Total payload bytes completed.
  [[nodiscard]] double bytes_served() const { return channel_->work_served(); }

 private:
  friend class TransferAwaiter;

  Simulation* sim_;
  Seconds per_message_latency_;
  std::unique_ptr<FairShareServer> channel_;
  std::uint64_t messages_ = 0;
};

}  // namespace qadist::simnet
