#pragma once

#include <coroutine>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "simnet/fair_share.hpp"
#include "simnet/link_fault.hpp"

namespace qadist::simnet {

/// A network link: fixed per-message latency (connection setup, RPC
/// framing) followed by fair-share bandwidth across all concurrent
/// transfers — the fluid-flow model of a shared Ethernet segment.
///
///   Link lan(sim, "lan", Bandwidth::from_mbps(100), 2e-3);
///   co_await lan.transfer(bytes);   // from any SimProcess
class Link {
 public:
  Link(Simulation& sim, std::string name, Bandwidth bandwidth,
       Seconds per_message_latency)
      : sim_(&sim),
        per_message_latency_(per_message_latency),
        channel_(std::make_unique<FairShareServer>(
            sim, std::move(name), bandwidth.bytes_per_second,
            bandwidth.bytes_per_second)) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Chained awaiter: suspends for the per-message latency, then joins the
  /// shared channel for the payload bytes. The awaiter object lives in the
  /// awaiting coroutine's frame for the whole transfer, so capturing
  /// `this` across the two phases is safe.
  class [[nodiscard]] TransferAwaiter {
   public:
    TransferAwaiter(Link& link, double bytes) : link_(link), bytes_(bytes) {}

    bool await_ready() const noexcept {
      return link_.per_message_latency_ <= 0.0 && bytes_ <= 0.0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++link_.messages_;
      link_.sim_->schedule(link_.per_message_latency_, [this, h] {
        link_.channel_->enqueue(bytes_, h);
      });
    }
    void await_resume() const noexcept {}

   private:
    Link& link_;
    double bytes_;
  };

  /// Awaitable: completes when `bytes` have crossed the link.
  TransferAwaiter transfer(double bytes) { return TransferAwaiter(*this, bytes); }

  /// Like TransferAwaiter, but consults the link's fault injector (if any)
  /// for the fate of the message. A dropped message still costs the sender
  /// the per-message latency (the frame left the NIC) but never touches the
  /// shared channel; a duplicated one pays bandwidth twice. With no injector
  /// installed this produces exactly the same event sequence as transfer().
  class [[nodiscard]] SendAwaiter {
   public:
    SendAwaiter(Link& link, double bytes, std::uint32_t src, std::uint32_t dst)
        : link_(link), bytes_(bytes), src_(src), dst_(dst) {}

    bool await_ready() const noexcept {
      if (link_.injector_ != nullptr) return false;
      return link_.per_message_latency_ <= 0.0 && bytes_ <= 0.0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++link_.messages_;
      if (link_.injector_ != nullptr) {
        verdict_ = link_.injector_->decide(src_, dst_, link_.sim_->now());
      }
      const Seconds lead = link_.per_message_latency_ + verdict_.jitter;
      if (!verdict_.delivered) {
        link_.sim_->schedule(lead, [h] { h.resume(); });
        return;
      }
      const double wire_bytes = verdict_.duplicated ? 2.0 * bytes_ : bytes_;
      link_.sim_->schedule(lead, [this, h, wire_bytes] {
        link_.channel_->enqueue(wire_bytes, h);
      });
    }
    LinkVerdict await_resume() const noexcept { return verdict_; }

   private:
    Link& link_;
    double bytes_;
    std::uint32_t src_;
    std::uint32_t dst_;
    LinkVerdict verdict_;
  };

  /// Awaitable: attempts to move `bytes` from `src` to `dst` and resumes
  /// with the LinkVerdict (use dst == kBroadcastNode for broadcasts).
  SendAwaiter send(double bytes, std::uint32_t src, std::uint32_t dst) {
    return SendAwaiter(*this, bytes, src, dst);
  }

  /// Installs (or clears, with nullptr) the fault oracle consulted by
  /// send(). Not owned; must outlive the link's traffic.
  void set_fault_injector(LinkFaultInjector* injector) { injector_ = injector; }
  [[nodiscard]] LinkFaultInjector* fault_injector() const { return injector_; }

  [[nodiscard]] Seconds per_message_latency() const {
    return per_message_latency_;
  }
  [[nodiscard]] FairShareServer& channel() { return *channel_; }

  /// Messages transferred so far (latency legs counted).
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  /// Total payload bytes completed.
  [[nodiscard]] double bytes_served() const { return channel_->work_served(); }

 private:
  friend class TransferAwaiter;
  friend class SendAwaiter;

  Simulation* sim_;
  Seconds per_message_latency_;
  std::unique_ptr<FairShareServer> channel_;
  LinkFaultInjector* injector_ = nullptr;
  std::uint64_t messages_ = 0;
};

}  // namespace qadist::simnet
