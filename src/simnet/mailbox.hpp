#pragma once

#include <algorithm>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/units.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

/// Unbounded FIFO message queue between simulated processes.
///
/// `send()` never blocks (the underlying transport's latency is modelled
/// separately by the network link — a mailbox is just the destination
/// buffer). `co_await box.recv()` suspends until a message is available;
/// `co_await box.recv_for(t)` additionally gives up after `t` simulated
/// seconds and produces nullopt — the primitive behind reply timeouts
/// (e.g. a scatter-gather coordinator detecting a dead worker). Multiple
/// receivers are served in arrival order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposits a message; wakes the oldest waiting receiver, if any.
  void send(T value) {
    if (!receivers_.empty()) {
      Waiter* r = receivers_.front();
      receivers_.pop_front();
      if (r->settled != nullptr) *r->settled = true;
      r->slot = std::move(value);
      auto h = r->handle;
      sim_->schedule(0.0, [h] { h.resume(); });
    } else {
      queue_.push_back(std::move(value));
    }
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] bool has_waiting_receiver() const {
    return !receivers_.empty();
  }

  /// A suspended receiver. `settled` guards the race between delivery and
  /// a pending timeout event: whichever path fires first sets it, the
  /// loser becomes a no-op (the shared_ptr outlives the awaiter, so a
  /// late timeout callback never dereferences a destroyed frame).
  struct Waiter {
    std::optional<T> slot;
    std::coroutine_handle<> handle;
    std::shared_ptr<bool> settled;  // null for untimed receives
  };

  struct [[nodiscard]] Awaiter : Waiter {
    Mailbox& box;

    explicit Awaiter(Mailbox& b) : box(b) {}

    bool await_ready() {
      if (!box.queue_.empty()) {
        this->slot = std::move(box.queue_.front());
        box.queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      box.receivers_.push_back(this);
    }
    T await_resume() {
      QADIST_CHECK(this->slot.has_value());
      return std::move(*this->slot);
    }
  };

  struct [[nodiscard]] TimedAwaiter : Waiter {
    Mailbox& box;
    Seconds timeout;

    TimedAwaiter(Mailbox& b, Seconds t) : box(b), timeout(t) {}

    bool await_ready() {
      if (!box.queue_.empty()) {
        this->slot = std::move(box.queue_.front());
        box.queue_.pop_front();
        return true;
      }
      // A zero/negative timeout with nothing queued settles immediately
      // with nullopt — scheduling a wake-up event for an already-expired
      // deadline would only churn the event queue.
      return timeout <= 0.0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      this->settled = std::make_shared<bool>(false);
      box.receivers_.push_back(this);
      Mailbox* b = &box;
      Waiter* self = this;
      box.sim_->schedule(timeout, [b, self, settled = this->settled] {
        if (*settled) return;  // a send() won the race
        *settled = true;
        auto& rs = b->receivers_;
        rs.erase(std::remove(rs.begin(), rs.end(), self), rs.end());
        self->handle.resume();  // slot stays empty -> nullopt
      });
    }
    std::optional<T> await_resume() { return std::move(this->slot); }
  };

  /// Awaitable: produces the next message (FIFO).
  Awaiter recv() { return Awaiter{*this}; }

  /// Awaitable: the next message, or nullopt after `timeout` simulated
  /// seconds without one.
  TimedAwaiter recv_for(Seconds timeout) { return TimedAwaiter{*this, timeout}; }

 private:
  friend struct Awaiter;
  friend struct TimedAwaiter;
  Simulation* sim_;
  std::deque<T> queue_;
  std::deque<Waiter*> receivers_;
};

}  // namespace qadist::simnet
