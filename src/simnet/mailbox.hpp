#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

/// Unbounded FIFO message queue between simulated processes.
///
/// `send()` never blocks (the underlying transport's latency is modelled
/// separately by the network link — a mailbox is just the destination
/// buffer). `co_await box.recv()` suspends until a message is available.
/// Multiple receivers are served in arrival order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposits a message; wakes the oldest waiting receiver, if any.
  void send(T value) {
    if (!receivers_.empty()) {
      Awaiter* r = receivers_.front();
      receivers_.pop_front();
      r->slot = std::move(value);
      auto h = r->handle;
      sim_->schedule(0.0, [h] { h.resume(); });
    } else {
      queue_.push_back(std::move(value));
    }
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] bool has_waiting_receiver() const {
    return !receivers_.empty();
  }

  struct [[nodiscard]] Awaiter {
    Mailbox& box;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!box.queue_.empty()) {
        slot = std::move(box.queue_.front());
        box.queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      box.receivers_.push_back(this);
    }
    T await_resume() {
      QADIST_CHECK(slot.has_value());
      return std::move(*slot);
    }
  };

  /// Awaitable: produces the next message (FIFO).
  Awaiter recv() { return Awaiter{*this, std::nullopt, {}}; }

 private:
  friend struct Awaiter;
  Simulation* sim_;
  std::deque<T> queue_;
  std::deque<Awaiter*> receivers_;
};

}  // namespace qadist::simnet
