#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace qadist::simnet {

/// One scripted gray-degradation window on a node: from `at` (until
/// `at + recover_after`, or forever when `recover_after < 0`) the node's
/// data-path service times stretch — CPU work by `cpu_factor`, disk work by
/// `disk_factor` — and every data transfer touching the node pays
/// `extra_latency` on top of the link propagation delay.
///
/// Gray faults are deliberately invisible to the failure detector: the
/// node's load broadcasts (heartbeats) keep flowing on schedule and its
/// link stays lossless, so the alive/suspect/dead state machine sees a
/// perfectly healthy peer. Only the tail-tolerance toolkit (hedging, tied
/// requests, latency-aware selection) can mitigate them — exactly the
/// real-world gray-failure regime this models.
struct GrayFaultEvent {
  std::uint32_t node = 0;
  Seconds at = 0.0;
  /// Window length; negative means the node never recovers on its own.
  Seconds recover_after = -1.0;
  /// Service-time multipliers while gray (1.0 = unaffected resource).
  double cpu_factor = 1.0;
  double disk_factor = 1.0;
  /// Added one-way delay per data transfer touching the node while gray.
  Seconds extra_latency = 0.0;
};

/// Scripted gray-fault schedule. An empty plan is the disabled state: no
/// onset events are scheduled and the run stays bit-identical to a build
/// without the gray-fault subsystem.
///
/// Edge cases (validated by cluster::System at construction):
///   * factors must be positive and finite; extra_latency finite and >= 0;
///     `at` finite and >= 0; `recover_after` anything but NaN (negative
///     means forever). Violations panic with a clear message.
///   * windows on one node may overlap: the effective degradation is the
///     per-resource max over the node's open windows, and the node
///     recovers only when its last window closes.
///   * a zero-length window (recover_after == 0) opens and closes at the
///     same instant — it counts one onset and one recovery but never
///     degrades service.
struct GrayFaultPlan {
  std::vector<GrayFaultEvent> events;

  [[nodiscard]] bool enabled() const { return !events.empty(); }
};

}  // namespace qadist::simnet
