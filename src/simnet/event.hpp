#pragma once

#include <coroutine>
#include <vector>

#include "common/check.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

/// One-shot level-triggered event: processes `co_await ev.wait()`; a later
/// `set()` resumes all of them (and any future waiter passes straight
/// through). The simnet analogue of a latch.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Fires the event. Idempotent.
  void set() {
    if (set_) return;
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) {
      sim_.schedule(0.0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] bool is_set() const { return set_; }

  struct [[nodiscard]] Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable: suspends until set() has been called.
  Awaiter wait() { return Awaiter{*this}; }

 private:
  Simulation& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Fan-out/fan-in synchronization: the parent `add()`s one count per child,
/// each child calls `done()` when finished, the parent `co_await wg.wait()`s
/// for the count to reach zero. Counts may be re-armed after a successful
/// wait (used by retry loops in the partition distributor).
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(int n = 1) {
    QADIST_CHECK(n >= 0);
    count_ += n;
  }

  void done() {
    QADIST_CHECK(count_ > 0, << "WaitGroup::done without matching add");
    if (--count_ == 0) {
      auto waiters = std::move(waiters_);
      waiters_.clear();
      for (auto h : waiters) {
        sim_.schedule(0.0, [h] { h.resume(); });
      }
    }
  }

  [[nodiscard]] int count() const { return count_; }

  struct [[nodiscard]] Awaiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Awaitable: suspends until the outstanding count reaches zero.
  Awaiter wait() { return Awaiter{*this}; }

 private:
  Simulation& sim_;
  int count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace qadist::simnet
