#include "simnet/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace qadist::simnet {

namespace {
// Tolerance for declaring a flow complete after floating-point advancement.
// Each advance() subtracts rate·dt from every flow, so the accumulated
// error scales with the *service magnitudes*, not with the flow's own work
// (a 64-byte packet sharing a 12 MB/s link drifts by link-scale ulps).
// A flow is done when less than 0.1 µs of service remains at the current
// per-flow rate — far below anything an experiment can observe, far above
// any realistic drift.
double done_tolerance(double total_work, double per_flow_rate) {
  return std::max(1e-9 * std::max(1.0, total_work), 1e-7 * per_flow_rate);
}
}  // namespace

FairShareServer::FairShareServer(Simulation& sim, std::string name,
                                 double total_rate,
                                 double max_rate_per_customer)
    : sim_(sim),
      name_(std::move(name)),
      total_rate_(total_rate),
      max_rate_(max_rate_per_customer),
      last_update_(sim.now()) {
  QADIST_CHECK(total_rate_ > 0.0, << name_ << ": total_rate must be positive");
  QADIST_CHECK(max_rate_ > 0.0, << name_ << ": max_rate must be positive");
}

double FairShareServer::per_flow_rate() const {
  if (flows_.empty()) return 0.0;
  return std::min(max_rate_, total_rate_ / static_cast<double>(flows_.size()));
}

void FairShareServer::advance() {
  const Seconds now = sim_.now();
  const Seconds dt = now - last_update_;
  if (dt > 0.0 && !flows_.empty()) {
    const double rate = per_flow_rate();
    for (auto& flow : flows_) flow.remaining -= rate * dt;
    const auto f = static_cast<double>(flows_.size());
    load_integral_ += f * dt;
    busy_integral_ += std::min(1.0, f / parallelism()) * dt;
  }
  last_update_ = now;
}

void FairShareServer::reschedule() {
  ++generation_;
  if (flows_.empty()) return;
  const double rate = per_flow_rate();
  QADIST_CHECK(rate > 0.0);
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& flow : flows_)
    min_remaining = std::min(min_remaining, flow.remaining);
  const Seconds eta = std::max(0.0, min_remaining) / rate;
  const std::uint64_t gen = generation_;
  sim_.schedule(eta, [this, gen] { on_completion(gen); });
}

void FairShareServer::on_completion(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a later change
  advance();
  const double rate = per_flow_rate();
  std::vector<std::coroutine_handle<>> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= done_tolerance(it->total, rate)) {
      work_served_ += it->total;
      finished.push_back(it->handle);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  QADIST_CHECK(!finished.empty(),
               << name_ << ": completion event found no finished flow");
  reschedule();
  for (auto h : finished) {
    sim_.schedule(0.0, [h] { h.resume(); });
  }
}

void FairShareServer::enqueue(double work, std::coroutine_handle<> h) {
  if (work <= 0.0 || halted_) {
    // Halted: resume without serving; the customer's post-await crash
    // check observes the dead node and abandons the work.
    sim_.schedule(0.0, [h] { h.resume(); });
    return;
  }
  advance();
  flows_.push_back(Flow{work, work, h});
  reschedule();
}

void FairShareServer::halt() {
  if (halted_) return;
  advance();
  halted_ = true;
  ++generation_;  // invalidate any scheduled completion event
  std::vector<Flow> orphans = std::move(flows_);
  flows_.clear();
  for (const auto& flow : orphans) {
    sim_.schedule(0.0, [h = flow.handle] { h.resume(); });
  }
}

void FairShareServer::restart() {
  if (!halted_) return;
  advance();  // settle integrals over the (flow-free) downtime
  halted_ = false;
}

bool FairShareServer::cancel(std::coroutine_handle<> h) {
  advance();
  const auto it = std::find_if(flows_.begin(), flows_.end(),
                               [h](const Flow& f) { return f.handle == h; });
  if (it == flows_.end()) return false;
  flows_.erase(it);  // no work_served_ credit: the work was abandoned
  reschedule();
  sim_.schedule(0.0, [h] { h.resume(); });
  return true;
}

void FairShareServer::ConsumeAwaiter::await_suspend(std::coroutine_handle<> h) {
  server_.enqueue(work_, h);
}

double FairShareServer::load_integral() {
  advance();
  reschedule();  // advance() consumed elapsed time; replan next completion
  return load_integral_;
}

double FairShareServer::busy_integral() {
  advance();
  reschedule();
  return busy_integral_;
}

}  // namespace qadist::simnet
