#pragma once

#include <coroutine>
#include <deque>

#include "common/check.hpp"
#include "simnet/simulation.hpp"

namespace qadist::simnet {

class ResourceLease;

/// Counted FIFO resource (a simulated semaphore). Used for slot-like
/// resources where holders occupy capacity for an arbitrary span rather
/// than consuming a work amount — e.g. the per-node memory slots that cap
/// how many Q/A tasks a node can host before thrashing.
///
///   ResourceLease lease = co_await node.memory_slots.acquire();
///   ... // slot held across any number of awaits
///   // released when `lease` goes out of scope
class Resource {
 public:
  Resource(Simulation& sim, int capacity)
      : sim_(sim), capacity_(capacity), available_(capacity) {
    QADIST_CHECK(capacity >= 1);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int available() const { return available_; }
  [[nodiscard]] int queued() const { return static_cast<int>(waiters_.size()); }
  /// Holders plus queued waiters — the resource's contribution to node load.
  [[nodiscard]] int pressure() const {
    return (capacity_ - available_) + queued();
  }

  class [[nodiscard]] AcquireAwaiter {
   public:
    explicit AcquireAwaiter(Resource& r) : resource_(r) {}
    bool await_ready() {
      if (resource_.available_ > 0) {
        --resource_.available_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      resource_.waiters_.push_back(h);
    }
    ResourceLease await_resume();

   private:
    Resource& resource_;
  };

  /// Awaitable yielding an RAII lease on one capacity unit (FIFO order).
  AcquireAwaiter acquire() { return AcquireAwaiter(*this); }

 private:
  friend class ResourceLease;

  void release() {
    if (!waiters_.empty()) {
      // Hand the unit directly to the oldest waiter; available_ stays as-is.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(0.0, [h] { h.resume(); });
    } else {
      ++available_;
      QADIST_CHECK(available_ <= capacity_);
    }
  }

  Simulation& sim_;
  int capacity_;
  int available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Move-only RAII holder for one unit of a Resource.
class ResourceLease {
 public:
  ResourceLease() = default;
  explicit ResourceLease(Resource* r) : resource_(r) {}
  ResourceLease(ResourceLease&& other) noexcept : resource_(other.resource_) {
    other.resource_ = nullptr;
  }
  ResourceLease& operator=(ResourceLease&& other) noexcept {
    if (this != &other) {
      reset();
      resource_ = other.resource_;
      other.resource_ = nullptr;
    }
    return *this;
  }
  ResourceLease(const ResourceLease&) = delete;
  ResourceLease& operator=(const ResourceLease&) = delete;
  ~ResourceLease() { reset(); }

  /// Releases early (idempotent).
  void reset() {
    if (resource_ != nullptr) {
      resource_->release();
      resource_ = nullptr;
    }
  }

  [[nodiscard]] bool holds() const { return resource_ != nullptr; }

 private:
  Resource* resource_ = nullptr;
};

inline ResourceLease Resource::AcquireAwaiter::await_resume() {
  return ResourceLease(&resource_);
}

}  // namespace qadist::simnet
