#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace qadist::simnet {

/// Destination id meaning "every node" — used by load-monitor broadcasts.
/// A broadcast from a partitioned-away node is dropped (the majority side,
/// whose shared view the load table models, never hears it).
inline constexpr std::uint32_t kBroadcastNode = 0xffffffffu;

/// A scripted partition: while `[from, until)` is active, nodes listed in
/// `isolated` cannot exchange messages with the rest of the cluster in
/// either direction. Messages between two nodes on the same side of the
/// cut pass normally.
struct PartitionWindow {
  Seconds from = 0.0;
  Seconds until = 0.0;
  std::vector<std::uint32_t> isolated;
};

/// Per-link fault plan: message drops, latency jitter, duplication, and
/// scripted partitions, all applied at send time. The default-constructed
/// plan is fully benign and `enabled()` is false, which keeps the fault
/// machinery entirely off the hot path (no RNG draws, no extra events) so
/// fault-free runs stay bit-identical to builds without this layer.
struct LinkFaultPlan {
  /// Probability that a message is silently lost in flight.
  double drop_probability = 0.0;
  /// Probability that a delivered message arrives twice (the duplicate is
  /// deduplicated at the receiver but still consumes link bandwidth).
  double duplicate_probability = 0.0;
  /// Extra per-message latency drawn uniformly from [jitter_min, jitter_max]
  /// when jitter_max > 0.
  Seconds jitter_min = 0.0;
  Seconds jitter_max = 0.0;
  /// Scripted partition windows; may overlap.
  std::vector<PartitionWindow> partitions;

  [[nodiscard]] bool enabled() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           jitter_max > 0.0 || !partitions.empty();
  }
};

/// Outcome of one send as decided by the injector.
struct LinkVerdict {
  bool delivered = true;
  bool duplicated = false;
  Seconds jitter = 0.0;
};

/// Deterministic fault oracle for a Link. One injector owns one RNG stream
/// (seeded by the caller), and every send consults it in a fixed order
/// (partition check, drop draw, jitter draw, duplicate draw), so a given
/// seed replays the exact same fault schedule run-to-run.
class LinkFaultInjector {
 public:
  LinkFaultInjector(LinkFaultPlan plan, std::uint64_t seed);

  /// Decides the fate of a message from `src` to `dst` sent at time `now`.
  /// `dst == kBroadcastNode` models a broadcast: it is lost if and only if
  /// the sender is on the isolated side of an active partition (unicast
  /// faults are drawn per message as usual).
  LinkVerdict decide(std::uint32_t src, std::uint32_t dst, Seconds now);

  /// True if `a` and `b` are separated by a partition active at `now`.
  [[nodiscard]] bool partitioned(std::uint32_t a, std::uint32_t b,
                                 Seconds now) const;

  [[nodiscard]] const LinkFaultPlan& plan() const { return plan_; }

  // Tallies (folded into the metrics registry by the cluster layer).
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t random_drops() const { return random_drops_; }
  [[nodiscard]] std::uint64_t partition_drops() const {
    return partition_drops_;
  }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  [[nodiscard]] bool isolated_at(std::uint32_t node, Seconds now) const;

  LinkFaultPlan plan_;
  Rng rng_;
  std::uint64_t messages_ = 0;
  std::uint64_t random_drops_ = 0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace qadist::simnet
