// Micro-benchmarks of the Q/A pipeline stages: question processing, NER,
// paragraph scoring, answer processing per paragraph, and the end-to-end
// engine.

#include <benchmark/benchmark.h>

#include "parallel/qa_stages.hpp"
#include "qa/ner.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;

void BM_QuestionProcessing(benchmark::State& state) {
  const auto& world = bench::bench_world();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& q = world.questions[i++ % world.questions.size()];
    benchmark::DoNotOptimize(world.engine->process_question(q.id, q.text));
  }
}
BENCHMARK(BM_QuestionProcessing);

const std::vector<qa::ScoredParagraph>& sample_paragraphs() {
  static const std::vector<qa::ScoredParagraph> paragraphs = [] {
    const auto& world = bench::bench_world();
    const auto& q = world.questions.front();
    auto pq = world.engine->process_question(q.id, q.text);
    std::vector<qa::ScoredParagraph> scored;
    for (std::size_t sub = 0; sub < world.engine->subcollection_count();
         ++sub) {
      for (auto& p : world.engine->retrieve(sub, pq)) {
        scored.push_back(world.engine->score(pq, std::move(p)));
      }
    }
    return world.engine->order(std::move(scored));
  }();
  return paragraphs;
}

void BM_ParagraphScoring(benchmark::State& state) {
  const auto& world = bench::bench_world();
  const auto& q = world.questions.front();
  const auto pq = world.engine->process_question(q.id, q.text);
  const auto& paragraphs = sample_paragraphs();
  std::size_t i = 0;
  for (auto _ : state) {
    auto copy = paragraphs[i++ % paragraphs.size()].paragraph;
    benchmark::DoNotOptimize(world.engine->score(pq, std::move(copy)));
  }
}
BENCHMARK(BM_ParagraphScoring);

void BM_AnswerProcessingPerParagraph(benchmark::State& state) {
  const auto& world = bench::bench_world();
  const auto& q = world.questions.front();
  const auto pq = world.engine->process_question(q.id, q.text);
  const auto& paragraphs = sample_paragraphs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.engine->answer_processor().process_paragraph(
        pq, paragraphs[i++ % paragraphs.size()]));
  }
}
BENCHMARK(BM_AnswerProcessingPerParagraph);

void BM_EntityRecognition(benchmark::State& state) {
  const auto& world = bench::bench_world();
  qa::EntityRecognizer ner(world.corpus.gazetteer, world.engine->analyzer());
  const auto& paragraphs = sample_paragraphs();
  std::size_t i = 0;
  std::size_t tokens = 0;
  for (auto _ : state) {
    const auto& text = paragraphs[i++ % paragraphs.size()].paragraph.text;
    benchmark::DoNotOptimize(ner.recognize_text(text));
    tokens += text.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_EntityRecognition);

void BM_AnswerBatchThroughput(benchmark::State& state) {
  const auto& world = bench::bench_world();
  parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const auto batch =
      std::span<const corpus::Question>(world.questions).subspan(0, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::answer_batch(*world.engine, batch, pool));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AnswerBatchThroughput)->Arg(1)->Arg(4);

void BM_EndToEndQuestion(benchmark::State& state) {
  const auto& world = bench::bench_world();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        world.engine->answer(world.questions[i++ % world.questions.size()]));
  }
}
BENCHMARK(BM_EndToEndQuestion);

}  // namespace
