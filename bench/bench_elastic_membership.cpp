// Membership dynamics (paper Sec. 3's flexibility goal: "processors must
// be able to dynamically join or leave the system pool", with membership
// driven purely by load broadcasts). Not a paper exhibit — a demonstration
// that the pool shrinks and grows mid-run and the schedulers follow.
//
// Scenario: a 12-node DQA cluster under sustained 2x overload; at 1/4 of
// the expected run, four nodes leave (gracefully: their in-flight work
// drains, they receive nothing new); at 1/2, they rejoin.

#include <cstdio>

#include "cluster/workload.hpp"
#include "workload/driver.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  const auto& world = bench::bench_world();
  constexpr std::size_t kNodes = 12;

  const auto run = [&](bool elastic) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg;
    cfg.nodes = kNodes;
    cfg.dispatch.policy = Policy::kDqa;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cluster::System system(sim, cfg);
    if (elastic) {
      for (sched::NodeId node = 8; node < 12; ++node) {
        system.schedule_leave(node, 300.0);
        system.schedule_join(node, 900.0);
      }
    }
    workload::RunSpec spec;
    spec.shape = workload::WorkloadShape::kOverload;
    spec.overload.seed = 7;
    spec.overload.reference_disk = world.cost->anchors().reference_disk;
    workload::Driver(system, world.plans).submit(spec);
    struct Result {
      cluster::Metrics metrics;
      std::vector<double> node_work;
    };
    auto metrics = system.run();
    return Result{std::move(metrics), {}};
  };

  const auto stable = run(false);
  const auto elastic = run(true);

  bench::BenchReport report("elastic_membership");
  report.config("nodes", std::int64_t{kNodes});
  report.config("protocol", "DQA 2x overload; 4 nodes out for [300s, 900s]");

  TextTable table({"Scenario", "Throughput (q/min)", "Mean latency (s)",
                   "p95 (s)"});
  table.add_row({"stable 12 nodes",
                 cell(stable.metrics.throughput_qpm(), 2),
                 cell(stable.metrics.latencies.mean(), 1),
                 cell(stable.metrics.latencies.quantile(0.95), 1)});
  table.add_row({"4 nodes out for [300s, 900s]",
                 cell(elastic.metrics.throughput_qpm(), 2),
                 cell(elastic.metrics.latencies.mean(), 1),
                 cell(elastic.metrics.latencies.quantile(0.95), 1)});
  const auto emit = [&report](const char* scenario,
                              const cluster::Metrics& m) {
    const obs::Labels labels = {{"scenario", scenario}};
    report.metric("throughput_qpm", labels, m.throughput_qpm());
    report.metric("mean_latency_seconds", labels, m.latencies.mean());
    report.metric("p95_latency_seconds", labels, m.latencies.quantile(0.95));
  };
  emit("stable", stable.metrics);
  emit("elastic", elastic.metrics);
  std::printf("Elastic membership under sustained overload (96 questions)\n%s",
              table.render().c_str());

  // Per-node work: the leavers must have served visibly less.
  TextTable nodes({"Node", "stable CPU-s", "elastic CPU-s"});
  for (std::size_t n = 0; n < kNodes; ++n) {
    nodes.add_row({"N" + std::to_string(n + 1),
                   cell(stable.metrics.node_cpu_work[n], 0),
                   cell(elastic.metrics.node_cpu_work[n], 0)});
  }
  std::printf("%s", nodes.render().c_str());
  std::printf(
      "Expected shape: throughput/latency degrade gracefully (all questions "
      "still complete); nodes 9-12 serve far less CPU in the elastic run; "
      "no work is lost.\n");
  // The demonstration's core claim: the leavers served visibly less CPU.
  double stable_out = 0.0, elastic_out = 0.0;
  for (std::size_t n = 8; n < kNodes; ++n) {
    stable_out += stable.metrics.node_cpu_work[n];
    elastic_out += elastic.metrics.node_cpu_work[n];
  }
  report.metric("leaver_cpu_work_fraction_of_stable", {},
                stable_out > 0.0 ? elastic_out / stable_out : 0.0);
  report.write();
  return 0;
}
