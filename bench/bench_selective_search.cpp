// Selective search + broker tier scaling study (extension beyond the
// paper): the paper's cluster scatter-gathers every question to every
// sub-collection over one shared LAN — fine at 12 nodes, hopeless at
// 64-256, where the coordinator's serial merge and the single wire
// saturate long before the disks do. This bench measures what CORI-style
// collection selection (route each question to the top-k shards its
// keywords actually implicate) plus a two-level broker/mediator tier
// (per-group subtree LANs, brokers that pre-merge their subtree's
// partial answers) buy against that flat exhaustive baseline.
//
// Two experiments:
//   1. throughput and latency across nodes x selectivity, flat star vs
//      brokered tier (B ~ sqrt(N) groups), same question stream;
//   2. answer divergence of selective search: for every question, the
//      real pipeline's top answer over the selected shards vs over all
//      shards (selection is only worth its speedup if the answers stay
//      put).
//
// Self-enforcing acceptance bar: at every swept cluster of >= 64 nodes,
// the brokered tier at the most aggressive selectivity must clear 2x the
// flat exhaustive throughput while the divergence stays <= 5%; the
// process exits non-zero otherwise.
//
// The bench builds its own world: 128 sub-collections (vs the shared
// bench world's 8), so there is a meaningful shard population to select
// from, and per-shard CORI term statistics extracted from the real
// indexes drive routing exactly as cfg.broker.stats does in production.
//
// Emits results/BENCH_selective_search.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "broker/config.hpp"
#include "broker/cori.hpp"
#include "broker/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "ir/shard_stats.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;
using cluster::Policy;

struct SelectiveWorld {
  bench::BenchWorld world;
  std::shared_ptr<const broker::CollectionStats> stats;
  std::size_t num_shards = 0;
};

SelectiveWorld build_world(bool smoke) {
  SelectiveWorld out;
  out.num_shards = smoke ? 32 : 128;

  corpus::CorpusConfig cc;
  cc.seed = 4242;
  cc.num_documents = smoke ? 600 : 1500;
  cc.vocabulary_size = smoke ? 8000 : 12000;
  cc.entities_per_type = 250;
  out.world.corpus = corpus::generate_corpus(cc);

  qa::EngineConfig ec;
  ec.subcollections = out.num_shards;
  ec.subcollection_size_ratio = 3.0;
  ec.min_paragraphs_per_subcollection = 10;
  ec.ordering.relative_threshold = 0.25;
  ec.ordering.max_accepted = 400;
  out.world.engine = std::make_unique<qa::Engine>(out.world.corpus, ec);

  out.world.questions =
      corpus::generate_questions(out.world.corpus, smoke ? 24 : 64,
                                 /*seed=*/77);
  out.world.cost =
      std::make_unique<cluster::CostModel>(cluster::CostModel::calibrate(
          *out.world.engine,
          std::span<const corpus::Question>(out.world.questions)
              .subspan(0, std::min<std::size_t>(16,
                                                out.world.questions.size()))));
  out.world.plans.reserve(out.world.questions.size());
  for (const auto& q : out.world.questions) {
    out.world.plans.push_back(
        cluster::make_plan(*out.world.engine, *out.world.cost, q));
  }

  // Per-shard CORI term statistics, extracted from the real indexes the
  // way a QASS v2 shard set persists them.
  std::vector<ir::ShardTermStats> shard_stats;
  shard_stats.reserve(out.num_shards);
  for (std::size_t s = 0; s < out.num_shards; ++s) {
    shard_stats.push_back(ir::extract_term_stats(out.world.engine->index(s)));
  }
  out.stats = std::make_shared<broker::CollectionStats>(
      broker::CollectionStats::from_shard_stats(std::move(shard_stats)));
  return out;
}

cluster::SystemConfig base_config(const SelectiveWorld& sw, std::size_t nodes,
                                  std::uint64_t seed) {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_chunk = bench::scaled_chunk(sw.world);
  cfg.shard.num_shards = sw.num_shards;
  cfg.shard.replication = 2;
  return cfg;
}

cluster::Metrics run_sweep_point(const SelectiveWorld& sw,
                                 const cluster::SystemConfig& cfg,
                                 std::uint64_t seed, std::size_t count) {
  cluster::OverloadWorkload load;
  load.seed = seed;
  // Arrivals at 4x the aggregate exhaustive service rate: fast configs
  // must stay service-limited, not arrival-limited, or the measured
  // speedup would cap at the overload factor.
  load.overload_factor = 4.0;
  load.count = count;
  return bench::run_zipf_load(sw.world, cfg, load, /*prewarm=*/false);
}

/// The broker count the sweep defaults to: ~sqrt(N) groups, the split
/// that balances group fan-out against core fan-in.
std::size_t default_brokers(std::size_t nodes) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(std::sqrt(
             static_cast<double>(nodes)))));
}

/// Top answer (candidate string) of the real pipeline restricted to a
/// shard subset; empty when no answer survives. `scored_by_sub` caches
/// each sub-collection's scored retrieval so the exhaustive and pruned
/// variants reuse one retrieval pass.
std::string top_answer(const qa::Engine& engine,
                       const qa::ProcessedQuestion& question,
                       const std::vector<std::vector<qa::ScoredParagraph>>&
                           scored_by_sub,
                       const std::vector<std::size_t>& kept) {
  std::vector<qa::ScoredParagraph> pool;
  for (const std::size_t s : kept) {
    pool.insert(pool.end(), scored_by_sub[s].begin(), scored_by_sub[s].end());
  }
  const auto accepted = engine.order(std::move(pool));
  const auto answers = engine.answer_paragraphs(question, accepted);
  return answers.empty() ? std::string() : answers.front().candidate;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  const std::uint64_t seed = cli.seed_or(2000);
  const auto sw = build_world(cli.smoke);
  const std::size_t num_shards = sw.num_shards;

  const std::vector<std::size_t> node_counts =
      cli.nodes.has_value() ? std::vector<std::size_t>{*cli.nodes}
      : cli.smoke           ? std::vector<std::size_t>{64}
                            : std::vector<std::size_t>{12, 64, 128, 256};
  const std::vector<double> selectivities =
      cli.selectivity.has_value() ? std::vector<double>{*cli.selectivity}
      : cli.smoke                 ? std::vector<double>{1.0, 0.25}
                                  : std::vector<double>{1.0, 0.5, 0.25};
  const double aggressive =
      *std::min_element(selectivities.begin(), selectivities.end());

  bench::BenchReport report("selective_search");
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("num_shards", static_cast<std::int64_t>(num_shards));
  report.config("smoke", cli.smoke ? std::int64_t{1} : std::int64_t{0});

  // ---- 2 (computed first: it is node-independent). Answer divergence --
  // For each selectivity, the fraction of questions whose top pipeline
  // answer changes when the search is restricted to the shards CORI
  // selects — the same select_shards() call the system's router makes.
  std::vector<double> divergence(selectivities.size(), 0.0);
  {
    const qa::Engine& engine = *sw.world.engine;
    std::vector<std::size_t> all(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) all[s] = s;
    for (const auto& plan : sw.world.plans) {
      std::vector<std::vector<qa::ScoredParagraph>> scored_by_sub(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        for (auto& p : engine.retrieve(s, plan.processed)) {
          scored_by_sub[s].push_back(engine.score(plan.processed,
                                                  std::move(p)));
        }
      }
      const std::string exhaustive =
          top_answer(engine, plan.processed, scored_by_sub, all);
      for (std::size_t i = 0; i < selectivities.size(); ++i) {
        broker::BrokerConfig knob;
        knob.selectivity = selectivities[i];
        const auto kept = broker::select_shards(
            *sw.stats, plan.processed.keywords,
            knob.effective_top_k(num_shards));
        const std::string pruned =
            top_answer(engine, plan.processed, scored_by_sub, kept);
        if (pruned != exhaustive) divergence[i] += 1.0;
      }
    }
    TextTable table({"selectivity", "shards searched", "answer divergence"});
    for (std::size_t i = 0; i < selectivities.size(); ++i) {
      divergence[i] /= static_cast<double>(sw.world.plans.size());
      broker::BrokerConfig knob;
      knob.selectivity = selectivities[i];
      const std::size_t k = knob.effective_top_k(num_shards);
      table.add_row({format_double(selectivities[i], 2),
                     std::to_string(k) + "/" + std::to_string(num_shards),
                     cell(100.0 * divergence[i], 1) + " %"});
      const obs::Labels labels{
          {"selectivity", format_double(selectivities[i], 2)}};
      report.metric("answer_divergence", labels, divergence[i]);
      report.metric("shards_searched", labels, static_cast<double>(k));
    }
    std::printf(
        "Selective search — answer divergence vs exhaustive (CORI over "
        "%zu shards, %zu questions)\n%s\n",
        num_shards, sw.world.plans.size(), table.render().c_str());
  }

  // ---- 1. Throughput across nodes x selectivity, flat vs brokered -----
  bool bar_checked = false;
  bool bar_passed = true;
  TextTable table({"", "config", "throughput q/min", "latency mean s",
                   "latency p95 s", "vs flat", "degraded"});
  for (const std::size_t nodes : node_counts) {
    const std::size_t count =
        std::min<std::size_t>(8 * nodes, cli.smoke ? 96 : 384);
    const std::size_t brokers = cli.brokers_or(default_brokers(nodes));

    const auto flat =
        run_sweep_point(sw, base_config(sw, nodes, seed), seed, count);
    const double flat_qpm = flat.throughput_qpm();
    table.add_row({std::to_string(nodes) + " nodes", "flat exhaustive",
                   cell(flat_qpm, 2), cell(flat.latencies.mean(), 2),
                   cell(flat.latencies.quantile(0.95), 2), "1.00x",
                   std::to_string(flat.questions_degraded)});
    const obs::Labels flat_labels{{"nodes", std::to_string(nodes)},
                                  {"config", "flat"}};
    report.metric("throughput_qpm", flat_labels, flat_qpm);
    report.metric("latency_mean_seconds", flat_labels, flat.latencies.mean());
    report.metric("non_degraded_fraction", flat_labels,
                  flat.non_degraded_fraction());

    for (const double selectivity : selectivities) {
      auto cfg = base_config(sw, nodes, seed);
      cfg.broker.brokers = brokers;
      cfg.broker.selectivity = selectivity;
      cfg.broker.stats = sw.stats;
      const auto m = run_sweep_point(sw, cfg, seed, count);
      const double qpm = m.throughput_qpm();
      const double ratio = flat_qpm > 0.0 ? qpm / flat_qpm : 0.0;
      const std::string name =
          "B=" + std::to_string(brokers) + " sel=" +
          format_double(selectivity, 2);
      table.add_row({std::to_string(nodes) + " nodes", name, cell(qpm, 2),
                     cell(m.latencies.mean(), 2),
                     cell(m.latencies.quantile(0.95), 2),
                     cell(ratio, 2) + "x",
                     std::to_string(m.questions_degraded)});
      const obs::Labels labels{{"nodes", std::to_string(nodes)},
                               {"config", name}};
      report.metric("throughput_qpm", labels, qpm);
      report.metric("latency_mean_seconds", labels, m.latencies.mean());
      report.metric("throughput_ratio_vs_flat", labels, ratio);
      report.metric("non_degraded_fraction", labels,
                    m.non_degraded_fraction());

      if (nodes >= 64 && selectivity == aggressive) {
        bar_checked = true;
        const std::size_t div_index = static_cast<std::size_t>(
            std::find(selectivities.begin(), selectivities.end(),
                      aggressive) -
            selectivities.begin());
        const bool ok = ratio >= 2.0 && divergence[div_index] <= 0.05;
        bar_passed = bar_passed && ok;
        std::printf(
            "Acceptance @ %zu nodes (%s): %.2fx flat (>= 2x: %s), "
            "divergence %.1f %% (<= 5 %%: %s)\n",
            nodes, name.c_str(), ratio, ratio >= 2.0 ? "yes" : "NO",
            100.0 * divergence[div_index],
            divergence[div_index] <= 0.05 ? "yes" : "NO");
      }
    }
  }
  std::printf(
      "Selective search + broker tier — throughput (%zu shards, R=2, 4x "
      "overload, DQA)\n%s\n",
      num_shards, table.render().c_str());
  if (bar_checked) {
    report.metric("acceptance_bar_passed", {}, bar_passed ? 1.0 : 0.0);
  }

  report.write();
  if (bar_checked && !bar_passed) {
    std::fprintf(stderr,
                 "bench_selective_search: acceptance bar FAILED (see "
                 "above)\n");
    return 1;
  }
  return 0;
}
