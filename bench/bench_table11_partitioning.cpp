// Reproduces paper Table 11: "Answer processing speedup for different
// partitioning strategies" — SEND vs ISEND vs RECV on 4/8/12 nodes at low
// load, measured as the AP stage time relative to the 1-node AP stage.
//
// Shape to reproduce: SEND clearly worst (contiguous rank blocks of a
// cost-decreasing paragraph array imbalance the workers); RECV best,
// ISEND close behind (paper: 7.17 / 9.22 / 9.87 at 12 nodes).

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using parallel::Strategy;
  const auto& world = bench::bench_world();
  constexpr std::size_t kQuestions = 40;

  const auto ap_time = [&](std::size_t nodes, Strategy strategy,
                           std::size_t chunk) {
    cluster::SystemConfig cfg;
    cfg.partition.ap_strategy = strategy;
    cfg.partition.ap_chunk = chunk;
    return bench::run_low_load(world, nodes, kQuestions, &cfg).t_ap.mean();
  };

  // The paper ran RECV at its measured optimum chunk (40, from Fig. 10);
  // find ours the same way with a quick sweep at 8 nodes.
  std::size_t best_chunk = 1;
  double best_time = 1e300;
  for (std::size_t chunk : {1u, 2u, 4u, 7u, 11u, 15u, 22u}) {
    const double t = ap_time(8, Strategy::kRecv, chunk);
    if (t < best_time) {
      best_time = t;
      best_chunk = chunk;
    }
  }
  std::printf("RECV optimum chunk for this corpus: %zu paragraphs\n",
              best_chunk);

  const double base = ap_time(1, Strategy::kRecv, best_chunk);

  bench::BenchReport report("table11_partitioning");
  report.config("questions", std::int64_t{kQuestions});
  report.config("recv_chunk", static_cast<std::int64_t>(best_chunk));

  const char* paper[] = {"2.71 / 3.61 / 3.73", "4.78 / 6.25 / 6.58",
                         "7.17 / 9.22 / 9.87"};
  const double paper_cells[3][3] = {{2.71, 3.61, 3.73},
                                    {4.78, 6.25, 6.58},
                                    {7.17, 9.22, 9.87}};
  TextTable table({"", "SEND", "ISEND", "RECV", "paper SEND/ISEND/RECV"});
  const std::size_t node_counts[] = {4, 8, 12};
  const Strategy strategies[] = {Strategy::kSend, Strategy::kIsend,
                                 Strategy::kRecv};
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    std::vector<std::string> cells{std::to_string(nodes) + " processors"};
    for (int col = 0; col < 3; ++col) {
      const double speedup = base / ap_time(nodes, strategies[col], best_chunk);
      cells.push_back(cell(speedup, 2));
      report.metric("ap_speedup",
                    {{"nodes", std::to_string(nodes)},
                     {"strategy",
                      std::string(parallel::to_string(strategies[col]))}},
                    speedup, paper_cells[row][col]);
    }
    cells.push_back(paper[row]);
    table.add_row(cells);
  }

  std::printf(
      "Table 11 — AP speedup by partitioning strategy (low load, %zu "
      "questions)\n%s",
      kQuestions, table.render().c_str());
  std::printf("Expected shape: RECV >= ISEND >> SEND at every node count.\n");
  report.write();
  return 0;
}
