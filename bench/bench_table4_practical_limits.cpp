// Reproduces paper Table 4: "Practical upper limits on the number of
// processors and the corresponding speedups" — the analytical intra-question
// model evaluated over the disk x network bandwidth grid.
//
// Pure analytics: with the TREC-9-calibrated parameters the model should
// land within a few percent of every paper cell (tested in test_models.cpp).

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/intra_question.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using model::IntraQuestionModel;
  using model::IntraQuestionParams;

  struct PaperCell {
    int n;
    double s;
  };
  // Paper Table 4, rows = disk bandwidth, columns = network bandwidth.
  const PaperCell paper[4][4] = {
      {{17, 8.65}, {64, 32.84}, {89, 45.75}, {93, 47.73}},
      {{13, 6.61}, {49, 25.30}, {68, 35.33}, {71, 36.87}},
      {{12, 6.01}, {43, 22.49}, {61, 31.81}, {64, 33.28}},
      {{11, 5.59}, {41, 21.35}, {57, 29.90}, {60, 31.34}},
  };
  const double disks[] = {100, 250, 500, 1000};
  const double nets[] = {1, 10, 100, 1000};

  bench::BenchReport report("table4_practical_limits");
  report.config("protocol", "analytical intra-question model (Eq. 34)");

  TextTable table({"disk \\ net", "1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps"});
  for (int d = 0; d < 4; ++d) {
    std::vector<std::string> n_row{format_double(disks[d], 0) + " Mbps"};
    std::vector<std::string> s_row{"  (paper)"};
    for (int n = 0; n < 4; ++n) {
      IntraQuestionParams p;
      p.disk = Bandwidth::from_mbps(disks[d]);
      p.net = Bandwidth::from_mbps(nets[n]);
      const IntraQuestionModel m(p);
      n_row.push_back("N=" + format_double(m.n_max(), 0) +
                      " S=" + format_double(m.speedup_at_n_max(), 2));
      s_row.push_back("N=" + std::to_string(paper[d][n].n) +
                      " S=" + format_double(paper[d][n].s, 2));
      const obs::Labels labels = {{"disk_mbps", format_double(disks[d], 0)},
                                  {"net_mbps", format_double(nets[n], 0)}};
      report.metric("n_max", labels, m.n_max(),
                    static_cast<double>(paper[d][n].n));
      report.metric("speedup_at_n_max", labels, m.speedup_at_n_max(),
                    paper[d][n].s);
    }
    table.add_row(n_row);
    table.add_row(s_row);
    if (d < 3) table.add_separator();
  }

  std::printf(
      "Table 4 — Practical upper limits on processors (model vs paper)\n%s",
      table.render().c_str());
  std::printf(
      "N_max = T_par/T_seq (Eq. 34); S at N_max = T_1/(2 T_seq). More network "
      "helps; more disk bandwidth *reduces* the useful processor count.\n");
  report.write();
  return 0;
}
