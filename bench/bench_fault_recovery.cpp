// Fault injection: what does losing a node mid-run cost each AP
// partitioning strategy? Not a paper exhibit — the paper's cluster ran
// for months (Sec. 5) and the strategies differ in how much work a crash
// strands: SEND/ISEND lose the whole partition of the dead node and
// re-partition it over the survivors, RECV loses only the in-flight
// chunk (the shared deque keeps the rest).
//
// Scenario: an 8-node DQA cluster under sustained 2x overload; two nodes
// crash (no restart) at 1/4 and 1/2 of the expected run. Each strategy is
// run fault-free and faulted with an identical question sequence.

#include <cstdio>

#include "cluster/workload.hpp"
#include "workload/driver.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  using parallel::Strategy;
  const auto& world = bench::bench_world();
  const std::size_t nodes = cli.nodes_or(cli.smoke ? 4 : 8);
  // Message drops compound the crash scenario: the reliability envelope
  // retries them, so every question still completes, at a latency cost.
  const double drop_rate = cli.drop_rate_or(0.0);

  // Work-bound makespan estimate: 8*N questions over N nodes.
  const double est_makespan = 8.0 * world.mean_service_seconds();

  const auto run = [&](Strategy strategy, bool faulted) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg;
    cfg.nodes = nodes;
    cfg.dispatch.policy = Policy::kDqa;
    cfg.partition.ap_strategy = strategy;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cfg.net.faults.drop_probability = drop_rate;
    if (faulted) {
      cfg.faults.crashes.push_back(cluster::FaultEvent{
          static_cast<sched::NodeId>(nodes - 2), 0.25 * est_makespan});
      cfg.faults.crashes.push_back(cluster::FaultEvent{
          static_cast<sched::NodeId>(nodes - 1), 0.50 * est_makespan});
    }
    cluster::System system(sim, cfg);
    workload::RunSpec spec;
    spec.shape = workload::WorkloadShape::kOverload;
    spec.overload.seed = cli.seed_or(7);
    spec.overload.reference_disk = world.cost->anchors().reference_disk;
    return workload::Driver(system, world.plans).run(spec).metrics;
  };

  bench::BenchReport report("fault_recovery");
  report.config("nodes", static_cast<std::int64_t>(nodes));
  report.config("crashes", std::int64_t{2});
  report.config("drop_rate", drop_rate);
  report.config("protocol", "high-load 2x, 2 crashes, no restart");

  TextTable table({"AP strategy", "Run", "Makespan (s)", "Mean lat (s)",
                   "p95 (s)", "Legs lost", "Items recov",
                   "Recov legs", "Q restarts", "Detect (s)"});
  std::printf("Two crashes at t=%.0fs and t=%.0fs, no restart (8 -> 6 nodes)\n",
              0.25 * est_makespan, 0.50 * est_makespan);
  for (const Strategy strategy :
       {Strategy::kSend, Strategy::kIsend, Strategy::kRecv}) {
    const auto clean = run(strategy, false);
    const auto fault = run(strategy, true);
    if (clean.completed != clean.submitted ||
        fault.completed != fault.submitted) {
      std::printf("ERROR: questions lost (%zu/%zu clean, %zu/%zu faulted)\n",
                  clean.completed, clean.submitted, fault.completed,
                  fault.submitted);
      return 1;
    }
    table.add_row({std::string(to_string(strategy)), "fault-free",
                   cell(clean.makespan, 0), cell(clean.latencies.mean(), 1),
                   cell(clean.latencies.quantile(0.95), 1), "-", "-", "-", "-",
                   "-"});
    table.add_row({"", "2 crashes", cell(fault.makespan, 0),
                   cell(fault.latencies.mean(), 1),
                   cell(fault.latencies.quantile(0.95), 1),
                   std::to_string(fault.legs_lost),
                   std::to_string(fault.items_recovered),
                   std::to_string(fault.recovery_legs),
                   std::to_string(fault.question_restarts),
                   cell(fault.recovery_latency.mean(), 2)});
    const double overhead =
        100.0 * (fault.makespan - clean.makespan) / clean.makespan;
    table.add_row({"", "overhead", cell(overhead, 1) + "%", "", "", "", "", "",
                   "", ""});
    const std::string strat{to_string(strategy)};
    report.metric("makespan_seconds", {{"run", "clean"}, {"strategy", strat}},
                  clean.makespan);
    report.metric("makespan_seconds", {{"run", "faulted"}, {"strategy", strat}},
                  fault.makespan);
    report.metric("latency_seconds", {{"run", "faulted"}, {"strategy", strat}},
                  fault.latencies);
    report.metric("legs_lost", {{"strategy", strat}},
                  static_cast<double>(fault.legs_lost));
    report.metric("items_recovered", {{"strategy", strat}},
                  static_cast<double>(fault.items_recovered));
    report.metric("recovery_legs", {{"strategy", strat}},
                  static_cast<double>(fault.recovery_legs));
    report.metric("question_restarts", {{"strategy", strat}},
                  static_cast<double>(fault.question_restarts));
    report.metric("recovery_latency_seconds", {{"strategy", strat}},
                  fault.recovery_latency);
    report.metric("makespan_overhead_percent", {{"strategy", strat}},
                  overhead);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "Expected shape: every question completes in every run; RECV strands "
      "only the in-flight chunk per lost leg while SEND/ISEND strand the "
      "dead node's whole partition, so RECV recovers fewer items; most of "
      "the faulted slowdown is capacity loss (6 survivors), not recovery.\n");
  report.write();
  return 0;
}
