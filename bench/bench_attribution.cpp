// Critical-path latency attribution end to end: runs the cluster under
// three high-load configurations (healthy, lossy network, one straggler
// node), decomposes every question's latency into queue / service /
// network / retry / merge blame shares, rolls the traces into windowed
// time series (exported as JSONL next to the report), and runs the
// model-drift monitor against the analytical per-stage predictions on a
// calibrated low-load run plus a deliberately perturbed (2x service time)
// twin.
//
// Not a paper exhibit — this is the analysis layer the paper applied by
// hand (Tables 8-10) turned into a harness.
//
// Acceptance (checked here, non-zero exit on violation):
//   * every question's components sum to its measured latency;
//   * network + retry blame grows under the lossy config vs healthy, and
//     queue + retry blame grows under the straggler config vs healthy;
//   * the drift monitor stays quiet on the calibrated run and flags the
//     2x-perturbed run within one window.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/workload.hpp"
#include "workload/driver.hpp"
#include "common/table.hpp"
#include "model/predictions.hpp"
#include "obs/critical_path.hpp"
#include "obs/drift.hpp"
#include "obs/timeseries.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

struct RunOutput {
  qadist::cluster::Metrics metrics;
  std::vector<qadist::obs::QuestionBreakdown> questions;
  qadist::obs::RunAttribution attribution;
  std::vector<qadist::obs::TimeWindow> windows;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  const std::size_t nodes = cli.nodes_or(cli.smoke ? 4 : 8);
  const std::uint64_t seed = cli.seed_or(7);
  const std::size_t high_count = cli.smoke ? 4 * nodes : 8 * nodes;
  const std::size_t low_count = cli.smoke ? 6 : 16;
  // Aim for windows holding a handful of completions each, so per-window
  // quantiles and drift verdicts rest on more than one sample.
  const double windows_target = cli.smoke ? 4.0 : 8.0;

  const char* results_env = std::getenv("QADIST_RESULTS_DIR");
  const std::string results_dir =
      (results_env != nullptr && *results_env != '\0') ? results_env
                                                       : "results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);

  bench::BenchReport report("attribution");
  report.config("nodes", static_cast<std::int64_t>(nodes));
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("protocol",
                "blame shares: high-load 2x, healthy vs 5% drop vs one "
                "half-speed node; drift: low-load serial vs analytical "
                "per-stage predictions, perturbed twin at 2x service");

  bool acceptance_ok = true;

  // Exactness first: the decomposition must telescope for every question
  // of every run, or the blame shares below are fiction.
  std::size_t checked = 0;
  const auto check_exact = [&](const RunOutput& out, const char* scenario) {
    for (const obs::QuestionBreakdown& q : out.questions) {
      ++checked;
      const double err = std::abs(q.component_sum() - q.total);
      if (err > 1e-6 * std::max(1.0, q.total)) {
        std::printf(
            "ERROR: %s question %lld: components sum to %.9f, measured "
            "%.9f\n",
            scenario, static_cast<long long>(q.question), q.component_sum(),
            q.total);
        acceptance_ok = false;
      }
    }
  };

  const auto run_scenario = [&](const cluster::SystemConfig& base,
                                bool serial) {
    simnet::Simulation sim;
    cluster::SystemConfig cfg = base;
    cfg.nodes = nodes;
    cfg.dispatch.policy = cluster::Policy::kDqa;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    if (!cfg.node_cpu_speeds.empty()) cfg.node_cpu_speeds.resize(nodes, 1.0);
    cluster::System system(sim, cfg);
    obs::Tracer tracer;
    system.set_tracer(&tracer);
    workload::RunSpec spec;
    if (serial) {
      spec.shape = workload::WorkloadShape::kSerial;
      spec.serial.count = low_count;
      spec.serial.offset = 1;
      spec.serial.stride = 2;
      spec.serial.reference_disk = world.cost->anchors().reference_disk;
    } else {
      spec.shape = workload::WorkloadShape::kOverload;
      spec.overload.seed = seed;
      spec.overload.count = high_count;
      spec.overload.reference_disk = world.cost->anchors().reference_disk;
    }
    workload::Driver(system, world.plans).submit(spec);
    RunOutput out;
    out.metrics = system.run();
    out.questions = obs::analyze_questions(tracer);
    out.attribution = obs::attribute_run(out.questions);
    obs::TimeseriesConfig tc;
    tc.window_seconds = std::max(1.0, out.metrics.makespan / windows_target);
    out.windows = obs::rollup(tracer, tc);
    return out;
  };

  // ---- Blame shares: healthy vs lossy vs straggler (high load). --------
  // Bounded concurrency with an ample waiting room: arrivals beyond 2
  // in-flight questions per node wait at admission (measured as queue-wait
  // blame) instead of time-sharing the CPUs, so a slow cluster shows up as
  // queueing rather than as uniformly inflated service.
  cluster::SystemConfig healthy_cfg;
  healthy_cfg.admission.max_concurrent = 2 * nodes;
  healthy_cfg.admission.queue_capacity = high_count;
  const RunOutput healthy = run_scenario(healthy_cfg, /*serial=*/false);

  cluster::SystemConfig lossy_cfg = healthy_cfg;
  lossy_cfg.net.faults.drop_probability = 0.05;
  lossy_cfg.net.faults.duplicate_probability = 0.025;
  lossy_cfg.net.faults.jitter_min = 0.001;
  lossy_cfg.net.faults.jitter_max = 0.010;
  lossy_cfg.net.reliability.question_deadline =
      10.0 * healthy.metrics.latencies.quantile(0.95);
  const RunOutput lossy = run_scenario(lossy_cfg, /*serial=*/false);

  cluster::SystemConfig straggler_cfg = healthy_cfg;
  straggler_cfg.node_cpu_speeds.assign(nodes, 1.0);
  straggler_cfg.node_cpu_speeds.back() = 0.5;  // one half-speed node
  const RunOutput straggler = run_scenario(straggler_cfg, /*serial=*/false);

  const char* names[] = {"healthy", "lossy", "straggler"};
  const RunOutput* runs[] = {&healthy, &lossy, &straggler};
  TextTable table({"Scenario", "Mean lat (s)", "Queue", "Service", "Network",
                   "Retry", "Merge"});
  for (int i = 0; i < 3; ++i) {
    const RunOutput& out = *runs[i];
    check_exact(out, names[i]);
    const obs::RunAttribution& a = out.attribution;
    table.add_row({names[i], cell(out.metrics.latencies.mean(), 1),
                   cell_percent(a.share(a.queue)),
                   cell_percent(a.share(a.service.total())),
                   cell_percent(a.share(a.network)),
                   cell_percent(a.share(a.retry)),
                   cell_percent(a.share(a.merge))});
    const obs::Labels labels = {{"scenario", names[i]}};
    report.metric("latency_seconds", labels, out.metrics.latencies);
    report.metric("blame_queue", labels, a.share(a.queue));
    report.metric("blame_service", labels, a.share(a.service.total()));
    report.metric("blame_network", labels, a.share(a.network));
    report.metric("blame_retry", labels, a.share(a.retry));
    report.metric("blame_merge", labels, a.share(a.merge));
    report.metric("critical_legs", labels,
                  static_cast<double>(out.questions.size()));
    // Machine-readable rollup next to the report (CI uploads these).
    obs::export_timeseries_jsonl_file(
        out.windows,
        results_dir + "/TIMESERIES_attribution_" + names[i] + ".jsonl");
  }
  std::printf("Blame shares by scenario (high load, %zu nodes)\n%s", nodes,
              table.render().c_str());
  std::printf("\nHealthy-run attribution detail:\n%s\n",
              obs::render_attribution(healthy.attribution).c_str());

  // Network (wire + retries) must answer for more of the latency once the
  // fabric drops 5% of messages; the half-speed node must lengthen queues
  // (everything behind the slow legs) relative to the healthy cluster.
  const double healthy_net = healthy.attribution.share(
      healthy.attribution.network + healthy.attribution.retry);
  const double lossy_net = lossy.attribution.share(lossy.attribution.network +
                                                   lossy.attribution.retry);
  if (lossy_net <= healthy_net) {
    std::printf(
        "ERROR: network+retry blame did not grow under loss: healthy %.4f "
        "vs lossy %.4f\n",
        healthy_net, lossy_net);
    acceptance_ok = false;
  }
  const double healthy_wait =
      healthy.attribution.share(healthy.attribution.queue);
  const double straggler_wait =
      straggler.attribution.share(straggler.attribution.queue);
  if (straggler_wait <= healthy_wait) {
    std::printf(
        "ERROR: queue blame did not grow with a straggler: healthy %.4f vs "
        "straggler %.4f\n",
        healthy_wait, straggler_wait);
    acceptance_ok = false;
  }
  report.metric("network_retry_blame_delta", {},
                lossy_net - healthy_net);
  report.metric("queue_blame_delta", {}, straggler_wait - healthy_wait);

  // ---- Model drift: calibrated low-load run vs 2x-perturbed twin. ------
  const model::StagePredictor predictor(bench::stage_workload(world, 1, 2));
  const model::StagePrediction predicted =
      predictor.predict(static_cast<double>(nodes));
  obs::DriftConfig drift_cfg;
  drift_cfg.min_samples = 2;

  const RunOutput reference = run_scenario(cluster::SystemConfig{},
                                           /*serial=*/true);
  check_exact(reference, "calibrated");
  // Fold the model's systematic error (the Table 10 analytical-vs-measured
  // gap) into the baseline; record the raw gap alongside.
  const obs::DriftReport model_gap =
      obs::detect_drift(reference.windows, predicted, drift_cfg);
  const model::StagePrediction calibrated =
      obs::calibrate_prediction(reference.windows, predicted, drift_cfg);
  const obs::DriftReport quiet =
      obs::detect_drift(reference.windows, calibrated, drift_cfg);

  cluster::SystemConfig perturbed_cfg;
  perturbed_cfg.node_cpu_speeds.assign(nodes, 0.5);  // 2x service time
  const RunOutput perturbed = run_scenario(perturbed_cfg, /*serial=*/true);
  check_exact(perturbed, "perturbed");
  const obs::DriftReport flagged =
      obs::detect_drift(perturbed.windows, calibrated, drift_cfg);

  std::printf("Analytical model vs healthy measurement (raw gap):\n%s\n",
              obs::render_drift(model_gap).c_str());
  std::printf("Drift vs calibrated model — healthy run:\n%s\n",
              obs::render_drift(quiet).c_str());
  std::printf("Drift vs calibrated model — 2x service perturbation:\n%s\n",
              obs::render_drift(flagged).c_str());
  if (quiet.flagged) {
    std::printf("ERROR: drift monitor flagged the calibrated run\n");
    acceptance_ok = false;
  }
  if (!flagged.flagged) {
    std::printf("ERROR: drift monitor missed the 2x perturbation\n");
    acceptance_ok = false;
  }

  obs::MetricsRegistry drift_registry;
  obs::publish_drift(flagged, drift_registry);
  for (const obs::StageDrift& d : model_gap.overall) {
    report.metric("model_error_ratio", {{"stage", d.stage}}, d.ratio);
  }
  for (const obs::StageDrift& d : flagged.overall) {
    report.metric("drift_ratio", {{"stage", d.stage}, {"run", "perturbed"}},
                  d.ratio);
  }
  for (const obs::StageDrift& d : quiet.overall) {
    report.metric("drift_ratio", {{"stage", d.stage}, {"run", "calibrated"}},
                  d.ratio);
  }
  report.metric("drift_flagged", {{"run", "calibrated"}},
                quiet.flagged ? 1.0 : 0.0);
  report.metric("drift_flagged", {{"run", "perturbed"}},
                flagged.flagged ? 1.0 : 0.0);
  report.metric("drift_first_flagged_window", {{"run", "perturbed"}},
                static_cast<double>(flagged.first_flagged_window));
  report.metric("decomposition_questions_checked", {},
                static_cast<double>(checked));

  report.write();
  std::printf(
      "Expected shape: service dominates the healthy blame table; the "
      "lossy fabric shifts blame to network+retry; the straggler shifts it "
      "to queue wait; drift quiet when calibrated, FLAGGED at 2x.\n");
  if (!acceptance_ok) {
    std::printf("ACCEPTANCE FAILED (see errors above)\n");
    return 1;
  }
  return 0;
}
