#include "support/bench_world.hpp"

#include <chrono>
#include <cstdio>

#include "cluster/workload.hpp"
#include "workload/driver.hpp"

namespace qadist::bench {

using cluster::Metrics;
using cluster::Policy;
using cluster::SystemConfig;

double BenchWorld::mean_service_seconds() const {
  return cluster::mean_service_seconds(plans, cost->anchors().reference_disk);
}

double BenchWorld::mean_accepted_paragraphs() const {
  double total = 0.0;
  for (const auto& p : plans) total += static_cast<double>(p.ap_units.size());
  return plans.empty() ? 0.0 : total / static_cast<double>(plans.size());
}

const BenchWorld& bench_world() {
  static const BenchWorld world = [] {
    const auto t0 = std::chrono::steady_clock::now();
    BenchWorld w;

    corpus::CorpusConfig cc;
    cc.seed = 1234;
    cc.num_documents = 1500;
    cc.vocabulary_size = 12000;
    cc.entities_per_type = 250;
    w.corpus = corpus::generate_corpus(cc);

    qa::EngineConfig ec;
    // Uneven, topic-oriented-style sub-collections: per-collection PR cost
    // spreads several-fold like the paper's Fig. 7 traces.
    ec.subcollection_size_ratio = 3.0;
    // Wide retrieval so questions accept a few hundred paragraphs — enough
    // AP iterative units for partitioning experiments (paper: ~880).
    ec.min_paragraphs_per_subcollection = 60;
    ec.ordering.relative_threshold = 0.25;
    ec.ordering.max_accepted = 600;
    w.engine = std::make_unique<qa::Engine>(w.corpus, ec);

    w.questions = corpus::generate_questions(w.corpus, 120, /*seed=*/77);

    w.cost = std::make_unique<cluster::CostModel>(cluster::CostModel::calibrate(
        *w.engine,
        std::span<const corpus::Question>(w.questions).subspan(0, 40)));

    w.plans.reserve(w.questions.size());
    for (const auto& q : w.questions) {
      w.plans.push_back(cluster::make_plan(*w.engine, *w.cost, q));
    }
    // The paper drew its high-load workload "randomly from the TREC-8 and
    // TREC-9 question set" — two populations with 48 s vs 94 s average
    // service. Mirror that bimodality.
    cluster::apply_bimodal_mix(w.plans);

    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::fprintf(stderr,
                 "[bench_world] %zu docs, %zu questions, mean accepted "
                 "paragraphs %.0f, mean service %.1fs (built in %.1fs)\n",
                 w.corpus.collection.size(), w.questions.size(),
                 w.mean_accepted_paragraphs(), w.mean_service_seconds(), dt);
    return w;
  }();
  return world;
}

Metrics run_high_load(const BenchWorld& world, Policy policy,
                      std::size_t nodes, std::uint64_t seed,
                      const SystemConfig* base) {
  simnet::Simulation sim;
  SystemConfig cfg = base != nullptr ? *base : SystemConfig{};
  cfg.nodes = nodes;
  cfg.dispatch.policy = policy;
  if (base == nullptr) cfg.partition.ap_chunk = scaled_chunk(world);
  cluster::System system(sim, cfg);

  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kOverload;
  spec.overload.seed = seed;
  spec.overload.reference_disk = world.cost->anchors().reference_disk;
  return workload::Driver(system, world.plans).run(spec).metrics;
}

Metrics run_zipf_load(const BenchWorld& world, const SystemConfig& base,
                      const cluster::OverloadWorkload& workload,
                      bool prewarm) {
  simnet::Simulation sim;
  cluster::System system(sim, base);
  cluster::OverloadWorkload load = workload;
  load.reference_disk = world.cost->anchors().reference_disk;
  if (prewarm) {
    // Warm every plan the stream will submit — the steady state of a
    // long-running deployment, where the popular questions are resident.
    const std::size_t count =
        load.count != 0 ? load.count : 8 * base.nodes;
    std::vector<char> warmed(world.plans.size(), 0);
    for (const std::size_t pick :
         cluster::overload_pick_sequence(load, world.plans.size(), count)) {
      if (warmed[pick] != 0) continue;
      warmed[pick] = 1;
      system.prewarm(world.plans[pick]);
    }
  }
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kOverload;
  spec.overload = load;
  return workload::Driver(system, world.plans).run(spec).metrics;
}

PolicyResult run_policy_averaged(const BenchWorld& world, Policy policy,
                                 std::size_t nodes, int seeds,
                                 const SystemConfig* base) {
  PolicyResult out;
  for (int s = 0; s < seeds; ++s) {
    const auto m = run_high_load(world, policy, nodes, 1000 + s, base);
    out.throughput_qpm += m.throughput_qpm();
    out.mean_latency += m.latencies.mean();
    out.p95_latency += m.latencies.quantile(0.95);
    out.migrations_qa += static_cast<double>(m.migrations_qa);
    out.migrations_pr += static_cast<double>(m.migrations_pr);
    out.migrations_ap += static_cast<double>(m.migrations_ap);
  }
  const auto n = static_cast<double>(seeds);
  out.throughput_qpm /= n;
  out.mean_latency /= n;
  out.p95_latency /= n;
  out.migrations_qa /= n;
  out.migrations_pr /= n;
  out.migrations_ap /= n;
  return out;
}

Metrics run_open_loop(const BenchWorld& world, const SystemConfig& base,
                      const workload::ArrivalProcessConfig& arrivals) {
  simnet::Simulation sim;
  cluster::System system(sim, base);
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kOpenLoop;
  spec.open_loop = arrivals;
  return workload::Driver(system, world.plans).run(spec).metrics;
}

Metrics run_low_load(const BenchWorld& world, std::size_t nodes,
                     std::size_t count, const SystemConfig* base) {
  simnet::Simulation sim;
  SystemConfig cfg = base != nullptr ? *base : SystemConfig{};
  cfg.nodes = nodes;
  cfg.dispatch.policy = Policy::kDqa;
  if (base == nullptr) cfg.partition.ap_chunk = scaled_chunk(world);
  cluster::System system(sim, cfg);

  // Only the unscaled (TREC-9-like, odd-index) plans are used, so the
  // low-load tables stay anchored to the Table 8 calibration.
  workload::RunSpec spec;
  spec.shape = workload::WorkloadShape::kSerial;
  spec.serial.count = count;
  spec.serial.offset = 1;
  spec.serial.stride = 2;
  spec.serial.reference_disk = world.cost->anchors().reference_disk;
  return workload::Driver(system, world.plans).run(spec).metrics;
}

model::StageWorkload stage_workload(const BenchWorld& world,
                                    std::size_t offset, std::size_t stride) {
  model::StageWorkload w;
  const Bandwidth disk = world.cost->anchors().reference_disk;
  w.disk = disk;
  w.net = cluster::NetworkConfig{}.bandwidth;
  double count = 0.0;
  for (std::size_t i = offset; i < world.plans.size(); i += stride) {
    const cluster::QuestionPlan& plan = world.plans[i];
    count += 1.0;
    w.qp_seconds +=
        plan.qp.cpu_seconds + disk.transfer_time(plan.qp.disk_bytes);
    w.po_seconds +=
        plan.po.cpu_seconds + disk.transfer_time(plan.po.disk_bytes);
    for (const auto& u : plan.pr_units) {
      w.pr_cpu_seconds += u.demand.cpu_seconds;
      w.pr_disk_bytes += u.demand.disk_bytes;
      w.ps_cpu_seconds +=
          u.ps.cpu_seconds + disk.transfer_time(u.ps.disk_bytes);
      w.pr_ship_bytes += static_cast<double>(u.bytes_out);
    }
    for (const auto& u : plan.ap_units) {
      w.ap_cpu_seconds +=
          u.demand.cpu_seconds + disk.transfer_time(u.demand.disk_bytes);
      w.ap_ship_bytes +=
          static_cast<double>(u.bytes_in + u.answer_bytes_out);
    }
  }
  if (count > 0.0) {
    w.qp_seconds /= count;
    w.po_seconds /= count;
    w.pr_cpu_seconds /= count;
    w.pr_disk_bytes /= count;
    w.ps_cpu_seconds /= count;
    w.ap_cpu_seconds /= count;
    w.pr_ship_bytes /= count;
    w.ap_ship_bytes /= count;
  }
  return w;
}

std::size_t scaled_chunk(const BenchWorld& world, double paper_chunk) {
  const double scale = world.mean_accepted_paragraphs() / 880.0;
  const auto chunk =
      static_cast<std::size_t>(std::max(1.0, paper_chunk * scale));
  return chunk;
}

}  // namespace qadist::bench
