#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/stats.hpp"
#include "obs/registry.hpp"

namespace qadist::bench {

/// Machine-readable twin of a bench binary's text table. Each harness
/// builds one report, adds its configuration and measured metrics, and
/// writes `results/BENCH_<name>.json` next to the human-readable
/// `bench_<name>.txt` that scripts/reproduce.sh captures (override the
/// directory with QADIST_RESULTS_DIR). Schema "qadist-bench-v1":
///
///   {"schema": "qadist-bench-v1",
///    "bench": "table5_throughput",
///    "config": {"seeds": 10, "protocol": "high-load 2x"},
///    "metrics": [
///      {"name": "throughput_qpm",
///       "labels": {"nodes": "4", "policy": "DNS"},
///       "count": 10, "mean": 2.61, "p50": 2.60, "p95": 2.70, "max": 2.71,
///       "paper_expected": 2.64},
///      ...]}
///
/// Every metric carries the same statistics block; a scalar measurement is
/// a distribution of one (mean == p50 == p95 == max). `paper_expected` is
/// present only where the source paper publishes the matching number.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Config entries (experiment knobs; rendered as one JSON object in
  /// insertion order).
  void config(std::string key, std::string value);
  void config(std::string key, double value);
  void config(std::string key, std::int64_t value);

  /// A scalar measurement, optionally with the paper's published value.
  void metric(std::string name, obs::Labels labels, double value);
  void metric(std::string name, obs::Labels labels, double value,
              double paper_expected);

  /// A distribution measurement (count/mean/p50/p95/max from the samples).
  void metric(std::string name, obs::Labels labels, const Samples& samples);
  void metric(std::string name, obs::Labels labels, const Samples& samples,
              double paper_expected);

  /// A streaming-stats measurement; RunningStats keeps no reservoir, so
  /// p50/p95 are reported as the mean (exact count/mean/max).
  void metric(std::string name, obs::Labels labels, const RunningStats& stats);
  void metric(std::string name, obs::Labels labels, const RunningStats& stats,
              double paper_expected);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }
  [[nodiscard]] std::string to_json() const;

  /// Resolved output path: $QADIST_RESULTS_DIR/BENCH_<name>.json, default
  /// directory "results" (created if missing).
  [[nodiscard]] std::string output_path() const;

  /// Writes the report; returns false (with a stderr note) on I/O failure
  /// so benches keep their text output even when results/ is unwritable.
  bool write() const;

 private:
  struct Metric {
    std::string name;
    obs::Labels labels;
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
    bool has_paper = false;
    double paper_expected = 0.0;
  };

  void push(Metric m, const double* paper);

  std::string name_;
  std::vector<std::pair<std::string,
                        std::variant<std::string, double, std::int64_t>>>
      config_;
  std::vector<Metric> metrics_;
};

}  // namespace qadist::bench
