#include "support/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace qadist::bench {

namespace {

constexpr const char* kUsage =
    "usage: [--nodes N] [--seed S] [--policy NAME] [--strategy NAME]\n"
    "       [--drop-rate P] [--brokers B] [--selectivity F]\n"
    "       [--out DIR] [--smoke] [--help]\n"
    "\n"
    "  --nodes N        override the node count\n"
    "  --seed S         override the workload seed\n"
    "  --policy NAME    DNS | INTER | DQA | TWO-CHOICE\n"
    "  --strategy NAME  SEND | ISEND | RECV\n"
    "  --drop-rate P    per-message drop probability in [0,1]\n"
    "  --brokers B      broker/mediator tier size (0 = flat star)\n"
    "  --selectivity F  fraction of shards searched per question, (0,1]\n"
    "  --out DIR        results directory (default: results)\n"
    "  --smoke          tiny-config smoke run (CI)\n";

/// Splits "--flag=value" / "--flag value" uniformly: on a match, `value`
/// holds the attached or following argument and `index` is advanced past
/// whatever was consumed. A flag that needs a value but has none is an
/// error (signalled by returning true with `value` unset).
bool match_value_flag(std::span<const char* const> args, std::size_t& index,
                      std::string_view flag,
                      std::optional<std::string_view>& value) {
  const std::string_view arg = args[index];
  if (arg == flag) {
    if (index + 1 < args.size()) {
      value = args[++index];
    }
    return true;
  }
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

bool parse_count(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_probability(std::string_view text, double& out) {
  if (text.empty()) return false;
  const std::string copy(text);  // strtod needs a terminator
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;  // rejects NaN too
  out = value;
  return true;
}

}  // namespace

std::optional<BenchCli> BenchCli::try_parse(std::span<const char* const> args,
                                            std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<BenchCli> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  BenchCli cli;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view arg = args[i];
    std::optional<std::string_view> value;
    if (arg == "--help" || arg == "-h") {
      return fail("help");
    }
    if (arg == "--smoke") {
      cli.smoke = true;
      continue;
    }
    if (match_value_flag(args, i, "--nodes", value)) {
      std::uint64_t n = 0;
      if (!value.has_value() || !parse_count(*value, n) || n == 0) {
        return fail("--nodes expects a positive integer");
      }
      cli.nodes = static_cast<std::size_t>(n);
      continue;
    }
    if (match_value_flag(args, i, "--seed", value)) {
      std::uint64_t s = 0;
      if (!value.has_value() || !parse_count(*value, s)) {
        return fail("--seed expects a non-negative integer");
      }
      cli.seed = s;
      continue;
    }
    if (match_value_flag(args, i, "--policy", value)) {
      if (!value.has_value()) return fail("--policy expects a name");
      const auto policy = cluster::parse_policy(*value);
      if (!policy.has_value()) {
        return fail("unknown policy '" + std::string(*value) +
                    "' (DNS | INTER | DQA | TWO-CHOICE)");
      }
      cli.policy = *policy;
      continue;
    }
    if (match_value_flag(args, i, "--strategy", value)) {
      if (!value.has_value()) return fail("--strategy expects a name");
      const auto strategy = cluster::parse_strategy(*value);
      if (!strategy.has_value()) {
        return fail("unknown strategy '" + std::string(*value) +
                    "' (SEND | ISEND | RECV)");
      }
      cli.strategy = *strategy;
      continue;
    }
    if (match_value_flag(args, i, "--drop-rate", value)) {
      double p = 0.0;
      if (!value.has_value() || !parse_probability(*value, p)) {
        return fail("--drop-rate expects a probability in [0,1]");
      }
      cli.drop_rate = p;
      continue;
    }
    if (match_value_flag(args, i, "--brokers", value)) {
      std::uint64_t b = 0;
      if (!value.has_value() || !parse_count(*value, b)) {
        return fail("--brokers expects a non-negative integer");
      }
      cli.brokers = static_cast<std::size_t>(b);
      continue;
    }
    if (match_value_flag(args, i, "--selectivity", value)) {
      double f = 0.0;
      if (!value.has_value() || !parse_probability(*value, f) || f == 0.0) {
        return fail("--selectivity expects a fraction in (0,1]");
      }
      cli.selectivity = f;
      continue;
    }
    if (match_value_flag(args, i, "--out", value)) {
      if (!value.has_value() || value->empty()) {
        return fail("--out expects a directory");
      }
      cli.out = std::string(*value);
      continue;
    }
    return fail("unknown argument '" + std::string(arg) + "'");
  }
  return cli;
}

BenchCli BenchCli::parse(int argc, char** argv) {
  std::string error;
  const auto cli = try_parse(
      std::span<const char* const>(
          const_cast<const char* const*>(argv) + (argc > 0 ? 1 : 0),
          argc > 0 ? static_cast<std::size_t>(argc - 1) : 0),
      &error);
  const char* program = argc > 0 ? argv[0] : "bench";
  if (!cli.has_value()) {
    if (error == "help") {
      std::printf("%s %s", program, kUsage);
      std::exit(0);
    }
    std::fprintf(stderr, "%s: %s\n%s %s", program, error.c_str(), program,
                 kUsage);
    std::exit(2);
  }
  if (cli->out.has_value()) {
    // BenchReport resolves its directory from the environment, so one
    // export covers every report the binary writes.
    ::setenv("QADIST_RESULTS_DIR", cli->out->c_str(), /*overwrite=*/1);
  }
  return *cli;
}

}  // namespace qadist::bench
