// Shared main for the google-benchmark micro benches: the standard
// console output, plus every timing captured into a BenchReport so the
// micro suite shows up in results/BENCH_*.json (and reproduce.sh's
// INDEX.json) like the macro harnesses. The report name derives from the
// binary name: bench_micro_ir -> BENCH_micro_ir.json.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "support/bench_report.hpp"

namespace {

/// Console reporting plus capture. Only plain iteration runs are recorded
/// (aggregates and errored runs are skipped); times are normalized to
/// seconds per iteration regardless of the benchmark's display unit. The
/// metric prefix "micro_" marks these as wall-clock host measurements —
/// the regression gate holds them to a far looser tolerance than the
/// deterministic simulated metrics.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(qadist::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const qadist::obs::Labels labels = {
          {"benchmark", run.benchmark_name()}};
      report_->metric("micro_real_seconds_per_op", labels,
                      run.real_accumulated_time / iters);
      report_->metric("micro_cpu_seconds_per_op", labels,
                      run.cpu_accumulated_time / iters);
    }
  }

 private:
  qadist::bench::BenchReport* report_;
};

std::string report_name(const char* argv0) {
  std::string name = argv0 != nullptr ? argv0 : "";
  if (const auto slash = name.find_last_of("/\\");
      slash != std::string::npos) {
    name.erase(0, slash + 1);
  }
  if (name.rfind("bench_", 0) == 0) name.erase(0, 6);
  return name.empty() ? "micro" : name;
}

}  // namespace

int main(int argc, char** argv) {
  qadist::bench::BenchReport report(report_name(argc > 0 ? argv[0] : ""));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter(&report);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (report.metric_count() > 0) report.write();
  return ran == 0 ? 1 : 0;
}
