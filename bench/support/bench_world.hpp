#pragma once

#include <memory>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/plan.hpp"
#include "cluster/system.hpp"
#include "cluster/workload.hpp"
#include "corpus/generator.hpp"
#include "model/predictions.hpp"
#include "qa/engine.hpp"
#include "workload/arrival.hpp"

namespace qadist::bench {

/// The shared benchmark world: one synthetic corpus sized so that a
/// question retrieves/accepts enough paragraphs to exercise partitioning
/// (a few hundred accepted, vs the paper's ~880), the engine over it, a
/// TREC-like question set, the calibrated cost model, and precomputed
/// question plans for the simulator.
///
/// Built once per bench binary (it runs the real pipeline for every plan).
struct BenchWorld {
  corpus::GeneratedCorpus corpus;
  std::unique_ptr<qa::Engine> engine;
  std::vector<corpus::Question> questions;
  std::unique_ptr<cluster::CostModel> cost;
  std::vector<cluster::QuestionPlan> plans;

  /// Mean sequential (1-node, reference-disk) service time of the plans.
  [[nodiscard]] double mean_service_seconds() const;
  /// Mean accepted paragraphs per question.
  [[nodiscard]] double mean_accepted_paragraphs() const;
};

/// Singleton accessor; construction logs progress to stderr.
const BenchWorld& bench_world();

/// High-load workload per the paper's Sec. 6.1 protocol: 8·N questions
/// submitted with inter-arrival gaps sustaining ~2x the aggregate service
/// rate, identical sequence for every policy at a given seed.
cluster::Metrics run_high_load(const BenchWorld& world,
                               cluster::Policy policy, std::size_t nodes,
                               std::uint64_t seed,
                               const cluster::SystemConfig* base = nullptr);

/// Seed-averaged high-load metrics (throughput, latency, migrations).
struct PolicyResult {
  double throughput_qpm = 0.0;
  double mean_latency = 0.0;
  double p95_latency = 0.0;
  double migrations_qa = 0.0;
  double migrations_pr = 0.0;
  double migrations_ap = 0.0;
};

PolicyResult run_policy_averaged(const BenchWorld& world,
                                 cluster::Policy policy, std::size_t nodes,
                                 int seeds,
                                 const cluster::SystemConfig* base = nullptr);

/// High-load run with an explicit (possibly Zipf-repeating) workload and
/// full config. With `prewarm` the caches of the rendezvous-preferred
/// nodes are seeded with every distinct plan the stream will submit, so
/// the run measures warm-cache steady state.
cluster::Metrics run_zipf_load(const BenchWorld& world,
                               const cluster::SystemConfig& base,
                               const cluster::OverloadWorkload& workload,
                               bool prewarm);

/// Open-loop run (extension): submits the deterministic arrival stream
/// described by `arrivals` against a system built from `base` (node count,
/// admission policy and all other knobs come from the config). Unlike the
/// closed-loop protocols above, the arrival rate is set by the process,
/// not by the system's service rate — the stream keeps coming whether the
/// cluster keeps up or not.
cluster::Metrics run_open_loop(const BenchWorld& world,
                               const cluster::SystemConfig& base,
                               const workload::ArrivalProcessConfig& arrivals);

/// Low-load run (paper Sec. 6.2 protocol): `count` questions one at a
/// time, fully drained between submissions; returns the metrics.
cluster::Metrics run_low_load(const BenchWorld& world, std::size_t nodes,
                              std::size_t count,
                              const cluster::SystemConfig* base = nullptr);

/// RECV chunk size scaled from the paper's optimum (40 of ~880 accepted
/// paragraphs) to this world's accepted-paragraph count.
std::size_t scaled_chunk(const BenchWorld& world, double paper_chunk = 40.0);

/// Per-stage workload averages of the plans (offset/stride select the same
/// subsets the workload generators use, e.g. 1/2 for the low-load set),
/// at the anchors' reference disk — the parameterization the model-drift
/// monitor's StagePredictor needs (bench_table10's, made reusable).
model::StageWorkload stage_workload(const BenchWorld& world,
                                    std::size_t offset = 0,
                                    std::size_t stride = 1);

}  // namespace qadist::bench
