#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "cluster/names.hpp"
#include "parallel/partition.hpp"

namespace qadist::bench {

/// The shared command line of every bench binary. One flag grammar across
/// the suite (no per-bench argv parsing):
///
///   --nodes N        override the node count (benches with one pool size)
///   --seed S         override the workload seed
///   --policy NAME    DNS | INTER | DQA | TWO-CHOICE (case-insensitive)
///   --strategy NAME  SEND | ISEND | RECV (case-insensitive)
///   --drop-rate P    per-message drop probability in [0,1] (fault benches)
///   --brokers B      broker/mediator tier size (0 = flat star)
///   --selectivity F  fraction of shards searched per question, (0,1]
///   --out DIR        results directory (sets QADIST_RESULTS_DIR)
///   --smoke          tiny-config smoke run (CI): benches that honor it
///                    shrink the experiment, others ignore it
///   --help           usage and exit
///
/// Values may be attached with '=' ("--nodes=8") or follow as the next
/// argument ("--nodes 8"). Every flag is optional: a bench passes its own
/// defaults to the *_or accessors, so running with no arguments reproduces
/// the published experiment exactly.
struct BenchCli {
  std::optional<std::size_t> nodes;
  std::optional<std::uint64_t> seed;
  std::optional<cluster::Policy> policy;
  std::optional<parallel::Strategy> strategy;
  std::optional<double> drop_rate;
  std::optional<std::size_t> brokers;
  std::optional<double> selectivity;
  std::optional<std::string> out;
  bool smoke = false;

  [[nodiscard]] std::size_t nodes_or(std::size_t fallback) const {
    return nodes.value_or(fallback);
  }
  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed.value_or(fallback);
  }
  [[nodiscard]] cluster::Policy policy_or(cluster::Policy fallback) const {
    return policy.value_or(fallback);
  }
  [[nodiscard]] parallel::Strategy strategy_or(
      parallel::Strategy fallback) const {
    return strategy.value_or(fallback);
  }
  [[nodiscard]] double drop_rate_or(double fallback) const {
    return drop_rate.value_or(fallback);
  }
  [[nodiscard]] std::size_t brokers_or(std::size_t fallback) const {
    return brokers.value_or(fallback);
  }
  [[nodiscard]] double selectivity_or(double fallback) const {
    return selectivity.value_or(fallback);
  }

  /// Pure parsing core (no exit, no environment writes): nullopt plus a
  /// message in `error` on a bad flag, value, or name. `args` excludes the
  /// program name.
  [[nodiscard]] static std::optional<BenchCli> try_parse(
      std::span<const char* const> args, std::string* error);

  /// Bench-main entry point: parses argv, prints usage and exits on
  /// --help (status 0) or a parse error (status 2), and exports --out to
  /// QADIST_RESULTS_DIR so BenchReport picks it up.
  [[nodiscard]] static BenchCli parse(int argc, char** argv);
};

}  // namespace qadist::bench
