#include "support/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace qadist::bench {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::config(std::string key, double value) {
  config_.emplace_back(std::move(key), value);
}

void BenchReport::config(std::string key, std::int64_t value) {
  config_.emplace_back(std::move(key), value);
}

void BenchReport::push(Metric m, const double* paper) {
  if (paper != nullptr) {
    m.has_paper = true;
    m.paper_expected = *paper;
  }
  metrics_.push_back(std::move(m));
}

void BenchReport::metric(std::string name, obs::Labels labels, double value) {
  Metric m{std::move(name), std::move(labels), 1, value, value, value, value};
  push(std::move(m), nullptr);
}

void BenchReport::metric(std::string name, obs::Labels labels, double value,
                         double paper_expected) {
  Metric m{std::move(name), std::move(labels), 1, value, value, value, value};
  push(std::move(m), &paper_expected);
}

void BenchReport::metric(std::string name, obs::Labels labels,
                         const Samples& samples) {
  Samples sorted = samples;  // const quantiles would copy per call
  sorted.sort();
  Metric m{std::move(name),        std::move(labels),
           sorted.count(),        sorted.mean(),
           sorted.quantile_or(0.5, 0.0), sorted.quantile_or(0.95, 0.0),
           sorted.quantile_or(1.0, 0.0)};
  push(std::move(m), nullptr);
}

void BenchReport::metric(std::string name, obs::Labels labels,
                         const Samples& samples, double paper_expected) {
  Samples sorted = samples;  // const quantiles would copy per call
  sorted.sort();
  Metric m{std::move(name),        std::move(labels),
           sorted.count(),        sorted.mean(),
           sorted.quantile_or(0.5, 0.0), sorted.quantile_or(0.95, 0.0),
           sorted.quantile_or(1.0, 0.0)};
  push(std::move(m), &paper_expected);
}

void BenchReport::metric(std::string name, obs::Labels labels,
                         const RunningStats& stats) {
  Metric m{std::move(name), std::move(labels), stats.count(), stats.mean(),
           stats.mean(),    stats.mean(),      stats.max()};
  push(std::move(m), nullptr);
}

void BenchReport::metric(std::string name, obs::Labels labels,
                         const RunningStats& stats, double paper_expected) {
  Metric m{std::move(name), std::move(labels), stats.count(), stats.mean(),
           stats.mean(),    stats.mean(),      stats.max()};
  push(std::move(m), &paper_expected);
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"qadist-bench-v1\",\"bench\":";
  obs::json_string(os, name_);
  os << ",\"config\":{";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) os << ',';
    obs::json_string(os, config_[i].first);
    os << ':';
    const auto& v = config_[i].second;
    if (const auto* s = std::get_if<std::string>(&v)) {
      obs::json_string(os, *s);
    } else if (const auto* d = std::get_if<double>(&v)) {
      obs::json_number(os, *d);
    } else {
      os << std::get<std::int64_t>(v);
    }
  }
  os << "},\"metrics\":[";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    if (i > 0) os << ',';
    os << "{\"name\":";
    obs::json_string(os, m.name);
    os << ",\"labels\":{";
    for (std::size_t j = 0; j < m.labels.size(); ++j) {
      if (j > 0) os << ',';
      obs::json_string(os, m.labels[j].first);
      os << ':';
      obs::json_string(os, m.labels[j].second);
    }
    os << "},\"count\":" << m.count;
    os << ",\"mean\":";
    obs::json_number(os, m.mean);
    os << ",\"p50\":";
    obs::json_number(os, m.p50);
    os << ",\"p95\":";
    obs::json_number(os, m.p95);
    os << ",\"max\":";
    obs::json_number(os, m.max);
    if (m.has_paper) {
      os << ",\"paper_expected\":";
      obs::json_number(os, m.paper_expected);
    }
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string BenchReport::output_path() const {
  const char* dir = std::getenv("QADIST_RESULTS_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : "results";
  return base + "/BENCH_" + name_ + ".json";
}

bool BenchReport::write() const {
  const std::string path = output_path();
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
    return false;
  }
  out << to_json();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_report: write to %s failed\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace qadist::bench
