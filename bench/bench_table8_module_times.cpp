// Reproduces paper Table 8: "Observed module times and average question
// response times" at low load with intra-question (RECV) partitioning, on
// 1/4/8/12 nodes. One question at a time (Sec. 6.2 protocol).
//
// Shape to reproduce: PR and AP shrink with nodes; QP and PO stay flat; PR
// stops improving once nodes exceed the sub-collection count (paper: 8
// sub-collections, so 12 nodes = 8-node PR time).

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  constexpr std::size_t kQuestions = 40;

  bench::BenchReport report("table8_module_times");
  report.config("questions", std::int64_t{kQuestions});
  report.config("protocol", "low-load (paper Sec. 6.2), RECV partitioning");

  const char* paper[] = {
      "0.81 38.01 2.06 0.02 117.55 | 158.47",
      "0.81  9.78 0.54 0.02  31.51 |  43.13",
      "0.81  7.34 0.41 0.02  17.86 |  27.07",
      "0.81  7.34 0.41 0.02  11.90 |  21.17",
  };
  const double paper_vals[4][6] = {
      {0.81, 38.01, 2.06, 0.02, 117.55, 158.47},
      {0.81, 9.78, 0.54, 0.02, 31.51, 43.13},
      {0.81, 7.34, 0.41, 0.02, 17.86, 27.07},
      {0.81, 7.34, 0.41, 0.02, 11.90, 21.17},
  };

  TextTable table({"", "QP", "PR", "PS", "PO", "AP", "Response time",
                   "paper QP PR PS PO AP | total"});
  const std::size_t node_counts[] = {1, 4, 8, 12};
  for (int row = 0; row < 4; ++row) {
    const std::size_t nodes = node_counts[row];
    const auto m = bench::run_low_load(world, nodes, kQuestions);
    table.add_row({std::to_string(nodes) + " processors",
                   cell(m.t_qp.mean(), 2), cell(m.t_pr.mean(), 2),
                   cell(m.t_ps.mean(), 2), cell(m.t_po.mean(), 2),
                   cell(m.t_ap.mean(), 2), cell(m.latencies.mean(), 2),
                   paper[row]});
    const std::string n = std::to_string(nodes);
    report.metric("stage_seconds", {{"nodes", n}, {"stage", "qp"}}, m.t_qp,
                  paper_vals[row][0]);
    report.metric("stage_seconds", {{"nodes", n}, {"stage", "pr"}}, m.t_pr,
                  paper_vals[row][1]);
    report.metric("stage_seconds", {{"nodes", n}, {"stage", "ps"}}, m.t_ps,
                  paper_vals[row][2]);
    report.metric("stage_seconds", {{"nodes", n}, {"stage", "po"}}, m.t_po,
                  paper_vals[row][3]);
    report.metric("stage_seconds", {{"nodes", n}, {"stage", "ap"}}, m.t_ap,
                  paper_vals[row][4]);
    report.metric("response_seconds", {{"nodes", n}}, m.latencies,
                  paper_vals[row][5]);
  }

  std::printf(
      "Table 8 — Observed module times at low load, RECV partitioning "
      "(%zu questions, seconds)\n%s",
      kQuestions, table.render().c_str());
  std::printf(
      "Expected shape: PR/PS/AP shrink with nodes, QP/PO constant, PR "
      "saturates at the 8 sub-collections.\n");
  report.write();
  return 0;
}
