// Micro-benchmarks of the scheduling substrate: meta-scheduler cost vs
// pool size, load-table operations, and the partitioners — the per-question
// overheads Eq. 15 models as linear scans.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "parallel/partition.hpp"
#include "sched/dispatcher.hpp"
#include "sched/meta_scheduler.hpp"

namespace {

using namespace qadist;

sched::LoadTable make_table(std::size_t nodes, std::uint64_t seed) {
  sched::LoadTable table;
  Rng rng(seed);
  for (sched::NodeId id = 0; id < nodes; ++id) {
    table.update(id,
                 sched::ResourceLoad{rng.uniform(0.0, 4.0),
                                     rng.uniform(0.0, 4.0)},
                 0.0);
  }
  return table;
}

void BM_MetaSchedule(benchmark::State& state) {
  const auto table = make_table(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::meta_schedule(table, sched::kApWeights, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetaSchedule)->Arg(4)->Arg(16)->Arg(128)->Arg(1024);

void BM_DecideMigration(benchmark::State& state) {
  const auto table = make_table(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::decide_migration(table, 0, sched::kQaWeights, 0.668));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecideMigration)->Arg(4)->Arg(128)->Arg(1024);

void BM_LoadTableUpdate(benchmark::State& state) {
  auto table = make_table(64, 3);
  double t = 1.0;
  for (auto _ : state) {
    table.update(17, sched::ResourceLoad{1.0, 2.0}, t, 0.9);
    t += 1.0;
  }
}
BENCHMARK(BM_LoadTableUpdate);

void BM_PartitionSend(benchmark::State& state) {
  const std::vector<double> weights(12, 1.0);
  const auto items = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::partition_send(items, weights));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionSend)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PartitionIsend(benchmark::State& state) {
  const std::vector<double> weights(12, 1.0);
  const auto items = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::partition_isend(items, weights));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionIsend)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MakeChunks(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::make_chunks(items, 40));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MakeChunks)->Arg(1000)->Arg(100000);

}  // namespace
