// Reproduces paper Table 9: "Measured distribution overhead per question"
// — the time spent shipping keywords, paragraphs and answers between nodes
// during intra-question partitioning, at low load on 4/8/12 nodes.
//
// Shape to reproduce: paragraph traffic dominates; the total stays a small
// fraction (< 3%) of the question response time.

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  constexpr std::size_t kQuestions = 40;

  bench::BenchReport report("table9_overhead");
  report.config("questions", std::int64_t{kQuestions});
  report.config("protocol", "low-load (paper Sec. 6.2)");

  const char* paper[] = {"0.04 0.19 0.15 0.05 0.01 | 0.44",
                         "0.08 0.24 0.19 0.09 0.01 | 0.61",
                         "0.08 0.24 0.22 0.12 0.01 | 0.67"};
  const double paper_vals[3][6] = {{0.04, 0.19, 0.15, 0.05, 0.01, 0.44},
                                   {0.08, 0.24, 0.19, 0.09, 0.01, 0.61},
                                   {0.08, 0.24, 0.22, 0.12, 0.01, 0.67}};

  TextTable table({"", "Keyword send", "Paragraph recv", "Paragraph send",
                   "Answer recv", "Answer sort", "Total", "% of response",
                   "paper"});
  const std::size_t node_counts[] = {4, 8, 12};
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    const auto m = bench::run_low_load(world, nodes, kQuestions);
    const auto& oh = m.overhead;
    const double total = oh.total_mean();
    table.add_row({std::to_string(nodes) + " processors",
                   cell(oh.keyword_send.mean(), 3),
                   cell(oh.paragraph_receive.mean(), 3),
                   cell(oh.paragraph_send.mean(), 3),
                   cell(oh.answer_receive.mean(), 3),
                   cell(oh.answer_sort.mean(), 3), cell(total, 3),
                   cell_percent(total / m.latencies.mean()), paper[row]});
    const std::string n = std::to_string(nodes);
    report.metric("overhead_seconds", {{"component", "keyword_send"},
                                       {"nodes", n}},
                  oh.keyword_send, paper_vals[row][0]);
    report.metric("overhead_seconds", {{"component", "paragraph_receive"},
                                       {"nodes", n}},
                  oh.paragraph_receive, paper_vals[row][1]);
    report.metric("overhead_seconds", {{"component", "paragraph_send"},
                                       {"nodes", n}},
                  oh.paragraph_send, paper_vals[row][2]);
    report.metric("overhead_seconds", {{"component", "answer_receive"},
                                       {"nodes", n}},
                  oh.answer_receive, paper_vals[row][3]);
    report.metric("overhead_seconds", {{"component", "answer_sort"},
                                       {"nodes", n}},
                  oh.answer_sort, paper_vals[row][4]);
    report.metric("overhead_total_seconds", {{"nodes", n}}, total,
                  paper_vals[row][5]);
    report.metric("overhead_fraction_of_response", {{"nodes", n}},
                  total / m.latencies.mean());
  }

  std::printf(
      "Table 9 — Distribution overhead per question at low load (seconds)\n%s",
      table.render().c_str());
  std::printf(
      "Expected shape: paragraph traffic dominates; total < ~3%% of the "
      "question response time.\n");
  report.write();
  return 0;
}
