// Reproduces paper Table 3: "Average resource weights measured for the
// TREC-9 question set" — the CPU/disk split of the whole Q/A task, the PR
// module, and the AP module (the weights behind load functions Eq. 4-6).
//
// Our measurement: per-module simulated resource demand composition from
// the calibrated cost model applied to the benchmark plans, evaluated at
// the reference disk bandwidth.

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  const double disk_bw =
      world.cost->anchors().reference_disk.bytes_per_second;

  double qa_cpu = 0.0, qa_disk = 0.0;
  double pr_cpu = 0.0, pr_disk = 0.0;
  double ap_cpu = 0.0, ap_disk = 0.0;
  for (const auto& plan : world.plans) {
    qa_cpu += plan.qp.cpu_seconds + plan.po.cpu_seconds +
              plan.answer_sort.cpu_seconds;
    for (const auto& u : plan.pr_units) {
      pr_cpu += u.demand.cpu_seconds;
      pr_disk += u.demand.disk_bytes / disk_bw;
      qa_cpu += u.demand.cpu_seconds + u.ps.cpu_seconds;
      qa_disk += u.demand.disk_bytes / disk_bw;
    }
    for (const auto& u : plan.ap_units) {
      ap_cpu += u.demand.cpu_seconds;
      ap_disk += u.demand.disk_bytes / disk_bw;
      qa_cpu += u.demand.cpu_seconds;
      qa_disk += u.demand.disk_bytes / disk_bw;
    }
  }

  const auto fraction = [](double a, double b) { return a / (a + b); };

  bench::BenchReport report("table3_resource_weights");
  report.config("plans", static_cast<std::int64_t>(world.plans.size()));
  report.config("reference_disk_mbps",
                world.cost->anchors().reference_disk.mbps());
  const auto emit = [&](const char* module, double cpu, double disk,
                        double paper_cpu) {
    report.metric("cpu_weight", {{"module", module}}, fraction(cpu, disk),
                  paper_cpu);
    report.metric("disk_weight", {{"module", module}}, fraction(disk, cpu),
                  1.0 - paper_cpu);
  };
  emit("QA", qa_cpu, qa_disk, 0.79);
  emit("PR", pr_cpu, pr_disk, 0.20);
  emit("AP", ap_cpu, ap_disk, 1.00);

  TextTable table({"Module", "CPU", "DISK", "Paper CPU", "Paper DISK"});
  table.add_row({"QA", cell(fraction(qa_cpu, qa_disk)),
                 cell(fraction(qa_disk, qa_cpu)), "0.79", "0.21"});
  table.add_row({"PR", cell(fraction(pr_cpu, pr_disk)),
                 cell(fraction(pr_disk, pr_cpu)), "0.20", "0.80"});
  table.add_row({"AP", cell(fraction(ap_cpu, ap_disk)),
                 cell(fraction(ap_disk, ap_cpu)), "1.00", "0.00"});

  std::printf("Table 3 — Average resource weights (reference disk %.0f Mbps)\n%s",
              world.cost->anchors().reference_disk.mbps(),
              table.render().c_str());
  std::printf(
      "Expected shape: the whole task leans CPU, PR is disk-dominated, AP is "
      "pure CPU — the asymmetry the specialized dispatchers exploit.\n");
  report.write();
  return 0;
}
