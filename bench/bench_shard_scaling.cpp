// Sharded-corpus scaling study (extension beyond the paper): the paper
// replicates the full TREC collection on every node's disk — fine for 12
// nodes, fatal once the collection outgrows a single disk. This bench
// measures what document-partitioned index shards with R-way replication
// cost and buy against that full-replication baseline.
//
// Three experiments:
//   1. per-node storage vs steady-state throughput across R x cluster
//      size (the acceptance bar: R=2 on 12 nodes cuts the worst node's
//      storage >= 4x while throughput stays within 15% of full
//      replication);
//   2. message loss on top of partial replication: every question still
//      completes (possibly degraded) at a 2% drop rate;
//   3. a holder crash mid-run: failover re-replicates the lost shards in
//      the background and the rejoining node re-validates its copies.
//
// Emits results/BENCH_shard_scaling.json.

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "shard/shard_map.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;
using cluster::Policy;

cluster::SystemConfig shard_config(std::size_t nodes, std::size_t num_shards,
                                   std::size_t replication,
                                   std::uint64_t seed,
                                   const bench::BenchWorld& world) {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.partition.ap_chunk = bench::scaled_chunk(world);
  cfg.shard.num_shards = num_shards;
  cfg.shard.replication = replication;  // 0 = full replication baseline
  return cfg;
}

std::string replication_name(std::size_t nodes, std::size_t replication) {
  return replication == 0 || replication >= nodes
             ? std::string("full")
             : "R=" + std::to_string(replication);
}

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  const auto& world = bench::bench_world();
  const std::uint64_t seed = cli.seed_or(1000);

  // --smoke shrinks every axis to one tiny configuration (CI).
  const std::vector<std::size_t> node_counts =
      cli.nodes.has_value() ? std::vector<std::size_t>{*cli.nodes}
      : cli.smoke           ? std::vector<std::size_t>{4}
                            : std::vector<std::size_t>{8, 12};
  const std::vector<std::size_t> replications =
      cli.smoke ? std::vector<std::size_t>{0, 2}
                : std::vector<std::size_t>{0, 4, 2};
  // Many more shards than nodes keeps the rendezvous placement balanced
  // (the worst node's replica count approaches the mean), which is what
  // the per-node storage bound depends on.
  const std::size_t num_shards = cli.smoke ? 16 : 128;

  bench::BenchReport report("shard_scaling");
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("num_shards", static_cast<std::int64_t>(num_shards));
  report.config("smoke", cli.smoke ? std::int64_t{1} : std::int64_t{0});

  // ---- 1. Storage vs throughput across R x cluster size ----------------
  bool bar_checked = false;
  bool bar_passed = true;
  TextTable table({"", "config", "throughput q/min", "t_PR mean s",
                   "max node storage", "storage drop", "throughput vs full"});
  for (const std::size_t nodes : node_counts) {
    double full_qpm = 0.0;
    double full_storage = 0.0;
    for (const std::size_t r : replications) {
      cluster::OverloadWorkload load;
      load.seed = seed;
      load.overload_factor = 2.0;
      const auto cfg = shard_config(nodes, num_shards, r, seed, world);
      const auto m =
          bench::run_zipf_load(world, cfg, load, /*prewarm=*/false);
      const double qpm = m.throughput_qpm();
      const double storage = m.max_storage_bytes();
      const std::string name = replication_name(nodes, r);
      if (r == 0) {
        full_qpm = qpm;
        full_storage = storage;
      }
      const double storage_drop =
          storage > 0.0 ? full_storage / storage : 0.0;
      const double qpm_ratio = full_qpm > 0.0 ? qpm / full_qpm : 0.0;
      table.add_row({std::to_string(nodes) + " nodes", name, cell(qpm, 2),
                     cell(m.t_pr.mean(), 2), cell(storage / kGiB, 2) + " GiB",
                     cell(storage_drop, 2) + "x", cell(100.0 * qpm_ratio, 1) + " %"});
      const obs::Labels labels{{"nodes", std::to_string(nodes)},
                               {"config", name}};
      report.metric("throughput_qpm", labels, qpm);
      report.metric("t_pr_mean_seconds", labels, m.t_pr.mean());
      report.metric("max_node_storage_bytes", labels, storage);
      report.metric("storage_drop_vs_full", labels, storage_drop);
      report.metric("throughput_ratio_vs_full", labels, qpm_ratio);
      // The acceptance bar is stated for R=2 on the paper's 12-node pool.
      if (r == 2 && nodes == 12) {
        bar_checked = true;
        bar_passed = storage_drop >= 4.0 && qpm_ratio >= 0.85;
        std::printf(
            "Acceptance @ %zu nodes, R=2: storage drop %.2fx (>= 4x: %s), "
            "throughput %.1f %% of full (>= 85 %%: %s)\n",
            nodes, storage_drop, storage_drop >= 4.0 ? "yes" : "NO",
            100.0 * qpm_ratio, qpm_ratio >= 0.85 ? "yes" : "NO");
      }
    }
  }
  std::printf(
      "Shard scaling — storage vs throughput (%zu shards, 2x overload, "
      "DQA)\n%s\n",
      num_shards, table.render().c_str());
  if (bar_checked) {
    report.metric("acceptance_bar_passed", {},
                  bar_passed ? 1.0 : 0.0);
  }

  // ---- 2. Partial replication under message loss -----------------------
  {
    const std::size_t nodes = node_counts.front();
    TextTable drops({"", "drop rate", "completed", "degraded",
                     "units unserved", "net retries"});
    for (const std::size_t r : {std::size_t{0}, std::size_t{2}}) {
      for (const double drop : {0.0, cli.drop_rate_or(0.02)}) {
        auto cfg = shard_config(nodes, num_shards, r, seed, world);
        cfg.net.faults.drop_probability = drop;
        cfg.net.reliability.question_deadline = 240.0;
        cluster::OverloadWorkload load;
        load.seed = seed;
        load.overload_factor = 2.0;
        const auto m =
            bench::run_zipf_load(world, cfg, load, /*prewarm=*/false);
        const std::string name = replication_name(nodes, r);
        drops.add_row({name, format_double(drop, 2),
                       std::to_string(m.completed) + "/" +
                           std::to_string(m.submitted),
                       std::to_string(m.questions_degraded),
                       std::to_string(m.shard_units_unserved),
                       std::to_string(m.net_retries)});
        const obs::Labels labels{{"config", name},
                                 {"drop_rate", format_double(drop, 2)}};
        report.metric("completed", labels, static_cast<double>(m.completed));
        report.metric("non_degraded_fraction", labels,
                      m.non_degraded_fraction());
        report.metric("shard_units_unserved", labels,
                      static_cast<double>(m.shard_units_unserved));
      }
    }
    std::printf(
        "Shard scaling — lossy network (%zu nodes, deadline 240 s): every "
        "question completes, degrading rather than hanging\n%s\n",
        nodes, drops.render().c_str());
  }

  // ---- 3. Holder crash: failover, background rebuild, revalidation -----
  {
    const std::size_t nodes = node_counts.back();
    const std::size_t r = 2;
    // The system's placement is pure in (num_shards, nodes, R), so a local
    // probe map identifies a node that actually holds replicas.
    const shard::ShardMap probe(num_shards, nodes, r);
    const auto victim = *probe.ready_source(0);
    const std::size_t held = probe.shards_of(victim).size();

    auto cfg = shard_config(nodes, num_shards, r, seed, world);
    cfg.faults.crashes.push_back(
        cluster::FaultEvent{victim, 60.0, /*restart_after=*/240.0});
    cluster::OverloadWorkload load;
    load.seed = seed;
    load.overload_factor = 2.0;
    const auto m = bench::run_zipf_load(world, cfg, load, /*prewarm=*/false);
    std::printf(
        "Shard scaling — holder crash (%zu nodes, R=2, node %u lost at "
        "t=60 s holding %zu shards):\n"
        "  drained %zu/%zu questions (%zu degraded), %zu failovers, "
        "%zu rebuilds (%.2f GiB copied, mean %.1f s each), "
        "%zu replicas re-validated on rejoin\n\n",
        nodes, victim, held, m.completed, m.submitted, m.questions_degraded,
        m.shard_failovers, m.shard_rebuilds,
        static_cast<double>(m.shard_rebuild_bytes) / kGiB,
        m.shard_rebuild_seconds.mean(), m.shard_revalidations);
    report.metric("crash_drained_questions", {},
                  static_cast<double>(m.completed));
    report.metric("crash_failovers", {},
                  static_cast<double>(m.shard_failovers));
    report.metric("crash_rebuilds", {},
                  static_cast<double>(m.shard_rebuilds));
    report.metric("crash_rebuild_seconds_mean", {},
                  m.shard_rebuild_seconds.mean());
    report.metric("crash_revalidations", {},
                  static_cast<double>(m.shard_revalidations));
  }

  report.write();
  return 0;
}
