// Answer/paragraph cache scaling study (extension beyond the paper): the
// FALCON pipeline the paper measures recomputes every question from
// scratch, but production question streams repeat — a handful of popular
// questions dominate. This bench measures what a per-node answer cache
// with cache-affinity dispatch buys on top of the paper's DQA policy.
//
// Three experiments:
//   1. hit rate vs Zipf skew vs cluster size (warm caches, DQA+affinity);
//   2. throughput of cached DQA vs the uncached DNS / INTER / DQA
//      baselines at 4x overload and skew 1.0 (the acceptance bar is
//      cached DQA >= 2x uncached DQA);
//   3. a mid-run crash that invalidates one node's shard: the run must
//      still drain, and the surviving shards keep serving hits.
//
// Emits results/BENCH_cache_scaling.json.

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;
using cluster::Policy;

/// The cached configuration under study: both caches on, generously sized
/// (the study varies the stream, not the budget — eviction behaviour has
/// its own unit tests).
cluster::SystemConfig cached_config(std::size_t nodes, std::uint64_t seed,
                                    const bench::BenchWorld& world) {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = Policy::kDqa;
  cfg.dispatch.cache_affinity = true;
  cfg.partition.ap_chunk = bench::scaled_chunk(world);
  cfg.cache.answers.max_entries = 256;
  cfg.cache.paragraphs.max_entries = 128;
  return cfg;
}

cluster::SystemConfig uncached_config(std::size_t nodes, std::uint64_t seed,
                                      Policy policy,
                                      const bench::BenchWorld& world) {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = policy;
  cfg.partition.ap_chunk = bench::scaled_chunk(world);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  const auto& world = bench::bench_world();
  const std::uint64_t seed = cli.seed_or(1000);

  // --smoke shrinks every axis to one tiny configuration (CI).
  const std::vector<std::size_t> node_counts =
      cli.nodes.has_value() ? std::vector<std::size_t>{*cli.nodes}
      : cli.smoke           ? std::vector<std::size_t>{2}
                            : std::vector<std::size_t>{4, 8, 12};
  const std::size_t distinct = cli.smoke ? 8 : 30;
  const double overload_factor = 4.0;

  bench::BenchReport report("cache_scaling");
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("distinct_questions", static_cast<std::int64_t>(distinct));
  report.config("overload_factor", overload_factor);
  report.config("smoke", cli.smoke ? std::int64_t{1} : std::int64_t{0});

  // ---- 1. Hit rate vs Zipf skew vs cluster size (warm caches) ----------
  const double skews[] = {0.0, 0.5, 1.0};
  TextTable hit_table({"", "skew 0.0", "skew 0.5", "skew 1.0"});
  for (const std::size_t nodes : node_counts) {
    std::vector<std::string> cells{std::to_string(nodes) + " nodes"};
    for (const double skew : skews) {
      cluster::OverloadWorkload load;
      load.seed = seed;
      load.overload_factor = overload_factor;
      load.repeat_exponent = skew;
      load.distinct_questions = distinct;
      // Cold caches: the hit rate is earned by repetition in the stream,
      // so it traces the Zipf skew (a prewarmed run would be ~100%
      // everywhere — that regime is experiment 2's).
      const auto m = bench::run_zipf_load(
          world, cached_config(nodes, seed, world), load, /*prewarm=*/false);
      const double rate = m.answer_cache_hit_rate();
      cells.push_back(cell(100.0 * rate, 1) + " %");
      report.metric("answer_hit_rate",
                    {{"nodes", std::to_string(nodes)},
                     {"repeat_exponent", format_double(skew, 1)}},
                    rate);
      report.metric("affinity_routes",
                    {{"nodes", std::to_string(nodes)},
                     {"repeat_exponent", format_double(skew, 1)}},
                    static_cast<double>(m.affinity_routes));
    }
    hit_table.add_row(cells);
  }
  std::printf(
      "Cache scaling — cold-start answer-cache hit rate (DQA + affinity, "
      "%zu distinct questions, %.0fx overload)\n%s",
      distinct, overload_factor, hit_table.render().c_str());
  std::printf(
      "Expected shape: hit rate grows with skew; affinity keeps it "
      "roughly flat as nodes scale.\n\n");

  // ---- 2. Throughput vs the uncached policy baselines at skew 1.0 ------
  TextTable tp_table({"", "DNS", "INTER", "DQA", "DQA+cache", "speedup"});
  for (const std::size_t nodes : node_counts) {
    cluster::OverloadWorkload load;
    load.seed = seed;
    load.overload_factor = overload_factor;
    load.repeat_exponent = 1.0;
    load.distinct_questions = distinct;

    std::vector<std::string> cells{std::to_string(nodes) + " nodes"};
    double dqa_baseline = 0.0;
    for (Policy policy : {Policy::kDns, Policy::kInter, Policy::kDqa}) {
      const auto m = bench::run_zipf_load(
          world, uncached_config(nodes, seed, policy, world), load,
          /*prewarm=*/false);
      const double qpm = m.throughput_qpm();
      if (policy == Policy::kDqa) dqa_baseline = qpm;
      cells.push_back(cell(qpm, 2));
      report.metric("throughput_qpm",
                    {{"nodes", std::to_string(nodes)},
                     {"config", std::string(cluster::to_string(policy))}},
                    qpm);
    }
    const auto cached = bench::run_zipf_load(
        world, cached_config(nodes, seed, world), load, /*prewarm=*/true);
    const double cached_qpm = cached.throughput_qpm();
    const double speedup =
        dqa_baseline > 0.0 ? cached_qpm / dqa_baseline : 0.0;
    cells.push_back(cell(cached_qpm, 2));
    cells.push_back(cell(speedup, 2) + "x");
    tp_table.add_row(cells);
    report.metric("throughput_qpm",
                  {{"nodes", std::to_string(nodes)}, {"config", "DQA+cache"}},
                  cached_qpm);
    report.metric("cache_speedup_vs_dqa", {{"nodes", std::to_string(nodes)}},
                  speedup);
  }
  std::printf(
      "Cache scaling — throughput (questions/minute) at skew 1.0, "
      "%.0fx overload\n%s",
      overload_factor, tp_table.render().c_str());
  std::printf(
      "Acceptance bar: DQA+cache >= 2.00x the uncached DQA column.\n\n");

  // ---- 3. Crash invalidation: one shard lost mid-run ------------------
  {
    const std::size_t nodes = node_counts.front();
    cluster::OverloadWorkload load;
    load.seed = seed;
    load.overload_factor = overload_factor;
    load.repeat_exponent = 1.0;
    load.distinct_questions = distinct;

    auto cfg = cached_config(nodes, seed, world);
    cfg.faults.crashes.push_back(cluster::FaultEvent{1, 30.0});
    // run() checks submitted == completed, so reaching this line at all
    // means the run drained despite the invalidated shard.
    const auto m = bench::run_zipf_load(world, cfg, load, /*prewarm=*/true);
    std::printf(
        "Crash invalidation (%zu nodes, node 1 lost at t=30s): drained "
        "%zu/%zu questions, hit rate %.1f %%, %zu entries invalidated\n\n",
        nodes, m.completed, m.submitted, 100.0 * m.answer_cache_hit_rate(),
        m.cache_invalidations);
    report.metric("crash_drained_questions",
                  {{"nodes", std::to_string(nodes)}},
                  static_cast<double>(m.completed));
    report.metric("crash_hit_rate", {{"nodes", std::to_string(nodes)}},
                  m.answer_cache_hit_rate());
    report.metric("crash_invalidated_entries",
                  {{"nodes", std::to_string(nodes)}},
                  static_cast<double>(m.cache_invalidations));
  }

  report.write();
  return 0;
}
