// Reproduces paper Table 6: "Average question response times (seconds)"
// under the same high-load protocol as Table 5.
//
// Shape to reproduce: DQA < INTER < DNS at every node count.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  const auto& world = bench::bench_world();
  constexpr int kSeeds = 10;

  bench::BenchReport report("table6_latency");
  report.config("seeds", std::int64_t{kSeeds});
  report.config("protocol", "high-load 2x (paper Sec. 6.1)");

  const double paper[3][3] = {{143.88, 122.51, 111.85},
                              {135.30, 118.82, 113.53},
                              {132.45, 115.29, 106.03}};
  const std::size_t node_counts[] = {4, 8, 12};

  TextTable table(
      {"", "DNS", "INTER", "DQA", "paper DNS/INTER/DQA"});
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    std::vector<std::string> cells{std::to_string(nodes) + " processors"};
    int col = 0;
    for (Policy policy : {Policy::kDns, Policy::kInter, Policy::kDqa}) {
      const auto r =
          bench::run_policy_averaged(world, policy, nodes, kSeeds);
      cells.push_back(cell(r.mean_latency, 1));
      const obs::Labels labels{
          {"nodes", std::to_string(nodes)},
          {"policy", std::string(cluster::to_string(policy))}};
      report.metric("mean_latency_seconds", labels, r.mean_latency,
                    paper[row][col]);
      report.metric("p95_latency_seconds", labels, r.p95_latency);
      ++col;
    }
    cells.push_back(format_double(paper[row][0], 1) + " / " +
                    format_double(paper[row][1], 1) + " / " +
                    format_double(paper[row][2], 1));
    table.add_row(cells);
  }

  std::printf(
      "Table 6 — Average question response times (seconds), %d seeds\n%s",
      kSeeds, table.render().c_str());
  std::printf("Expected shape: DQA < INTER < DNS at every node count.\n");
  report.write();
  return 0;
}
