// Reproduces paper Table 5: "System throughput (questions/minute)" for the
// DNS / INTER / DQA load-balancing policies on 4, 8 and 12 nodes under
// sustained 2x overload (Sec. 6.1 protocol), seed-averaged.
//
// Absolute rates differ (simulated hardware, synthetic corpus); the shape
// to reproduce is DQA > INTER > DNS at every node count, and throughput
// scaling with nodes.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  const auto& world = bench::bench_world();
  constexpr int kSeeds = 10;

  bench::BenchReport report("table5_throughput");
  report.config("seeds", std::int64_t{kSeeds});
  report.config("protocol", "high-load 2x (paper Sec. 6.1)");

  // Paper Table 5 values for reference.
  const double paper[3][3] = {
      {2.64, 3.45, 4.18}, {5.04, 5.52, 7.77}, {7.89, 9.71, 12.09}};
  const std::size_t node_counts[] = {4, 8, 12};

  TextTable table({"", "DNS", "INTER", "DQA", "paper DNS/INTER/DQA"});
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    std::vector<std::string> cells{std::to_string(nodes) + " processors"};
    int col = 0;
    for (Policy policy : {Policy::kDns, Policy::kInter, Policy::kDqa}) {
      const auto r =
          bench::run_policy_averaged(world, policy, nodes, kSeeds);
      cells.push_back(cell(r.throughput_qpm, 2));
      report.metric("throughput_qpm",
                    {{"nodes", std::to_string(nodes)},
                     {"policy", std::string(cluster::to_string(policy))}},
                    r.throughput_qpm, paper[row][col]);
      ++col;
    }
    cells.push_back(format_double(paper[row][0], 2) + " / " +
                    format_double(paper[row][1], 2) + " / " +
                    format_double(paper[row][2], 2));
    table.add_row(cells);
  }

  std::printf(
      "Table 5 — System throughput (questions/minute), %d seeds averaged\n%s",
      kSeeds, table.render().c_str());
  std::printf("Expected shape: DQA > INTER > DNS at every node count.\n");
  report.write();
  return 0;
}
