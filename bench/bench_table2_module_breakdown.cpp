// Reproduces paper Table 2: "Analysis of Q/A modules" — the percentage of
// the Q/A task time spent in each module, plus whether the module is an
// iterative task and at what granularity.
//
// Two measurements are shown:
//  * simulated — module times from the calibrated cost model at the
//    reference hardware (the 2001-scale system the paper profiles);
//  * host wall — the raw host pipeline, where a modern NVMe-and-GHz
//    machine makes retrieval nearly free and shifts weight onto the
//    text-scanning stages. The contrast is itself the point: the paper's
//    bottleneck profile is a property of its hardware generation, which is
//    why the cost model is calibrated rather than host-measured.

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  const double disk_bw =
      world.cost->anchors().reference_disk.bytes_per_second;

  // Simulated breakdown from the plans.
  double sim_qp = 0.0, sim_pr = 0.0, sim_ps = 0.0, sim_po = 0.0,
         sim_ap = 0.0;
  for (const auto& plan : world.plans) {
    sim_qp += plan.qp.cpu_seconds;
    sim_po += plan.po.cpu_seconds;
    for (const auto& u : plan.pr_units) {
      sim_pr += u.demand.cpu_seconds + u.demand.disk_bytes / disk_bw;
      sim_ps += u.ps.cpu_seconds;
    }
    for (const auto& u : plan.ap_units) {
      sim_ap += u.demand.cpu_seconds + u.demand.disk_bytes / disk_bw;
    }
  }
  const double sim_total = sim_qp + sim_pr + sim_ps + sim_po + sim_ap;

  // Host wall-clock breakdown.
  qa::ModuleTimes host;
  for (const auto& q : world.questions) {
    host += world.engine->answer(q).times;
  }
  const double host_total = host.total();

  bench::BenchReport report("table2_module_breakdown");
  report.config("questions",
                static_cast<std::int64_t>(world.questions.size()));
  const auto emit = [&report](const char* module, double sim_share,
                              double host_share, double paper) {
    report.metric("simulated_time_share", {{"module", module}}, sim_share,
                  paper);
    report.metric("micro_host_time_share", {{"module", module}}, host_share);
  };
  emit("QP", sim_qp / sim_total, host.qp / host_total, 0.012);
  emit("PR", sim_pr / sim_total, host.pr / host_total, 0.265);
  emit("PS", sim_ps / sim_total, host.ps / host_total, 0.022);
  emit("PO", sim_po / sim_total, host.po / host_total, 0.001);
  emit("AP", sim_ap / sim_total, host.ap / host_total, 0.697);

  TextTable table({"Module", "Simulated", "Host wall", "Paper (TREC-9)",
                   "Iterative Task?", "Granularity"});
  table.add_row({"QP", cell_percent(sim_qp / sim_total),
                 cell_percent(host.qp / host_total), "1.2 %", "No", ""});
  table.add_row({"PR", cell_percent(sim_pr / sim_total),
                 cell_percent(host.pr / host_total), "26.5 %", "Yes",
                 "Collection"});
  table.add_row({"PS", cell_percent(sim_ps / sim_total),
                 cell_percent(host.ps / host_total), "2.2 %", "Yes",
                 "Paragraph"});
  table.add_row({"PO", cell_percent(sim_po / sim_total),
                 cell_percent(host.po / host_total), "0.1 %", "No", ""});
  table.add_row({"AP", cell_percent(sim_ap / sim_total),
                 cell_percent(host.ap / host_total), "69.7 %", "Yes",
                 "Paragraph"});

  std::printf(
      "Table 2 — Analysis of Q/A modules (%zu questions)\n%s",
      world.questions.size(), table.render().c_str());
  std::printf(
      "Expected shape (simulated column): AP dominates, PR second, QP/PO "
      "negligible; PR, PS and AP are the iterative (partitionable) "
      "modules. The host column shows how 2026 hardware erases the disk "
      "bottleneck — the reason the cost model is calibrated to the paper's "
      "platform.\n");
  report.write();
  return 0;
}
