// Host companion to Table 11 / Figure 10: evaluates the three partitioning
// strategies against the *measured* per-paragraph cost of the real answer
// processing code on this host.
//
// Wall-clock thread speedups are meaningless on a single-core container,
// so the strategies are compared by their schedule makespan: given the
// measured cost of every accepted paragraph, compute when each worker
// would finish under SEND / ISEND partitions and under RECV
// self-scheduling (greedy: a free worker takes the next chunk). Speedup =
// total work / makespan — the hardware-independent content of Table 11.
//
// The threaded execution itself is still exercised (all strategies must
// return exactly the sequential pipeline's answers).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <queue>
#include <thread>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "parallel/qa_stages.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Makespan of SEND/ISEND fixed partitions: max worker sum.
double partition_makespan(const std::vector<qadist::parallel::Partition>& parts,
                          const std::vector<double>& cost) {
  double makespan = 0.0;
  for (const auto& p : parts) {
    double total = 0.0;
    for (std::size_t i : p.items) total += cost[i];
    makespan = std::max(makespan, total);
  }
  return makespan;
}

/// Makespan of RECV self-scheduling: the earliest-free worker takes the
/// next chunk (classic list scheduling over the chunk sequence).
double recv_makespan(std::size_t workers, std::size_t chunk_size,
                     const std::vector<double>& cost) {
  const auto chunks =
      qadist::parallel::make_chunks(cost.size(), chunk_size);
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  for (const auto& c : chunks) {
    double t = free_at.top();
    free_at.pop();
    for (std::size_t i = c.begin; i < c.end; ++i) t += cost[i];
    free_at.push(t);
    makespan = std::max(makespan, t);
  }
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using parallel::ExecutorOptions;
  using parallel::Strategy;
  const auto& world = bench::bench_world();
  const auto& engine = *world.engine;

  // Biggest question = most AP work to spread.
  std::size_t pick = 0;
  for (std::size_t i = 0; i < world.questions.size(); ++i) {
    if (world.plans[i].ap_units.size() > world.plans[pick].ap_units.size()) {
      pick = i;
    }
  }
  const auto& q = world.questions[pick];
  auto pq = engine.process_question(q.id, q.text);
  std::vector<qa::ScoredParagraph> scored;
  for (std::size_t sub = 0; sub < engine.subcollection_count(); ++sub) {
    for (auto& p : engine.retrieve(sub, pq)) {
      scored.push_back(engine.score(pq, std::move(p)));
    }
  }
  const auto accepted = engine.order(std::move(scored));
  std::printf(
      "Host AP partitioning over %zu accepted paragraphs "
      "(hardware threads: %u; question: %s)\n",
      accepted.size(), std::thread::hardware_concurrency(), q.text.c_str());

  // Measure the real per-paragraph cost (median of 3 passes per item to
  // de-noise timer jitter on microsecond work).
  std::vector<double> item_cost(accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    double samples[3];
    for (double& s : samples) {
      const double t0 = now_seconds();
      auto answers =
          engine.answer_processor().process_paragraph(pq, accepted[i]);
      asm volatile("" : : "r"(&answers) : "memory");
      s = now_seconds() - t0;
    }
    std::sort(std::begin(samples), std::end(samples));
    item_cost[i] = samples[1];
  }
  double total_cost = 0.0;
  for (double c : item_cost) total_cost += c;
  std::printf("measured sequential AP cost: %s ms\n",
              format_double(total_cost * 1e3, 2).c_str());

  // Schedule speedups derive from wall-clock per-paragraph costs, so they
  // carry the host-measurement "micro_" prefix (loose regression band).
  bench::BenchReport report("host_partitioning");
  report.config("paragraphs", static_cast<std::int64_t>(accepted.size()));
  report.config("protocol", "schedule makespan from measured AP costs");

  {
    TextTable table({"Workers", "SEND", "ISEND", "RECV (chunk 8)", "ideal"});
    for (std::size_t workers : {2u, 4u, 8u, 12u}) {
      const std::vector<double> weights(workers, 1.0);
      const double send = total_cost / partition_makespan(
          parallel::partition_send(item_cost.size(), weights), item_cost);
      const double isend = total_cost / partition_makespan(
          parallel::partition_isend(item_cost.size(), weights), item_cost);
      const double recv =
          total_cost / recv_makespan(workers, 8, item_cost);
      table.add_row({std::to_string(workers), cell(send, 2), cell(isend, 2),
                     cell(recv, 2), std::to_string(workers)});
      const std::string w = std::to_string(workers);
      report.metric("micro_schedule_speedup",
                    {{"strategy", "SEND"}, {"workers", w}}, send);
      report.metric("micro_schedule_speedup",
                    {{"strategy", "ISEND"}, {"workers", w}}, isend);
      report.metric("micro_schedule_speedup",
                    {{"strategy", "RECV"}, {"workers", w}, {"chunk", "8"}},
                    recv);
    }
    std::printf(
        "Schedule speedup from measured per-paragraph costs (cf. Table "
        "11):\n%s\n",
        table.render().c_str());
  }
  {
    TextTable table({"RECV chunk", "Schedule speedup @8 workers"});
    for (std::size_t chunk : {1u, 4u, 8u, 16u, 32u, 74u, 148u}) {
      const double speedup = total_cost / recv_makespan(8, chunk, item_cost);
      table.add_row({std::to_string(chunk), cell(speedup, 2)});
      report.metric("micro_schedule_speedup",
                    {{"strategy", "RECV"}, {"workers", "8"},
                     {"chunk", std::to_string(chunk)}},
                    speedup);
    }
    std::printf(
        "RECV chunk sweep — balance side of Fig. 10's U-curve (the "
        "per-chunk overhead side needs the simulated per-batch costs; see "
        "bench_fig10):\n%s\n",
        table.render().c_str());
  }

  // Result-transparency check with the real threaded executor.
  parallel::ThreadPool pool(4);
  const auto reference = engine.answer_paragraphs(pq, accepted);
  bool all_match = true;
  for (Strategy s : {Strategy::kSend, Strategy::kIsend, Strategy::kRecv}) {
    ExecutorOptions options;
    options.strategy = s;
    options.workers = 4;
    options.chunk_size = 8;
    const auto result = parallel::parallel_answer_processing(
        engine, pq, accepted, pool, options);
    bool match = result.answers.size() == reference.size();
    for (std::size_t i = 0; match && i < reference.size(); ++i) {
      match = result.answers[i].candidate == reference[i].candidate;
    }
    if (!match) {
      all_match = false;
      std::printf("WARNING: %s diverged from the sequential answers!\n",
                  std::string(to_string(s)).c_str());
    }
  }
  std::printf(all_match
                  ? "All strategies returned exactly the sequential "
                    "pipeline's answers.\n"
                  : "ANSWER MISMATCH — see warnings above.\n");
  std::printf(
      "Expected shape: SEND below ISEND/RECV (contiguous blocks of a "
      "cost-decreasing array are structurally unbalanced); RECV degrades "
      "as chunks grow coarse.\n");
  report.metric("answers_match_sequential", {}, all_match ? 1.0 : 0.0);
  report.write();
  return 0;
}
