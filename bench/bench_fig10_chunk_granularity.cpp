// Reproduces paper Figure 10: "Answer processing speedup for the RECV
// partitioning algorithm and various paragraph chunk sizes" on 4- and
// 8-node configurations.
//
// Chunk sizes are expressed in paper-equivalent units (the paper sweeps
// 5-100 paragraphs out of ~880 accepted; we scale to this corpus'
// accepted-paragraph count so the ratio of chunk to total matches).
//
// Shape to reproduce: a U-curve — tiny chunks pay per-chunk transfer
// overhead, huge chunks recreate the uneven-granularity problem; the
// optimum sits near the paper's 40.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  constexpr std::size_t kQuestions = 40;

  bench::BenchReport report("fig10_chunk_granularity");
  report.config("questions", std::int64_t{kQuestions});
  report.config("protocol", "low-load (paper Sec. 6.2), RECV AP");

  const auto ap_time = [&](std::size_t nodes, std::size_t chunk) {
    cluster::SystemConfig cfg;
    cfg.partition.ap_strategy = parallel::Strategy::kRecv;
    cfg.partition.ap_chunk = chunk;
    return bench::run_low_load(world, nodes, kQuestions, &cfg).t_ap.mean();
  };

  cluster::SystemConfig base;
  const double base4 = ap_time(1, bench::scaled_chunk(world));

  TextTable table({"Paper-equivalent chunk", "Scaled chunk", "4 processors",
                   "8 processors"});
  for (double paper_chunk : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const std::size_t chunk = bench::scaled_chunk(world, paper_chunk);
    const double speedup4 = base4 / ap_time(4, chunk);
    const double speedup8 = base4 / ap_time(8, chunk);
    table.add_row({format_double(paper_chunk, 0), std::to_string(chunk),
                   cell(speedup4, 2), cell(speedup8, 2)});
    const std::string pc = format_double(paper_chunk, 0);
    report.metric("ap_speedup",
                  {{"nodes", "4"}, {"paper_chunk", pc},
                   {"scaled_chunk", std::to_string(chunk)}},
                  speedup4);
    report.metric("ap_speedup",
                  {{"nodes", "8"}, {"paper_chunk", pc},
                   {"scaled_chunk", std::to_string(chunk)}},
                  speedup8);
  }

  std::printf(
      "Figure 10 — AP speedup vs RECV chunk granularity (low load)\n%s",
      table.render().c_str());
  std::printf(
      "Expected shape: speedup peaks at a middle chunk size (paper: ~40 of "
      "~880 paragraphs) and degrades at both extremes.\n");
  report.write();
  return 0;
}
