// Open-loop capacity study (extension beyond the paper): the paper's
// experiments are closed-loop — 8N questions paced against the system's own
// service rate — so the cluster can never be pushed past saturation. This
// bench drives open-loop arrival processes instead and answers the two
// questions that regime raises:
//
//   1. What does admission control buy under sustained overload? A 2x
//      Poisson stream on 12 nodes, uncontrolled vs each admission policy.
//      The acceptance bar is that every policy keeps the p95 response time
//      of ADMITTED questions below the uncontrolled p95 (the backlog no
//      longer leaks into every answer).
//   2. Can the analytical model, inverted, size a cluster? The
//      CapacityPlanner turns (target qps, arrival shape, latency SLO) into
//      a minimum node count; the sweep below compares that prediction to
//      the simulated minimum across arrival rate x process shape. The
//      acceptance bar is |predicted - simulated| <= 1 node in every cell.
//
// Emits results/BENCH_capacity_planning.json.

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/capacity.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;
using workload::ArrivalProcessConfig;
using workload::ArrivalShape;

cluster::SystemConfig base_config(std::size_t nodes, std::uint64_t seed,
                                  const bench::BenchWorld& world) {
  cluster::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.dispatch.policy = cluster::Policy::kDqa;
  cfg.partition.ap_chunk = bench::scaled_chunk(world);
  return cfg;
}

/// The service-time figures the planner needs, measured the same way the
/// validation runs measure response time: the identical arrival stream at
/// a near-zero rate on one node, so nothing ever queues.
struct ServiceCalibration {
  double mean = 0.0;
  double cv2 = 0.0;
  double p95 = 0.0;
};

ServiceCalibration calibrate_service(const bench::BenchWorld& world,
                                     std::uint64_t seed, std::size_t count) {
  ArrivalProcessConfig idle;
  idle.shape = ArrivalShape::kPoisson;
  idle.rate_qps = 1e-4;  // hours between questions: unloaded responses
  idle.count = count;
  idle.seed = seed;
  auto m = bench::run_open_loop(world, base_config(1, seed, world), idle);
  ServiceCalibration cal;
  cal.mean = m.latencies.mean();
  const double sd = m.latencies.stddev();
  cal.cv2 = (sd * sd) / (cal.mean * cal.mean);
  cal.p95 = m.latencies.quantile(0.95);
  return cal;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  const auto& world = bench::bench_world();
  const std::uint64_t seed = cli.seed_or(2000);

  bench::BenchReport report("capacity_planning");
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("smoke", cli.smoke ? std::int64_t{1} : std::int64_t{0});

  // ---- 1. Admission control under sustained 2x overload ----------------
  const std::size_t overload_nodes = cli.nodes_or(cli.smoke ? 2 : 12);
  const double service = world.mean_service_seconds();
  {
    ArrivalProcessConfig stream;
    stream.shape = ArrivalShape::kPoisson;
    stream.rate_qps = 2.0 * static_cast<double>(overload_nodes) / service;
    stream.count = cli.smoke ? 24 : 12 * overload_nodes;
    stream.seed = seed;

    struct Row {
      std::string name;
      cluster::AdmissionConfig admission;
    };
    std::vector<Row> rows{{"uncontrolled", {}}};
    for (const auto policy :
         {cluster::AdmissionPolicy::kReject,
          cluster::AdmissionPolicy::kShedOldest,
          cluster::AdmissionPolicy::kDegrade}) {
      cluster::AdmissionConfig admission;
      admission.max_concurrent = overload_nodes;
      admission.queue_capacity = overload_nodes;
      admission.policy = policy;
      rows.push_back({std::string(cluster::to_string(policy)), admission});
    }

    TextTable table({"config", "answered", "shed %", "p95 (s)",
                     "max wait (s)", "q/min"});
    double uncontrolled_p95 = 0.0;
    bool all_bounded = true;
    for (const Row& row : rows) {
      auto cfg = base_config(overload_nodes, seed, world);
      cfg.admission = row.admission;
      const auto m = bench::run_open_loop(world, cfg, stream);
      const double p95 = m.latencies.quantile(0.95);
      if (row.name == "uncontrolled") uncontrolled_p95 = p95;
      else all_bounded = all_bounded && p95 < uncontrolled_p95;
      table.add_row({row.name, std::to_string(m.completed),
                     cell(100.0 * m.shed_fraction(), 1),
                     cell(p95, 1), cell(m.admission_wait.max(), 1),
                     cell(m.throughput_qpm(), 2)});
      report.metric("admitted_p95_seconds", {{"config", row.name}}, p95);
      report.metric("shed_fraction", {{"config", row.name}},
                    m.shed_fraction());
      report.metric("throughput_qpm", {{"config", row.name}},
                    m.throughput_qpm());
    }
    std::printf(
        "Admission control — 2x open-loop Poisson overload on %zu nodes "
        "(%zu questions, max_concurrent = queue = %zu)\n%s",
        overload_nodes, stream.count, overload_nodes,
        table.render().c_str());
    std::printf(
        "Acceptance bar: every policy's admitted p95 below the "
        "uncontrolled p95 — %s\n\n", all_bounded ? "MET" : "NOT MET");
    report.metric("admission_p95_bounded", {},
                  all_bounded ? 1.0 : 0.0);
  }

  // ---- 2. Planner prediction vs simulated minimum ----------------------
  const std::size_t cal_count = cli.smoke ? 16 : 64;
  const auto cal = calibrate_service(world, seed, cal_count);
  const double slo = 2.5 * cal.p95;
  const std::size_t max_nodes = cli.smoke ? 6 : 12;
  report.config("calibrated_mean_service_seconds", cal.mean);
  report.config("calibrated_service_p95_seconds", cal.p95);
  report.config("slo_p95_seconds", slo);

  struct Shape {
    std::string name;
    ArrivalProcessConfig config;  // rate_qps/count/seed filled per cell
  };
  std::vector<Shape> shapes;
  {
    ArrivalProcessConfig poisson;
    poisson.shape = ArrivalShape::kPoisson;
    shapes.push_back({"poisson", poisson});
    if (!cli.smoke) {
      ArrivalProcessConfig mmpp;
      mmpp.shape = ArrivalShape::kMmpp;
      mmpp.burst_rate_multiplier = 3.0;
      mmpp.mean_burst_seconds = 8.0 * cal.mean;
      mmpp.mean_calm_seconds = 24.0 * cal.mean;
      shapes.push_back({"mmpp", mmpp});
      ArrivalProcessConfig diurnal;
      diurnal.shape = ArrivalShape::kDiurnal;
      diurnal.diurnal_amplitude = 0.6;
      diurnal.diurnal_period = 40.0 * cal.mean;
      shapes.push_back({"diurnal", diurnal});
    }
  }
  const std::vector<double> erlangs =
      cli.smoke ? std::vector<double>{1.2} : std::vector<double>{1.2, 2.4};

  TextTable sweep({"shape", "erlangs", "planned N", "simulated N", "delta",
                   "sim p95 @ N (s)"});
  bool all_within_one = true;
  for (const Shape& shape : shapes) {
    for (const double a : erlangs) {
      ArrivalProcessConfig arrivals = shape.config;
      arrivals.rate_qps = a / cal.mean;
      arrivals.count = cli.smoke ? 24 : 96;
      arrivals.seed = seed;

      model::CapacityPlanParams params;
      params.target_qps = arrivals.rate_qps;
      params.mean_service_seconds = cal.mean;
      params.service_cv2 = cal.cv2;
      params.service_p95_seconds = cal.p95;
      params.slo_p95_seconds = slo;
      params.peak_to_mean = workload::peak_to_mean(arrivals);
      params.interarrival_cv2 = workload::interarrival_cv2(arrivals);
      params.max_nodes = max_nodes;
      params.overhead.T = cal.mean;
      const model::CapacityPlanner planner(params);
      const auto planned = planner.min_nodes();

      // The ground truth the planner is judged against: the smallest
      // cluster whose simulated p95 under this exact stream meets the SLO.
      std::optional<std::size_t> simulated;
      double sim_p95_at_min = 0.0;
      for (std::size_t n = 1; n <= max_nodes; ++n) {
        const auto m =
            bench::run_open_loop(world, base_config(n, seed, world), arrivals);
        const double p95 = m.latencies.quantile(0.95);
        if (p95 <= slo) {
          simulated = n;
          sim_p95_at_min = p95;
          break;
        }
      }

      const bool both = planned.has_value() && simulated.has_value();
      const double delta =
          both ? static_cast<double>(*planned) - static_cast<double>(*simulated)
               : 0.0;
      all_within_one = all_within_one && both && std::abs(delta) <= 1.0;
      sweep.add_row({shape.name, cell(a, 1),
                     planned ? std::to_string(*planned) : "none",
                     simulated ? std::to_string(*simulated) : "none",
                     both ? cell(delta, 0) : "-",
                     simulated ? cell(sim_p95_at_min, 1) : "-"});
      report.metric(
          "planned_min_nodes",
          {{"shape", shape.name}, {"erlangs", format_double(a, 1)}},
          planned ? static_cast<double>(*planned) : -1.0);
      report.metric(
          "simulated_min_nodes",
          {{"shape", shape.name}, {"erlangs", format_double(a, 1)}},
          simulated ? static_cast<double>(*simulated) : -1.0);
    }
  }
  std::printf(
      "Capacity planner — predicted vs simulated minimum nodes "
      "(SLO: p95 <= %.0f s, service %.0f s mean / %.0f s p95)\n%s",
      slo, cal.mean, cal.p95, sweep.render().c_str());
  std::printf("Acceptance bar: |planned - simulated| <= 1 node — %s\n",
              all_within_one ? "MET" : "NOT MET");
  report.metric("planner_within_one_node", {}, all_within_one ? 1.0 : 0.0);

  report.write();
  return 0;
}
