// Reproduces paper Table 7: "Number of migrated questions at the three
// scheduling points" — how often each dispatcher disagreed with the
// previous placement decision, for INTER (QA dispatcher only) and DQA
// (QA + PR + AP dispatchers), at 4/8/12 nodes (32/64/96 questions).
//
// Shape to reproduce: the embedded PR and AP dispatchers are *active* —
// they override the question dispatcher's placement for a large fraction
// of questions (paper: 10/32, 34/64, 43/96 for PR).

#include <cstdio>

#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  const auto& world = bench::bench_world();
  constexpr int kSeeds = 10;

  bench::BenchReport report("table7_migrations");
  report.config("seeds", std::int64_t{kSeeds});
  report.config("protocol", "high-load 2x (paper Sec. 6.1)");

  TextTable table({"Questions (nodes)", "INTER QA", "DQA QA", "DQA PR",
                   "DQA AP", "paper (INTER QA; DQA QA/PR/AP)"});
  const std::size_t node_counts[] = {4, 8, 12};
  const char* paper[] = {"8; 17/10/10", "15; 26/34/33", "23; 37/43/41"};
  const double paper_vals[3][4] = {
      {8, 17, 10, 10}, {15, 26, 34, 33}, {23, 37, 43, 41}};
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    const auto inter =
        bench::run_policy_averaged(world, Policy::kInter, nodes, kSeeds);
    const auto dqa =
        bench::run_policy_averaged(world, Policy::kDqa, nodes, kSeeds);
    table.add_row({std::to_string(8 * nodes) + " (" + std::to_string(nodes) +
                       " processors)",
                   cell(inter.migrations_qa, 1), cell(dqa.migrations_qa, 1),
                   cell(dqa.migrations_pr, 1), cell(dqa.migrations_ap, 1),
                   paper[row]});
    const std::string n = std::to_string(nodes);
    report.metric("migrations", {{"nodes", n}, {"policy", "INTER"},
                                 {"stage", "qa"}},
                  inter.migrations_qa, paper_vals[row][0]);
    report.metric("migrations", {{"nodes", n}, {"policy", "DQA"},
                                 {"stage", "qa"}},
                  dqa.migrations_qa, paper_vals[row][1]);
    report.metric("migrations", {{"nodes", n}, {"policy", "DQA"},
                                 {"stage", "pr"}},
                  dqa.migrations_pr, paper_vals[row][2]);
    report.metric("migrations", {{"nodes", n}, {"policy", "DQA"},
                                 {"stage", "ap"}},
                  dqa.migrations_ap, paper_vals[row][3]);
  }

  std::printf(
      "Table 7 — Migrated questions at the three scheduling points "
      "(%d-seed averages)\n%s",
      kSeeds, table.render().c_str());
  std::printf(
      "Expected shape: PR and AP dispatchers frequently override the "
      "question dispatcher's node choice.\n");
  report.write();
  return 0;
}
