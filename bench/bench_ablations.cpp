// Ablations of the design choices DESIGN.md calls out (not in the paper —
// they justify implementation decisions):
//
//  A. Load-signal damping: raw instantaneous loads make the question
//     dispatcher chase the Q/A task's disk/CPU phases; damped loads track
//     backlog. (Why the monitors broadcast loadavg-style EMAs.)
//  B. Migration threshold: the paper's "one average question" rule vs
//     always-migrate vs never-migrate.
//  C. Under-load thresholds: strict Eq. 7-8 values vs the one-question
//     allowance used by default.
//  D. PR partitioning strategy: the paper's separate experiment — RECV
//     beats SEND for PR because collection costs vary wildly.
//  E. Network bandwidth sensitivity of intra-question speedup.

#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "sched/load.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  using cluster::SystemConfig;
  const auto& world = bench::bench_world();
  constexpr int kSeeds = 6;
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kLowLoadQuestions = 30;

  bench::BenchReport report("ablations");
  report.config("seeds", std::int64_t{kSeeds});
  report.config("nodes", std::int64_t{kNodes});

  {  // A. load smoothing
    TextTable table({"Smoothing tau", "DQA throughput (q/min)",
                     "DQA mean latency (s)"});
    for (double tau : {0.0, 10.0, 30.0, 90.0, 300.0}) {
      SystemConfig cfg;
      cfg.net.load_smoothing_tau = tau;
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      const auto r = bench::run_policy_averaged(world, Policy::kDqa, kNodes,
                                                kSeeds, &cfg);
      table.add_row({tau == 0.0 ? "raw (0)" : format_double(tau, 0) + " s",
                     cell(r.throughput_qpm, 2), cell(r.mean_latency, 1)});
      const obs::Labels labels = {{"ablation", "load_smoothing"},
                                  {"tau", format_double(tau, 0)}};
      report.metric("throughput_qpm", labels, r.throughput_qpm);
      report.metric("mean_latency_seconds", labels, r.mean_latency);
    }
    std::printf("Ablation A — load-signal damping (DQA, %zu nodes)\n%s\n",
                kNodes, table.render().c_str());
  }

  {  // B. migration threshold — INTER with the rule on/off.
    // The rule lives in decide_migration via single_task_load; we emulate
    // "always migrate" by dropping the threshold to 0 through a custom
    // config knob? The threshold is architectural, so compare INTER
    // (threshold = 1 question) against DNS (never migrate) instead.
    TextTable table({"Policy", "Throughput (q/min)", "Mean latency (s)"});
    for (Policy policy : {Policy::kDns, Policy::kInter}) {
      const auto r =
          bench::run_policy_averaged(world, policy, kNodes, kSeeds);
      table.add_row({std::string(to_string(policy)),
                     cell(r.throughput_qpm, 2), cell(r.mean_latency, 1)});
      const obs::Labels labels = {{"ablation", "migration"},
                                  {"policy", std::string(to_string(policy))}};
      report.metric("throughput_qpm", labels, r.throughput_qpm);
      report.metric("mean_latency_seconds", labels, r.mean_latency);
    }
    std::printf(
        "Ablation B — question migration off (DNS) vs thresholded (INTER)\n%s\n",
        table.render().c_str());
  }

  {  // C. under-load thresholds
    TextTable table({"Thresholds (PR/AP)", "DQA throughput", "DQA latency",
                     "low-load speedup @4"});
    struct Variant {
      const char* name;
      double pr, ap;
    };
    const Variant variants[] = {
        {"strict Eq.7-8 (0.68/1.0)", sched::single_task_load(sched::kPrWeights),
         sched::single_task_load(sched::kApWeights)},
        {"default (+1 question)",
         sched::single_task_load(sched::kPrWeights) + 1.0,
         sched::single_task_load(sched::kApWeights) + 1.0},
        {"aggressive (+3)", sched::single_task_load(sched::kPrWeights) + 3.0,
         sched::single_task_load(sched::kApWeights) + 3.0},
    };
    for (const auto& v : variants) {
      SystemConfig cfg;
      cfg.dispatch.pr_underload_threshold = v.pr;
      cfg.dispatch.ap_underload_threshold = v.ap;
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      const auto high = bench::run_policy_averaged(world, Policy::kDqa,
                                                   kNodes, kSeeds, &cfg);
      const auto low1 = bench::run_low_load(world, 1, kLowLoadQuestions, &cfg);
      const auto low4 = bench::run_low_load(world, 4, kLowLoadQuestions, &cfg);
      table.add_row({v.name, cell(high.throughput_qpm, 2),
                     cell(high.mean_latency, 1),
                     cell(low1.latencies.mean() / low4.latencies.mean(), 2)});
      const obs::Labels labels = {{"ablation", "underload_thresholds"},
                                  {"variant", v.name}};
      report.metric("throughput_qpm", labels, high.throughput_qpm);
      report.metric("low_load_speedup_4", labels,
                    low1.latencies.mean() / low4.latencies.mean());
    }
    std::printf("Ablation C — under-load thresholds\n%s\n",
                table.render().c_str());
  }

  {  // D. PR strategy: RECV vs SEND (paper Sec. 6.3's separate experiment).
    TextTable table({"PR strategy", "PR stage time @4 nodes (s)"});
    for (auto strategy :
         {parallel::Strategy::kRecv, parallel::Strategy::kSend}) {
      SystemConfig cfg;
      cfg.partition.pr_strategy = strategy;
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      const auto m = bench::run_low_load(world, 4, kLowLoadQuestions, &cfg);
      table.add_row({std::string(parallel::to_string(strategy)),
                     cell(m.t_pr.mean(), 2)});
      report.metric("pr_stage_seconds",
                    {{"ablation", "pr_strategy"},
                     {"strategy", std::string(parallel::to_string(strategy))}},
                    m.t_pr.mean());
    }
    std::printf(
        "Ablation D — PR partitioning: RECV vs SEND (RECV must win: "
        "collection costs vary too much for weight-based splits)\n%s\n",
        table.render().c_str());
  }

  {  // E. network bandwidth sensitivity (low-load speedup).
    TextTable table({"Network", "low-load speedup @8 nodes"});
    const auto base1 = bench::run_low_load(world, 1, kLowLoadQuestions);
    for (double mbps : {1.0, 10.0, 100.0}) {
      SystemConfig cfg;
      cfg.net.bandwidth = Bandwidth::from_mbps(mbps);
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      const auto m = bench::run_low_load(world, 8, kLowLoadQuestions, &cfg);
      table.add_row({format_double(mbps, 0) + " Mbps",
                     cell(base1.latencies.mean() / m.latencies.mean(), 2)});
      report.metric("low_load_speedup_8",
                    {{"ablation", "network_bandwidth"},
                     {"net_mbps", format_double(mbps, 0)}},
                    base1.latencies.mean() / m.latencies.mean());
    }
    std::printf(
        "Ablation E — network bandwidth vs intra-question speedup. The "
        "RECV pipeline overlaps transfers with computation, so the "
        "simulated system is far less bandwidth-sensitive than the "
        "serialized-overhead analytical model (Fig. 9a) predicts.\n%s\n",
        table.render().c_str());
  }
  {  // F. memory-pressure (thrashing) model: the paper's ">4 simultaneous
     // questions cause excessive page swapping" effect, and how much more
     // load balancing matters once it is on.
    TextTable table({"Thrash exponent", "DNS latency (s)", "DQA latency (s)",
                     "DQA advantage"});
    for (double exponent : {0.0, 1.0, 2.0}) {
      SystemConfig cfg;
      cfg.node.thrash_exponent = exponent;
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      const auto dns = bench::run_policy_averaged(world, Policy::kDns, kNodes,
                                                  kSeeds, &cfg);
      const auto dqa = bench::run_policy_averaged(world, Policy::kDqa, kNodes,
                                                  kSeeds, &cfg);
      table.add_row({format_double(exponent, 1), cell(dns.mean_latency, 1),
                     cell(dqa.mean_latency, 1),
                     cell_percent(1.0 - dqa.mean_latency / dns.mean_latency)});
      report.metric("dqa_advantage_fraction",
                    {{"ablation", "thrashing"},
                     {"exponent", format_double(exponent, 1)}},
                    1.0 - dqa.mean_latency / dns.mean_latency);
    }
    std::printf(
        "Ablation F — memory-pressure model (paper Sec. 4.2: swapping past "
        "4 resident questions)\n%s\n",
        table.render().c_str());
  }

  {  // G. modern baseline: power-of-two-choices vs the paper's policies.
    TextTable table({"Policy", "Throughput (q/min)", "Mean latency (s)",
                     "CPU-work imbalance"});
    for (Policy policy : {Policy::kDns, Policy::kTwoChoice, Policy::kInter,
                          Policy::kDqa}) {
      double tput = 0, lat = 0, imb = 0;
      for (int s = 0; s < kSeeds; ++s) {
        const auto m = bench::run_high_load(world, policy, kNodes, 1000 + s);
        tput += m.throughput_qpm();
        lat += m.latencies.mean();
        imb += m.cpu_work_imbalance();
      }
      table.add_row({std::string(to_string(policy)), cell(tput / kSeeds, 2),
                     cell(lat / kSeeds, 1), cell(imb / kSeeds, 3)});
      const obs::Labels labels = {{"ablation", "two_choice"},
                                  {"policy", std::string(to_string(policy))}};
      report.metric("throughput_qpm", labels, tput / kSeeds);
      report.metric("mean_latency_seconds", labels, lat / kSeeds);
    }
    std::printf(
        "Ablation G — power-of-two-choices (extension) vs the paper's "
        "policies\n%s\n",
        table.render().c_str());
  }

  {  // H. heterogeneous cluster (extension): two 2x nodes + two 0.5x
     // nodes vs a homogeneous pool with identical aggregate capacity.
    TextTable table({"Cluster", "DNS latency (s)", "DQA latency (s)",
                     "DQA advantage"});
    struct Variant {
      const char* name;
      std::vector<double> speeds;
    };
    const Variant variants[] = {
        {"homogeneous (4 x 1.25)", {1.25, 1.25, 1.25, 1.25}},
        {"heterogeneous (2x2.0 + 2x0.5)", {2.0, 2.0, 0.5, 0.5}},
    };
    for (const auto& v : variants) {
      SystemConfig cfg;
      cfg.node_cpu_speeds = v.speeds;
      cfg.partition.ap_chunk = bench::scaled_chunk(world);
      double dns = 0, dqa = 0;
      for (int s = 0; s < kSeeds; ++s) {
        dns += bench::run_high_load(world, Policy::kDns, 4, 1000 + s, &cfg)
                   .latencies.mean();
        dqa += bench::run_high_load(world, Policy::kDqa, 4, 1000 + s, &cfg)
                   .latencies.mean();
      }
      dns /= kSeeds;
      dqa /= kSeeds;
      table.add_row({v.name, cell(dns, 1), cell(dqa, 1),
                     cell_percent(1.0 - dqa / dns)});
      report.metric("dqa_advantage_fraction",
                    {{"ablation", "heterogeneous"}, {"cluster", v.name}},
                    1.0 - dqa / dns);
    }
    std::printf(
        "Ablation H — heterogeneous node speeds (extension): load feedback "
        "matters more when round-robin cannot see capacity\n%s\n",
        table.render().c_str());
  }

  report.write();
  return 0;
}
