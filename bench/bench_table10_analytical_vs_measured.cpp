// Reproduces paper Table 10: "Analytical versus measured question speedup"
// at 4/8/12 nodes. The analytical side is the intra-question model
// parameterized with THIS workload's averages (so the model and the
// simulator describe the same questions); the measured side comes from the
// low-load runs of Table 8.
//
// Shape to reproduce: measured < analytical, gap widening with node count
// (uneven partition granularity — PR has only 8 sub-collections).

#include <cstdio>

#include "common/table.hpp"
#include "model/intra_question.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  const auto& world = bench::bench_world();
  constexpr std::size_t kQuestions = 40;

  // Parameterize the analytical model from the benchmark plans.
  model::IntraQuestionParams params;
  params.t_qp = world.cost->anchors().t_qp;
  params.t_po = world.cost->anchors().t_po;
  double cpu = 0.0, io = 0.0, shipped = 0.0;
  for (const auto& plan : world.plans) {
    for (const auto& u : plan.pr_units) {
      cpu += u.demand.cpu_seconds + u.ps.cpu_seconds;
      io += u.demand.disk_bytes;
      shipped += static_cast<double>(u.bytes_out);
    }
    for (const auto& u : plan.ap_units) {
      cpu += u.demand.cpu_seconds;
      shipped += static_cast<double>(u.bytes_in + u.answer_bytes_out);
    }
  }
  const auto n_plans = static_cast<double>(world.plans.size());
  params.t_cpu_parallel = cpu / n_plans;
  params.v_io = io / n_plans;
  params.w_partition_bytes = shipped / n_plans;
  params.net = Bandwidth::from_mbps(100);
  params.disk = world.cost->anchors().reference_disk;
  const model::IntraQuestionModel analytical(params);

  const auto one = bench::run_low_load(world, 1, kQuestions);

  bench::BenchReport report("table10_analytical_vs_measured");
  report.config("questions", std::int64_t{kQuestions});
  report.config("protocol", "low-load serial (paper Sec. 6.2)");

  const char* paper[] = {"3.84 vs 3.67", "7.34 vs 5.85", "10.60 vs 7.48"};
  const double paper_analytical[] = {3.84, 7.34, 10.60};
  const double paper_measured[] = {3.67, 5.85, 7.48};
  TextTable table({"", "Analytical", "Measured", "paper (analytical vs measured)"});
  const std::size_t node_counts[] = {4, 8, 12};
  for (int row = 0; row < 3; ++row) {
    const std::size_t nodes = node_counts[row];
    const auto m = bench::run_low_load(world, nodes, kQuestions);
    const double measured = one.latencies.mean() / m.latencies.mean();
    table.add_row({std::to_string(nodes) + " processors",
                   cell(analytical.speedup(static_cast<double>(nodes)), 2),
                   cell(measured, 2), paper[row]});
    const obs::Labels labels = {{"nodes", std::to_string(nodes)}};
    report.metric("analytical_speedup", labels,
                  analytical.speedup(static_cast<double>(nodes)),
                  paper_analytical[row]);
    report.metric("measured_speedup", labels, measured, paper_measured[row]);
  }

  std::printf(
      "Table 10 — Analytical vs measured question speedup (low load)\n%s",
      table.render().c_str());
  std::printf(
      "Expected shape: measured below analytical, gap growing with nodes "
      "(uneven partition granularity; only 8 PR sub-collections).\n");
  report.write();
  return 0;
}
