// Micro-benchmarks of the discrete-event engine: raw event throughput,
// coroutine process churn, and fair-share server arrival/departure cost
// (O(F) per event — the relevant scaling knob for big clusters).

#include <benchmark/benchmark.h>

#include "simnet/fair_share.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/process.hpp"
#include "simnet/simulation.hpp"

namespace {

using namespace qadist;
using namespace qadist::simnet;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(static_cast<double>(i % 17), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventThroughput);

SimProcess delay_chain(Simulation& sim, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await Delay(sim, 0.001);
  }
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int p = 0; p < 50; ++p) delay_chain(sim, 20);
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 50 * 20);
}
BENCHMARK(BM_CoroutineDelayChain);

SimProcess consume_work(Simulation& sim, FairShareServer& server,
                        double start, double work) {
  co_await Delay(sim, start);
  co_await server.consume(work);
}

void BM_FairShareChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    FairShareServer server(sim, "srv", 4.0, 1.0);
    for (int f = 0; f < flows; ++f) {
      consume_work(sim, server, 0.01 * f, 1.0 + 0.01 * f);
    }
    sim.run();
    benchmark::DoNotOptimize(server.work_served());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FairShareChurn)->Arg(8)->Arg(64)->Arg(256);

SimProcess ping(Mailbox<int>& in, Mailbox<int>& out, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    out.send(i);
    benchmark::DoNotOptimize(co_await in.recv());
  }
}

SimProcess pong(Mailbox<int>& in, Mailbox<int>& out, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    const int v = co_await in.recv();
    out.send(v);
  }
}

void BM_MailboxPingPong(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    Mailbox<int> a(sim), b(sim);
    ping(a, b, 200);
    pong(b, a, 200);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_MailboxPingPong);

}  // namespace
