// Reproduces paper Figure 9: analytical individual-question speedup vs
// processor count: (a) disk fixed at 1 Gbps, network swept over
// 1 Mbps - 1 Gbps; (b) network fixed at 1 Gbps, disk swept over
// 100 Mbps - 1 Gbps.
//
// Shape to reproduce: speedup grows with network bandwidth (a) and
// *shrinks* with disk bandwidth (b) — faster disks shrink the
// parallelizable part, making the constant overhead relatively larger.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/intra_question.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"

namespace {

qadist::model::IntraQuestionModel make_model(double disk_mbps,
                                             double net_mbps) {
  qadist::model::IntraQuestionParams p;
  p.disk = qadist::Bandwidth::from_mbps(disk_mbps);
  p.net = qadist::Bandwidth::from_mbps(net_mbps);
  return qadist::model::IntraQuestionModel(p);
}

}  // namespace

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;

  const double n_values[] = {20, 40, 60, 80, 100, 120, 140, 160, 180, 200};

  bench::BenchReport report("fig9_intra_speedup");
  report.config("protocol", "analytical intra-question model (paper Sec. 5.2)");

  {
    const double nets[] = {1, 10, 100, 1000};
    TextTable table({"Processors", "1 Mbps", "10 Mbps", "100 Mbps", "1 Gbps"});
    for (double n : n_values) {
      std::vector<std::string> row{format_double(n, 0)};
      for (double net : nets) {
        const double speedup = make_model(1000, net).speedup(n);
        row.push_back(cell(speedup, 2));
        report.metric("speedup",
                      {{"processors", format_double(n, 0)},
                       {"disk_mbps", "1000"},
                       {"net_mbps", format_double(net, 0)}},
                      speedup);
      }
      table.add_row(row);
    }
    std::printf(
        "Figure 9(a) — Question speedup, disk 1 Gbps, network swept\n%s\n",
        table.render().c_str());
  }
  {
    const double disks[] = {100, 250, 500, 1000};
    TextTable table(
        {"Processors", "100 Mbps", "250 Mbps", "500 Mbps", "1 Gbps"});
    for (double n : n_values) {
      std::vector<std::string> row{format_double(n, 0)};
      for (double disk : disks) {
        const double speedup = make_model(disk, 1000).speedup(n);
        row.push_back(cell(speedup, 2));
        report.metric("speedup",
                      {{"processors", format_double(n, 0)},
                       {"disk_mbps", format_double(disk, 0)},
                       {"net_mbps", "1000"}},
                      speedup);
      }
      table.add_row(row);
    }
    std::printf(
        "Figure 9(b) — Question speedup, network 1 Gbps, disk swept\n%s",
        table.render().c_str());
  }
  std::printf(
      "Expected: columns grow left-to-right in (a) and shrink left-to-right "
      "in (b); every column saturates (Eq. 31's sequential floor).\n");
  report.write();
  return 0;
}
