// Reproduces paper Figure 8: (a) analytical system speedup from
// inter-question parallelism vs processor count, for 10 Mbps / 100 Mbps /
// 1 Gbps networks; (b) the model parameters (TREC-9 question set).
//
// Shape to reproduce: near-linear speedup for 1 Gbps (efficiency ~0.9 at
// N=1000); 100 Mbps good to ~100 processors; 10 Mbps saturating early.

#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/inter_question.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"

int main(int argc, char** argv) {
  [[maybe_unused]] const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using model::InterQuestionModel;
  using model::InterQuestionParams;

  const double networks[] = {10, 100, 1000};
  std::vector<InterQuestionModel> models;
  for (double mbps : networks) {
    InterQuestionParams p;
    p.net = Bandwidth::from_mbps(mbps);
    models.emplace_back(p);
  }

  bench::BenchReport report("fig8_inter_speedup");
  report.config("protocol", "analytical inter-question model (paper Sec. 5.1)");
  report.config("question_set", "TREC-9 calibration");

  TextTable table({"Processors", "10 Mbps", "100 Mbps", "1 Gbps",
                   "eff. @ 1 Gbps"});
  for (double n : {1.0, 10.0, 50.0, 100.0, 200.0, 400.0, 600.0, 800.0,
                   1000.0}) {
    table.add_row({format_double(n, 0), cell(models[0].speedup(n), 1),
                   cell(models[1].speedup(n), 1),
                   cell(models[2].speedup(n), 1),
                   cell(models[2].efficiency(n), 3)});
    const std::string procs = format_double(n, 0);
    for (std::size_t i = 0; i < models.size(); ++i) {
      report.metric("speedup",
                    {{"processors", procs},
                     {"net_mbps", format_double(networks[i], 0)}},
                    models[i].speedup(n));
    }
    report.metric("efficiency",
                  {{"processors", procs}, {"net_mbps", "1000"}},
                  models[2].efficiency(n));
  }
  std::printf(
      "Figure 8(a) — Analytical system speedup vs network bandwidth\n%s",
      table.render().c_str());

  const auto& p = models[0].params();
  TextTable params({"Parameter", "Value"});
  params.add_row({"T (avg question time)", cell(p.T, 0) + " s"});
  params.add_row({"Q (questions/processor)", cell(p.Q, 0)});
  params.add_row({"N_k keywords", cell(p.n_keywords, 0)});
  params.add_row({"N_p paragraphs", cell(p.n_paragraphs, 0)});
  params.add_row({"N_pa accepted", cell(p.n_accepted, 0)});
  params.add_row({"S_par paragraph bytes", cell(p.s_paragraph, 0)});
  params.add_row({"N_a answers / S_ans", cell(p.n_answers, 0) + " / " +
                                             cell(p.s_answer, 0) + " B"});
  params.add_row({"P_qa / P_pr / P_ap", cell(p.p_qa, 2) + " / " +
                                            cell(p.p_pr, 2) + " / " +
                                            cell(p.p_ap, 2)});
  params.add_row({"P_net", cell(p.p_net, 2)});
  std::printf("Figure 8(b) — Model parameters (TREC-9 calibration)\n%s",
              params.render().c_str());
  std::printf(
      "Expected: efficiency ~0.9 at 1000 processors on 1 Gbps, and ~0.9 at "
      "100 processors on 100 Mbps (paper Sec. 5.1).\n");
  report.metric("efficiency_at_1000_procs_1gbps", {},
                models[2].efficiency(1000.0), 0.9);
  report.write();
  return 0;
}
