// Micro-benchmarks of the IR substrate: tokenization, stemming, index
// construction, and posting-list evaluation — including the galloping vs
// linear intersection ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <sstream>

#include "ir/inverted_index.hpp"
#include "ir/retrieval.hpp"
#include "support/bench_world.hpp"

namespace {

using namespace qadist;

const ir::InvertedIndex& whole_index() {
  static const ir::InvertedIndex index = [] {
    const auto& world = bench::bench_world();
    const corpus::SubCollection whole(
        &world.corpus.collection, 0,
        static_cast<corpus::DocId>(world.corpus.collection.size()));
    ir::Analyzer analyzer;
    return ir::InvertedIndex::build(whole, analyzer);
  }();
  return index;
}

std::vector<std::vector<std::string>> query_terms() {
  const auto& world = bench::bench_world();
  ir::Analyzer analyzer;
  std::vector<std::vector<std::string>> out;
  for (const auto& q : world.questions) {
    out.push_back(analyzer.index_terms(q.text));
  }
  return out;
}

void BM_Tokenize(benchmark::State& state) {
  const auto& world = bench::bench_world();
  const auto& text = world.corpus.collection.document(0).paragraphs[0];
  ir::Analyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.tokenize(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Tokenize);

void BM_Stem(benchmark::State& state) {
  ir::Analyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.stem("lighthouses"));
    benchmark::DoNotOptimize(analyzer.stem("founded"));
    benchmark::DoNotOptimize(analyzer.stem("cities"));
  }
}
BENCHMARK(BM_Stem);

void BM_IndexBuild(benchmark::State& state) {
  const auto& world = bench::bench_world();
  const auto docs = static_cast<corpus::DocId>(state.range(0));
  const corpus::SubCollection sub(&world.corpus.collection, 0, docs);
  ir::Analyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::InvertedIndex::build(sub, analyzer));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * docs);
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_IntersectGalloping(benchmark::State& state) {
  const auto& index = whole_index();
  const auto queries = query_terms();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ir::intersect_all(index, queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_IntersectGalloping);

void BM_IntersectLinear(benchmark::State& state) {
  const auto& index = whole_index();
  const auto queries = query_terms();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ir::intersect_all_linear(index, queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_IntersectLinear);

void BM_UnionCount(benchmark::State& state) {
  const auto& index = whole_index();
  const auto queries = query_terms();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ir::union_count(index, queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_UnionCount);

void BM_Retrieve(benchmark::State& state) {
  const auto& index = whole_index();
  const auto queries = query_terms();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ir::retrieve(index, queries[i++ % queries.size()], 60));
  }
}
BENCHMARK(BM_Retrieve);

void BM_IndexSerialize(benchmark::State& state) {
  const auto& index = whole_index();
  for (auto _ : state) {
    std::stringstream s;
    index.save(s);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * whole_index().byte_size()));
}
BENCHMARK(BM_IndexSerialize);

}  // namespace
