// Unreliable network: what does a lossy interconnect cost the DQA
// dispatch policy, and does the reliability envelope (retries + failure
// detector + degraded answers) keep the cluster live? Not a paper exhibit
// — the paper's cluster ran on a dedicated Myrinet-class LAN; this sweeps
// the message drop rate well past anything such a fabric would show and
// adds a scripted partition.
//
// Scenario: a 12-node DQA cluster under the standard high-load protocol.
// Sweep drop rate x AP strategy; each faulted run reuses the fault-free
// run's question sequence. Duplicates arrive at half the drop rate and
// every message jitters by 1-10 ms. The per-question deadline is set from
// the fault-free run (10x its p95 latency), so "degraded" means the
// network made a question pathologically slow, not that the cluster was
// merely busy.
//
// Acceptance (checked here, non-zero exit on violation): at drop rates up
// to 5% every question completes and >= 99% complete non-degraded.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/workload.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "support/bench_cli.hpp"
#include "support/bench_report.hpp"
#include "support/bench_world.hpp"

int main(int argc, char** argv) {
  const auto cli = qadist::bench::BenchCli::parse(argc, argv);
  using namespace qadist;
  using cluster::Policy;
  using parallel::Strategy;
  const auto& world = bench::bench_world();
  const std::size_t nodes = cli.nodes_or(cli.smoke ? 4 : 12);
  const std::uint64_t seed = cli.seed_or(7);
  const Policy policy = cli.policy_or(Policy::kDqa);

  const std::vector<double> drop_rates =
      cli.drop_rate.has_value() ? std::vector<double>{*cli.drop_rate}
      : cli.smoke               ? std::vector<double>{0.0, 0.05}
                  : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10};

  const auto run = [&](Strategy strategy, double drop_rate,
                       double deadline) {
    cluster::SystemConfig cfg;
    cfg.partition.ap_strategy = strategy;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cfg.net.faults.drop_probability = drop_rate;
    cfg.net.faults.duplicate_probability = drop_rate / 2.0;
    if (drop_rate > 0.0) {
      cfg.net.faults.jitter_min = 0.001;
      cfg.net.faults.jitter_max = 0.010;
    }
    cfg.net.reliability.question_deadline = deadline;
    return bench::run_high_load(world, policy, nodes, seed, &cfg);
  };

  bench::BenchReport report("network_faults");
  report.config("nodes", static_cast<std::int64_t>(nodes));
  report.config("policy", std::string(to_string(policy)));
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("protocol",
                "high-load 2x; duplicate = drop/2; jitter 1-10 ms; "
                "deadline = 10x fault-free p95");

  TextTable table({"AP strategy", "Drop", "Makespan (s)", "Mean lat (s)",
                   "p95 (s)", "Drops", "Retries", "Fails", "Unreach",
                   "Suspects", "Degraded", "Non-degr"});
  bool acceptance_ok = true;
  for (const Strategy strategy :
       {Strategy::kSend, Strategy::kIsend, Strategy::kRecv}) {
    const std::string strat{to_string(strategy)};
    // Fault-free calibration run: no injector at all (bit-identical to the
    // plain benches) — its p95 anchors the deadline for the faulted runs.
    const auto clean = run(strategy, 0.0, 0.0);
    const double deadline = 10.0 * clean.latencies.quantile(0.95);
    for (const double rate : drop_rates) {
      const auto m = rate == 0.0 ? clean : run(strategy, rate, deadline);
      const double non_degraded = m.non_degraded_fraction();
      table.add_row(
          {strat, cell(100.0 * rate, 0) + "%", cell(m.makespan, 0),
           cell(m.latencies.mean(), 1), cell(m.latencies.quantile(0.95), 1),
           std::to_string(m.net_drops + m.net_partition_drops),
           std::to_string(m.net_retries), std::to_string(m.net_send_failures),
           std::to_string(m.legs_unreachable),
           std::to_string(m.detector_suspicions),
           std::to_string(m.questions_degraded),
           cell(100.0 * non_degraded, 1) + "%"});
      if (m.completed != m.submitted) {
        std::printf("ERROR: %s at %.0f%% drop hung: %zu/%zu completed\n",
                    strat.c_str(), 100.0 * rate, m.completed, m.submitted);
        acceptance_ok = false;
      }
      if (rate <= 0.05 && non_degraded < 0.99) {
        std::printf(
            "ERROR: %s at %.0f%% drop: only %.1f%% non-degraded (need 99%%)\n",
            strat.c_str(), 100.0 * rate, 100.0 * non_degraded);
        acceptance_ok = false;
      }
      const obs::Labels labels = {{"strategy", strat},
                                  {"drop_rate", cell(rate, 2)}};
      report.metric("makespan_seconds", labels, m.makespan);
      report.metric("latency_seconds", labels, m.latencies);
      report.metric("completed_fraction", labels,
                    m.submitted == 0 ? 1.0
                                     : static_cast<double>(m.completed) /
                                           static_cast<double>(m.submitted));
      report.metric("non_degraded_fraction", labels, non_degraded);
      report.metric("net_drops", labels, static_cast<double>(m.net_drops));
      report.metric("net_duplicates", labels,
                    static_cast<double>(m.net_duplicates));
      report.metric("net_retries", labels, static_cast<double>(m.net_retries));
      report.metric("net_send_failures", labels,
                    static_cast<double>(m.net_send_failures));
      report.metric("legs_unreachable", labels,
                    static_cast<double>(m.legs_unreachable));
      report.metric("detector_suspicions", labels,
                    static_cast<double>(m.detector_suspicions));
      report.metric("detector_false_alarms", labels,
                    static_cast<double>(m.detector_false_alarms));
      report.metric("questions_degraded", labels,
                    static_cast<double>(m.questions_degraded));
    }
  }
  std::printf("%s", table.render().c_str());

  // Partition scenario: a lightly lossy fabric plus a scripted window that
  // isolates two nodes for a stretch mid-run. The detector must suspect
  // them (steering new work away), survivors absorb the load, and the
  // isolated pair must rejoin once the window heals.
  {
    const auto clean = run(Strategy::kRecv, 0.0, 0.0);
    const double deadline = 10.0 * clean.latencies.quantile(0.95);
    cluster::SystemConfig cfg;
    cfg.partition.ap_strategy = Strategy::kRecv;
    cfg.partition.ap_chunk = bench::scaled_chunk(world);
    cfg.net.faults.drop_probability = 0.02;
    cfg.net.faults.duplicate_probability = 0.01;
    cfg.net.faults.jitter_min = 0.001;
    cfg.net.faults.jitter_max = 0.010;
    cfg.net.reliability.question_deadline = deadline;
    cfg.net.faults.partitions.push_back(simnet::PartitionWindow{
        0.25 * clean.makespan,
        0.50 * clean.makespan,
        {static_cast<std::uint32_t>(nodes - 2),
         static_cast<std::uint32_t>(nodes - 1)}});
    const auto m = bench::run_high_load(world, policy, nodes, seed, &cfg);
    std::printf(
        "Partition (2 nodes isolated %.0fs-%.0fs): %zu/%zu completed, "
        "%zu degraded, %zu suspicions, %zu deaths, %zu rejoins, "
        "%zu partition drops\n",
        0.25 * clean.makespan, 0.50 * clean.makespan, m.completed,
        m.submitted, m.questions_degraded, m.detector_suspicions,
        m.detector_deaths, m.detector_rejoins, m.net_partition_drops);
    if (m.completed != m.submitted) {
      std::printf("ERROR: partition run hung: %zu/%zu completed\n",
                  m.completed, m.submitted);
      acceptance_ok = false;
    }
    const obs::Labels labels = {{"scenario", "partition"}};
    report.metric("completed_fraction", labels,
                  m.submitted == 0 ? 1.0
                                   : static_cast<double>(m.completed) /
                                         static_cast<double>(m.submitted));
    report.metric("non_degraded_fraction", labels, m.non_degraded_fraction());
    report.metric("net_partition_drops", labels,
                  static_cast<double>(m.net_partition_drops));
    report.metric("detector_suspicions", labels,
                  static_cast<double>(m.detector_suspicions));
    report.metric("detector_deaths", labels,
                  static_cast<double>(m.detector_deaths));
    report.metric("detector_rejoins", labels,
                  static_cast<double>(m.detector_rejoins));
    report.metric("questions_degraded", labels,
                  static_cast<double>(m.questions_degraded));
  }

  std::printf(
      "Expected shape: retries absorb moderate loss (every question "
      "completes at every rate); latency and makespan climb with the drop "
      "rate as backoffs and respawned legs accumulate; at <= 5%% drop at "
      "least 99%% of questions finish non-degraded; the partition window "
      "shows suspicion during the outage and rejoins after it heals.\n");
  report.write();
  if (!acceptance_ok) {
    std::printf("ACCEPTANCE FAILED (see errors above)\n");
    return 1;
  }
  return 0;
}
